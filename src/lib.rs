//! # smartcube
//!
//! A from-scratch Rust reproduction of Scriney & Roantree, *Efficient Cube
//! Construction for Smart City Data* (EDBT/ICDT 2016 workshops): DWARF data
//! cubes built from XML/JSON smart-city streams and stored bi-directionally
//! in an embedded Cassandra-like NoSQL engine, evaluated against relational
//! layouts.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`dwarf`] — the DWARF cube (construction, queries, merge, hierarchies)
//! * [`ingest`] — XML/JSON feed → tuple extraction, windows, pipeline
//! * [`nosql`] — the embedded columnar store with its CQL subset
//! * [`relational`] — the embedded MySQL-like store with its SQL subset
//! * [`core`] — the paper's contribution: the four schema models and the
//!   bi-directional mapping
//! * [`stream`] — sharded parallel streaming ingestion (worker pool,
//!   per-shard micro-cubes, merge)
//! * [`server`] — the multi-tenant network front door (framed CQL
//!   protocol, token auth, slow-query log, Prometheus metrics port)
//! * [`datagen`] — deterministic synthetic smart-city feeds
//! * [`obs`] — workspace-wide metrics registry, spans and histograms
//! * [`xml`], [`json`], [`encoding`], [`storage`] — the substrates
//!
//! See `examples/quickstart.rs` for a five-minute tour and DESIGN.md for
//! the architecture and experiment index.

pub use sc_core as core;
pub use sc_datagen as datagen;
pub use sc_dwarf as dwarf;
pub use sc_encoding as encoding;
pub use sc_ingest as ingest;
pub use sc_json as json;
pub use sc_nosql as nosql;
pub use sc_obs as obs;
pub use sc_relational as relational;
pub use sc_server as server;
pub use sc_storage as storage;
pub use sc_stream as stream;
pub use sc_xml as xml;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        let schema = crate::dwarf::CubeSchema::new(["d"], "m");
        let cube = crate::dwarf::Dwarf::build(schema.clone(), crate::dwarf::TupleSet::new(&schema));
        assert!(cube.is_empty());
    }
}
