//! End-to-end request tracing: a traced client query round-trips its
//! trace ID, the slow-query log links to the trace, `/debug/traces`
//! serves the span tree (JSON + Chrome trace-event), and — the PR's
//! acceptance criterion — the trace's top-level stages decompose the
//! logged latency to within 10%.
//!
//! Own binary, single `#[test]`: the trace toggle and tail sampler are
//! process-global, so parallel test fns would race on them.

use sc_nosql::{OpenOptions, SharedDb};
use sc_obs::trace::TailSampler;
use sc_server::client::Client;
use sc_server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const ROWS: i64 = 3_000;

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    let (head, body) = out.split_once("\r\n\r\n").expect("HTTP header split");
    (head.to_string(), body.to_string())
}

#[test]
fn traced_query_decomposes_slow_log_latency_and_exports() {
    let db = SharedDb::open(OpenOptions::default()).unwrap();
    let server = Server::start(
        ServerConfig::default()
            .tenant("city", "tok-city")
            // Log everything; retain every offered trace (slowest-8 plus
            // a 1-in-1 systematic sample).
            .slow_query_threshold(Duration::ZERO)
            .trace_policy(8, 1),
        db,
    )
    .unwrap();
    let addr = server.addr();
    let metrics = server.metrics_addr();

    let mut client = Client::connect(addr).unwrap();
    client.hello("tok-city").unwrap();
    client.query("CREATE KEYSPACE app").unwrap();
    client
        .query("CREATE TABLE app.readings (id int, station text, bikes int, PRIMARY KEY (id))")
        .unwrap();
    for i in 0..ROWS {
        client
            .query(&format!(
                "INSERT INTO app.readings (id, station, bikes) VALUES ({i}, 'station {i}', {})",
                i % 37
            ))
            .unwrap();
    }

    // The interesting statement: a full scan, slow enough to measure.
    let (rows, trace_id) = client
        .query_traced("SELECT * FROM app.readings")
        .expect("traced select");
    assert_eq!(rows.len(), ROWS as usize);
    assert_ne!(trace_id, 0);
    let hex = format!("{trace_id:016x}");

    // --- Slow-query log: the entry links to the trace and carries stats.
    let entry = server
        .slow_queries()
        .into_iter()
        .find(|e| e.trace_id == trace_id)
        .expect("select landed in the slow-query log with its trace ID");
    assert_eq!(entry.tenant, "city");
    assert!(entry.cql.starts_with("SELECT * FROM app.readings"));
    // Untraced statements still get server-minted IDs: every logged entry
    // links somewhere.
    assert!(
        server.slow_queries().iter().all(|e| e.trace_id != 0),
        "server must mint trace IDs for untraced requests"
    );

    // --- Acceptance criterion: the span tree's top-level stages sum to
    // the logged total (execution + commit wait) within 10%.
    let trace = TailSampler::global()
        .find(trace_id)
        .expect("sampler retained the traced select");
    assert_eq!(trace.kind, "select");
    assert_eq!(trace.tenant, "city");
    let logged_ns = (entry.duration + entry.queue_wait).as_nanos() as u64;
    let stage_sum: u64 = trace
        .spans
        .iter()
        .filter(|s| s.parent.is_none())
        .map(|s| s.duration_ns)
        .sum();
    let names: Vec<&str> = trace
        .spans
        .iter()
        .filter(|s| s.parent.is_none())
        .map(|s| s.name)
        .collect();
    assert!(
        names.contains(&"server.parse") && names.contains(&"server.execute"),
        "top-level stages: {names:?}"
    );
    let tolerance = logged_ns / 10;
    assert!(
        stage_sum.abs_diff(logged_ns) <= tolerance,
        "stage sum {stage_sum}ns vs logged {logged_ns}ns exceeds 10% \
         (spans: {:?})",
        trace.spans
    );
    assert!(trace.total_ns >= stage_sum);

    // An insert's trace decomposes the write path: the commit wait the
    // slow-query log reports equals the trace's commit_wait attribution.
    let insert_entry = server
        .slow_queries()
        .into_iter()
        .rev()
        .find(|e| e.cql.starts_with("INSERT"))
        .expect("an insert in the slow-query log");
    if let Some(insert_trace) = TailSampler::global().find(insert_entry.trace_id) {
        assert_eq!(insert_trace.kind, "insert");
        let wait_ns = insert_trace.attr_total(sc_obs::trace::Attr::CommitWaitNs);
        assert_eq!(
            wait_ns,
            insert_entry.queue_wait.as_nanos() as u64,
            "trace commit-wait attribution must match the logged queue wait"
        );
    }

    // --- /debug/traces: JSON list, slowest first, contains our trace.
    let (head, body) = http_get(metrics, "/debug/traces");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("application/json"));
    assert!(body.trim_start().starts_with('['));
    assert!(body.contains(&format!("\"trace_id\": \"{hex}\"")));
    assert!(body.contains("\"name\": \"server.execute\""));
    assert_eq!(body.matches('{').count(), body.matches('}').count());

    // --- /debug/traces/<id>: Chrome trace-event format with a
    // nonzero-duration child span.
    let (head, chrome) = http_get(metrics, &format!("/debug/traces/{hex}"));
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(chrome.trim_start().starts_with('['));
    assert!(chrome.trim_end().ends_with(']'));
    assert!(chrome.contains("\"ph\": \"X\""));
    assert!(chrome.contains(&format!("\"trace_id\": \"{hex}\"")));
    // At least one non-root event with a nonzero duration.
    let child_durs: Vec<f64> = chrome
        .lines()
        .skip(2) // '[' + root request event
        .filter_map(|l| l.split("\"dur\": ").nth(1))
        .filter_map(|rest| rest.split(',').next())
        .filter_map(|v| v.parse().ok())
        .collect();
    assert!(
        child_durs.iter().any(|&d| d > 0.0),
        "no nonzero-duration child span in {chrome}"
    );
    assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());

    // Unknown and malformed IDs 404 instead of panicking.
    let (head, _) = http_get(metrics, "/debug/traces/ffffffffffffffff");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    let (head, _) = http_get(metrics, "/debug/traces/not-hex");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    // --- Old-wire compatibility: a PR 6 Query frame (no trace field)
    // still executes, and its Rows reply has no trailing trace ID.
    let mut raw = TcpStream::connect(addr).unwrap();
    let hello = {
        let mut enc = sc_encoding::Encoder::new();
        enc.put_u8(0x01).put_str("tok-city");
        enc.into_bytes()
    };
    let query = {
        let mut enc = sc_encoding::Encoder::new();
        enc.put_u8(0x02).put_str("SELECT * FROM app.readings");
        enc.into_bytes()
    };
    for payload in [&hello, &query] {
        raw.write_all(&(payload.len() as u32).to_be_bytes())
            .unwrap();
        raw.write_all(payload).unwrap();
    }
    let read_frame = |stream: &mut TcpStream| -> Vec<u8> {
        let mut prefix = [0u8; 4];
        stream.read_exact(&mut prefix).unwrap();
        let mut payload = vec![0u8; u32::from_be_bytes(prefix) as usize];
        stream.read_exact(&mut payload).unwrap();
        payload
    };
    let hello_ok = read_frame(&mut raw);
    assert_eq!(hello_ok[0], 0x81, "HelloOk tag");
    let rows_payload = read_frame(&mut raw);
    assert_eq!(rows_payload[0], 0x82, "Rows tag");
    // A PR 6 decoder rejects trailing bytes, so byte-equality with the
    // trace-free encoding proves compatibility.
    let decoded = sc_server::Response::decode(&rows_payload).unwrap();
    match &decoded {
        sc_server::Response::Rows { rows, trace_id, .. } => {
            assert_eq!(rows.len(), ROWS as usize);
            assert_eq!(*trace_id, None, "untraced request must get no echo");
        }
        other => panic!("unexpected response {other:?}"),
    }
    assert_eq!(decoded.encode(), rows_payload);

    server.shutdown();
}
