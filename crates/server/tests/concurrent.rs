//! Concurrent multi-tenant integration: N client threads × M statements
//! against one server, interleaved across two tenants, checked against an
//! embedded-`Db` oracle, with tenant isolation asserted both ways.

use sc_nosql::{CqlValue, Db, OpenOptions, SharedDb};
use sc_server::client::Client;
use sc_server::{ErrorCode, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;

const CLIENTS_PER_TENANT: usize = 4; // 8 concurrent clients total
const ROWS_PER_CLIENT: i64 = 25;

fn setup_statements() -> Vec<String> {
    vec![
        "CREATE KEYSPACE app".to_string(),
        "CREATE TABLE app.readings (id int, station text, bikes int, PRIMARY KEY (id))".to_string(),
    ]
}

fn insert_statement(tenant: &str, client_idx: usize, i: i64) -> String {
    let id = client_idx as i64 * 1000 + i;
    format!(
        "INSERT INTO app.readings (id, station, bikes) VALUES ({id}, '{tenant} station {id}', {})",
        id % 37
    )
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

#[test]
fn eight_clients_two_tenants_match_embedded_oracle() {
    let db = SharedDb::open(OpenOptions::default()).unwrap();
    let server = Server::start(
        ServerConfig::default()
            .tenant("city1", "tok-city1")
            .tenant("city2", "tok-city2"),
        db,
    )
    .unwrap();
    let addr = server.addr();
    let tenants = [("city1", "tok-city1"), ("city2", "tok-city2")];

    // Schema per tenant (same logical keyspace name on both sides —
    // that's the point of namespace isolation).
    for (_, token) in tenants {
        let mut c = Client::connect(addr).unwrap();
        c.hello(token).unwrap();
        for stmt in setup_statements() {
            c.query(&stmt).unwrap();
        }
    }

    // 8 concurrent clients, interleaved across the two tenants.
    std::thread::scope(|scope| {
        for (tenant, token) in tenants {
            for client_idx in 0..CLIENTS_PER_TENANT {
                scope.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    assert_eq!(c.hello(token).unwrap(), tenant);
                    for i in 0..ROWS_PER_CLIENT {
                        c.query(&insert_statement(tenant, client_idx, i)).unwrap();
                    }
                });
            }
        }
    });

    // Embedded oracle: one fresh engine per tenant, same statements.
    for (tenant, token) in tenants {
        let mut oracle = Db::open(OpenOptions::default()).unwrap();
        for stmt in setup_statements() {
            oracle.execute_cql(&stmt).unwrap();
        }
        for client_idx in 0..CLIENTS_PER_TENANT {
            for i in 0..ROWS_PER_CLIENT {
                oracle
                    .execute_cql(&insert_statement(tenant, client_idx, i))
                    .unwrap();
            }
        }
        let expected = oracle
            .execute_cql("SELECT id, station, bikes FROM app.readings")
            .unwrap();

        let mut c = Client::connect(addr).unwrap();
        c.hello(token).unwrap();
        let got = c
            .query("SELECT id, station, bikes FROM app.readings")
            .unwrap();
        assert_eq!(
            got.len(),
            (CLIENTS_PER_TENANT as i64 * ROWS_PER_CLIENT) as usize,
            "{tenant}: row count"
        );
        let values = |r: &sc_nosql::QueryResult| -> Vec<Vec<CqlValue>> {
            r.iter().map(|row| row.values().to_vec()).collect()
        };
        assert_eq!(
            values(&got),
            values(&expected),
            "{tenant} diverged from oracle"
        );

        // Point reads through the server match the oracle too.
        let probe = c
            .query("SELECT station FROM app.readings WHERE id = 1003")
            .unwrap();
        assert_eq!(
            probe.first().unwrap().get_text("station").unwrap(),
            format!("{tenant} station 1003")
        );
    }

    // Isolation, direction 1: each tenant sees only its own rows in the
    // *same-named* keyspace (the station text embeds the tenant name).
    for (tenant, token) in tenants {
        let mut c = Client::connect(addr).unwrap();
        c.hello(token).unwrap();
        let rows = c.query("SELECT station FROM app.readings").unwrap();
        for row in &rows {
            let station = row.get_text("station").unwrap();
            assert!(
                station.starts_with(tenant),
                "tenant {tenant} saw foreign row {station:?}"
            );
        }
    }

    // Isolation, direction 2: a keyspace created by one tenant does not
    // exist for the other — and the error does not leak the physical
    // (prefixed) name.
    {
        let mut c1 = Client::connect(addr).unwrap();
        c1.hello("tok-city1").unwrap();
        c1.query("CREATE KEYSPACE private1").unwrap();
        let mut c2 = Client::connect(addr).unwrap();
        c2.hello("tok-city2").unwrap();
        let err = c2.query("SELECT * FROM private1.anything").unwrap_err();
        match err {
            sc_server::ClientError::Server { code, message } => {
                assert_eq!(code, ErrorCode::NotFound);
                assert!(
                    !message.contains("city1__") && !message.contains("city2__"),
                    "physical prefix leaked: {message}"
                );
            }
            other => panic!("expected a typed NotFound, got {other}"),
        }
    }

    // The metrics port serves Prometheus text containing server.* series.
    let scrape = http_get(server.metrics_addr(), "/metrics");
    assert!(scrape.starts_with("HTTP/1.1 200"), "{scrape}");
    assert!(
        scrape.contains("# TYPE server_requests counter"),
        "{scrape}"
    );
    assert!(scrape.contains("server_connections"), "{scrape}");
    assert!(scrape.contains("server_bytes_in"), "{scrape}");
    assert!(
        scrape.contains("server_request_duration_ns_bucket"),
        "{scrape}"
    );

    server.shutdown();
}
