//! Malformed-frame sweep: the server must answer hostile or broken bytes
//! with a typed error or a dropped connection — never a panic, never a
//! leaked session thread. After every abuse case a well-behaved client
//! verifies the server is still serving.

use sc_server::client::Client;
use sc_server::frame::{read_frame, write_frame, DEFAULT_MAX_FRAME_BYTES};
use sc_server::protocol::{ErrorCode, Response};
use sc_server::{ClientError, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn start_server() -> Server {
    let db = sc_nosql::SharedDb::open(sc_nosql::OpenOptions::default()).unwrap();
    Server::start(ServerConfig::default().tenant("t1", "tok-1"), db).unwrap()
}

/// Reads one response frame with a deadline so a buggy server can't hang
/// the test.
fn read_response(stream: &mut TcpStream) -> Option<Response> {
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let payload = read_frame(stream, DEFAULT_MAX_FRAME_BYTES).ok()??;
    Some(Response::decode(&payload).unwrap())
}

/// Asserts the server closed its end: the next read returns EOF (or a
/// reset, which some platforms surface instead).
fn assert_closed(stream: &mut TcpStream) {
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut byte = [0u8; 1];
    match stream.read(&mut byte) {
        Ok(0) => {}
        Ok(n) => panic!("expected closed connection, read {n} extra bytes"),
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
        Err(e) => panic!("expected clean EOF, got {e}"),
    }
}

/// A healthy client still gets full service after each abuse case.
fn assert_still_serving(addr: SocketAddr) {
    let mut c = Client::connect(addr).unwrap();
    c.hello("tok-1").unwrap();
    c.ping().unwrap();
}

#[test]
fn truncated_length_prefix_then_disconnect() {
    let server = start_server();
    {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(&[0x00, 0x01]).unwrap(); // 2 of 4 prefix bytes
                                             // Drop mid-prefix: the session must treat this as a dead peer.
    }
    assert_still_serving(server.addr());
    server.shutdown();
}

#[test]
fn oversized_declared_length_gets_typed_error_and_close() {
    let server = start_server();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    // Declare a 2 GiB payload; the server must refuse before allocating.
    s.write_all(&0x7FFF_FFFFu32.to_be_bytes()).unwrap();
    s.write_all(b"abc").unwrap();
    match read_response(&mut s).expect("typed error before close") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected protocol error, got {other:?}"),
    }
    assert_closed(&mut s);
    assert_still_serving(server.addr());
    server.shutdown();
}

#[test]
fn garbage_payload_gets_typed_error_and_close() {
    let server = start_server();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    // Well-formed frame, nonsense payload (0x77 is not a request tag).
    write_frame(&mut s, &[0x77; 16]).unwrap();
    match read_response(&mut s).expect("typed error before close") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected protocol error, got {other:?}"),
    }
    assert_closed(&mut s);
    assert_still_serving(server.addr());
    server.shutdown();
}

#[test]
fn valid_tag_truncated_body_gets_typed_error_and_close() {
    let server = start_server();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    // Query tag, then a varint promising more bytes than the frame holds.
    write_frame(&mut s, &[0x02, 0x20, b'S', b'E']).unwrap();
    match read_response(&mut s).expect("typed error before close") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected protocol error, got {other:?}"),
    }
    assert_closed(&mut s);
    assert_still_serving(server.addr());
    server.shutdown();
}

#[test]
fn mid_frame_disconnect_does_not_leak_sessions() {
    let server = start_server();
    for _ in 0..4 {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        // Promise 100 payload bytes, deliver 10, vanish.
        s.write_all(&100u32.to_be_bytes()).unwrap();
        s.write_all(&[0xAB; 10]).unwrap();
        drop(s);
    }
    assert_still_serving(server.addr());
    // Give the sessions a few poll intervals to observe the dead peers.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.active_sessions() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        server.active_sessions(),
        0,
        "abandoned connections leaked session threads"
    );
    server.shutdown();
}

#[test]
fn wrong_token_is_auth_error_and_close() {
    let server = start_server();
    let mut c = Client::connect(server.addr()).unwrap();
    match c.hello("not-a-token").unwrap_err() {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::Auth),
        other => panic!("expected auth error, got {other}"),
    }
    // Failed auth drops the connection: no token enumeration on one socket.
    match c.ping().unwrap_err() {
        ClientError::Io(_) => {}
        other => panic!("expected closed connection, got {other}"),
    }
    assert_still_serving(server.addr());
    server.shutdown();
}

#[test]
fn query_before_hello_is_auth_error_but_connection_survives() {
    let server = start_server();
    let mut c = Client::connect(server.addr()).unwrap();
    match c.query("SELECT * FROM app.t").unwrap_err() {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::Auth),
        other => panic!("expected auth error, got {other}"),
    }
    // Unlike a bad token, a premature query leaves the session usable.
    c.hello("tok-1").unwrap();
    c.ping().unwrap();
    server.shutdown();
}

#[test]
fn shutdown_drains_idle_sessions_and_joins_all_threads() {
    let server = start_server();
    let addr = server.addr();
    let mut idle = Client::connect(addr).unwrap();
    idle.hello("tok-1").unwrap();
    idle.ping().unwrap();

    server.shutdown(); // must not hang on the idle session

    // The drained session told the idle client it was going away.
    match idle.ping().unwrap_err() {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::ShuttingDown),
        // The error frame races the close; a dropped connection is also
        // an acceptable way to learn the server is gone.
        ClientError::Io(_) => {}
        other => panic!("unexpected post-shutdown failure: {other}"),
    }
    assert!(TcpStream::connect(addr).map_or(true, |mut s| {
        // Even if the OS backlog accepts the connect, nobody serves it.
        s.set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let mut b = [0u8; 1];
        !matches!(s.read(&mut b), Ok(n) if n > 0)
    }));
}

#[test]
fn slow_query_log_records_over_threshold_statements() {
    let db = sc_nosql::SharedDb::open(sc_nosql::OpenOptions::default()).unwrap();
    let server = Server::start(
        ServerConfig::default()
            .tenant("t1", "tok-1")
            .slow_query_threshold(Duration::ZERO), // everything is "slow"
        db,
    )
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    c.hello("tok-1").unwrap();
    c.query("CREATE KEYSPACE app").unwrap();
    c.query("CREATE TABLE app.t (id int, v text, PRIMARY KEY (id))")
        .unwrap();
    c.query("INSERT INTO app.t (id, v) VALUES (1, 'x')")
        .unwrap();

    assert_eq!(server.slow_queries_recorded(), 3);
    let entries = server.slow_queries();
    assert_eq!(entries.len(), 3);
    assert!(entries.iter().all(|e| e.tenant == "t1"));
    // The log shows the tenant's own CQL, not the rewritten physical form.
    assert!(entries[0].cql.contains("CREATE KEYSPACE app"));
    assert!(!entries[0].cql.contains("t1__"));
    server.shutdown();
}
