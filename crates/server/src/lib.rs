//! # sc-server
//!
//! The network front door that turns the embedded NoSQL engine into a
//! multi-tenant service (ROADMAP item 2). Everything is `std`-only —
//! plain blocking TCP with thread-per-session — modelled on the shape of
//! DriftDB's `driftdb-server` (protocol + auth, metrics port, slow-query
//! log) scaled down to this workspace's zero-dependency rules.
//!
//! Two ports:
//!
//! * **CQL protocol port** — a length-framed request/response protocol
//!   ([`frame`], [`protocol`]) carrying CQL statements. Each connection
//!   authenticates with a tenant token ([`tenant`]); every statement is
//!   then confined to the tenant's keyspace namespace by rewriting
//!   keyspace references to `{tenant}__{keyspace}` after parsing, so
//!   cross-tenant reads are structurally impossible.
//! * **metrics HTTP port** — `GET /metrics` renders the global `sc-obs`
//!   registry as Prometheus text (`server.*` series included),
//!   `GET /healthz` answers `ok`/`draining`.
//!
//! Sessions share one engine behind [`sc_nosql::SharedDb`] — a coarse
//! mutex for now; MVCC snapshots are the engine roadmap's next step and
//! will slot in under this same server. Statements slower than a
//! configurable threshold land in a ring-buffered slow-query log
//! ([`slowlog`]). Shutdown drains: in-flight requests finish, then every
//! session and listener thread is joined.
//!
//! ```no_run
//! use sc_nosql::{OpenOptions, SharedDb};
//! use sc_server::{Server, ServerConfig};
//! use sc_server::client::Client;
//!
//! let db = SharedDb::open(OpenOptions::default()).unwrap();
//! let config = ServerConfig::default().tenant("city1", "tok-city1");
//! let server = Server::start(config, db).unwrap();
//!
//! let mut client = Client::connect(server.addr()).unwrap();
//! client.hello("tok-city1").unwrap();
//! client.query("CREATE KEYSPACE app").unwrap();
//! client.query("CREATE TABLE app.t (id int, v text, PRIMARY KEY (id))").unwrap();
//! client.query("INSERT INTO app.t (id, v) VALUES (1, 'hello')").unwrap();
//! let rows = client.query("SELECT v FROM app.t WHERE id = 1").unwrap();
//! assert_eq!(rows.first().unwrap().get_text("v").unwrap(), "hello");
//!
//! server.shutdown();
//! ```

pub mod client;
pub mod frame;
mod http;
mod obs;
pub mod protocol;
pub mod server;
mod session;
pub mod slowlog;
pub mod tenant;

pub use client::{Client, ClientError};
pub use protocol::{ErrorCode, Request, Response};
pub use server::{Server, ServerConfig, ServerError};
pub use slowlog::{SlowQuery, SlowQueryLog};
pub use tenant::{TenantError, TenantMap};
