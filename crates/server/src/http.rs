//! Minimal HTTP/1.1 exposition endpoint.
//!
//! A second listener serves a few read-only routes:
//!
//! * `GET /metrics` — the global `sc-obs` registry rendered by
//!   [`sc_obs::RegistrySnapshot::to_prometheus_text`] (text format
//!   `version=0.0.4`, the format every Prometheus scraper ingests),
//! * `GET /healthz` — `ok` while the server is up, `503 draining` once
//!   shutdown has begun,
//! * `GET /debug/traces` — the tail sampler's retained request traces as
//!   a JSON array (slowest first), and
//! * `GET /debug/traces/<trace_id>` — one trace in Chrome trace-event
//!   format: save the body and load it in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev) to see the request's flame
//!   graph. `<trace_id>` is the 16-hex-digit ID from the JSON list, the
//!   slow-query log, or a traced client.
//!
//! Requests are parsed just enough to route (request line + headers are
//! read and discarded, bounded at 8 KiB); every response closes the
//! connection. This is deliberately not a web framework — it is a port
//! for scrapers.

use crate::obs::server as obs;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Accept loop for the metrics port. Runs until `shutdown` is set.
pub(crate) fn run_http_loop(listener: TcpListener, shutdown: Arc<AtomicBool>, poll: Duration) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking metrics listener");
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // Scrapes are answered inline: they are cheap (one
                // snapshot + one write) and serializing them keeps the
                // thread count fixed.
                let _ = serve_one(stream, &shutdown);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(poll),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(poll),
        }
    }
}

fn serve_one(mut stream: TcpStream, shutdown: &AtomicBool) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    // Read until the header terminator; tolerate request bodies by simply
    // not reading them (both routes are GETs).
    loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let request_line = buf
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(&[]);
    let request_line = String::from_utf8_lossy(request_line);
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => {
            obs().metrics_scrapes.inc();
            let text = sc_obs::Registry::global().snapshot().to_prometheus_text();
            ("200 OK", "text/plain; version=0.0.4; charset=utf-8", text)
        }
        ("GET", "/healthz") => {
            if shutdown.load(Ordering::SeqCst) {
                (
                    "503 Service Unavailable",
                    "text/plain; charset=utf-8",
                    "draining\n".into(),
                )
            } else {
                ("200 OK", "text/plain; charset=utf-8", "ok\n".into())
            }
        }
        ("GET", "/debug/traces") => {
            let sampler = sc_obs::TailSampler::global();
            let traces = sampler.traces();
            let mut body = String::from("[");
            for (i, t) in traces.iter().enumerate() {
                if i > 0 {
                    body.push_str(",\n ");
                }
                body.push_str(&t.to_json());
            }
            body.push_str("]\n");
            ("200 OK", "application/json; charset=utf-8", body)
        }
        ("GET", p) if p.strip_prefix("/debug/traces/").is_some() => {
            let id = p.strip_prefix("/debug/traces/").unwrap_or("");
            match sc_obs::trace::parse_trace_id(id)
                .and_then(|id| sc_obs::TailSampler::global().find(id))
            {
                Some(t) => (
                    "200 OK",
                    "application/json; charset=utf-8",
                    t.to_chrome_trace(),
                ),
                None => (
                    "404 Not Found",
                    "text/plain; charset=utf-8",
                    "no such trace (expired from the sampler, or never retained)\n".into(),
                ),
            }
        }
        ("GET", _) => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".into(),
        ),
        _ => (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".into(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}
