//! Tenant registry and keyspace confinement.
//!
//! Every authenticated connection belongs to one tenant, and every
//! statement the connection submits is rewritten so that each keyspace
//! reference `ks` becomes `{tenant}__{ks}` before it reaches the engine.
//! Confinement is therefore structural: a tenant cannot *name* another
//! tenant's keyspace, because the prefix is applied after parsing, to
//! every keyspace position of every statement shape (including the
//! statements nested in a `BEGIN BATCH`).
//!
//! Tenant names are restricted to ASCII alphanumerics. That makes the
//! `{tenant}__{ks}` mapping injective: the physical name's first `__`
//! unambiguously separates tenant from keyspace (a tenant name can never
//! contain or end in an underscore), so two distinct tenants can never
//! collide on a physical keyspace no matter which keyspace names they
//! choose.

use sc_nosql::Statement;
use std::collections::HashMap;

/// Token → tenant lookup table, built from [`crate::ServerConfig`].
#[derive(Debug, Default, Clone)]
pub struct TenantMap {
    by_token: HashMap<String, String>,
}

/// Rejected tenant registration.
#[derive(Debug, PartialEq, Eq)]
pub enum TenantError {
    /// Tenant names must be non-empty ASCII alphanumerics.
    BadName(String),
    /// Tokens must be non-empty.
    EmptyToken,
    /// The token is already registered (possibly for another tenant).
    DuplicateToken,
}

impl std::fmt::Display for TenantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantError::BadName(n) => write!(
                f,
                "tenant name {n:?} must be non-empty ASCII alphanumeric ([A-Za-z0-9]+)"
            ),
            TenantError::EmptyToken => write!(f, "auth tokens must be non-empty"),
            TenantError::DuplicateToken => write!(f, "auth token already registered"),
        }
    }
}

impl std::error::Error for TenantError {}

impl TenantMap {
    /// An empty map (every handshake fails).
    pub fn new() -> TenantMap {
        TenantMap::default()
    }

    /// Registers `token` as authenticating `tenant`. Several tokens may
    /// map to the same tenant (credential rotation); one token never maps
    /// to two tenants.
    pub fn register(&mut self, tenant: &str, token: &str) -> Result<(), TenantError> {
        if tenant.is_empty() || !tenant.bytes().all(|b| b.is_ascii_alphanumeric()) {
            return Err(TenantError::BadName(tenant.to_string()));
        }
        if token.is_empty() {
            return Err(TenantError::EmptyToken);
        }
        if self.by_token.contains_key(token) {
            return Err(TenantError::DuplicateToken);
        }
        self.by_token.insert(token.to_string(), tenant.to_string());
        Ok(())
    }

    /// The tenant a token authenticates, if any. Comparison is
    /// whole-token equality; there is no prefix matching.
    pub fn authenticate(&self, token: &str) -> Option<&str> {
        self.by_token.get(token).map(String::as_str)
    }

    /// Number of registered tokens.
    pub fn len(&self) -> usize {
        self.by_token.len()
    }

    /// Whether no token is registered.
    pub fn is_empty(&self) -> bool {
        self.by_token.is_empty()
    }
}

/// The physical keyspace name backing `keyspace` for `tenant`.
pub fn physical_keyspace(tenant: &str, keyspace: &str) -> String {
    format!("{tenant}__{keyspace}")
}

/// Rewrites every keyspace reference in `stmt` into the tenant's
/// namespace. Applied after parsing and before execution — there is no
/// code path from a session's CQL text to the engine that skips this.
pub fn confine_statement(stmt: &mut Statement, tenant: &str) {
    match stmt {
        Statement::CreateKeyspace { name } => {
            *name = physical_keyspace(tenant, name);
        }
        Statement::Use { keyspace } => {
            *keyspace = physical_keyspace(tenant, keyspace);
        }
        Statement::CreateTable { table, .. }
        | Statement::CreateIndex { table, .. }
        | Statement::Insert { table, .. }
        | Statement::Select { table, .. }
        | Statement::Update { table, .. }
        | Statement::Delete { table, .. }
        | Statement::Truncate { table } => {
            // Unqualified references stay unqualified: the engine session
            // resolves them against the tenant's (already confined) USE
            // keyspace, so they can never escape the namespace either.
            if table.is_qualified() {
                table.keyspace = physical_keyspace(tenant, &table.keyspace);
            }
        }
        Statement::Batch { statements } => {
            for s in statements {
                confine_statement(s, tenant);
            }
        }
        Statement::Explain { statement } => {
            confine_statement(statement, tenant);
        }
    }
}

/// Strips the tenant's physical prefix from an engine error message so
/// responses talk about the keyspace names the tenant actually used (and
/// never reveal the prefixing scheme).
pub fn scrub_message(message: &str, tenant: &str) -> String {
    message.replace(&format!("{tenant}__"), "")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_nosql::parse_statement;

    #[test]
    fn register_validates_names_and_tokens() {
        let mut map = TenantMap::new();
        map.register("city1", "tok-a").unwrap();
        // Same tenant, second token: fine. Same token again: rejected.
        map.register("city1", "tok-b").unwrap();
        assert_eq!(
            map.register("city2", "tok-a"),
            Err(TenantError::DuplicateToken)
        );
        assert!(matches!(
            map.register("bad__name", "t"),
            Err(TenantError::BadName(_))
        ));
        assert!(matches!(
            map.register("bad_name", "t"),
            Err(TenantError::BadName(_))
        ));
        assert!(matches!(
            map.register("", "t"),
            Err(TenantError::BadName(_))
        ));
        assert_eq!(map.register("ok", ""), Err(TenantError::EmptyToken));
        assert_eq!(map.authenticate("tok-a"), Some("city1"));
        assert_eq!(map.authenticate("tok-b"), Some("city1"));
        assert_eq!(map.authenticate("tok-c"), None);
        assert_eq!(map.authenticate("tok"), None, "no prefix matching");
    }

    #[test]
    fn confinement_rewrites_every_statement_shape() {
        let cases = [
            ("CREATE KEYSPACE app", "CREATE KEYSPACE t1__app"),
            (
                "CREATE TABLE app.t (id int, PRIMARY KEY (id))",
                "CREATE TABLE t1__app.t (id int, PRIMARY KEY (id))",
            ),
            (
                "CREATE INDEX ON app.t (id)",
                "CREATE INDEX ON t1__app.t (id)",
            ),
            (
                "INSERT INTO app.t (id) VALUES (1)",
                "INSERT INTO t1__app.t (id) VALUES (1)",
            ),
            ("SELECT * FROM app.t", "SELECT * FROM t1__app.t"),
            (
                "UPDATE app.t SET v = 1 WHERE id = 2",
                "UPDATE t1__app.t SET v = 1 WHERE id = 2",
            ),
            (
                "DELETE FROM app.t WHERE id = 1",
                "DELETE FROM t1__app.t WHERE id = 1",
            ),
            ("TRUNCATE app.t", "TRUNCATE t1__app.t"),
            ("USE app", "USE t1__app"),
        ];
        for (input, expected) in cases {
            let mut stmt = parse_statement(input).unwrap();
            confine_statement(&mut stmt, "t1");
            let expected_stmt = parse_statement(expected).unwrap();
            assert_eq!(stmt, expected_stmt, "confining {input:?}");
        }
    }

    #[test]
    fn confinement_leaves_unqualified_references_to_the_session() {
        let mut stmt = parse_statement("SELECT * FROM t").unwrap();
        confine_statement(&mut stmt, "t1");
        assert_eq!(stmt, parse_statement("SELECT * FROM t").unwrap());
    }

    #[test]
    fn confinement_recurses_into_batches() {
        let mut stmt = parse_statement(
            "BEGIN BATCH INSERT INTO a.t (id) VALUES (1); DELETE FROM b.t WHERE id = 2; APPLY BATCH",
        )
        .unwrap();
        confine_statement(&mut stmt, "t9");
        let cql = stmt.to_cql();
        assert!(cql.contains("t9__a.t"), "{cql}");
        assert!(cql.contains("t9__b.t"), "{cql}");
    }

    #[test]
    fn alphanumeric_tenants_cannot_collide() {
        // The classic ambiguity needs an underscore in a tenant name
        // ("a_" + "b" vs "a" + "_b"); alphanumeric-only names exclude it.
        assert_ne!(
            physical_keyspace("ab", "c"),
            physical_keyspace("a", "bc"),
            "distinct tenants map to distinct physical names"
        );
        assert_eq!(physical_keyspace("t1", "app"), "t1__app");
    }

    #[test]
    fn scrub_hides_the_physical_prefix() {
        assert_eq!(
            scrub_message("unknown keyspace \"t1__app\"", "t1"),
            "unknown keyspace \"app\""
        );
    }
}
