//! Wire messages carried inside [`crate::frame`] frames.
//!
//! Payload layout: one tag byte, then `sc-encoding` varint-prefixed
//! fields. Requests use tags `0x01..=0x03`, responses `0x81..=0x83` plus
//! `0xFF` for errors, so a stray response byte can never decode as a
//! request. Result rows reuse [`CqlValue::encode`] — the same tagged value
//! encoding the storage engine itself uses — so the wire format inherits
//! the engine's tested value codec.

use sc_encoding::{DecodeError, Decoder, Encoder};
use sc_nosql::CqlValue;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Auth handshake; must be the first request on a connection.
    Hello {
        /// The tenant's secret token.
        token: String,
    },
    /// One CQL statement, executed inside the tenant's keyspace namespace.
    Query {
        /// CQL text.
        cql: String,
        /// Optional client-supplied trace ID (`None` → the server mints
        /// one). Encoded as a trailing field so PR 6 clients — whose
        /// frames simply omit it — still decode; see DESIGN.md §8.
        trace_id: Option<u64>,
    },
    /// Liveness probe (allowed before authentication).
    Ping,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Successful handshake.
    HelloOk {
        /// The tenant name the token mapped to.
        tenant: String,
    },
    /// A statement's result. Mutations and DDL return zero columns and
    /// zero rows.
    Rows {
        /// Column names, in order.
        columns: Vec<String>,
        /// Positional rows, aligned with `columns`.
        rows: Vec<Vec<CqlValue>>,
        /// The trace ID the statement ran under. Echoed (as a trailing
        /// field) **only when the request carried one**: old clients
        /// reject trailing bytes, and old clients never send trace IDs,
        /// so the pair stays wire-compatible in both directions.
        trace_id: Option<u64>,
    },
    /// Liveness reply.
    Pong,
    /// Anything that went wrong. The connection stays open after
    /// statement-level errors; protocol-level errors are followed by a
    /// server-side close.
    Error {
        /// Machine-readable classification.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Classification of a server-reported failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Bad token, or a query before the handshake.
    Auth,
    /// Malformed frame or undecodable message; the server closes the
    /// connection after sending this.
    Protocol,
    /// The CQL text did not parse.
    Parse,
    /// The statement referenced a keyspace/table/column that does not
    /// exist in the tenant's namespace.
    NotFound,
    /// The engine cannot serve the statement (unsupported WHERE shape,
    /// type mismatch, ...).
    Invalid,
    /// Engine-internal failure (storage, corruption).
    Internal,
    /// The server is draining connections for shutdown.
    ShuttingDown,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::Auth => 1,
            ErrorCode::Protocol => 2,
            ErrorCode::Parse => 3,
            ErrorCode::NotFound => 4,
            ErrorCode::Invalid => 5,
            ErrorCode::Internal => 6,
            ErrorCode::ShuttingDown => 7,
        }
    }

    fn from_byte(b: u8) -> Result<ErrorCode, DecodeError> {
        Ok(match b {
            1 => ErrorCode::Auth,
            2 => ErrorCode::Protocol,
            3 => ErrorCode::Parse,
            4 => ErrorCode::NotFound,
            5 => ErrorCode::Invalid,
            6 => ErrorCode::Internal,
            7 => ErrorCode::ShuttingDown,
            tag => {
                return Err(DecodeError::BadTag {
                    tag,
                    context: "ErrorCode",
                })
            }
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::Auth => "auth",
            ErrorCode::Protocol => "protocol",
            ErrorCode::Parse => "parse",
            ErrorCode::NotFound => "not-found",
            ErrorCode::Invalid => "invalid",
            ErrorCode::Internal => "internal",
            ErrorCode::ShuttingDown => "shutting-down",
        };
        f.write_str(s)
    }
}

const TAG_HELLO: u8 = 0x01;
const TAG_QUERY: u8 = 0x02;
const TAG_PING: u8 = 0x03;
const TAG_HELLO_OK: u8 = 0x81;
const TAG_ROWS: u8 = 0x82;
const TAG_PONG: u8 = 0x83;
const TAG_ERROR: u8 = 0xFF;

impl Request {
    /// Encodes the request as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            Request::Hello { token } => {
                enc.put_u8(TAG_HELLO).put_str(token);
            }
            Request::Query { cql, trace_id } => {
                enc.put_u8(TAG_QUERY).put_str(cql);
                if let Some(id) = trace_id {
                    enc.put_u64(*id);
                }
            }
            Request::Ping => {
                enc.put_u8(TAG_PING);
            }
        }
        enc.into_bytes()
    }

    /// Decodes a frame payload. Trailing garbage after a well-formed
    /// message is rejected — a frame carries exactly one message.
    pub fn decode(payload: &[u8]) -> Result<Request, DecodeError> {
        let mut dec = Decoder::new(payload);
        let req = match dec.get_u8()? {
            TAG_HELLO => Request::Hello {
                token: dec.get_str()?.to_string(),
            },
            TAG_QUERY => {
                let cql = dec.get_str()?.to_string();
                // Optional trailing field (absent in PR 6 frames).
                let trace_id = if dec.is_exhausted() {
                    None
                } else {
                    Some(dec.get_u64()?)
                };
                Request::Query { cql, trace_id }
            }
            TAG_PING => Request::Ping,
            tag => {
                return Err(DecodeError::BadTag {
                    tag,
                    context: "Request",
                })
            }
        };
        if !dec.is_exhausted() {
            return Err(DecodeError::BadTag {
                tag: 0,
                context: "Request trailing bytes",
            });
        }
        Ok(req)
    }
}

impl Response {
    /// Encodes the response as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            Response::HelloOk { tenant } => {
                enc.put_u8(TAG_HELLO_OK).put_str(tenant);
            }
            Response::Rows {
                columns,
                rows,
                trace_id,
            } => {
                enc.put_u8(TAG_ROWS).put_u64(columns.len() as u64);
                for c in columns {
                    enc.put_str(c);
                }
                enc.put_u64(rows.len() as u64);
                for row in rows {
                    for v in row {
                        v.encode(&mut enc);
                    }
                }
                if let Some(id) = trace_id {
                    enc.put_u64(*id);
                }
            }
            Response::Pong => {
                enc.put_u8(TAG_PONG);
            }
            Response::Error { code, message } => {
                enc.put_u8(TAG_ERROR)
                    .put_u8(code.to_byte())
                    .put_str(message);
            }
        }
        enc.into_bytes()
    }

    /// Decodes a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, DecodeError> {
        let mut dec = Decoder::new(payload);
        let resp = match dec.get_u8()? {
            TAG_HELLO_OK => Response::HelloOk {
                tenant: dec.get_str()?.to_string(),
            },
            TAG_ROWS => {
                let ncols = dec.get_u64()? as usize;
                let mut columns = Vec::with_capacity(ncols.min(1024));
                for _ in 0..ncols {
                    columns.push(dec.get_str()?.to_string());
                }
                let nrows = dec.get_u64()? as usize;
                let mut rows = Vec::with_capacity(nrows.min(1024));
                for _ in 0..nrows {
                    let mut row = Vec::with_capacity(ncols);
                    for _ in 0..ncols {
                        row.push(CqlValue::decode(&mut dec)?);
                    }
                    rows.push(row);
                }
                // Optional trailing field (absent in PR 6 frames and in
                // replies to untraced requests).
                let trace_id = if dec.is_exhausted() {
                    None
                } else {
                    Some(dec.get_u64()?)
                };
                Response::Rows {
                    columns,
                    rows,
                    trace_id,
                }
            }
            TAG_PONG => Response::Pong,
            TAG_ERROR => Response::Error {
                code: ErrorCode::from_byte(dec.get_u8()?)?,
                message: dec.get_str()?.to_string(),
            },
            tag => {
                return Err(DecodeError::BadTag {
                    tag,
                    context: "Response",
                })
            }
        };
        if !dec.is_exhausted() {
            return Err(DecodeError::BadTag {
                tag: 0,
                context: "Response trailing bytes",
            });
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        for req in [
            Request::Hello {
                token: "s3cret".into(),
            },
            Request::Query {
                cql: "SELECT * FROM ks.t".into(),
                trace_id: None,
            },
            Request::Query {
                cql: "SELECT * FROM ks.t".into(),
                trace_id: Some(0xDEAD_BEEF_CAFE_F00D),
            },
            Request::Ping,
        ] {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn trace_id_field_is_wire_compatible_with_pr6_frames() {
        // A PR 6 client's Query frame is exactly tag + cql — no trailing
        // field. It must decode as an untraced query.
        let mut old = Encoder::new();
        old.put_u8(TAG_QUERY).put_str("SELECT * FROM ks.t");
        assert_eq!(
            Request::decode(&old.into_bytes()).unwrap(),
            Request::Query {
                cql: "SELECT * FROM ks.t".into(),
                trace_id: None,
            }
        );
        // An untraced query encodes byte-identically to the PR 6 layout,
        // so a new client talking to an old server stays decodable.
        let new = Request::Query {
            cql: "SELECT * FROM ks.t".into(),
            trace_id: None,
        }
        .encode();
        let mut old = Encoder::new();
        old.put_u8(TAG_QUERY).put_str("SELECT * FROM ks.t");
        assert_eq!(new, old.into_bytes());
        // Same in the response direction: Rows without a trace ID is the
        // PR 6 byte layout.
        let new = Response::Rows {
            columns: Vec::new(),
            rows: Vec::new(),
            trace_id: None,
        }
        .encode();
        let mut old = Encoder::new();
        old.put_u8(TAG_ROWS).put_u64(0).put_u64(0);
        assert_eq!(new, old.into_bytes());
    }

    #[test]
    fn response_roundtrip() {
        for resp in [
            Response::HelloOk {
                tenant: "city".into(),
            },
            Response::Rows {
                columns: vec!["id".into(), "key".into()],
                rows: vec![
                    vec![CqlValue::Int(1), CqlValue::Text("Fenian St".into())],
                    vec![CqlValue::Int(2), CqlValue::Null],
                ],
                trace_id: None,
            },
            Response::Rows {
                columns: Vec::new(),
                rows: Vec::new(),
                trace_id: Some(42),
            },
            Response::Pong,
            Response::Error {
                code: ErrorCode::Parse,
                message: "nope".into(),
            },
        ] {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn garbage_and_trailing_bytes_are_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0x77, 1, 2, 3]).is_err());
        assert!(Response::decode(&[0x42]).is_err());
        let mut ok = Request::Ping.encode();
        ok.push(0);
        assert!(Request::decode(&ok).is_err());
    }

    #[test]
    fn every_error_code_roundtrips() {
        for code in [
            ErrorCode::Auth,
            ErrorCode::Protocol,
            ErrorCode::Parse,
            ErrorCode::NotFound,
            ErrorCode::Invalid,
            ErrorCode::Internal,
            ErrorCode::ShuttingDown,
        ] {
            let resp = Response::Error {
                code,
                message: code.to_string(),
            };
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }
}
