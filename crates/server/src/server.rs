//! The server: configuration, listener threads, graceful shutdown.

use crate::http::run_http_loop;
use crate::session::{run_session, SessionContext};
use crate::slowlog::{SlowQuery, SlowQueryLog};
use crate::tenant::{TenantError, TenantMap};
use sc_nosql::SharedDb;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server construction options.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// CQL protocol bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Metrics/health HTTP bind address; port 0 picks an ephemeral port.
    pub metrics_addr: String,
    /// `(tenant, token)` pairs; see [`TenantMap::register`].
    pub tenants: Vec<(String, String)>,
    /// Statements slower than this land in the slow-query log.
    pub slow_query_threshold: Duration,
    /// Slow-query ring capacity.
    pub slow_query_capacity: usize,
    /// Ceiling on a request frame's declared payload length.
    pub max_frame_bytes: usize,
    /// Socket read timeout; bounds how long shutdown waits for an idle
    /// session to notice the drain flag.
    pub idle_poll: Duration,
    /// Whether request tracing is on (`sc_obs::set_trace_enabled`):
    /// every statement builds a span tree and is offered to the global
    /// tail sampler, readable at `GET /debug/traces`.
    pub tracing: bool,
    /// Tail-sampler retention: keep the slowest `trace_slowest` traces
    /// per statement kind.
    pub trace_slowest: usize,
    /// Tail-sampler retention: additionally keep 1 in
    /// `trace_sample_one_in` traces per statement kind (0 disables the
    /// systematic sample; 1 keeps everything up to the ring bound).
    pub trace_sample_one_in: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            metrics_addr: "127.0.0.1:0".into(),
            tenants: Vec::new(),
            slow_query_threshold: Duration::from_millis(100),
            slow_query_capacity: 128,
            max_frame_bytes: crate::frame::DEFAULT_MAX_FRAME_BYTES,
            idle_poll: Duration::from_millis(25),
            tracing: true,
            trace_slowest: 8,
            trace_sample_one_in: 64,
        }
    }
}

impl ServerConfig {
    /// Registers a tenant/token pair (builder style).
    pub fn tenant(mut self, tenant: &str, token: &str) -> ServerConfig {
        self.tenants.push((tenant.to_string(), token.to_string()));
        self
    }

    /// Sets the slow-query threshold (builder style).
    pub fn slow_query_threshold(mut self, threshold: Duration) -> ServerConfig {
        self.slow_query_threshold = threshold;
        self
    }

    /// Enables or disables request tracing (builder style).
    pub fn tracing(mut self, on: bool) -> ServerConfig {
        self.tracing = on;
        self
    }

    /// Sets the tail-sampler retention policy (builder style): keep the
    /// slowest `k` plus 1-in-`one_in` traces per statement kind.
    pub fn trace_policy(mut self, k: usize, one_in: u64) -> ServerConfig {
        self.trace_slowest = k;
        self.trace_sample_one_in = one_in;
        self
    }
}

/// Failure to start the server.
#[derive(Debug)]
pub enum ServerError {
    /// A listener could not bind.
    Io(io::Error),
    /// Tenant registration was rejected.
    Tenant(TenantError),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "server I/O error: {e}"),
            ServerError::Tenant(e) => write!(f, "tenant configuration error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> ServerError {
        ServerError::Io(e)
    }
}

impl From<TenantError> for ServerError {
    fn from(e: TenantError) -> ServerError {
        ServerError::Tenant(e)
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] detaches the threads (they keep serving
/// until the process exits); tests and the CLI call `shutdown` for a
/// drained stop.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    metrics_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    http_handle: Option<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
    slowlog: Arc<SlowQueryLog>,
    db: SharedDb,
}

impl Server {
    /// Binds both listeners and spawns the accept loops over `db`.
    pub fn start(config: ServerConfig, db: SharedDb) -> Result<Server, ServerError> {
        let mut tenants = TenantMap::new();
        for (tenant, token) in &config.tenants {
            tenants.register(tenant, token)?;
        }
        let tenants = Arc::new(tenants);
        let slowlog = Arc::new(SlowQueryLog::new(
            config.slow_query_threshold,
            config.slow_query_capacity,
        ));
        let shutdown = Arc::new(AtomicBool::new(false));
        let sessions: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        // Tracing is a process-global toggle (the trace context lives in
        // sc-obs, below the server); the sampler ring keeps ~4× the
        // slowest-K so the systematic sample has room of its own.
        sc_obs::set_trace_enabled(config.tracing);
        sc_obs::TailSampler::global().set_policy(
            config.trace_slowest,
            config.trace_sample_one_in,
            config.trace_slowest.saturating_mul(4).max(32),
        );

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let metrics_listener = TcpListener::bind(&config.metrics_addr)?;
        let metrics_addr = metrics_listener.local_addr()?;

        let accept_handle = {
            let shutdown = Arc::clone(&shutdown);
            let sessions = Arc::clone(&sessions);
            let db = db.clone();
            let idle_poll = config.idle_poll;
            let max_frame_bytes = config.max_frame_bytes;
            let tenants = Arc::clone(&tenants);
            let slowlog = Arc::clone(&slowlog);
            std::thread::Builder::new()
                .name("sc-server-accept".into())
                .spawn(move || {
                    run_accept_loop(
                        listener,
                        shutdown,
                        sessions,
                        move |shutdown| SessionContext {
                            db: db.clone(),
                            tenants: Arc::clone(&tenants),
                            slowlog: Arc::clone(&slowlog),
                            shutdown,
                            max_frame_bytes,
                        },
                        idle_poll,
                    )
                })?
        };
        let http_handle = {
            let shutdown = Arc::clone(&shutdown);
            let idle_poll = config.idle_poll;
            std::thread::Builder::new()
                .name("sc-server-http".into())
                .spawn(move || run_http_loop(metrics_listener, shutdown, idle_poll))?
        };

        Ok(Server {
            addr,
            metrics_addr,
            shutdown,
            accept_handle: Some(accept_handle),
            http_handle: Some(http_handle),
            sessions,
            slowlog,
            db,
        })
    }

    /// The bound CQL protocol address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound metrics/health HTTP address.
    pub fn metrics_addr(&self) -> SocketAddr {
        self.metrics_addr
    }

    /// The shared engine handle the sessions execute against.
    pub fn db(&self) -> &SharedDb {
        &self.db
    }

    /// Retained slow-query entries, oldest first.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slowlog.entries()
    }

    /// Total statements ever recorded as slow (including entries the ring
    /// has dropped).
    pub fn slow_queries_recorded(&self) -> u64 {
        self.slowlog.total_recorded()
    }

    /// Session threads whose sockets are still open. Finished threads are
    /// reaped lazily by the accept loop and on [`Server::shutdown`].
    pub fn active_sessions(&self) -> usize {
        let sessions = self.sessions.lock().unwrap_or_else(|e| e.into_inner());
        sessions.iter().filter(|h| !h.is_finished()).count()
    }

    /// Graceful stop: stop accepting, let every session finish its
    /// in-flight request, join all threads. Idempotent in effect; consumes
    /// the handle.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.http_handle.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut sessions = self.sessions.lock().unwrap_or_else(|e| e.into_inner());
            sessions.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

fn run_accept_loop(
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
    make_context: impl Fn(Arc<AtomicBool>) -> SessionContext + Send + 'static,
    idle_poll: Duration,
) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking protocol listener");
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if let Err(e) =
                    spawn_session(stream, &make_context, &shutdown, &sessions, idle_poll)
                {
                    // Out of threads or sockets: drop the connection, keep
                    // serving the ones we have.
                    let _ = e;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                reap_finished(&sessions);
                std::thread::sleep(idle_poll);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(idle_poll),
        }
    }
}

fn spawn_session(
    stream: TcpStream,
    make_context: &impl Fn(Arc<AtomicBool>) -> SessionContext,
    shutdown: &Arc<AtomicBool>,
    sessions: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    idle_poll: Duration,
) -> io::Result<()> {
    stream.set_read_timeout(Some(idle_poll))?;
    stream.set_nodelay(true)?;
    let ctx = make_context(Arc::clone(shutdown));
    let handle = std::thread::Builder::new()
        .name("sc-server-session".into())
        .spawn(move || run_session(stream, &ctx))?;
    let mut sessions = sessions.lock().unwrap_or_else(|e| e.into_inner());
    sessions.push(handle);
    Ok(())
}

/// Joins (and forgets) session threads that have already returned, so a
/// long-lived server does not accumulate one JoinHandle per connection
/// ever served.
fn reap_finished(sessions: &Arc<Mutex<Vec<JoinHandle<()>>>>) {
    let mut sessions = sessions.lock().unwrap_or_else(|e| e.into_inner());
    let mut kept = Vec::with_capacity(sessions.len());
    for h in sessions.drain(..) {
        if h.is_finished() {
            let _ = h.join();
        } else {
            kept.push(h);
        }
    }
    *sessions = kept;
}
