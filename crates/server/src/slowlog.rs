//! Ring-buffered slow-query log.
//!
//! Every statement whose engine execution exceeds the configured
//! threshold is recorded: tenant, (truncated) CQL text, duration, a
//! monotone sequence number, plus the request's trace ID and read stats
//! (blocks read, block-cache hits) so a slow entry links straight to its
//! span tree at `GET /debug/traces/<trace_id>`. The ring keeps the most
//! recent `capacity` entries — old entries fall off the front, so the log
//! is a bounded diagnostic window, not an audit trail.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Duration;

/// CQL text longer than this is truncated in log entries (the full text
/// may be megabytes for generated batches).
pub const MAX_LOGGED_CQL: usize = 512;

/// Truncates CQL to [`MAX_LOGGED_CQL`] bytes on a char boundary, marking
/// the cut with `…`. Used by the slow-query log and by trace details.
pub(crate) fn truncate_cql(cql: &str) -> String {
    let mut text = cql.to_string();
    if text.len() > MAX_LOGGED_CQL {
        let mut cut = MAX_LOGGED_CQL;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        text.truncate(cut);
        text.push('…');
    }
    text
}

/// One slow statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    /// Monotone per-server sequence number (1-based), so readers can tell
    /// how many entries the ring has dropped.
    pub seq: u64,
    /// Tenant that issued the statement.
    pub tenant: String,
    /// The statement text as the tenant wrote it (logical keyspace names,
    /// truncated to [`MAX_LOGGED_CQL`] bytes on a char boundary).
    pub cql: String,
    /// Engine execution time — excludes network and group-commit queueing,
    /// so the entry blames the statement, not its neighbors' fsyncs.
    pub duration: Duration,
    /// Time spent queued in the group-commit WAL (informational; not part
    /// of the threshold comparison).
    pub queue_wait: Duration,
    /// The request's trace ID: look it up at `/debug/traces/<hex>` for
    /// the full span tree (0 when tracing was disabled).
    pub trace_id: u64,
    /// SSTable data blocks this request read (trace-attributed; 0 when
    /// tracing was disabled).
    pub blocks_read: u64,
    /// Blocks served from the shared block cache (ditto).
    pub block_cache_hits: u64,
}

/// Per-request metadata attached to a slow-query entry — the trace ID
/// and the read stats harvested from the request's finished trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlowQueryMeta {
    /// The request's trace ID (0 = untraced).
    pub trace_id: u64,
    /// Data blocks read while serving the request.
    pub blocks_read: u64,
    /// Blocks served from the shared block cache.
    pub block_cache_hits: u64,
}

#[derive(Debug)]
struct Inner {
    ring: VecDeque<SlowQuery>,
    next_seq: u64,
}

/// The log: threshold + bounded ring. Shared across sessions.
#[derive(Debug)]
pub struct SlowQueryLog {
    threshold: Duration,
    capacity: usize,
    inner: Mutex<Inner>,
}

impl SlowQueryLog {
    /// A log that records statements slower than `threshold`, keeping the
    /// most recent `capacity` entries.
    pub fn new(threshold: Duration, capacity: usize) -> SlowQueryLog {
        SlowQueryLog {
            threshold,
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                ring: VecDeque::new(),
                next_seq: 1,
            }),
        }
    }

    /// The recording threshold.
    pub fn threshold(&self) -> Duration {
        self.threshold
    }

    /// Records the statement if its *execution* time (queueing excluded)
    /// was slow enough. Returns whether it was recorded (callers bump the
    /// `server.slow_queries` counter on `true`).
    pub fn observe(
        &self,
        tenant: &str,
        cql: &str,
        duration: Duration,
        queue_wait: Duration,
        meta: SlowQueryMeta,
    ) -> bool {
        if duration < self.threshold {
            return false;
        }
        let text = truncate_cql(cql);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(SlowQuery {
            seq,
            tenant: tenant.to_string(),
            cql: text,
            duration,
            queue_wait,
            trace_id: meta.trace_id,
            blocks_read: meta.blocks_read,
            block_cache_hits: meta.block_cache_hits,
        });
        true
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> Vec<SlowQuery> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.ring.iter().cloned().collect()
    }

    /// Total number of statements ever recorded (including ones the ring
    /// has since dropped).
    pub fn total_recorded(&self) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.next_seq - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_filters_and_ring_drops_oldest() {
        let log = SlowQueryLog::new(Duration::from_millis(10), 3);
        assert!(!log.observe(
            "t",
            "fast",
            Duration::from_millis(9),
            Duration::ZERO,
            SlowQueryMeta::default()
        ));
        // Queue wait does not count toward the threshold...
        assert!(!log.observe(
            "t",
            "queued",
            Duration::from_millis(9),
            Duration::from_millis(100),
            SlowQueryMeta::default()
        ));
        for i in 0..5 {
            assert!(log.observe(
                "t",
                &format!("q{i}"),
                Duration::from_millis(10 + i),
                Duration::from_micros(i),
                SlowQueryMeta {
                    trace_id: 0x1000 + i,
                    blocks_read: i,
                    block_cache_hits: i / 2,
                }
            ));
        }
        let entries = log.entries();
        assert_eq!(entries.len(), 3, "capacity bounds the ring");
        assert_eq!(
            entries.iter().map(|e| e.cql.as_str()).collect::<Vec<_>>(),
            vec!["q2", "q3", "q4"]
        );
        // Sequence numbers expose the dropped prefix.
        assert_eq!(entries[0].seq, 3);
        assert_eq!(entries[2].queue_wait, Duration::from_micros(4));
        // Trace metadata rides along with each entry.
        assert_eq!(entries[2].trace_id, 0x1004);
        assert_eq!(entries[2].blocks_read, 4);
        assert_eq!(entries[2].block_cache_hits, 2);
        assert_eq!(log.total_recorded(), 5);
    }

    #[test]
    fn zero_threshold_records_everything() {
        let log = SlowQueryLog::new(Duration::ZERO, 8);
        assert!(log.observe(
            "t",
            "any",
            Duration::ZERO,
            Duration::ZERO,
            SlowQueryMeta::default()
        ));
    }

    #[test]
    fn long_statements_are_truncated_on_char_boundaries() {
        let log = SlowQueryLog::new(Duration::ZERO, 2);
        let long = "é".repeat(MAX_LOGGED_CQL); // 2 bytes per char
        log.observe(
            "t",
            &long,
            Duration::from_secs(1),
            Duration::ZERO,
            SlowQueryMeta::default(),
        );
        let entry = &log.entries()[0];
        assert!(entry.cql.len() <= MAX_LOGGED_CQL + '…'.len_utf8());
        assert!(entry.cql.ends_with('…'));
    }
}
