//! Length-framed wire transport.
//!
//! Every message travels as one frame: a 4-byte big-endian payload length
//! followed by exactly that many payload bytes. The length prefix is the
//! *only* fixed-width, byte-order-sensitive part of the protocol; the
//! payload itself is encoded with `sc-encoding` varints (see
//! [`crate::protocol`]).
//!
//! The server side reads through [`FrameReader`], which tolerates read
//! timeouts: a session thread sets a short socket read timeout, and each
//! timeout returns [`FrameEvent::TimedOut`] so the session can check the
//! shutdown flag and resume without losing partially received bytes.

use std::io::{self, Read, Write};

/// Default ceiling on a frame's declared payload length (4 MiB). A peer
/// declaring more is a protocol error, not an allocation request.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 4 << 20;

/// Transport-level failure.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The peer declared a payload longer than the configured ceiling.
    TooLarge {
        /// Length the prefix declared.
        declared: usize,
        /// Configured ceiling.
        max: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::TooLarge { declared, max } => {
                write!(f, "declared frame length {declared} exceeds maximum {max}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Writes one frame (length prefix + payload).
///
/// Prefix and payload go out in a single `write`: a separate 4-byte prefix
/// write would double the syscalls per message and, on a `TCP_NODELAY`
/// socket, tends to emit the prefix as its own packet — both measurable on
/// a loopback round trip.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload exceeds u32"))?;
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Blocking single-frame read (the client side). Returns `Ok(None)` on a
/// clean EOF *between* frames; EOF mid-frame is an `UnexpectedEof` error.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    match r.read(&mut prefix) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut prefix[n..])?,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
            r.read_exact(&mut prefix)?;
        }
        Err(e) => return Err(e.into()),
    }
    let declared = u32::from_be_bytes(prefix) as usize;
    if declared > max {
        return Err(FrameError::TooLarge { declared, max });
    }
    let mut payload = vec![0u8; declared];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// One step of a [`FrameReader`].
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete frame's payload.
    Frame(Vec<u8>),
    /// The socket read timed out; any partial frame is retained and the
    /// caller may poll again (after checking its shutdown flag).
    TimedOut,
    /// The peer closed the connection. If bytes of an unfinished frame had
    /// already arrived this is a mid-frame disconnect; either way the
    /// session is over.
    Eof,
}

/// Incremental frame reader that survives socket read timeouts.
///
/// Bytes received before a timeout stay buffered, so a slow sender never
/// corrupts framing — the declared length is honoured across however many
/// reads it takes to arrive.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    max: usize,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a stream with a frame-length ceiling.
    pub fn new(inner: R, max: usize) -> FrameReader<R> {
        FrameReader {
            inner,
            buf: Vec::new(),
            max,
        }
    }

    /// Whether an unfinished frame is currently buffered.
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Reads until one of: a complete frame, a timeout, EOF, or an error.
    pub fn next_event(&mut self) -> Result<FrameEvent, FrameError> {
        let mut chunk = [0u8; 4096];
        loop {
            if self.buf.len() >= 4 {
                let declared =
                    u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]])
                        as usize;
                if declared > self.max {
                    return Err(FrameError::TooLarge {
                        declared,
                        max: self.max,
                    });
                }
                if self.buf.len() >= 4 + declared {
                    let payload = self.buf[4..4 + declared].to_vec();
                    self.buf.drain(..4 + declared);
                    return Ok(FrameEvent::Frame(payload));
                }
            }
            match self.inner.read(&mut chunk) {
                Ok(0) => return Ok(FrameEvent::Eof),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(FrameEvent::TimedOut)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn framed(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        for p in payloads {
            write_frame(&mut out, p).unwrap();
        }
        out
    }

    #[test]
    fn roundtrip_multiple_frames() {
        let bytes = framed(&[b"hello", b"", b"world"]);
        let mut cur = Cursor::new(bytes);
        assert_eq!(read_frame(&mut cur, 64).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cur, 64).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cur, 64).unwrap().unwrap(), b"world");
        assert!(read_frame(&mut cur, 64).unwrap().is_none());
    }

    #[test]
    fn oversized_declared_length_is_rejected_without_allocating() {
        let mut bytes = (u32::MAX).to_be_bytes().to_vec();
        bytes.extend_from_slice(b"junk");
        let mut cur = Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cur, 1024),
            Err(FrameError::TooLarge {
                declared,
                max: 1024
            }) if declared == u32::MAX as usize
        ));
    }

    #[test]
    fn truncated_prefix_is_unexpected_eof() {
        let mut cur = Cursor::new(vec![0u8, 0]);
        assert!(matches!(
            read_frame(&mut cur, 64),
            Err(FrameError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof
        ));
    }

    #[test]
    fn truncated_body_is_unexpected_eof() {
        let mut bytes = 100u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[1, 2, 3]);
        let mut cur = Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cur, 1024),
            Err(FrameError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof
        ));
    }

    /// A reader that feeds bytes in dribbles with interleaved timeouts, to
    /// prove FrameReader keeps partial frames across WouldBlock.
    struct Dribble {
        data: Vec<u8>,
        pos: usize,
        step: usize,
        timeouts: bool,
    }

    impl Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.timeouts {
                self.timeouts = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout"));
            }
            self.timeouts = true;
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            let n = self.step.min(self.data.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn frame_reader_survives_timeouts_mid_frame() {
        let bytes = framed(&[b"split across many reads", b"second"]);
        let mut reader = FrameReader::new(
            Dribble {
                data: bytes,
                pos: 0,
                step: 3,
                timeouts: false,
            },
            1024,
        );
        let mut frames = Vec::new();
        loop {
            match reader.next_event().unwrap() {
                FrameEvent::Frame(f) => frames.push(f),
                FrameEvent::TimedOut => continue,
                FrameEvent::Eof => break,
            }
        }
        assert_eq!(
            frames,
            vec![b"split across many reads".to_vec(), b"second".to_vec()]
        );
    }

    #[test]
    fn frame_reader_reports_mid_frame_eof() {
        let mut bytes = 100u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[9; 10]);
        let mut reader = FrameReader::new(Cursor::new(bytes), 1024);
        loop {
            match reader.next_event().unwrap() {
                FrameEvent::Eof => break,
                FrameEvent::TimedOut => continue,
                FrameEvent::Frame(_) => panic!("no complete frame was sent"),
            }
        }
        assert!(reader.mid_frame());
    }
}
