//! Per-connection session loop.
//!
//! Each accepted TCP connection gets one session thread running
//! [`run_session`]: an auth handshake (the first non-`Ping` request must
//! be a `Hello` carrying a registered token), then a request/response
//! loop over the shared engine. Statement-level failures are reported as
//! typed [`Response::Error`]s and the connection stays open;
//! protocol-level failures (undecodable frame, oversized length) get one
//! final `Error { code: Protocol }` frame and the connection is dropped.
//!
//! The loop polls with a short socket read timeout so the server's
//! shutdown flag is observed promptly: on drain, an in-flight request is
//! finished and answered, then the connection closes.

use crate::frame::{write_frame, FrameError, FrameEvent, FrameReader};
use crate::obs::server as obs;
use crate::protocol::{ErrorCode, Request, Response};
use crate::slowlog::{SlowQueryLog, SlowQueryMeta};
use crate::tenant::{confine_statement, scrub_message, TenantMap};
use sc_nosql::{parse_statement, NosqlError, Session, SharedDb, Statement};
use sc_obs::trace::{self, Attr, TailSampler};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Everything a session needs, shared by reference from the server.
pub(crate) struct SessionContext {
    pub db: SharedDb,
    pub tenants: Arc<TenantMap>,
    pub slowlog: Arc<SlowQueryLog>,
    pub shutdown: Arc<AtomicBool>,
    pub max_frame_bytes: usize,
}

/// Maps an engine error to a wire error code.
fn error_code(e: &NosqlError) -> ErrorCode {
    match e {
        NosqlError::Parse(_) => ErrorCode::Parse,
        NosqlError::UnknownKeyspace(_)
        | NosqlError::UnknownTable(_)
        | NosqlError::UnknownColumn { .. } => ErrorCode::NotFound,
        NosqlError::TypeMismatch { .. }
        | NosqlError::MissingPrimaryKey(_)
        | NosqlError::AlreadyExists(_)
        | NosqlError::AggregateOverflow { .. }
        | NosqlError::Unsupported(_) => ErrorCode::Invalid,
        NosqlError::Storage(_) | NosqlError::Corrupt(_) => ErrorCode::Internal,
    }
}

fn send(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let payload = resp.encode();
    obs().bytes_out.add(payload.len() as u64 + 4);
    write_frame(stream, &payload)
}

/// Runs one connection to completion. Never panics on peer input: every
/// malformed byte sequence ends in a typed error and/or a closed socket.
pub(crate) fn run_session(mut stream: TcpStream, ctx: &SessionContext) {
    obs().connections.inc();
    obs().active_sessions.add(1);
    // The gauge must drop on *every* exit path, including an engine panic
    // unwinding through the loop.
    struct ActiveGuard;
    impl Drop for ActiveGuard {
        fn drop(&mut self) {
            obs().active_sessions.add(-1);
        }
    }
    let _guard = ActiveGuard;

    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = FrameReader::new(reader_stream, ctx.max_frame_bytes);
    let mut tenant: Option<String> = None;
    // One engine session per connection: carries the connection's USE
    // keyspace and commit-wait accounting. Statements from different
    // connections execute concurrently in the engine.
    let mut engine = ctx.db.session();

    loop {
        let payload = match reader.next_event() {
            Ok(FrameEvent::Frame(p)) => p,
            Ok(FrameEvent::TimedOut) => {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    // Drain: nothing in flight, close. A client mid-send
                    // gets a clean shutdown notice only if its frame
                    // completed; a half-sent frame is simply dropped.
                    if !reader.mid_frame() {
                        let _ = send(
                            &mut stream,
                            &Response::Error {
                                code: ErrorCode::ShuttingDown,
                                message: "server is shutting down".into(),
                            },
                        );
                    }
                    return;
                }
                continue;
            }
            Ok(FrameEvent::Eof) => return,
            Err(FrameError::TooLarge { declared, max }) => {
                obs().protocol_errors.inc();
                let _ = send(
                    &mut stream,
                    &Response::Error {
                        code: ErrorCode::Protocol,
                        message: format!("declared frame length {declared} exceeds maximum {max}"),
                    },
                );
                return;
            }
            Err(FrameError::Io(_)) => return,
        };
        obs().bytes_in.add(payload.len() as u64 + 4);
        let started = Instant::now();
        obs().requests.inc();

        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                obs().protocol_errors.inc();
                let _ = send(
                    &mut stream,
                    &Response::Error {
                        code: ErrorCode::Protocol,
                        message: format!("undecodable request: {e}"),
                    },
                );
                return;
            }
        };

        let response = match request {
            Request::Ping => Response::Pong,
            Request::Hello { token } => match ctx.tenants.authenticate(&token) {
                Some(name) => {
                    tenant = Some(name.to_string());
                    engine.set_tag(name);
                    Response::HelloOk {
                        tenant: name.to_string(),
                    }
                }
                None => {
                    obs().auth_failures.inc();
                    let _ = send(
                        &mut stream,
                        &Response::Error {
                            code: ErrorCode::Auth,
                            message: "unknown auth token".into(),
                        },
                    );
                    // Failed handshakes close the connection: a client
                    // cannot sit and enumerate tokens on one socket.
                    return;
                }
            },
            Request::Query { cql, trace_id } => match &tenant {
                None => {
                    obs().auth_failures.inc();
                    Response::Error {
                        code: ErrorCode::Auth,
                        message: "handshake required before queries (send Hello)".into(),
                    }
                }
                Some(tenant) => {
                    // Client-supplied ID wins (round-trip correlation);
                    // otherwise the server mints one so the slow-query
                    // log and sampler can still link up.
                    let id = trace_id
                        .filter(|&id| id != 0)
                        .unwrap_or_else(trace::next_trace_id);
                    let mut resp = execute_query(ctx, &mut engine, tenant, &cql, id);
                    // Echo the ID only to clients that asked: old clients
                    // reject trailing response bytes.
                    if let Response::Rows {
                        trace_id: echo @ None,
                        ..
                    } = &mut resp
                    {
                        if trace_id.is_some() {
                            *echo = Some(id);
                        }
                    }
                    resp
                }
            },
        };
        obs()
            .request_duration_ns
            .record(started.elapsed().as_nanos() as u64);
        if send(&mut stream, &response).is_err() {
            return;
        }
    }
}

/// The sampler bucket a statement falls into.
fn statement_kind(stmt: &Statement) -> &'static str {
    match stmt {
        Statement::Select { .. } => "select",
        Statement::Explain { .. } => "explain",
        Statement::Insert { .. } => "insert",
        Statement::Update { .. } => "update",
        Statement::Delete { .. } => "delete",
        Statement::Batch { .. } => "batch",
        Statement::Truncate { .. } => "truncate",
        Statement::Use { .. } => "use",
        Statement::CreateKeyspace { .. }
        | Statement::CreateTable { .. }
        | Statement::CreateIndex { .. } => "ddl",
    }
}

/// Parses, confines, and executes one statement for `tenant`, building
/// its request trace (when tracing is enabled) along the way.
fn execute_query(
    ctx: &SessionContext,
    engine: &mut Session,
    tenant: &str,
    cql: &str,
    trace_id: u64,
) -> Response {
    // The trace starts before parse so `server.parse` lands in the tree;
    // its kind is refined once the statement is known.
    let mut guard = trace::begin(trace_id, "query");
    let parse_result = {
        let _parse = trace::stage("server.parse");
        parse_statement(cql)
    };
    let mut stmt = match parse_result {
        Ok(s) => s,
        Err(e) => {
            obs().statement_errors.inc();
            // Parse failures never reach the engine; their traces carry
            // no attribution worth retaining.
            drop(guard);
            return Response::Error {
                code: ErrorCode::Parse,
                message: e.to_string(),
            };
        }
    };
    guard.set_kind(statement_kind(&stmt));
    confine_statement(&mut stmt, tenant);
    let started = Instant::now();
    let result = {
        let _exec = trace::stage("server.execute");
        engine.execute(&stmt)
    };
    // Attribute time honestly: wall clock includes waiting in the
    // group-commit queue behind *other* sessions' fsyncs; the slow-query
    // log and latency metrics should charge a statement only for its own
    // execution.
    let commit_wait = engine.last_commit_wait();
    let exec = started.elapsed().saturating_sub(commit_wait);
    obs().statement_exec_ns.record(exec.as_nanos() as u64);
    obs().commit_wait_ns.record(commit_wait.as_nanos() as u64);
    let mut meta = SlowQueryMeta::default();
    if let Some(mut t) = guard.finish() {
        t.tenant = tenant.to_string();
        t.detail = crate::slowlog::truncate_cql(cql);
        meta = SlowQueryMeta {
            trace_id,
            blocks_read: t.attr_total(Attr::BlocksRead),
            block_cache_hits: t.attr_total(Attr::BlockCacheHits),
        };
        if TailSampler::global().offer(t) {
            obs().traces_retained.inc();
        }
    }
    if ctx.slowlog.observe(tenant, cql, exec, commit_wait, meta) {
        obs().slow_queries.inc();
    }
    match result {
        Ok(rows) => {
            let columns = rows.columns().to_vec();
            let rows = rows
                .into_rows()
                .into_iter()
                .map(|row| row.into_values())
                .collect();
            Response::Rows {
                columns,
                rows,
                trace_id: None,
            }
        }
        Err(e) => {
            obs().statement_errors.inc();
            Response::Error {
                code: error_code(&e),
                message: scrub_message(&e.to_string(), tenant),
            }
        }
    }
}
