//! Per-connection session loop.
//!
//! Each accepted TCP connection gets one session thread running
//! [`run_session`]: an auth handshake (the first non-`Ping` request must
//! be a `Hello` carrying a registered token), then a request/response
//! loop over the shared engine. Statement-level failures are reported as
//! typed [`Response::Error`]s and the connection stays open;
//! protocol-level failures (undecodable frame, oversized length) get one
//! final `Error { code: Protocol }` frame and the connection is dropped.
//!
//! The loop polls with a short socket read timeout so the server's
//! shutdown flag is observed promptly: on drain, an in-flight request is
//! finished and answered, then the connection closes.

use crate::frame::{write_frame, FrameError, FrameEvent, FrameReader};
use crate::obs::server as obs;
use crate::protocol::{ErrorCode, Request, Response};
use crate::slowlog::SlowQueryLog;
use crate::tenant::{confine_statement, scrub_message, TenantMap};
use sc_nosql::{parse_statement, NosqlError, Session, SharedDb};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Everything a session needs, shared by reference from the server.
pub(crate) struct SessionContext {
    pub db: SharedDb,
    pub tenants: Arc<TenantMap>,
    pub slowlog: Arc<SlowQueryLog>,
    pub shutdown: Arc<AtomicBool>,
    pub max_frame_bytes: usize,
}

/// Maps an engine error to a wire error code.
fn error_code(e: &NosqlError) -> ErrorCode {
    match e {
        NosqlError::Parse(_) => ErrorCode::Parse,
        NosqlError::UnknownKeyspace(_)
        | NosqlError::UnknownTable(_)
        | NosqlError::UnknownColumn { .. } => ErrorCode::NotFound,
        NosqlError::TypeMismatch { .. }
        | NosqlError::MissingPrimaryKey(_)
        | NosqlError::AlreadyExists(_)
        | NosqlError::Unsupported(_) => ErrorCode::Invalid,
        NosqlError::Storage(_) | NosqlError::Corrupt(_) => ErrorCode::Internal,
    }
}

fn send(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let payload = resp.encode();
    obs().bytes_out.add(payload.len() as u64 + 4);
    write_frame(stream, &payload)
}

/// Runs one connection to completion. Never panics on peer input: every
/// malformed byte sequence ends in a typed error and/or a closed socket.
pub(crate) fn run_session(mut stream: TcpStream, ctx: &SessionContext) {
    obs().connections.inc();
    obs().active_sessions.add(1);
    // The gauge must drop on *every* exit path, including an engine panic
    // unwinding through the loop.
    struct ActiveGuard;
    impl Drop for ActiveGuard {
        fn drop(&mut self) {
            obs().active_sessions.add(-1);
        }
    }
    let _guard = ActiveGuard;

    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = FrameReader::new(reader_stream, ctx.max_frame_bytes);
    let mut tenant: Option<String> = None;
    // One engine session per connection: carries the connection's USE
    // keyspace and commit-wait accounting. Statements from different
    // connections execute concurrently in the engine.
    let mut engine = ctx.db.session();

    loop {
        let payload = match reader.next_event() {
            Ok(FrameEvent::Frame(p)) => p,
            Ok(FrameEvent::TimedOut) => {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    // Drain: nothing in flight, close. A client mid-send
                    // gets a clean shutdown notice only if its frame
                    // completed; a half-sent frame is simply dropped.
                    if !reader.mid_frame() {
                        let _ = send(
                            &mut stream,
                            &Response::Error {
                                code: ErrorCode::ShuttingDown,
                                message: "server is shutting down".into(),
                            },
                        );
                    }
                    return;
                }
                continue;
            }
            Ok(FrameEvent::Eof) => return,
            Err(FrameError::TooLarge { declared, max }) => {
                obs().protocol_errors.inc();
                let _ = send(
                    &mut stream,
                    &Response::Error {
                        code: ErrorCode::Protocol,
                        message: format!("declared frame length {declared} exceeds maximum {max}"),
                    },
                );
                return;
            }
            Err(FrameError::Io(_)) => return,
        };
        obs().bytes_in.add(payload.len() as u64 + 4);
        let started = Instant::now();
        obs().requests.inc();

        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                obs().protocol_errors.inc();
                let _ = send(
                    &mut stream,
                    &Response::Error {
                        code: ErrorCode::Protocol,
                        message: format!("undecodable request: {e}"),
                    },
                );
                return;
            }
        };

        let response = match request {
            Request::Ping => Response::Pong,
            Request::Hello { token } => match ctx.tenants.authenticate(&token) {
                Some(name) => {
                    tenant = Some(name.to_string());
                    engine.set_tag(name);
                    Response::HelloOk {
                        tenant: name.to_string(),
                    }
                }
                None => {
                    obs().auth_failures.inc();
                    let _ = send(
                        &mut stream,
                        &Response::Error {
                            code: ErrorCode::Auth,
                            message: "unknown auth token".into(),
                        },
                    );
                    // Failed handshakes close the connection: a client
                    // cannot sit and enumerate tokens on one socket.
                    return;
                }
            },
            Request::Query { cql } => match &tenant {
                None => {
                    obs().auth_failures.inc();
                    Response::Error {
                        code: ErrorCode::Auth,
                        message: "handshake required before queries (send Hello)".into(),
                    }
                }
                Some(tenant) => execute_query(ctx, &mut engine, tenant, &cql),
            },
        };
        obs()
            .request_duration_ns
            .record(started.elapsed().as_nanos() as u64);
        if send(&mut stream, &response).is_err() {
            return;
        }
    }
}

/// Parses, confines, and executes one statement for `tenant`.
fn execute_query(ctx: &SessionContext, engine: &mut Session, tenant: &str, cql: &str) -> Response {
    let mut stmt = match parse_statement(cql) {
        Ok(s) => s,
        Err(e) => {
            obs().statement_errors.inc();
            return Response::Error {
                code: ErrorCode::Parse,
                message: e.to_string(),
            };
        }
    };
    confine_statement(&mut stmt, tenant);
    let started = Instant::now();
    let result = engine.execute(&stmt);
    // Attribute time honestly: wall clock includes waiting in the
    // group-commit queue behind *other* sessions' fsyncs; the slow-query
    // log and latency metrics should charge a statement only for its own
    // execution.
    let commit_wait = engine.last_commit_wait();
    let exec = started.elapsed().saturating_sub(commit_wait);
    obs().statement_exec_ns.record(exec.as_nanos() as u64);
    obs().commit_wait_ns.record(commit_wait.as_nanos() as u64);
    if ctx.slowlog.observe(tenant, cql, exec, commit_wait) {
        obs().slow_queries.inc();
    }
    match result {
        Ok(rows) => {
            let columns = rows.columns().to_vec();
            let rows = rows
                .into_rows()
                .into_iter()
                .map(|row| row.into_values())
                .collect();
            Response::Rows { columns, rows }
        }
        Err(e) => {
            obs().statement_errors.inc();
            Response::Error {
                code: error_code(&e),
                message: scrub_message(&e.to_string(), tenant),
            }
        }
    }
}
