//! Blocking client for the framed CQL protocol.
//!
//! ```no_run
//! use sc_server::client::Client;
//!
//! let mut client = Client::connect("127.0.0.1:9042").unwrap();
//! client.hello("my-token").unwrap();
//! let rows = client.query("SELECT * FROM app.t").unwrap();
//! for row in &rows {
//!     println!("{:?}", row.get("id"));
//! }
//! ```
//!
//! One connection is one session: a single in-flight request at a time,
//! strictly request → response. The client is what the integration tests
//! and `repro serve --smoke` / `repro netbench` drive.

use crate::frame::{write_frame, FrameError, FrameEvent, FrameReader, DEFAULT_MAX_FRAME_BYTES};
use crate::protocol::{ErrorCode, Request, Response};
use sc_nosql::QueryResult;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket failure (includes the server closing the connection).
    Io(io::Error),
    /// The server sent bytes the client could not decode, or an
    /// unexpected response kind.
    Protocol(String),
    /// The server answered with a typed error.
    Server {
        /// Wire error code.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O error: {e}"),
            ClientError::Protocol(m) => write!(f, "client protocol error: {m}"),
            ClientError::Server { code, message } => {
                write!(f, "server error [{code}]: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> ClientError {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

/// A blocking protocol client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// Buffered reader over a clone of `stream`: a whole response usually
    /// arrives in one packet, so one `read` syscall replaces the separate
    /// prefix + payload reads.
    reader: FrameReader<TcpStream>,
}

impl Client {
    /// Connects to a server's CQL protocol address.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = FrameReader::new(stream.try_clone()?, DEFAULT_MAX_FRAME_BYTES);
        Ok(Client { stream, reader })
    }

    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.encode())?;
        let payload = loop {
            match self.reader.next_event()? {
                FrameEvent::Frame(p) => break p,
                // The client sets no read timeout; a spurious WouldBlock is
                // retried rather than surfaced.
                FrameEvent::TimedOut => continue,
                FrameEvent::Eof => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
            }
        };
        Response::decode(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Authenticates the connection; returns the tenant name the token
    /// maps to. Must precede [`Client::query`].
    pub fn hello(&mut self, token: &str) -> Result<String, ClientError> {
        match self.call(&Request::Hello {
            token: token.to_string(),
        })? {
            Response::HelloOk { tenant } => Ok(tenant),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to Hello: {other:?}"
            ))),
        }
    }

    /// Executes one CQL statement in the tenant's namespace. Mutations
    /// and DDL return an empty result.
    pub fn query(&mut self, cql: &str) -> Result<QueryResult, ClientError> {
        match self.call(&Request::Query {
            cql: cql.to_string(),
            trace_id: None,
        })? {
            Response::Rows { columns, rows, .. } => Ok(QueryResult::new(columns, rows)),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to Query: {other:?}"
            ))),
        }
    }

    /// Like [`Client::query`], but mints a trace ID, sends it with the
    /// statement, and returns it alongside the result. The server builds
    /// the request's span tree under this ID — look it up at
    /// `GET /debug/traces/<id as 16-digit hex>` on the metrics port, or
    /// match it against slow-query-log entries. The returned ID is the
    /// one the server echoed (always the sent one on a tracing server).
    pub fn query_traced(&mut self, cql: &str) -> Result<(QueryResult, u64), ClientError> {
        let id = sc_obs::trace::next_trace_id();
        match self.call(&Request::Query {
            cql: cql.to_string(),
            trace_id: Some(id),
        })? {
            Response::Rows {
                columns,
                rows,
                trace_id,
            } => Ok((QueryResult::new(columns, rows), trace_id.unwrap_or(id))),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to Query: {other:?}"
            ))),
        }
    }

    /// Liveness round trip.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to Ping: {other:?}"
            ))),
        }
    }
}
