//! Server instrumentation handles (`server.*`).
//!
//! Metric map:
//!
//! | name                         | kind      | meaning                                   |
//! |------------------------------|-----------|-------------------------------------------|
//! | `server.connections`         | counter   | TCP connections accepted                  |
//! | `server.active_sessions`     | gauge     | session threads currently alive           |
//! | `server.requests`            | counter   | decoded requests handled (any outcome)    |
//! | `server.auth_failures`       | counter   | Hello frames with an unknown token        |
//! | `server.protocol_errors`     | counter   | malformed frames/messages (conn dropped)  |
//! | `server.statement_errors`    | counter   | statements the engine rejected            |
//! | `server.slow_queries`        | counter   | statements over the slow-query threshold  |
//! | `server.bytes_in`            | counter   | frame bytes received (prefix included)    |
//! | `server.bytes_out`           | counter   | frame bytes sent (prefix included)        |
//! | `server.request.duration_ns` | histogram | end-to-end request handling latency       |
//! | `server.statement.exec_ns`   | histogram | statement execution time, group-commit queueing excluded |
//! | `server.statement.commit_wait_ns` | histogram | time queued in the group-commit WAL  |
//! | `server.metrics_scrapes`     | counter   | HTTP `GET /metrics` requests served       |
//! | `server.traces_retained`     | counter   | request traces kept by the tail sampler   |
//!
//! Key families also register `# HELP` descriptions
//! ([`Registry::describe`]) so the Prometheus exposition is
//! self-documenting.

use sc_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::OnceLock;

pub(crate) struct ServerObs {
    pub connections: Counter,
    pub active_sessions: Gauge,
    pub requests: Counter,
    pub auth_failures: Counter,
    pub protocol_errors: Counter,
    pub statement_errors: Counter,
    pub slow_queries: Counter,
    pub bytes_in: Counter,
    pub bytes_out: Counter,
    pub request_duration_ns: Histogram,
    pub statement_exec_ns: Histogram,
    pub commit_wait_ns: Histogram,
    pub metrics_scrapes: Counter,
    pub traces_retained: Counter,
}

pub(crate) fn server() -> &'static ServerObs {
    static OBS: OnceLock<ServerObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = Registry::global();
        r.describe("server.requests", "decoded requests handled (any outcome)");
        r.describe(
            "server.active_sessions",
            "session threads currently serving a connection",
        );
        r.describe(
            "server.slow_queries",
            "statements over the slow-query threshold (see the slow-query log)",
        );
        r.describe(
            "server.statement.exec_ns",
            "statement execution time in ns, group-commit queueing excluded",
        );
        r.describe(
            "server.statement.commit_wait_ns",
            "time queued in the group-commit WAL in ns",
        );
        r.describe(
            "server.traces_retained",
            "request traces kept by the tail sampler (slowest-K + 1-in-N)",
        );
        ServerObs {
            connections: r.counter("server.connections"),
            active_sessions: r.gauge("server.active_sessions"),
            requests: r.counter("server.requests"),
            auth_failures: r.counter("server.auth_failures"),
            protocol_errors: r.counter("server.protocol_errors"),
            statement_errors: r.counter("server.statement_errors"),
            slow_queries: r.counter("server.slow_queries"),
            bytes_in: r.counter("server.bytes_in"),
            bytes_out: r.counter("server.bytes_out"),
            request_duration_ns: r.histogram("server.request.duration_ns"),
            statement_exec_ns: r.histogram("server.statement.exec_ns"),
            commit_wait_ns: r.histogram("server.statement.commit_wait_ns"),
            metrics_scrapes: r.counter("server.metrics_scrapes"),
            traces_retained: r.counter("server.traces_retained"),
        }
    })
}
