//! Store read-path instrumentation handles (`core.store_query.*`).
//!
//! Registered once on the global registry; call sites gate on
//! [`sc_obs::enabled`] so the disabled cost is a single relaxed load.

use sc_obs::{Counter, Histogram, Registry};
use std::sync::OnceLock;

pub(crate) struct StoreQueryObs {
    /// Node views answered from the bounded LRU cache.
    pub node_cache_hits: Counter,
    /// Node views that had to touch the store.
    pub node_cache_misses: Counter,
    /// Rows read from the store (node rows + cell rows).
    pub rows_fetched: Counter,
    /// Cells per batched `WHERE id IN (...)` fetch.
    pub batch_size: Histogram,
    /// Latency of one node materialization from the store.
    pub fetch_ns: Histogram,
}

pub(crate) fn store_query() -> &'static StoreQueryObs {
    static OBS: OnceLock<StoreQueryObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = Registry::global();
        StoreQueryObs {
            node_cache_hits: r.counter("core.store_query.node_cache_hits"),
            node_cache_misses: r.counter("core.store_query.node_cache_misses"),
            rows_fetched: r.counter("core.store_query.rows_fetched"),
            batch_size: r.histogram("core.store_query.batch_size"),
            fetch_ns: r.histogram("core.store_query.fetch_ns"),
        }
    })
}
