//! End-to-end convenience: the cube warehouse.
//!
//! Ties the whole paper pipeline together for applications: feed documents
//! go in through an [`sc_ingest::StreamPipeline`], cubes come out and are
//! stored in a chosen schema model, and stored cubes can be listed,
//! rebuilt, queried and updated.

use crate::error::Result;
use crate::mapping::MappedDwarf;
use crate::models::{SchemaModel, StoreReport};
use sc_dwarf::Dwarf;
use sc_ingest::{CubeDef, StreamPipeline};

/// A warehouse: one stream pipeline feeding one schema model.
pub struct CubeWarehouse {
    pipeline: StreamPipeline,
    model: Box<dyn SchemaModel>,
    stored: Vec<StoreReport>,
}

impl std::fmt::Debug for CubeWarehouse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CubeWarehouse")
            .field("model", &self.model.kind())
            .field("documents", &self.pipeline.document_count())
            .field("stored_cubes", &self.stored.len())
            .finish()
    }
}

impl CubeWarehouse {
    /// Creates a warehouse over a cube definition and a model whose schema
    /// is already created (see [`crate::models::ModelKind::build`]).
    pub fn new(def: CubeDef, model: Box<dyn SchemaModel>) -> CubeWarehouse {
        CubeWarehouse {
            pipeline: StreamPipeline::new(def),
            model,
            stored: Vec::new(),
        }
    }

    /// Ingests one feed document.
    pub fn ingest(&mut self, text: &str) -> Result<()> {
        self.pipeline
            .ingest(text)
            .map_err(|e| crate::error::CoreError::Inconsistent(e.to_string()))?;
        Ok(())
    }

    /// Documents ingested into the current window.
    pub fn pending_documents(&self) -> usize {
        self.pipeline.document_count()
    }

    /// Builds the cube from everything ingested, stores it, and returns the
    /// cube plus its store report. The pipeline resets for the next window.
    pub fn close_window(&mut self, is_cube: bool) -> Result<(Dwarf, StoreReport)> {
        let cube = self.pipeline.build_cube();
        let mapped = MappedDwarf::try_new(&cube)?;
        let report = self.model.store(&mapped, &cube, is_cube)?;
        self.stored.push(report.clone());
        Ok((cube, report))
    }

    /// Reports of every cube stored so far.
    pub fn stored(&self) -> &[StoreReport] {
        &self.stored
    }

    /// Rebuilds a stored cube by schema id.
    pub fn rebuild(&mut self, schema_id: i64) -> Result<Dwarf> {
        self.model.rebuild(schema_id)
    }

    /// Current total store size.
    pub fn store_size(&mut self) -> Result<sc_encoding::ByteSize> {
        self.model.size()
    }

    /// The underlying model (e.g. to open a
    /// [`crate::store_query::StoreBackedCube`]).
    pub fn model_mut(&mut self) -> &mut dyn SchemaModel {
        self.model.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelKind;
    use sc_dwarf::Selection;
    use sc_ingest::cube_def::TimeField;

    fn def() -> CubeDef {
        CubeDef::xml("/stations/station")
            .timestamp("@updated")
            .time_dimension("day", TimeField::Day)
            .dimension("station", "name/text()")
            .measure("bikes", "bikes/text()")
            .build()
            .unwrap()
    }

    fn feed(day: u8, a: i64, b: i64) -> String {
        format!(
            r#"<stations updated="2015-11-{day:02}T10:00:00">
              <station><name>A</name><bikes>{a}</bikes></station>
              <station><name>B</name><bikes>{b}</bikes></station>
            </stations>"#
        )
    }

    #[test]
    fn warehouse_flow_on_every_model() {
        for kind in ModelKind::ALL {
            let mut wh = CubeWarehouse::new(def(), kind.build().unwrap());
            wh.ingest(&feed(1, 3, 5)).unwrap();
            wh.ingest(&feed(2, 4, 6)).unwrap();
            assert_eq!(wh.pending_documents(), 2);
            let (cube, report) = wh.close_window(false).unwrap();
            assert_eq!(cube.tuple_count(), 4);
            assert!(report.size.as_bytes() > 0, "{kind}: empty store");
            assert_eq!(wh.pending_documents(), 0);
            let back = wh.rebuild(report.schema_id).unwrap();
            assert_eq!(back.extract_tuples(), cube.extract_tuples(), "{kind}");
            assert_eq!(
                back.point(&[Selection::value("01"), Selection::All]),
                Some(8),
                "{kind}"
            );
        }
    }

    #[test]
    fn successive_windows_get_distinct_ids() {
        let mut wh = CubeWarehouse::new(def(), ModelKind::NosqlDwarf.build().unwrap());
        wh.ingest(&feed(1, 1, 1)).unwrap();
        let (_, r1) = wh.close_window(false).unwrap();
        wh.ingest(&feed(2, 2, 2)).unwrap();
        let (_, r2) = wh.close_window(false).unwrap();
        assert_ne!(r1.schema_id, r2.schema_id);
        assert_eq!(wh.stored().len(), 2);
        // Store grew.
        assert!(wh.store_size().unwrap() >= r2.size);
    }
}
