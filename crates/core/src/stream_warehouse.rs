//! Parallel ingestion into a schema model: the streaming warehouse.
//!
//! [`CubeWarehouse`](crate::CubeWarehouse) feeds documents through the
//! single-threaded `sc_ingest::StreamPipeline`. This module is its sharded
//! sibling: documents go into an [`sc_stream::StreamIngestor`] worker pool,
//! per-shard micro-cubes are merged on the ingestor's merger thread, and
//! closing a window flushes the merged cube into the chosen schema model
//! (for [`NosqlDwarfModel`](crate::models::NosqlDwarfModel), the paper's
//! cube → column-family mapping). The result is bit-identical to the
//! sequential warehouse; only wall-clock time differs.

use crate::error::Result;
use crate::mapping::MappedDwarf;
use crate::models::{SchemaModel, StoreReport};
use sc_dwarf::Dwarf;
use sc_ingest::CubeDef;
use sc_stream::{Metrics, MetricsSnapshot, StreamConfig, StreamIngestor};

/// A warehouse: one sharded ingestion runtime feeding one schema model.
pub struct StreamWarehouse {
    def: CubeDef,
    config: StreamConfig,
    ingestor: StreamIngestor,
    model: Box<dyn SchemaModel>,
    stored: Vec<StoreReport>,
}

impl std::fmt::Debug for StreamWarehouse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamWarehouse")
            .field("model", &self.model.kind())
            .field("shards", &self.config.shards)
            .field("stored_cubes", &self.stored.len())
            .finish()
    }
}

impl StreamWarehouse {
    /// Creates a warehouse and spawns its worker pool.
    ///
    /// The model's schema must already be created (see
    /// [`crate::models::ModelKind::build`]).
    pub fn new(def: CubeDef, config: StreamConfig, model: Box<dyn SchemaModel>) -> StreamWarehouse {
        let ingestor = StreamIngestor::new(def.clone(), config.clone());
        StreamWarehouse {
            def,
            config,
            ingestor,
            model,
            stored: Vec::new(),
        }
    }

    /// Queues one feed document; parse errors surface in the metrics
    /// (`events_failed`), not here — the pool never stops on bad input.
    pub fn ingest(&self, text: String) {
        self.ingestor.ingest(text);
    }

    /// Queues one feed document on the shard owned by `partition_key`.
    pub fn ingest_keyed(&self, partition_key: &str, text: String) {
        self.ingestor.ingest_keyed(partition_key, text);
    }

    /// Live counters for progress reporting.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.ingestor.metrics().snapshot()
    }

    /// Drains the pool, merges every micro-cube, flushes the result into
    /// the schema model and restarts the pool for the next window.
    ///
    /// Returns the merged cube, the model's store report and the final
    /// counter values for the closed window.
    pub fn close_window(&mut self, is_cube: bool) -> Result<(Dwarf, StoreReport, MetricsSnapshot)> {
        let fresh = StreamIngestor::new(self.def.clone(), self.config.clone());
        let ingestor = std::mem::replace(&mut self.ingestor, fresh);
        let metrics = std::sync::Arc::clone(ingestor.metrics());
        let result = ingestor.finish();
        let mapped = MappedDwarf::try_new(&result.cube)?;
        let report = self.model.store(&mapped, &result.cube, is_cube)?;
        Metrics::add(&metrics.flushes, 1);
        self.stored.push(report.clone());
        Ok((result.cube, report, metrics.snapshot()))
    }

    /// Reports of every cube stored so far.
    pub fn stored(&self) -> &[StoreReport] {
        &self.stored
    }

    /// Rebuilds a stored cube by schema id.
    pub fn rebuild(&mut self, schema_id: i64) -> Result<Dwarf> {
        self.model.rebuild(schema_id)
    }

    /// Current total store size.
    pub fn store_size(&mut self) -> Result<sc_encoding::ByteSize> {
        self.model.size()
    }

    /// The underlying model (e.g. to open a
    /// [`crate::store_query::StoreBackedCube`]).
    pub fn model_mut(&mut self) -> &mut dyn SchemaModel {
        self.model.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelKind;
    use crate::CubeWarehouse;
    use sc_dwarf::Selection;
    use sc_ingest::cube_def::TimeField;

    fn def() -> CubeDef {
        CubeDef::xml("/stations/station")
            .timestamp("@updated")
            .time_dimension("day", TimeField::Day)
            .dimension("station", "name/text()")
            .measure("bikes", "bikes/text()")
            .build()
            .unwrap()
    }

    fn feed(day: u8, a: i64, b: i64) -> String {
        format!(
            r#"<stations updated="2015-11-{day:02}T10:00:00">
              <station><name>A</name><bikes>{a}</bikes></station>
              <station><name>B</name><bikes>{b}</bikes></station>
            </stations>"#
        )
    }

    #[test]
    fn streamed_store_matches_sequential_warehouse() {
        let docs: Vec<String> = (1..=6)
            .map(|d| feed(d, i64::from(d), 10 + i64::from(d)))
            .collect();
        // Sequential reference.
        let mut seq = CubeWarehouse::new(def(), ModelKind::NosqlDwarf.build().unwrap());
        for doc in &docs {
            seq.ingest(doc).unwrap();
        }
        let (seq_cube, seq_report) = seq.close_window(true).unwrap();
        // Sharded.
        let mut wh = StreamWarehouse::new(
            def(),
            StreamConfig::with_shards(3),
            ModelKind::NosqlDwarf.build().unwrap(),
        );
        for doc in &docs {
            wh.ingest(doc.clone());
        }
        let (cube, report, metrics) = wh.close_window(true).unwrap();
        assert_eq!(cube.extract_tuples(), seq_cube.extract_tuples());
        assert_eq!(report.node_rows, seq_report.node_rows);
        assert_eq!(report.cell_rows, seq_report.cell_rows);
        assert_eq!(metrics.events_parsed, docs.len() as u64);
        assert_eq!(metrics.flushes, 1);
        // The stored cube rebuilds to the same facts.
        let rebuilt = wh.rebuild(report.schema_id).unwrap();
        assert_eq!(rebuilt.extract_tuples(), cube.extract_tuples());
    }

    #[test]
    fn stored_windows_survive_a_restart() {
        use crate::models::NosqlDwarfModel;
        use crate::store_query::StoreBackedCube;
        use sc_nosql::{Db, OpenOptions};
        use sc_storage::Vfs;

        let vfs = Vfs::memory();
        let (first_id, second_id, first_tuples, second_tuples) = {
            let db = Db::open(OpenOptions::default().vfs(vfs.clone())).unwrap();
            let mut model = NosqlDwarfModel::with_db(db);
            model.create_schema().unwrap();
            let mut wh = StreamWarehouse::new(def(), StreamConfig::with_shards(2), Box::new(model));
            wh.ingest(feed(1, 3, 5));
            let (first, r1, _) = wh.close_window(true).unwrap();
            wh.ingest(feed(2, 4, 6));
            let (second, r2, _) = wh.close_window(true).unwrap();
            (
                r1.schema_id,
                r2.schema_id,
                first.extract_tuples(),
                second.extract_tuples(),
            )
            // Warehouse and engine dropped here; nothing survives but the VFS.
        };
        let mut model = NosqlDwarfModel::open(vfs).unwrap();
        assert_eq!(
            model.rebuild(first_id).unwrap().extract_tuples(),
            first_tuples
        );
        assert_eq!(
            model.rebuild(second_id).unwrap().extract_tuples(),
            second_tuples
        );
        // Store-backed queries work against the recovered engine too.
        let mut sbc = StoreBackedCube::open(&mut model, second_id).unwrap();
        assert_eq!(sbc.select().dim("station", "B").run().unwrap(), Some(6));
    }

    #[test]
    fn windows_are_independent() {
        let mut wh = StreamWarehouse::new(
            def(),
            StreamConfig::with_shards(2),
            ModelKind::NosqlDwarf.build().unwrap(),
        );
        wh.ingest(feed(1, 3, 5));
        let (first, _, metrics) = wh.close_window(true).unwrap();
        assert_eq!(metrics.events_in, 1);
        // Second window starts empty.
        wh.ingest(feed(2, 4, 6));
        wh.ingest(feed(3, 7, 8));
        let (second, _, metrics) = wh.close_window(true).unwrap();
        assert_eq!(metrics.events_in, 2, "fresh pool must not inherit counters");
        assert_eq!(first.tuple_count(), 2);
        assert_eq!(second.tuple_count(), 4);
        assert_eq!(wh.stored().len(), 2);
        let v = Selection::value;
        assert_eq!(first.point(&[v("01"), v("A")]), Some(3));
        assert_eq!(second.point(&[v("03"), v("B")]), Some(8));
    }
}
