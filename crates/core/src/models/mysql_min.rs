//! MySQL-Min: the Table 3 layout ported to the relational engine.
//!
//! "Designed to test how well MySQL performs using a schema without joins"
//! — a cube-metadata table plus one flat cell table whose rows carry their
//! parent and pointer node ids. No node table, no edge tables, no secondary
//! indexes: the smallest relational footprint (Table 4's winner for all but
//! the largest dataset) at the cost of node reconstruction work at query
//! time.

use super::{offset_id, ModelKind, SchemaModel, StoreReport};
use crate::error::{CoreError, Result};
use crate::mapping::{
    decode_schema_meta, encode_schema_meta, rebuild_cube, MappedDwarf, StoredCell,
};
use sc_dwarf::Dwarf;
use sc_encoding::ByteSize;
use sc_relational::sql::ast::{
    ColumnRef, Predicate, Projection, SqlStatement, TableFactor, TableName,
};
use sc_relational::{Db, SqlValue};
use std::time::Instant;

const DATABASE: &str = "dwarf_min";

fn table(name: &str) -> TableName {
    TableName {
        database: DATABASE.into(),
        table: name.into(),
    }
}

fn factor(name: &str) -> TableFactor {
    TableFactor {
        name: table(name),
        alias: None,
    }
}

fn col(name: &str) -> ColumnRef {
    ColumnRef {
        qualifier: None,
        column: name.into(),
    }
}

/// The MySQL-Min schema model.
#[derive(Debug)]
pub struct MysqlMinModel {
    db: Db,
    /// Rows per INSERT statement (1 = the paper's per-record commands).
    pub insert_batch: usize,
}

impl MysqlMinModel {
    /// Creates a model over a fresh in-memory engine.
    pub fn in_memory() -> MysqlMinModel {
        MysqlMinModel {
            db: Db::in_memory(),
            insert_batch: super::mysql_dwarf::DEFAULT_INSERT_BATCH,
        }
    }

    /// Sets the rows-per-statement batch size (multi-row INSERT ablation).
    pub fn with_insert_batch(mut self, batch: usize) -> MysqlMinModel {
        assert!(batch > 0, "batch must be positive");
        self.insert_batch = batch;
        self
    }

    /// Access to the underlying engine.
    pub fn db_mut(&mut self) -> &mut Db {
        &mut self.db
    }

    fn next_cube_id(&mut self) -> Result<i64> {
        let r = self.db.execute(&SqlStatement::Select {
            projection: Projection::Columns(vec![col("id")]),
            from: factor("dwarf_cube"),
            join: None,
            predicates: vec![],
            limit: None,
        })?;
        Ok(r.rows
            .iter()
            .filter_map(|row| row[0].as_int())
            .max()
            .unwrap_or(0)
            + 1)
    }

    fn cube_row(&mut self, cube_id: i64) -> Result<(i64, String)> {
        let r = self.db.execute(&SqlStatement::Select {
            projection: Projection::Columns(vec![col("entry_node_id"), col("schema_meta")]),
            from: factor("dwarf_cube"),
            join: None,
            predicates: vec![Predicate {
                column: col("id"),
                value: SqlValue::Int(cube_id),
            }],
            limit: None,
        })?;
        let row = r.rows.first().ok_or(CoreError::UnknownSchema(cube_id))?;
        Ok((
            row[0]
                .as_int()
                .ok_or_else(|| CoreError::Inconsistent("entry_node_id not int".into()))?,
            row[1]
                .as_text()
                .ok_or_else(|| CoreError::Inconsistent("schema_meta not text".into()))?
                .to_string(),
        ))
    }
}

impl SchemaModel for MysqlMinModel {
    fn kind(&self) -> ModelKind {
        ModelKind::MysqlMin
    }

    fn create_schema(&mut self) -> Result<()> {
        self.db
            .execute_sql(&format!("CREATE DATABASE {DATABASE}"))?;
        self.db.execute_sql(&format!(
            "CREATE TABLE {DATABASE}.dwarf_cube (id INT NOT NULL, node_count INT, \
             cell_count INT, size_as_mb INT, entry_node_id INT, schema_meta TEXT, \
             PRIMARY KEY (id))"
        ))?;
        self.db.execute_sql(&format!(
            "CREATE TABLE {DATABASE}.dwarf_cell (id INT NOT NULL, item_name TEXT, \
             measure INT, leaf BOOL, root BOOL, cubeid INT, parentNodeId INT, \
             childNodeId INT, PRIMARY KEY (id))"
        ))?;
        Ok(())
    }

    fn store(&mut self, mapped: &MappedDwarf, cube: &Dwarf, _is_cube: bool) -> Result<StoreReport> {
        let cube_id = self.next_cube_id()?;
        let entry = mapped.entry_node_id;
        let cell_rows: Vec<Vec<SqlValue>> = mapped
            .cells
            .iter()
            .map(|c| {
                vec![
                    SqlValue::Int(offset_id(cube_id, c.id)),
                    SqlValue::Text(c.key.clone()),
                    SqlValue::Int(c.measure),
                    SqlValue::Bool(c.leaf),
                    SqlValue::Bool(c.parent_node == entry),
                    SqlValue::Int(cube_id),
                    SqlValue::Int(offset_id(cube_id, c.parent_node)),
                    match c.pointer_node {
                        Some(p) => SqlValue::Int(offset_id(cube_id, p)),
                        None => SqlValue::Null,
                    },
                ]
            })
            .collect();
        let mut statements = 0usize;
        let start = Instant::now();
        self.db.execute(&SqlStatement::Insert {
            table: table("dwarf_cube"),
            columns: vec![
                "id".into(),
                "node_count".into(),
                "cell_count".into(),
                "size_as_mb".into(),
                "entry_node_id".into(),
                "schema_meta".into(),
            ],
            rows: vec![vec![
                SqlValue::Int(cube_id),
                SqlValue::Int(mapped.node_count() as i64),
                SqlValue::Int(mapped.cell_count() as i64),
                SqlValue::Int(0),
                SqlValue::Int(offset_id(cube_id, entry)),
                SqlValue::Text(encode_schema_meta(cube.schema())),
            ]],
        })?;
        statements += 1;
        // One reusable statement; rows rebound per batch (default batch=1,
        // matching the paper's per-record generated commands).
        let batch = self.insert_batch;
        let mut stmt = SqlStatement::Insert {
            table: table("dwarf_cell"),
            columns: vec![
                "id".into(),
                "item_name".into(),
                "measure".into(),
                "leaf".into(),
                "root".into(),
                "cubeid".into(),
                "parentNodeId".into(),
                "childNodeId".into(),
            ],
            rows: Vec::with_capacity(batch),
        };
        for chunk in cell_rows.chunks(batch) {
            if let SqlStatement::Insert { rows, .. } = &mut stmt {
                rows.clear();
                rows.extend(chunk.iter().cloned());
            }
            self.db.execute(&stmt)?;
            statements += 1;
        }
        let elapsed = start.elapsed();
        self.db.checkpoint_all()?;
        let size = self.db.database_size(DATABASE)?;
        let (entry_stored, meta) = self.cube_row(cube_id)?;
        self.db.execute(&SqlStatement::Delete {
            table: table("dwarf_cube"),
            predicate: Predicate {
                column: col("id"),
                value: SqlValue::Int(cube_id),
            },
        })?;
        self.db.execute(&SqlStatement::Insert {
            table: table("dwarf_cube"),
            columns: vec![
                "id".into(),
                "node_count".into(),
                "cell_count".into(),
                "size_as_mb".into(),
                "entry_node_id".into(),
                "schema_meta".into(),
            ],
            rows: vec![vec![
                SqlValue::Int(cube_id),
                SqlValue::Int(mapped.node_count() as i64),
                SqlValue::Int(mapped.cell_count() as i64),
                SqlValue::Int(size.as_mb_rounded() as i64),
                SqlValue::Int(entry_stored),
                SqlValue::Text(meta),
            ]],
        })?;
        Ok(StoreReport {
            schema_id: cube_id,
            node_rows: 0,
            cell_rows: mapped.cell_count(),
            statements,
            elapsed,
            size,
        })
    }

    fn rebuild(&mut self, cube_id: i64) -> Result<Dwarf> {
        let (entry, meta) = self.cube_row(cube_id)?;
        let schema = decode_schema_meta(&meta)?;
        let r = self.db.execute(&SqlStatement::Select {
            projection: Projection::Columns(vec![
                col("item_name"),
                col("measure"),
                col("parentNodeId"),
                col("childNodeId"),
                col("leaf"),
            ]),
            from: factor("dwarf_cell"),
            join: None,
            predicates: vec![Predicate {
                column: col("cubeid"),
                value: SqlValue::Int(cube_id),
            }],
            limit: None,
        })?;
        let mut cells = Vec::with_capacity(r.rows.len());
        for row in &r.rows {
            cells.push(StoredCell {
                key: row[0]
                    .as_text()
                    .ok_or_else(|| CoreError::Inconsistent("item_name not text".into()))?
                    .to_string(),
                measure: row[1]
                    .as_int()
                    .ok_or_else(|| CoreError::Inconsistent("measure not int".into()))?,
                parent_node: row[2]
                    .as_int()
                    .ok_or_else(|| CoreError::Inconsistent("parentNodeId not int".into()))?,
                pointer_node: row[3].as_int(),
                leaf: row[4]
                    .as_bool()
                    .ok_or_else(|| CoreError::Inconsistent("leaf not bool".into()))?,
            });
        }
        rebuild_cube(schema, entry, &cells)
    }

    fn size(&mut self) -> Result<ByteSize> {
        self.db.checkpoint_all()?;
        Ok(self.db.database_size(DATABASE)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_dwarf::{CubeSchema, TupleSet};

    fn cube() -> Dwarf {
        let schema = CubeSchema::new(["day", "station"], "hires");
        let mut ts = TupleSet::new(&schema);
        ts.push(["mon", "a"], 1);
        ts.push(["mon", "b"], 2);
        ts.push(["tue", "a"], 4);
        Dwarf::build(schema, ts)
    }

    #[test]
    fn store_and_rebuild_roundtrip() {
        let c = cube();
        let mut model = MysqlMinModel::in_memory();
        model.create_schema().unwrap();
        let report = model.store(&MappedDwarf::new(&c), &c, false).unwrap();
        assert_eq!(report.node_rows, 0);
        // Default batch of 1: one statement per cell plus the cube row.
        assert_eq!(report.statements, report.cell_rows + 1);
        let back = model.rebuild(report.schema_id).unwrap();
        assert_eq!(back.extract_tuples(), c.extract_tuples());
    }

    #[test]
    fn multi_row_batching_reduces_statements() {
        let c = cube();
        let mut model = MysqlMinModel::in_memory().with_insert_batch(4);
        model.create_schema().unwrap();
        let report = model.store(&MappedDwarf::new(&c), &c, false).unwrap();
        assert!(report.statements < report.cell_rows);
        let back = model.rebuild(report.schema_id).unwrap();
        assert_eq!(back.extract_tuples(), c.extract_tuples());
    }

    #[test]
    fn min_is_smaller_than_mysql_dwarf() {
        let c = cube();
        let mut min = MysqlMinModel::in_memory();
        min.create_schema().unwrap();
        let rmin = min.store(&MappedDwarf::new(&c), &c, false).unwrap();
        let mut full = super::super::MysqlDwarfModel::in_memory();
        full.create_schema().unwrap();
        let rfull = full.store(&MappedDwarf::new(&c), &c, false).unwrap();
        assert!(
            rmin.size < rfull.size,
            "MySQL-Min {} must be smaller than MySQL-DWARF {} (Table 4)",
            rmin.size,
            rfull.size
        );
    }
}
