//! The four evaluated schema models (§5 of the paper).
//!
//! Every model implements [`SchemaModel`]: create the physical schema once,
//! then `store` mapped cubes (bulk insert, timed — Table 5), measure `size`
//! (Table 4) and `rebuild` cubes back (the bi-directional mapping).

pub mod mysql_dwarf;
mod mysql_min;
mod nosql_dwarf;
mod nosql_min;

pub use mysql_dwarf::MysqlDwarfModel;
pub use mysql_min::MysqlMinModel;
pub use nosql_dwarf::NosqlDwarfModel;
pub use nosql_min::NosqlMinModel;

use crate::error::Result;
use crate::mapping::MappedDwarf;
use sc_dwarf::Dwarf;
use sc_encoding::ByteSize;
use std::time::Duration;

/// Which of the paper's four schemas a model implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Table 1 layout on the NoSQL engine (the paper's proposal).
    NosqlDwarf,
    /// Table 3 layout on the NoSQL engine (+2 secondary indexes).
    NosqlMin,
    /// Figure 4 layout on the relational engine.
    MysqlDwarf,
    /// Table 3's layout ported to the relational engine.
    MysqlMin,
}

impl ModelKind {
    /// All four, in the paper's table row order.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::MysqlDwarf,
        ModelKind::MysqlMin,
        ModelKind::NosqlDwarf,
        ModelKind::NosqlMin,
    ];

    /// The paper's row label.
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::NosqlDwarf => "NoSQL-DWARF",
            ModelKind::NosqlMin => "NoSQL-Min",
            ModelKind::MysqlDwarf => "MySQL-DWARF",
            ModelKind::MysqlMin => "MySQL-Min",
        }
    }

    /// Creates a fresh in-memory model of this kind with its schema created.
    pub fn build(self) -> Result<Box<dyn SchemaModel>> {
        let mut model: Box<dyn SchemaModel> = match self {
            ModelKind::NosqlDwarf => Box::new(NosqlDwarfModel::in_memory()),
            ModelKind::NosqlMin => Box::new(NosqlMinModel::in_memory()),
            ModelKind::MysqlDwarf => Box::new(MysqlDwarfModel::in_memory()),
            ModelKind::MysqlMin => Box::new(MysqlMinModel::in_memory()),
        };
        model.create_schema()?;
        Ok(model)
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Outcome of storing one cube.
#[derive(Debug, Clone)]
pub struct StoreReport {
    /// Id assigned to the stored schema/cube.
    pub schema_id: i64,
    /// Node rows written (0 for the Min layouts).
    pub node_rows: usize,
    /// Cell rows written.
    pub cell_rows: usize,
    /// Statements executed during the bulk insert.
    pub statements: usize,
    /// Wall-clock time of the insert phase (Table 5's measurement).
    pub elapsed: Duration,
    /// Store size after flushing (Table 4's measurement).
    pub size: ByteSize,
}

/// A physical schema that can store and rebuild DWARF cubes.
pub trait SchemaModel {
    /// Which schema this is.
    fn kind(&self) -> ModelKind;

    /// Creates keyspaces/databases, tables and indexes. Call once.
    fn create_schema(&mut self) -> Result<()>;

    /// Stores a mapped cube in bulk, returning id, timing and size.
    ///
    /// `is_cube` is the paper's flag distinguishing a full DWARF schema from
    /// a sub-cube produced by querying one.
    fn store(&mut self, mapped: &MappedDwarf, cube: &Dwarf, is_cube: bool) -> Result<StoreReport>;

    /// Rebuilds a stored cube (the reverse mapping).
    fn rebuild(&mut self, schema_id: i64) -> Result<Dwarf>;

    /// Total on-disk size of the store right now (flushes first).
    fn size(&mut self) -> Result<ByteSize>;
}

/// Id-space separation between stored schemas: record ids are
/// `schema_id * ID_SPAN + mapped id`, so many cubes can share the single-id
/// primary keys the paper's Table 1/3 layouts use.
pub const ID_SPAN: i64 = 10_000_000_000;

/// Offsets a mapped id into a schema's id space.
pub fn offset_id(schema_id: i64, mapped_id: i64) -> i64 {
    schema_id * ID_SPAN + mapped_id
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_rows() {
        let labels: Vec<&str> = ModelKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            vec!["MySQL-DWARF", "MySQL-Min", "NoSQL-DWARF", "NoSQL-Min"]
        );
    }

    #[test]
    fn id_spaces_do_not_collide() {
        assert!(offset_id(1, ID_SPAN - 1) < offset_id(2, 1));
        assert_eq!(offset_id(3, 7), 3 * ID_SPAN + 7);
    }

    #[test]
    fn factory_builds_every_kind() {
        for kind in ModelKind::ALL {
            let model = kind.build().unwrap();
            assert_eq!(model.kind(), kind);
        }
    }
}
