//! NoSQL-Min: Table 3 on the NoSQL engine.
//!
//! The DWARF Node construct is not stored — cells carry their parent and
//! pointer node ids, and nodes are rebuilt from those when needed. The cost
//! (§5.1): reconstruction needs lookups by `parentNodeId`/`childNodeId`, so
//! the cell table carries **two secondary indexes**. Each cell insert then
//! pays a read-before-write of the old row plus two posting writes (and
//! their commit-log entries), making this the slowest loader in Table 5;
//! the posting rows also inflate its size in Table 4.
//!
//! Table 3 omits a measure column, but leaf cells are meaningless without
//! one; we add `measure int` and record the deviation in DESIGN.md.

use super::{offset_id, ModelKind, SchemaModel, StoreReport};
use crate::error::{CoreError, Result};
use crate::mapping::{
    decode_schema_meta, encode_schema_meta, rebuild_cube, MappedDwarf, StoredCell,
};
use sc_dwarf::Dwarf;
use sc_encoding::ByteSize;
use sc_nosql::cql::ast::{SelectColumns, Statement, TableRef, WhereClause};
use sc_nosql::{CqlValue, Db, OpenOptions};
use std::time::Instant;

const KEYSPACE: &str = "smartcity_min";

fn table(name: &str) -> TableRef {
    TableRef {
        keyspace: KEYSPACE.into(),
        table: name.into(),
    }
}

/// The NoSQL-Min schema model.
#[derive(Debug)]
pub struct NosqlMinModel {
    db: Db,
}

impl NosqlMinModel {
    /// Creates a model over a fresh in-memory engine.
    pub fn in_memory() -> NosqlMinModel {
        NosqlMinModel {
            db: Db::open(OpenOptions::default()).expect("in-memory open cannot fail"),
        }
    }

    /// Access to the underlying engine.
    pub fn db_mut(&mut self) -> &mut Db {
        &mut self.db
    }

    fn next_cube_id(&mut self) -> Result<i64> {
        let r = self.db.execute(&Statement::select(
            table("dwarf_cube"),
            SelectColumns::named(["id"]),
            None,
            None,
        ))?;
        Ok(r.iter()
            .filter_map(|row| row.get_int("id").ok())
            .max()
            .unwrap_or(0)
            + 1)
    }

    fn cube_row(&mut self, cube_id: i64) -> Result<(i64, String)> {
        let r = self.db.execute(&Statement::select(
            table("dwarf_cube"),
            SelectColumns::named(["entry_node_id", "schema_meta"]),
            Some(WhereClause::eq("id", CqlValue::Int(cube_id))),
            None,
        ))?;
        let row = r.first().ok_or(CoreError::UnknownSchema(cube_id))?;
        let entry = row.get_int("entry_node_id")?;
        let meta = row.get_text("schema_meta")?.to_string();
        Ok((entry, meta))
    }
}

impl SchemaModel for NosqlMinModel {
    fn kind(&self) -> ModelKind {
        ModelKind::NosqlMin
    }

    fn create_schema(&mut self) -> Result<()> {
        self.db
            .execute_cql(&format!("CREATE KEYSPACE {KEYSPACE}"))?;
        self.db.execute_cql(&format!(
            "CREATE TABLE {KEYSPACE}.dwarf_cube (id int, node_count int, \
             cell_count int, size_as_mb int, entry_node_id int, schema_meta text, \
             PRIMARY KEY (id))"
        ))?;
        self.db.execute_cql(&format!(
            "CREATE TABLE {KEYSPACE}.dwarf_cell (id int, item_name text, \
             measure int, leaf boolean, root boolean, cubeid int, \
             parentNodeId int, childNodeId int, PRIMARY KEY (id))"
        ))?;
        // The two secondary indexes §5's Storage Time discussion blames.
        self.db.execute_cql(&format!(
            "CREATE INDEX ON {KEYSPACE}.dwarf_cell (parentNodeId)"
        ))?;
        self.db.execute_cql(&format!(
            "CREATE INDEX ON {KEYSPACE}.dwarf_cell (childNodeId)"
        ))?;
        Ok(())
    }

    fn store(&mut self, mapped: &MappedDwarf, cube: &Dwarf, _is_cube: bool) -> Result<StoreReport> {
        let cube_id = self.next_cube_id()?;
        let mut statements = 0usize;
        let start = Instant::now();
        self.db.execute(&Statement::Insert {
            table: table("dwarf_cube"),
            columns: vec![
                "id".into(),
                "node_count".into(),
                "cell_count".into(),
                "size_as_mb".into(),
                "entry_node_id".into(),
                "schema_meta".into(),
            ],
            values: vec![
                CqlValue::Int(cube_id),
                CqlValue::Int(mapped.node_count() as i64),
                CqlValue::Int(mapped.cell_count() as i64),
                CqlValue::Int(0),
                CqlValue::Int(offset_id(cube_id, mapped.entry_node_id)),
                CqlValue::Text(encode_schema_meta(cube.schema())),
            ],
        })?;
        statements += 1;
        let entry = mapped.entry_node_id;
        // Reusable prepared statement, rebound per cell.
        let mut cell_stmt = Statement::Insert {
            table: table("dwarf_cell"),
            columns: vec![
                "id".into(),
                "item_name".into(),
                "measure".into(),
                "leaf".into(),
                "root".into(),
                "cubeid".into(),
                "parentNodeId".into(),
                "childNodeId".into(),
            ],
            values: vec![CqlValue::Null; 8],
        };
        for cell in &mapped.cells {
            if let Statement::Insert { values, .. } = &mut cell_stmt {
                values[0] = CqlValue::Int(offset_id(cube_id, cell.id));
                values[1] = CqlValue::Text(cell.key.clone());
                values[2] = CqlValue::Int(cell.measure);
                values[3] = CqlValue::Boolean(cell.leaf);
                values[4] = CqlValue::Boolean(cell.parent_node == entry);
                values[5] = CqlValue::Int(cube_id);
                values[6] = CqlValue::Int(offset_id(cube_id, cell.parent_node));
                values[7] = match cell.pointer_node {
                    Some(p) => CqlValue::Int(offset_id(cube_id, p)),
                    None => CqlValue::Null,
                };
            }
            self.db.execute(&cell_stmt)?;
            statements += 1;
        }
        let elapsed = start.elapsed();
        self.db.flush_all()?;
        let size = self.db.keyspace_size(KEYSPACE)?;
        let (entry_stored, meta) = self.cube_row(cube_id)?;
        self.db.execute(&Statement::Insert {
            table: table("dwarf_cube"),
            columns: vec![
                "id".into(),
                "node_count".into(),
                "cell_count".into(),
                "size_as_mb".into(),
                "entry_node_id".into(),
                "schema_meta".into(),
            ],
            values: vec![
                CqlValue::Int(cube_id),
                CqlValue::Int(mapped.node_count() as i64),
                CqlValue::Int(mapped.cell_count() as i64),
                CqlValue::Int(size.as_mb_rounded() as i64),
                CqlValue::Int(entry_stored),
                CqlValue::Text(meta),
            ],
        })?;
        Ok(StoreReport {
            schema_id: cube_id,
            node_rows: 0,
            cell_rows: mapped.cell_count(),
            statements,
            elapsed,
            size,
        })
    }

    fn rebuild(&mut self, cube_id: i64) -> Result<Dwarf> {
        let (entry, meta) = self.cube_row(cube_id)?;
        let schema = decode_schema_meta(&meta)?;
        let r = self.db.execute(&Statement::select(
            table("dwarf_cell"),
            SelectColumns::named([
                "item_name",
                "measure",
                "parentNodeId",
                "childNodeId",
                "leaf",
            ]),
            Some(WhereClause::eq("cubeid", CqlValue::Int(cube_id))),
            None,
        ))?;
        let mut cells = Vec::with_capacity(r.len());
        for row in r.rows() {
            cells.push(StoredCell {
                key: row.get_text("item_name")?.to_string(),
                measure: row.get_int("measure")?,
                parent_node: row.get_int("parentNodeId")?,
                pointer_node: row.get_opt_int("childNodeId")?,
                leaf: row.get_bool("leaf")?,
            });
        }
        rebuild_cube(schema, entry, &cells)
    }

    fn size(&mut self) -> Result<ByteSize> {
        self.db.flush_all()?;
        Ok(self.db.keyspace_size(KEYSPACE)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_dwarf::{CubeSchema, TupleSet};

    fn cube() -> Dwarf {
        let schema = CubeSchema::new(["day", "station"], "hires");
        let mut ts = TupleSet::new(&schema);
        ts.push(["mon", "a"], 1);
        ts.push(["mon", "b"], 2);
        ts.push(["tue", "a"], 4);
        Dwarf::build(schema, ts)
    }

    #[test]
    fn store_and_rebuild_roundtrip() {
        let c = cube();
        let mut model = NosqlMinModel::in_memory();
        model.create_schema().unwrap();
        let report = model.store(&MappedDwarf::new(&c), &c, false).unwrap();
        assert_eq!(report.node_rows, 0, "Min layouts store no node rows");
        let back = model.rebuild(report.schema_id).unwrap();
        assert_eq!(back.extract_tuples(), c.extract_tuples());
    }

    #[test]
    fn secondary_index_supports_node_reconstruction() {
        let c = cube();
        let mut model = NosqlMinModel::in_memory();
        model.create_schema().unwrap();
        let report = model.store(&MappedDwarf::new(&c), &c, false).unwrap();
        // Rebuild a node by querying its cells via the parentNodeId index —
        // the access path the schema exists to serve.
        let entry = offset_id(report.schema_id, 1);
        let r = model
            .db_mut()
            .execute_cql(&format!(
                "SELECT item_name FROM smartcity_min.dwarf_cell WHERE parentNodeId = {entry}"
            ))
            .unwrap();
        assert!(!r.is_empty());
    }

    #[test]
    fn indexes_make_it_bigger_than_nosql_dwarf() {
        let c = cube();
        let mut min = NosqlMinModel::in_memory();
        min.create_schema().unwrap();
        let min_report = min.store(&MappedDwarf::new(&c), &c, false).unwrap();
        let mut full = super::super::NosqlDwarfModel::in_memory();
        full.create_schema().unwrap();
        let full_report = full.store(&MappedDwarf::new(&c), &c, false).unwrap();
        // Same cells stored; Min pays for two index CFs. (On tiny cubes the
        // node CF may still dominate, so compare per-statement sizes only
        // loosely: Min must at minimum not be smaller per cell.)
        assert!(
            min_report.size.as_bytes() * (full_report.cell_rows as u64)
                >= full_report.size.as_bytes() * (min_report.cell_rows as u64) / 2
        );
    }
}
