//! MySQL-DWARF: the Figure 4 relational schema.
//!
//! "This schema was chosen as it most accurately describes a dwarf
//! structure in a relational database" — nodes and cells are entity tables,
//! and because a node contains many cells and many cells point at shared
//! nodes, the `NODE_CHILDREN` and `CELL_CHILDREN` tables record **one row
//! per relationship edge**. Every edge row pays InnoDB record overhead and
//! foreign-key validation, which is why this model is the largest in Table
//! 4 and the second slowest in Table 5.

use super::{offset_id, ModelKind, SchemaModel, StoreReport};
use crate::error::{CoreError, Result};
use crate::mapping::{
    decode_schema_meta, encode_schema_meta, rebuild_cube, MappedDwarf, StoredCell,
};
use sc_dwarf::Dwarf;
use sc_encoding::ByteSize;
use sc_relational::sql::ast::{
    ColumnRef, Predicate, Projection, SqlStatement, TableFactor, TableName,
};
use sc_relational::{Db, SqlValue};
use std::collections::HashMap;
use std::time::Instant;

const DATABASE: &str = "dwarf";

/// Default rows per INSERT statement. The paper's transformation (§4)
/// generates one INSERT command per node/cell, so the default is 1;
/// the multi-row ablation raises it via [`MysqlDwarfModel::insert_batch`].
pub const DEFAULT_INSERT_BATCH: usize = 1;

fn table(name: &str) -> TableName {
    TableName {
        database: DATABASE.into(),
        table: name.into(),
    }
}

fn factor(name: &str) -> TableFactor {
    TableFactor {
        name: table(name),
        alias: None,
    }
}

fn col(name: &str) -> ColumnRef {
    ColumnRef {
        qualifier: None,
        column: name.into(),
    }
}

/// The MySQL-DWARF schema model.
#[derive(Debug)]
pub struct MysqlDwarfModel {
    db: Db,
    /// Rows per INSERT statement (1 = the paper's per-record commands).
    pub insert_batch: usize,
}

impl MysqlDwarfModel {
    /// Creates a model over a fresh in-memory engine.
    pub fn in_memory() -> MysqlDwarfModel {
        MysqlDwarfModel {
            db: Db::in_memory(),
            insert_batch: DEFAULT_INSERT_BATCH,
        }
    }

    /// Sets the rows-per-statement batch size (multi-row INSERT ablation).
    pub fn with_insert_batch(mut self, batch: usize) -> MysqlDwarfModel {
        assert!(batch > 0, "batch must be positive");
        self.insert_batch = batch;
        self
    }

    /// Access to the underlying engine.
    pub fn db_mut(&mut self) -> &mut Db {
        &mut self.db
    }

    /// The Figure 4 DDL, exposed so the `repro` binary can print it.
    pub fn ddl() -> Vec<String> {
        vec![
            format!("CREATE DATABASE {DATABASE}"),
            format!(
                "CREATE TABLE {DATABASE}.dwarf_schema (id INT NOT NULL, \
                 node_count INT, cell_count INT, size_as_mb INT, \
                 entry_node_id INT, is_cube BOOL, schema_meta TEXT, \
                 PRIMARY KEY (id))"
            ),
            format!(
                "CREATE TABLE {DATABASE}.node (id INT NOT NULL, root BOOL, \
                 schema_id INT, PRIMARY KEY (id), INDEX (schema_id), \
                 FOREIGN KEY (schema_id) REFERENCES dwarf_schema (id))"
            ),
            format!(
                "CREATE TABLE {DATABASE}.cell (id INT NOT NULL, item_key TEXT, \
                 measure INT, leaf BOOL, schema_id INT, dimension_table_name TEXT, \
                 PRIMARY KEY (id), INDEX (schema_id), \
                 FOREIGN KEY (schema_id) REFERENCES dwarf_schema (id))"
            ),
            format!(
                "CREATE TABLE {DATABASE}.node_children (id INT NOT NULL, \
                 node_id INT, cell_id INT, PRIMARY KEY (id), INDEX (node_id), \
                 FOREIGN KEY (node_id) REFERENCES node (id), \
                 FOREIGN KEY (cell_id) REFERENCES cell (id))"
            ),
            format!(
                "CREATE TABLE {DATABASE}.cell_children (id INT NOT NULL, \
                 cell_id INT, node_id INT, PRIMARY KEY (id), INDEX (cell_id), \
                 FOREIGN KEY (cell_id) REFERENCES cell (id), \
                 FOREIGN KEY (node_id) REFERENCES node (id))"
            ),
        ]
    }

    fn next_schema_id(&mut self) -> Result<i64> {
        let r = self.db.execute(&SqlStatement::Select {
            projection: Projection::Columns(vec![col("id")]),
            from: factor("dwarf_schema"),
            join: None,
            predicates: vec![],
            limit: None,
        })?;
        Ok(r.rows
            .iter()
            .filter_map(|row| row[0].as_int())
            .max()
            .unwrap_or(0)
            + 1)
    }

    fn schema_row(&mut self, schema_id: i64) -> Result<(i64, String)> {
        let r = self.db.execute(&SqlStatement::Select {
            projection: Projection::Columns(vec![col("entry_node_id"), col("schema_meta")]),
            from: factor("dwarf_schema"),
            join: None,
            predicates: vec![Predicate {
                column: col("id"),
                value: SqlValue::Int(schema_id),
            }],
            limit: None,
        })?;
        let row = r.rows.first().ok_or(CoreError::UnknownSchema(schema_id))?;
        Ok((
            row[0]
                .as_int()
                .ok_or_else(|| CoreError::Inconsistent("entry_node_id not int".into()))?,
            row[1]
                .as_text()
                .ok_or_else(|| CoreError::Inconsistent("schema_meta not text".into()))?
                .to_string(),
        ))
    }

    /// Executes inserts streamed from an iterator, one statement per
    /// `insert_batch` rows. The statement template is built once and its
    /// row buffer rebound per execution (a prepared statement).
    fn bulk_insert_iter(
        &mut self,
        name: &str,
        columns: &[&str],
        rows: impl Iterator<Item = Vec<SqlValue>>,
        statements: &mut usize,
    ) -> Result<()> {
        let batch = self.insert_batch;
        let mut stmt = SqlStatement::Insert {
            table: table(name),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::with_capacity(batch),
        };
        for row in rows {
            if let SqlStatement::Insert { rows, .. } = &mut stmt {
                rows.push(row);
                if rows.len() < batch {
                    continue;
                }
            }
            self.db.execute(&stmt)?;
            *statements += 1;
            if let SqlStatement::Insert { rows, .. } = &mut stmt {
                rows.clear();
            }
        }
        if let SqlStatement::Insert { rows, .. } = &stmt {
            if rows.is_empty() {
                return Ok(());
            }
        }
        self.db.execute(&stmt)?;
        *statements += 1;
        Ok(())
    }
}

impl SchemaModel for MysqlDwarfModel {
    fn kind(&self) -> ModelKind {
        ModelKind::MysqlDwarf
    }

    fn create_schema(&mut self) -> Result<()> {
        for ddl in Self::ddl() {
            self.db.execute_sql(&ddl)?;
        }
        Ok(())
    }

    fn store(&mut self, mapped: &MappedDwarf, cube: &Dwarf, is_cube: bool) -> Result<StoreReport> {
        let schema_id = self.next_schema_id()?;
        let mut statements = 0usize;
        let start = Instant::now();
        self.db.execute(&SqlStatement::Insert {
            table: table("dwarf_schema"),
            columns: vec![
                "id".into(),
                "node_count".into(),
                "cell_count".into(),
                "size_as_mb".into(),
                "entry_node_id".into(),
                "is_cube".into(),
                "schema_meta".into(),
            ],
            rows: vec![vec![
                SqlValue::Int(schema_id),
                SqlValue::Int(mapped.node_count() as i64),
                SqlValue::Int(mapped.cell_count() as i64),
                SqlValue::Int(0),
                SqlValue::Int(offset_id(schema_id, mapped.entry_node_id)),
                SqlValue::Bool(is_cube),
                SqlValue::Text(encode_schema_meta(cube.schema())),
            ]],
        })?;
        statements += 1;
        // Stream every row group in INSERT_BATCH-row multi-row statements
        // so million-cell cubes never materialize all rows at once.
        self.bulk_insert_iter(
            "node",
            &["id", "root", "schema_id"],
            mapped.nodes.iter().map(|n| {
                vec![
                    SqlValue::Int(offset_id(schema_id, n.id)),
                    SqlValue::Bool(n.root),
                    SqlValue::Int(schema_id),
                ]
            }),
            &mut statements,
        )?;
        self.bulk_insert_iter(
            "cell",
            &[
                "id",
                "item_key",
                "measure",
                "leaf",
                "schema_id",
                "dimension_table_name",
            ],
            mapped.cells.iter().map(|c| {
                vec![
                    SqlValue::Int(offset_id(schema_id, c.id)),
                    SqlValue::Text(c.key.clone()),
                    SqlValue::Int(c.measure),
                    SqlValue::Bool(c.leaf),
                    SqlValue::Int(schema_id),
                    SqlValue::Text(c.dimension.clone()),
                ]
            }),
            &mut statements,
        )?;
        // One row per node->cell containment edge...
        self.bulk_insert_iter(
            "node_children",
            &["id", "node_id", "cell_id"],
            mapped
                .nodes
                .iter()
                .flat_map(|n| n.child_cell_ids.iter().map(move |&cell_id| (n.id, cell_id)))
                .enumerate()
                .map(|(i, (node_id, cell_id))| {
                    vec![
                        SqlValue::Int(offset_id(schema_id, i as i64 + 1)),
                        SqlValue::Int(offset_id(schema_id, node_id)),
                        SqlValue::Int(offset_id(schema_id, cell_id)),
                    ]
                }),
            &mut statements,
        )?;
        // ...and one per cell->node pointer edge.
        self.bulk_insert_iter(
            "cell_children",
            &["id", "cell_id", "node_id"],
            mapped
                .cells
                .iter()
                .filter_map(|c| c.pointer_node.map(|target| (c.id, target)))
                .enumerate()
                .map(|(i, (cell_id, target))| {
                    vec![
                        SqlValue::Int(offset_id(schema_id, i as i64 + 1)),
                        SqlValue::Int(offset_id(schema_id, cell_id)),
                        SqlValue::Int(offset_id(schema_id, target)),
                    ]
                }),
            &mut statements,
        )?;
        let elapsed = start.elapsed();

        self.db.checkpoint_all()?;
        let size = ByteSize::bytes(self.db.database_size(DATABASE)?.as_bytes());
        // Write the measured size back (delete + reinsert: our SQL subset
        // has no UPDATE, and the schema row is one row).
        let (entry, meta) = self.schema_row(schema_id)?;
        self.db.execute(&SqlStatement::Delete {
            table: table("dwarf_schema"),
            predicate: Predicate {
                column: col("id"),
                value: SqlValue::Int(schema_id),
            },
        })?;
        self.db.execute(&SqlStatement::Insert {
            table: table("dwarf_schema"),
            columns: vec![
                "id".into(),
                "node_count".into(),
                "cell_count".into(),
                "size_as_mb".into(),
                "entry_node_id".into(),
                "is_cube".into(),
                "schema_meta".into(),
            ],
            rows: vec![vec![
                SqlValue::Int(schema_id),
                SqlValue::Int(mapped.node_count() as i64),
                SqlValue::Int(mapped.cell_count() as i64),
                SqlValue::Int(size.as_mb_rounded() as i64),
                SqlValue::Int(entry),
                SqlValue::Bool(is_cube),
                SqlValue::Text(meta),
            ]],
        })?;
        Ok(StoreReport {
            schema_id,
            node_rows: mapped.node_count(),
            cell_rows: mapped.cell_count(),
            statements,
            elapsed,
            size,
        })
    }

    fn rebuild(&mut self, schema_id: i64) -> Result<Dwarf> {
        let (entry, meta) = self.schema_row(schema_id)?;
        let schema = decode_schema_meta(&meta)?;
        // Cells of this schema (indexed access path on schema_id).
        let cell_rows = self.db.execute(&SqlStatement::Select {
            projection: Projection::Columns(vec![
                col("id"),
                col("item_key"),
                col("measure"),
                col("leaf"),
            ]),
            from: factor("cell"),
            join: None,
            predicates: vec![Predicate {
                column: col("schema_id"),
                value: SqlValue::Int(schema_id),
            }],
            limit: None,
        })?;
        // Edges: scan and keep those touching this schema's id space.
        let lo = schema_id * super::ID_SPAN;
        let hi = lo + super::ID_SPAN;
        let in_space = |id: i64| id >= lo && id < hi;
        let containment = self.db.execute(&SqlStatement::Select {
            projection: Projection::Columns(vec![col("node_id"), col("cell_id")]),
            from: factor("node_children"),
            join: None,
            predicates: vec![],
            limit: None,
        })?;
        let pointers = self.db.execute(&SqlStatement::Select {
            projection: Projection::Columns(vec![col("cell_id"), col("node_id")]),
            from: factor("cell_children"),
            join: None,
            predicates: vec![],
            limit: None,
        })?;
        let mut parent_of: HashMap<i64, i64> = HashMap::new();
        for row in &containment.rows {
            let (node, cell) = (
                row[0].as_int().unwrap_or_default(),
                row[1].as_int().unwrap_or_default(),
            );
            if in_space(node) {
                parent_of.insert(cell, node);
            }
        }
        let mut pointer_of: HashMap<i64, i64> = HashMap::new();
        for row in &pointers.rows {
            let (cell, node) = (
                row[0].as_int().unwrap_or_default(),
                row[1].as_int().unwrap_or_default(),
            );
            if in_space(cell) {
                pointer_of.insert(cell, node);
            }
        }
        let mut cells = Vec::with_capacity(cell_rows.rows.len());
        for row in &cell_rows.rows {
            let id = row[0]
                .as_int()
                .ok_or_else(|| CoreError::Inconsistent("cell id not int".into()))?;
            let parent = *parent_of.get(&id).ok_or_else(|| {
                CoreError::Inconsistent(format!("cell {id} has no containment edge"))
            })?;
            cells.push(StoredCell {
                key: row[1]
                    .as_text()
                    .ok_or_else(|| CoreError::Inconsistent("item_key not text".into()))?
                    .to_string(),
                measure: row[2]
                    .as_int()
                    .ok_or_else(|| CoreError::Inconsistent("measure not int".into()))?,
                parent_node: parent,
                pointer_node: pointer_of.get(&id).copied(),
                leaf: row[3]
                    .as_bool()
                    .ok_or_else(|| CoreError::Inconsistent("leaf not bool".into()))?,
            });
        }
        rebuild_cube(schema, entry, &cells)
    }

    fn size(&mut self) -> Result<ByteSize> {
        self.db.checkpoint_all()?;
        Ok(self.db.database_size(DATABASE)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_dwarf::{CubeSchema, Selection, TupleSet};

    fn cube() -> Dwarf {
        let schema = CubeSchema::new(["country", "city", "station"], "bikes");
        let mut ts = TupleSet::new(&schema);
        ts.push(["Ireland", "Dublin", "Fenian St"], 3);
        ts.push(["Ireland", "Dublin", "Smithfield"], 5);
        ts.push(["Ireland", "Cork", "Patrick St"], 2);
        ts.push(["France", "Paris", "Bastille"], 7);
        Dwarf::build(schema, ts)
    }

    #[test]
    fn ddl_parses_and_applies() {
        let mut model = MysqlDwarfModel::in_memory();
        model.create_schema().unwrap();
        // Fig. 4's five tables exist.
        for t in [
            "dwarf_schema",
            "node",
            "cell",
            "node_children",
            "cell_children",
        ] {
            let r = model
                .db_mut()
                .execute_sql(&format!("SELECT * FROM dwarf.{t}"))
                .unwrap();
            assert!(r.rows.is_empty());
        }
    }

    #[test]
    fn store_and_rebuild_roundtrip() {
        let c = cube();
        let mut model = MysqlDwarfModel::in_memory();
        model.create_schema().unwrap();
        let mapped = MappedDwarf::new(&c);
        let report = model.store(&mapped, &c, false).unwrap();
        assert!(report.size.as_bytes() > 0);
        let back = model.rebuild(report.schema_id).unwrap();
        assert_eq!(back.extract_tuples(), c.extract_tuples());
        let sel = vec![Selection::All, Selection::value("Dublin"), Selection::All];
        assert_eq!(back.point(&sel), c.point(&sel));
    }

    #[test]
    fn edge_tables_record_every_relationship() {
        let c = cube();
        let mut model = MysqlDwarfModel::in_memory();
        model.create_schema().unwrap();
        let mapped = MappedDwarf::new(&c);
        model.store(&mapped, &c, false).unwrap();
        let containment = model
            .db_mut()
            .execute_sql("SELECT * FROM dwarf.node_children")
            .unwrap();
        // One containment row per cell (every cell lives in exactly one node).
        assert_eq!(containment.rows.len(), mapped.cell_count());
        let pointers = model
            .db_mut()
            .execute_sql("SELECT * FROM dwarf.cell_children")
            .unwrap();
        let expected = mapped
            .cells
            .iter()
            .filter(|c| c.pointer_node.is_some())
            .count();
        assert_eq!(pointers.rows.len(), expected);
    }

    #[test]
    fn join_query_over_figure4_schema() {
        // The relational design's selling point: SQL joins over the
        // structure. Count cells of the root node via a join.
        let c = cube();
        let mut model = MysqlDwarfModel::in_memory();
        model.create_schema().unwrap();
        let mapped = MappedDwarf::new(&c);
        let report = model.store(&mapped, &c, false).unwrap();
        let root_id = offset_id(report.schema_id, mapped.entry_node_id);
        let r = model
            .db_mut()
            .execute_sql(&format!(
                "SELECT c.item_key FROM dwarf.node_children AS e \
                 JOIN dwarf.cell AS c ON e.cell_id = c.id \
                 WHERE e.node_id = {root_id}"
            ))
            .unwrap();
        // Root has France + Ireland + ALL.
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn multiple_schemas_roundtrip_independently() {
        let c = cube();
        let mut model = MysqlDwarfModel::in_memory();
        model.create_schema().unwrap();
        let r1 = model.store(&MappedDwarf::new(&c), &c, false).unwrap();
        let r2 = model.store(&MappedDwarf::new(&c), &c, true).unwrap();
        assert_ne!(r1.schema_id, r2.schema_id);
        assert_eq!(
            model.rebuild(r1.schema_id).unwrap().extract_tuples(),
            model.rebuild(r2.schema_id).unwrap().extract_tuples()
        );
    }
}
