//! The paper's proposed model: Table 1 on the NoSQL engine.
//!
//! Three column families — `DWARF_Schema`, `DWARF_Node`, `DWARF_Cell` —
//! with one primary-key index each and **no secondary indexes**. Node→cell
//! relationships live in `set<int>` columns, so each node costs one insert
//! regardless of fan-out; that is what wins Tables 4 and 5.

use super::{offset_id, ModelKind, SchemaModel, StoreReport};
use crate::error::{CoreError, Result};
use crate::mapping::{
    decode_schema_meta, encode_schema_meta, rebuild_cube, MappedDwarf, StoredCell,
};
use sc_dwarf::Dwarf;
use sc_encoding::ByteSize;
use sc_nosql::cql::ast::{SelectColumns, Statement, TableRef, WhereClause};
use sc_nosql::{CqlValue, Db, OpenOptions};
use sc_storage::Vfs;
use std::time::Instant;

const KEYSPACE: &str = "smartcity";

fn table(name: &str) -> TableRef {
    TableRef {
        keyspace: KEYSPACE.into(),
        table: name.into(),
    }
}

/// The NoSQL-DWARF schema model.
#[derive(Debug)]
pub struct NosqlDwarfModel {
    db: Db,
}

impl NosqlDwarfModel {
    /// Creates a model over a fresh in-memory engine.
    pub fn in_memory() -> NosqlDwarfModel {
        NosqlDwarfModel {
            db: Db::open(OpenOptions::default()).expect("in-memory open cannot fail"),
        }
    }

    /// Opens a model over `vfs`, replaying whatever an earlier engine
    /// persisted there (schema journal, commit log, manifest, SSTables).
    pub fn open(vfs: Vfs) -> Result<NosqlDwarfModel> {
        let db = Db::open(OpenOptions::default().vfs(vfs).recover(true))?;
        Ok(NosqlDwarfModel { db })
    }

    /// Creates a model over an existing engine (shared keyspaces).
    pub fn with_db(db: Db) -> NosqlDwarfModel {
        NosqlDwarfModel { db }
    }

    /// Access to the underlying engine (store-backed queries, diagnostics).
    pub fn db_mut(&mut self) -> &mut Db {
        &mut self.db
    }

    fn next_schema_id(&mut self) -> Result<i64> {
        let r = self.db.execute(&Statement::select(
            table("dwarf_schema"),
            SelectColumns::named(["id"]),
            None,
            None,
        ))?;
        Ok(r.iter()
            .filter_map(|row| row.get_int("id").ok())
            .max()
            .unwrap_or(0)
            + 1)
    }

    fn schema_row(&mut self, schema_id: i64) -> Result<(i64, String)> {
        let r = self.db.execute(&Statement::select(
            table("dwarf_schema"),
            SelectColumns::named(["entry_node_id", "schema_meta"]),
            Some(WhereClause::eq("id", CqlValue::Int(schema_id))),
            None,
        ))?;
        let row = r.first().ok_or(CoreError::UnknownSchema(schema_id))?;
        let entry = row.get_int("entry_node_id")?;
        let meta = row.get_text("schema_meta")?.to_string();
        Ok((entry, meta))
    }

    /// The statements `store` executes, exposed for the prepared-vs-text
    /// ablation and Figure 3 demonstrations.
    pub fn insert_statements(
        mapped: &MappedDwarf,
        cube: &Dwarf,
        schema_id: i64,
        is_cube: bool,
    ) -> Vec<Statement> {
        let mut out = Vec::with_capacity(1 + mapped.nodes.len() + mapped.cells.len());
        out.push(Statement::Insert {
            table: table("dwarf_schema"),
            columns: vec![
                "id".into(),
                "node_count".into(),
                "cell_count".into(),
                "size_as_mb".into(),
                "entry_node_id".into(),
                "is_cube".into(),
                "schema_meta".into(),
            ],
            values: vec![
                CqlValue::Int(schema_id),
                CqlValue::Int(mapped.node_count() as i64),
                CqlValue::Int(mapped.cell_count() as i64),
                CqlValue::Int(0),
                CqlValue::Int(offset_id(schema_id, mapped.entry_node_id)),
                CqlValue::Boolean(is_cube),
                CqlValue::Text(encode_schema_meta(cube.schema())),
            ],
        });
        for node in &mapped.nodes {
            out.push(Statement::Insert {
                table: table("dwarf_node"),
                columns: vec![
                    "id".into(),
                    "parentIds".into(),
                    "childrenIds".into(),
                    "root".into(),
                    "schema_id".into(),
                ],
                values: vec![
                    CqlValue::Int(offset_id(schema_id, node.id)),
                    CqlValue::int_set(
                        node.parent_cell_ids
                            .iter()
                            .map(|&id| offset_id(schema_id, id)),
                    ),
                    CqlValue::int_set(
                        node.child_cell_ids
                            .iter()
                            .map(|&id| offset_id(schema_id, id)),
                    ),
                    CqlValue::Boolean(node.root),
                    CqlValue::Int(schema_id),
                ],
            });
        }
        for cell in &mapped.cells {
            out.push(Statement::Insert {
                table: table("dwarf_cell"),
                columns: vec![
                    "id".into(),
                    "key".into(),
                    "measure".into(),
                    "parentNode".into(),
                    "pointerNode".into(),
                    "leaf".into(),
                    "schema_id".into(),
                    "dimension_table_name".into(),
                ],
                values: vec![
                    CqlValue::Int(offset_id(schema_id, cell.id)),
                    CqlValue::Text(cell.key.clone()),
                    CqlValue::Int(cell.measure),
                    CqlValue::Int(offset_id(schema_id, cell.parent_node)),
                    match cell.pointer_node {
                        Some(p) => CqlValue::Int(offset_id(schema_id, p)),
                        None => CqlValue::Null,
                    },
                    CqlValue::Boolean(cell.leaf),
                    CqlValue::Int(schema_id),
                    CqlValue::Text(cell.dimension.clone()),
                ],
            });
        }
        out
    }

    /// Ablation path: render every statement to CQL text and re-parse it,
    /// measuring what the text round-trip costs versus prepared statements.
    pub fn store_via_text(
        &mut self,
        mapped: &MappedDwarf,
        cube: &Dwarf,
        is_cube: bool,
    ) -> Result<StoreReport> {
        let schema_id = self.next_schema_id()?;
        let statements = Self::insert_statements(mapped, cube, schema_id, is_cube);
        let start = Instant::now();
        for stmt in &statements {
            self.db.execute_cql(&stmt.to_cql())?;
        }
        let elapsed = start.elapsed();
        self.finish_store(mapped, schema_id, statements.len(), elapsed)
    }

    fn finish_store(
        &mut self,
        mapped: &MappedDwarf,
        schema_id: i64,
        statements: usize,
        elapsed: std::time::Duration,
    ) -> Result<StoreReport> {
        self.db.flush_all()?;
        let size = self.db.keyspace_size(KEYSPACE)?;
        // The paper's final step: query the store's size and update
        // `size_as_mb` on the schema row (an upsert re-binding only the
        // changed column would lose the others in our row-replace model, so
        // rewrite the full row).
        let (entry, meta) = self.schema_row(schema_id)?;
        self.db.execute(&Statement::Insert {
            table: table("dwarf_schema"),
            columns: vec![
                "id".into(),
                "node_count".into(),
                "cell_count".into(),
                "size_as_mb".into(),
                "entry_node_id".into(),
                "is_cube".into(),
                "schema_meta".into(),
            ],
            values: vec![
                CqlValue::Int(schema_id),
                CqlValue::Int(mapped.node_count() as i64),
                CqlValue::Int(mapped.cell_count() as i64),
                CqlValue::Int(size.as_mb_rounded() as i64),
                CqlValue::Int(entry),
                CqlValue::Boolean(false),
                CqlValue::Text(meta),
            ],
        })?;
        Ok(StoreReport {
            schema_id,
            node_rows: mapped.node_count(),
            cell_rows: mapped.cell_count(),
            statements,
            elapsed,
            size,
        })
    }
}

impl SchemaModel for NosqlDwarfModel {
    fn kind(&self) -> ModelKind {
        ModelKind::NosqlDwarf
    }

    fn create_schema(&mut self) -> Result<()> {
        self.db
            .execute_cql(&format!("CREATE KEYSPACE {KEYSPACE}"))?;
        self.db.execute_cql(&format!(
            "CREATE TABLE {KEYSPACE}.dwarf_schema (id int, node_count int, \
             cell_count int, size_as_mb int, entry_node_id int, is_cube boolean, \
             schema_meta text, PRIMARY KEY (id))"
        ))?;
        self.db.execute_cql(&format!(
            "CREATE TABLE {KEYSPACE}.dwarf_node (id int, parentIds set<int>, \
             childrenIds set<int>, root boolean, schema_id int, PRIMARY KEY (id))"
        ))?;
        self.db.execute_cql(&format!(
            "CREATE TABLE {KEYSPACE}.dwarf_cell (id int, key text, measure int, \
             parentNode int, pointerNode int, leaf boolean, schema_id int, \
             dimension_table_name text, PRIMARY KEY (id))"
        ))?;
        Ok(())
    }

    fn store(&mut self, mapped: &MappedDwarf, cube: &Dwarf, is_cube: bool) -> Result<StoreReport> {
        let schema_id = self.next_schema_id()?;
        // Stream statements: one reusable Insert per table whose value
        // buffer is rebound per record (a prepared statement), so storing a
        // million-cell cube never materializes a million ASTs.
        let mut statements = 0usize;
        let start = Instant::now();
        self.db.execute(&Statement::Insert {
            table: table("dwarf_schema"),
            columns: vec![
                "id".into(),
                "node_count".into(),
                "cell_count".into(),
                "size_as_mb".into(),
                "entry_node_id".into(),
                "is_cube".into(),
                "schema_meta".into(),
            ],
            values: vec![
                CqlValue::Int(schema_id),
                CqlValue::Int(mapped.node_count() as i64),
                CqlValue::Int(mapped.cell_count() as i64),
                CqlValue::Int(0),
                CqlValue::Int(offset_id(schema_id, mapped.entry_node_id)),
                CqlValue::Boolean(is_cube),
                CqlValue::Text(encode_schema_meta(cube.schema())),
            ],
        })?;
        statements += 1;
        let mut node_stmt = Statement::Insert {
            table: table("dwarf_node"),
            columns: vec![
                "id".into(),
                "parentIds".into(),
                "childrenIds".into(),
                "root".into(),
                "schema_id".into(),
            ],
            values: vec![CqlValue::Null; 5],
        };
        for node in &mapped.nodes {
            if let Statement::Insert { values, .. } = &mut node_stmt {
                values[0] = CqlValue::Int(offset_id(schema_id, node.id));
                values[1] = CqlValue::int_set(
                    node.parent_cell_ids
                        .iter()
                        .map(|&id| offset_id(schema_id, id)),
                );
                values[2] = CqlValue::int_set(
                    node.child_cell_ids
                        .iter()
                        .map(|&id| offset_id(schema_id, id)),
                );
                values[3] = CqlValue::Boolean(node.root);
                values[4] = CqlValue::Int(schema_id);
            }
            self.db.execute(&node_stmt)?;
            statements += 1;
        }
        let mut cell_stmt = Statement::Insert {
            table: table("dwarf_cell"),
            columns: vec![
                "id".into(),
                "key".into(),
                "measure".into(),
                "parentNode".into(),
                "pointerNode".into(),
                "leaf".into(),
                "schema_id".into(),
                "dimension_table_name".into(),
            ],
            values: vec![CqlValue::Null; 8],
        };
        for cell in &mapped.cells {
            if let Statement::Insert { values, .. } = &mut cell_stmt {
                values[0] = CqlValue::Int(offset_id(schema_id, cell.id));
                values[1] = CqlValue::Text(cell.key.clone());
                values[2] = CqlValue::Int(cell.measure);
                values[3] = CqlValue::Int(offset_id(schema_id, cell.parent_node));
                values[4] = match cell.pointer_node {
                    Some(p) => CqlValue::Int(offset_id(schema_id, p)),
                    None => CqlValue::Null,
                };
                values[5] = CqlValue::Boolean(cell.leaf);
                values[6] = CqlValue::Int(schema_id);
                values[7] = CqlValue::Text(cell.dimension.clone());
            }
            self.db.execute(&cell_stmt)?;
            statements += 1;
        }
        let elapsed = start.elapsed();
        self.finish_store(mapped, schema_id, statements, elapsed)
    }

    fn rebuild(&mut self, schema_id: i64) -> Result<Dwarf> {
        let (entry, meta) = self.schema_row(schema_id)?;
        let schema = decode_schema_meta(&meta)?;
        let r = self.db.execute(&Statement::select(
            table("dwarf_cell"),
            SelectColumns::named(["key", "measure", "parentNode", "pointerNode", "leaf"]),
            Some(WhereClause::eq("schema_id", CqlValue::Int(schema_id))),
            None,
        ))?;
        let mut cells = Vec::with_capacity(r.len());
        for row in r.rows() {
            cells.push(StoredCell {
                key: row.get_text("key")?.to_string(),
                measure: row.get_int("measure")?,
                parent_node: row.get_int("parentNode")?,
                pointer_node: row.get_opt_int("pointerNode")?,
                leaf: row.get_bool("leaf")?,
            });
        }
        rebuild_cube(schema, entry, &cells)
    }

    fn size(&mut self) -> Result<ByteSize> {
        self.db.flush_all()?;
        Ok(self.db.keyspace_size(KEYSPACE)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_dwarf::{CubeSchema, Selection, TupleSet};

    fn cube() -> Dwarf {
        let schema = CubeSchema::new(["country", "city", "station"], "bikes");
        let mut ts = TupleSet::new(&schema);
        ts.push(["Ireland", "Dublin", "Fenian St"], 3);
        ts.push(["Ireland", "Dublin", "Smithfield"], 5);
        ts.push(["Ireland", "Cork", "Patrick St"], 2);
        ts.push(["France", "Paris", "Bastille"], 7);
        Dwarf::build(schema, ts)
    }

    #[test]
    fn store_and_rebuild_roundtrip() {
        let c = cube();
        let mut model = NosqlDwarfModel::in_memory();
        model.create_schema().unwrap();
        let report = model.store(&MappedDwarf::new(&c), &c, false).unwrap();
        assert_eq!(report.schema_id, 1);
        assert!(report.node_rows > 0);
        assert!(report.cell_rows > report.node_rows);
        assert!(report.size.as_bytes() > 0);
        let back = model.rebuild(report.schema_id).unwrap();
        assert_eq!(back.extract_tuples(), c.extract_tuples());
        assert_eq!(back.schema(), c.schema());
        // Rebuilt cube answers queries identically.
        let sel = vec![Selection::value("Ireland"), Selection::All, Selection::All];
        assert_eq!(back.point(&sel), c.point(&sel));
    }

    #[test]
    fn multiple_schemas_coexist() {
        let c = cube();
        let mut model = NosqlDwarfModel::in_memory();
        model.create_schema().unwrap();
        let r1 = model.store(&MappedDwarf::new(&c), &c, false).unwrap();
        let r2 = model.store(&MappedDwarf::new(&c), &c, true).unwrap();
        assert_eq!(r1.schema_id, 1);
        assert_eq!(r2.schema_id, 2);
        assert_eq!(
            model.rebuild(1).unwrap().extract_tuples(),
            model.rebuild(2).unwrap().extract_tuples()
        );
        assert!(matches!(
            model.rebuild(99),
            Err(CoreError::UnknownSchema(99))
        ));
    }

    #[test]
    fn size_as_mb_written_back() {
        let c = cube();
        let mut model = NosqlDwarfModel::in_memory();
        model.create_schema().unwrap();
        let report = model.store(&MappedDwarf::new(&c), &c, false).unwrap();
        let r = model
            .db_mut()
            .execute_cql(&format!(
                "SELECT size_as_mb, node_count, cell_count FROM smartcity.dwarf_schema WHERE id = {}",
                report.schema_id
            ))
            .unwrap();
        let row = r.first().unwrap();
        assert_eq!(
            row.get_int("size_as_mb").unwrap(),
            report.size.as_mb_rounded() as i64
        );
        assert_eq!(row.get_int("node_count").unwrap(), report.node_rows as i64);
        assert_eq!(row.get_int("cell_count").unwrap(), report.cell_rows as i64);
    }

    #[test]
    fn text_path_equals_prepared_path() {
        let c = cube();
        let mut prepared = NosqlDwarfModel::in_memory();
        prepared.create_schema().unwrap();
        let rp = prepared.store(&MappedDwarf::new(&c), &c, false).unwrap();
        let mut text = NosqlDwarfModel::in_memory();
        text.create_schema().unwrap();
        let rt = text
            .store_via_text(&MappedDwarf::new(&c), &c, false)
            .unwrap();
        assert_eq!(rp.statements, rt.statements);
        assert_eq!(
            prepared.rebuild(rp.schema_id).unwrap().extract_tuples(),
            text.rebuild(rt.schema_id).unwrap().extract_tuples()
        );
    }

    #[test]
    fn node_rows_use_sets() {
        let c = cube();
        let mut model = NosqlDwarfModel::in_memory();
        model.create_schema().unwrap();
        model.store(&MappedDwarf::new(&c), &c, false).unwrap();
        let r = model
            .db_mut()
            .execute_cql("SELECT childrenIds FROM smartcity.dwarf_node LIMIT 1")
            .unwrap();
        assert!(matches!(
            r.rows()[0].get("childrenIds").unwrap(),
            CqlValue::IntSet(_)
        ));
    }
}
