//! Store-backed querying: answering cube queries directly from NoSQL rows.
//!
//! The paper stores cubes "for future retrieval and querying"; this module
//! implements the designed access path without rebuilding the whole DWARF
//! in memory. [`StoreBackedCube`] wraps a
//! [`StoreNodeSource`](crate::node_source::StoreNodeSource) — a cached,
//! batched cursor over the Table-1 layout — and runs the *same* generic
//! traversal algorithms (`point_over`, `range_over`, `slice_over`,
//! `group_by_over`) the in-memory [`sc_dwarf::Dwarf`] uses, so the store
//! path answers point, range, slice and group-by queries with identical
//! semantics. [`MinStoreBackedCube`] does the same over the Min layout's
//! reconstruct-per-node cursor.

use crate::error::{CoreError, Result};
use crate::models::{NosqlDwarfModel, NosqlMinModel};
use crate::node_source::{MinStoreNodeSource, ReadStats, StoreNodeSource};
use sc_dwarf::source::{group_by_over, point_over, range_over, slice_over};
use sc_dwarf::{CubeSchema, RangeSel, Selection};

/// A cube addressed by its stored rows.
#[derive(Debug)]
pub struct StoreBackedCube<'a> {
    source: StoreNodeSource<'a>,
}

impl<'a> StoreBackedCube<'a> {
    /// Opens a stored schema for querying with the default node-cache
    /// capacity ([`crate::node_source::DEFAULT_NODE_CACHE_CAPACITY`]).
    pub fn open(model: &'a mut NosqlDwarfModel, schema_id: i64) -> Result<StoreBackedCube<'a>> {
        Ok(StoreBackedCube {
            source: StoreNodeSource::open(model, schema_id)?,
        })
    }

    /// Opens a stored schema with an explicit node-cache capacity in nodes
    /// (`0` disables caching; every traversal step then hits the store).
    pub fn open_with_cache(
        model: &'a mut NosqlDwarfModel,
        schema_id: i64,
        cache_capacity: usize,
    ) -> Result<StoreBackedCube<'a>> {
        Ok(StoreBackedCube {
            source: StoreNodeSource::open_with_cache(model, schema_id, cache_capacity)?,
        })
    }

    /// The stored schema's cube schema.
    pub fn schema(&self) -> &CubeSchema {
        self.source.schema()
    }

    /// The stored schema id.
    pub fn schema_id(&self) -> i64 {
        self.source.schema_id()
    }

    /// Read counters accumulated so far (cache hits/misses, SELECTs
    /// issued, rows fetched).
    pub fn stats(&self) -> ReadStats {
        self.source.stats()
    }

    /// Zeroes the read counters; the node cache keeps its contents, so
    /// deltas after a reset measure warm-cache behaviour.
    pub fn reset_stats(&mut self) {
        self.source.reset_stats()
    }

    /// Starts a fluent selection over the stored cube. Dimensions left
    /// unmentioned default to ALL, so a point query only names what it
    /// constrains:
    ///
    /// ```ignore
    /// let total = cube.select().dim("station", "Fenian St").run()?;
    /// let by_city = cube.select().dim("city", "Dublin").all("station").run()?;
    /// ```
    pub fn select(&mut self) -> CubeSelect<'_, 'a> {
        let sel = vec![Selection::All; self.schema().num_dims()];
        CubeSelect {
            cube: self,
            sel,
            err: None,
        }
    }

    /// Point / group-by query straight off the store (same semantics as
    /// [`sc_dwarf::Dwarf::point`]).
    pub fn point(&mut self, sel: &[Selection]) -> Result<Option<i64>> {
        point_over(&mut self.source, sel).map_err(CoreError::from)
    }

    /// Range aggregate straight off the store (same semantics as
    /// [`sc_dwarf::Dwarf::range`]).
    pub fn range(&mut self, sel: &[RangeSel]) -> Result<Option<i64>> {
        range_over(&mut self.source, sel).map_err(CoreError::from)
    }

    /// Slice straight off the store (same semantics as
    /// [`sc_dwarf::Dwarf::slice`]): the matching base fact rows in sorted
    /// key order.
    pub fn slice(&mut self, sel: &[RangeSel]) -> Result<Vec<(Vec<String>, i64)>> {
        slice_over(&mut self.source, sel).map_err(CoreError::from)
    }

    /// GROUP BY straight off the store (same semantics as
    /// [`sc_dwarf::Dwarf::group_by`], except an unknown dimension name is
    /// reported as [`CoreError::UnknownDimension`]).
    pub fn group_by<S: AsRef<str>>(&mut self, dims: &[S]) -> Result<Vec<(Vec<String>, i64)>> {
        let schema = self.schema();
        let mut mask = vec![false; schema.num_dims()];
        for d in dims {
            let Some(i) = schema.dimension_index(d.as_ref()) else {
                return Err(CoreError::UnknownDimension(d.as_ref().to_string()));
            };
            mask[i] = true;
        }
        group_by_over(&mut self.source, &mask).map_err(CoreError::from)
    }
}

/// A fluent selection being built against a [`StoreBackedCube`].
///
/// Every dimension starts at [`Selection::All`]; [`CubeSelect::dim`] pins
/// one to a value and [`CubeSelect::all`] re-opens it. Naming a dimension
/// the schema doesn't have is remembered and reported by
/// [`CubeSelect::run`], so call chains stay unconditional.
#[derive(Debug)]
pub struct CubeSelect<'c, 'a> {
    cube: &'c mut StoreBackedCube<'a>,
    sel: Vec<Selection>,
    err: Option<CoreError>,
}

impl CubeSelect<'_, '_> {
    fn slot(&mut self, name: &str) -> Option<usize> {
        match self.cube.schema().dimension_index(name) {
            Some(i) => Some(i),
            None => {
                if self.err.is_none() {
                    self.err = Some(CoreError::UnknownDimension(name.to_string()));
                }
                None
            }
        }
    }

    /// Constrains dimension `name` to exactly `value`.
    pub fn dim(mut self, name: &str, value: impl Into<String>) -> Self {
        if let Some(i) = self.slot(name) {
            self.sel[i] = Selection::Value(value.into());
        }
        self
    }

    /// Resets dimension `name` to ALL (the default), aggregating over it.
    pub fn all(mut self, name: &str) -> Self {
        if let Some(i) = self.slot(name) {
            self.sel[i] = Selection::All;
        }
        self
    }

    /// Executes the traversal; `Ok(None)` means no tuple matched.
    pub fn run(self) -> Result<Option<i64>> {
        if let Some(err) = self.err {
            return Err(err);
        }
        let sel = self.sel;
        self.cube.point(&sel)
    }
}

/// Store-backed querying over the **NoSQL-Min** layout.
///
/// The Min schema stores no node rows, so every traversal step must
/// *reconstruct* the current node by querying the cell table's
/// `parentNodeId` secondary index — the cost §5.1 anticipates: "the absence
/// of a DWARF Node construct will have a significant impact on query times
/// as DWARF Node reconstruction is required". Compare with
/// [`StoreBackedCube`], which reads the node row's `childrenIds` set,
/// fetches all its cells in one batched round-trip, and caches the result.
#[derive(Debug)]
pub struct MinStoreBackedCube<'a> {
    source: MinStoreNodeSource<'a>,
}

impl<'a> MinStoreBackedCube<'a> {
    /// Opens a stored cube for querying.
    pub fn open(model: &'a mut NosqlMinModel, cube_id: i64) -> Result<MinStoreBackedCube<'a>> {
        Ok(MinStoreBackedCube {
            source: MinStoreNodeSource::open(model, cube_id)?,
        })
    }

    /// The stored cube's schema.
    pub fn schema(&self) -> &CubeSchema {
        self.source.schema()
    }

    /// Read counters accumulated so far (every node lookup is a miss —
    /// the Min layout reconstructs nodes on every visit).
    pub fn stats(&self) -> ReadStats {
        self.source.stats()
    }

    /// Point / group-by query with node reconstruction at every level.
    pub fn point(&mut self, sel: &[Selection]) -> Result<Option<i64>> {
        point_over(&mut self.source, sel).map_err(CoreError::from)
    }

    /// Range aggregate with node reconstruction at every visited node.
    pub fn range(&mut self, sel: &[RangeSel]) -> Result<Option<i64>> {
        range_over(&mut self.source, sel).map_err(CoreError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappedDwarf;
    use crate::models::SchemaModel;
    use sc_dwarf::{Dwarf, TupleSet};

    fn cube() -> Dwarf {
        let schema = CubeSchema::new(["country", "city", "station"], "bikes");
        let mut ts = TupleSet::new(&schema);
        ts.push(["Ireland", "Dublin", "Fenian St"], 3);
        ts.push(["Ireland", "Dublin", "Smithfield"], 5);
        ts.push(["Ireland", "Cork", "Patrick St"], 2);
        ts.push(["France", "Paris", "Bastille"], 7);
        Dwarf::build(schema, ts)
    }

    fn stored(model: &mut NosqlDwarfModel) -> i64 {
        let c = cube();
        model.create_schema().unwrap();
        let report = model.store(&MappedDwarf::new(&c), &c, false).unwrap();
        report.schema_id
    }

    #[test]
    fn store_backed_point_queries_match_in_memory() {
        let c = cube();
        let mut model = NosqlDwarfModel::in_memory();
        let schema_id = stored(&mut model);
        let mut sbc = StoreBackedCube::open(&mut model, schema_id).unwrap();
        assert_eq!(sbc.schema().num_dims(), 3);
        let all = Selection::All;
        let v = Selection::value;
        let cases: Vec<Vec<Selection>> = vec![
            vec![v("Ireland"), v("Dublin"), v("Fenian St")],
            vec![v("Ireland"), all.clone(), all.clone()],
            vec![all.clone(), v("Dublin"), all.clone()],
            vec![all.clone(), all.clone(), v("Bastille")],
            vec![all.clone(), all.clone(), all.clone()],
            vec![v("Spain"), all.clone(), all.clone()],
            vec![v("Ireland"), v("Paris"), all.clone()],
        ];
        for sel in cases {
            assert_eq!(sbc.point(&sel).unwrap(), c.point(&sel), "selection {sel:?}");
        }
    }

    #[test]
    fn store_backed_range_slice_and_group_by_match_in_memory() {
        let c = cube();
        let mut model = NosqlDwarfModel::in_memory();
        let schema_id = stored(&mut model);
        let mut sbc = StoreBackedCube::open(&mut model, schema_id).unwrap();
        let ra = RangeSel::All;
        let rv = RangeSel::value;
        let rb = RangeSel::between;
        let range_cases: Vec<Vec<RangeSel>> = vec![
            vec![ra.clone(), ra.clone(), ra.clone()],
            vec![rv("Ireland"), rb("Cork", "Dublin"), ra.clone()],
            vec![ra.clone(), ra.clone(), rb("Bastille", "Patrick St")],
            vec![rb("France", "Ireland"), ra.clone(), ra.clone()],
            vec![ra.clone(), rb("Z", "A"), ra.clone()], // inverted interval
        ];
        for sel in range_cases {
            assert_eq!(sbc.range(&sel).unwrap(), c.range(&sel), "range {sel:?}");
            assert_eq!(sbc.slice(&sel).unwrap(), c.slice(&sel), "slice {sel:?}");
        }
        for dims in [
            vec![],
            vec!["country"],
            vec!["city"],
            vec!["country", "station"],
            vec!["country", "city", "station"],
        ] {
            assert_eq!(
                sbc.group_by(&dims).unwrap(),
                c.group_by(&dims).unwrap(),
                "group by {dims:?}"
            );
        }
        assert!(matches!(
            sbc.group_by(&["planet"]),
            Err(CoreError::UnknownDimension(name)) if name == "planet"
        ));
    }

    #[test]
    fn warm_cache_answers_identical_queries_without_the_store() {
        let mut model = NosqlDwarfModel::in_memory();
        let schema_id = stored(&mut model);
        let mut sbc = StoreBackedCube::open(&mut model, schema_id).unwrap();
        let sel = vec![
            Selection::value("Ireland"),
            Selection::value("Dublin"),
            Selection::value("Fenian St"),
        ];
        assert_eq!(sbc.point(&sel).unwrap(), Some(3));
        let cold = sbc.stats();
        assert!(cold.rows_fetched > 0);
        assert!(cold.batched_selects > 0);
        // One batched cell SELECT per distinct node visited, never more.
        assert!(cold.batched_selects <= cold.node_cache_misses);

        sbc.reset_stats();
        assert_eq!(sbc.point(&sel).unwrap(), Some(3));
        let warm = sbc.stats();
        assert_eq!(warm.rows_fetched, 0, "warm traversal must not touch rows");
        assert_eq!(warm.store_selects, 0);
        assert_eq!(warm.node_cache_misses, 0);
        assert!(warm.node_cache_hits > 0);
        assert!((warm.hit_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_cache_refetches_every_node() {
        let mut model = NosqlDwarfModel::in_memory();
        let schema_id = stored(&mut model);
        let mut sbc = StoreBackedCube::open_with_cache(&mut model, schema_id, 0).unwrap();
        let sel = vec![Selection::All, Selection::All, Selection::All];
        assert_eq!(sbc.point(&sel).unwrap(), Some(17));
        let first = sbc.stats();
        sbc.reset_stats();
        assert_eq!(sbc.point(&sel).unwrap(), Some(17));
        let second = sbc.stats();
        assert_eq!(second.rows_fetched, first.rows_fetched);
        assert_eq!(second.node_cache_hits, 0);
    }

    #[test]
    fn min_store_backed_queries_match_in_memory() {
        let c = cube();
        let mut model = NosqlMinModel::in_memory();
        model.create_schema().unwrap();
        let report = model.store(&MappedDwarf::new(&c), &c, false).unwrap();
        let mut sbc = MinStoreBackedCube::open(&mut model, report.schema_id).unwrap();
        let all = Selection::All;
        let v = Selection::value;
        let cases: Vec<Vec<Selection>> = vec![
            vec![v("Ireland"), v("Dublin"), v("Fenian St")],
            vec![v("Ireland"), all.clone(), all.clone()],
            vec![all.clone(), v("Dublin"), all.clone()],
            vec![all.clone(), all.clone(), all.clone()],
            vec![v("Spain"), all.clone(), all.clone()],
        ];
        for sel in cases {
            assert_eq!(sbc.point(&sel).unwrap(), c.point(&sel), "selection {sel:?}");
        }
        // Range rides the same traversal; every node lookup reconstructs.
        let rsel = vec![
            RangeSel::value("Ireland"),
            RangeSel::between("Cork", "Dublin"),
            RangeSel::All,
        ];
        assert_eq!(sbc.range(&rsel).unwrap(), c.range(&rsel));
        let s = sbc.stats();
        assert_eq!(
            s.node_cache_hits, 0,
            "the Min path is deliberately uncached"
        );
        assert!(s.rows_fetched > 0);
    }

    #[test]
    fn fluent_select_matches_point_queries() {
        let mut model = NosqlDwarfModel::in_memory();
        let schema_id = stored(&mut model);
        let mut sbc = StoreBackedCube::open(&mut model, schema_id).unwrap();

        // Unmentioned dimensions default to ALL.
        assert_eq!(sbc.select().run().unwrap(), Some(17));
        assert_eq!(
            sbc.select()
                .dim("country", "Ireland")
                .dim("city", "Dublin")
                .dim("station", "Fenian St")
                .run()
                .unwrap(),
            Some(3)
        );
        assert_eq!(sbc.select().dim("city", "Dublin").run().unwrap(), Some(8));
        // `all` re-opens a previously pinned dimension.
        assert_eq!(
            sbc.select().dim("city", "Cork").all("city").run().unwrap(),
            Some(17)
        );
        assert_eq!(sbc.select().dim("station", "Nowhere").run().unwrap(), None);
        assert!(matches!(
            sbc.select().dim("planet", "Earth").run(),
            Err(CoreError::UnknownDimension(name)) if name == "planet"
        ));
    }

    #[test]
    fn unknown_schema_is_an_error() {
        let mut model = NosqlDwarfModel::in_memory();
        model.create_schema().unwrap();
        assert!(matches!(
            StoreBackedCube::open(&mut model, 5),
            Err(CoreError::UnknownSchema(5))
        ));
    }
}
