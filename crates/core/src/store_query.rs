//! Store-backed traversal: answering cube queries directly from NoSQL rows.
//!
//! The paper stores cubes "for future retrieval and querying"; this module
//! implements the designed access path — start at `entry_node_id`, read the
//! node row's `childrenIds` set, fetch those cells by primary key, match
//! the wanted key (or the ALL cell), follow `pointerNode` — without
//! rebuilding the whole DWARF in memory.

use crate::error::{CoreError, Result};
use crate::mapping::{decode_schema_meta, ALL_KEY};
use crate::models::NosqlDwarfModel;
use sc_dwarf::{CubeSchema, Selection};
use sc_nosql::cql::ast::{SelectColumns, Statement, TableRef, WhereClause};
use sc_nosql::CqlValue;

const KEYSPACE: &str = "smartcity";

fn table(name: &str) -> TableRef {
    TableRef {
        keyspace: KEYSPACE.into(),
        table: name.into(),
    }
}

/// A cube addressed by its stored rows.
#[derive(Debug)]
pub struct StoreBackedCube<'a> {
    model: &'a mut NosqlDwarfModel,
    schema_id: i64,
    schema: CubeSchema,
    entry_node_id: i64,
}

/// A fetched cell row (subset of Table 1-C).
#[derive(Debug, Clone)]
struct FetchedCell {
    key: String,
    measure: i64,
    pointer_node: Option<i64>,
    leaf: bool,
}

impl<'a> StoreBackedCube<'a> {
    /// Opens a stored schema for querying.
    pub fn open(model: &'a mut NosqlDwarfModel, schema_id: i64) -> Result<StoreBackedCube<'a>> {
        let r = model.db_mut().execute(&Statement::Select {
            table: table("dwarf_schema"),
            columns: SelectColumns::Named(vec!["entry_node_id".into(), "schema_meta".into()]),
            where_clause: Some(WhereClause {
                column: "id".into(),
                value: CqlValue::Int(schema_id),
            }),
            limit: None,
        })?;
        let row = r.first().ok_or(CoreError::UnknownSchema(schema_id))?;
        let entry_node_id = row.get_int("entry_node_id")?;
        let schema = decode_schema_meta(row.get_text("schema_meta")?)?;
        Ok(StoreBackedCube {
            model,
            schema_id,
            schema,
            entry_node_id,
        })
    }

    /// The stored schema's cube schema.
    pub fn schema(&self) -> &CubeSchema {
        &self.schema
    }

    /// The stored schema id.
    pub fn schema_id(&self) -> i64 {
        self.schema_id
    }

    fn node_children(&mut self, node_id: i64) -> Result<Vec<i64>> {
        let r = self.model.db_mut().execute(&Statement::Select {
            table: table("dwarf_node"),
            columns: SelectColumns::Named(vec!["childrenIds".into()]),
            where_clause: Some(WhereClause {
                column: "id".into(),
                value: CqlValue::Int(node_id),
            }),
            limit: None,
        })?;
        let row = r
            .first()
            .ok_or_else(|| CoreError::Inconsistent(format!("node {node_id} missing from store")))?;
        Ok(row.get_int_set("childrenIds")?.iter().copied().collect())
    }

    fn fetch_cell(&mut self, cell_id: i64) -> Result<FetchedCell> {
        let r = self.model.db_mut().execute(&Statement::Select {
            table: table("dwarf_cell"),
            columns: SelectColumns::Named(vec![
                "key".into(),
                "measure".into(),
                "pointerNode".into(),
                "leaf".into(),
            ]),
            where_clause: Some(WhereClause {
                column: "id".into(),
                value: CqlValue::Int(cell_id),
            }),
            limit: None,
        })?;
        let row = r
            .first()
            .ok_or_else(|| CoreError::Inconsistent(format!("cell {cell_id} missing from store")))?;
        Ok(FetchedCell {
            key: row.get_text("key")?.to_string(),
            measure: row.get_int("measure")?,
            pointer_node: row.get_opt_int("pointerNode")?,
            leaf: row.get_bool("leaf")?,
        })
    }

    /// Starts a fluent selection over the stored cube. Dimensions left
    /// unmentioned default to ALL, so a point query only names what it
    /// constrains:
    ///
    /// ```ignore
    /// let total = cube.select().dim("station", "Fenian St").run()?;
    /// let by_city = cube.select().dim("city", "Dublin").all("station").run()?;
    /// ```
    pub fn select(&mut self) -> CubeSelect<'_, 'a> {
        let sel = vec![Selection::All; self.schema.num_dims()];
        CubeSelect {
            cube: self,
            sel,
            err: None,
        }
    }

    /// Point / group-by query straight off the store (same semantics as
    /// [`sc_dwarf::Dwarf::point`]).
    pub fn point(&mut self, sel: &[Selection]) -> Result<Option<i64>> {
        assert_eq!(
            sel.len(),
            self.schema.num_dims(),
            "selection arity must match dimensions"
        );
        let mut node_id = self.entry_node_id;
        for s in sel {
            let children = self.node_children(node_id)?;
            if children.is_empty() {
                return Ok(None);
            }
            let wanted = match s {
                Selection::All => None,
                Selection::Value(v) => Some(v.as_str()),
            };
            let mut matched: Option<FetchedCell> = None;
            for cell_id in children {
                let cell = self.fetch_cell(cell_id)?;
                let hit = match wanted {
                    None => cell.key == ALL_KEY,
                    Some(v) => cell.key == v,
                };
                if hit {
                    matched = Some(cell);
                    break;
                }
            }
            let Some(cell) = matched else {
                return Ok(None);
            };
            match (cell.leaf, cell.pointer_node) {
                (true, _) => return Ok(Some(cell.measure)),
                (false, Some(next)) => node_id = next,
                (false, None) => {
                    return Err(CoreError::Inconsistent(
                        "non-leaf cell without pointer".into(),
                    ))
                }
            }
        }
        Err(CoreError::Inconsistent(
            "traversal exhausted selections before the leaf level".into(),
        ))
    }
}

/// A fluent selection being built against a [`StoreBackedCube`].
///
/// Every dimension starts at [`Selection::All`]; [`CubeSelect::dim`] pins
/// one to a value and [`CubeSelect::all`] re-opens it. Naming a dimension
/// the schema doesn't have is remembered and reported by
/// [`CubeSelect::run`], so call chains stay unconditional.
#[derive(Debug)]
pub struct CubeSelect<'c, 'a> {
    cube: &'c mut StoreBackedCube<'a>,
    sel: Vec<Selection>,
    err: Option<CoreError>,
}

impl CubeSelect<'_, '_> {
    fn slot(&mut self, name: &str) -> Option<usize> {
        match self.cube.schema.dimension_index(name) {
            Some(i) => Some(i),
            None => {
                if self.err.is_none() {
                    self.err = Some(CoreError::UnknownDimension(name.to_string()));
                }
                None
            }
        }
    }

    /// Constrains dimension `name` to exactly `value`.
    pub fn dim(mut self, name: &str, value: impl Into<String>) -> Self {
        if let Some(i) = self.slot(name) {
            self.sel[i] = Selection::Value(value.into());
        }
        self
    }

    /// Resets dimension `name` to ALL (the default), aggregating over it.
    pub fn all(mut self, name: &str) -> Self {
        if let Some(i) = self.slot(name) {
            self.sel[i] = Selection::All;
        }
        self
    }

    /// Executes the traversal; `Ok(None)` means no tuple matched.
    pub fn run(self) -> Result<Option<i64>> {
        if let Some(err) = self.err {
            return Err(err);
        }
        let sel = self.sel;
        self.cube.point(&sel)
    }
}

/// Store-backed traversal over the **NoSQL-Min** layout.
///
/// The Min schema stores no node rows, so every traversal step must
/// *reconstruct* the current node by querying the cell table's
/// `parentNodeId` secondary index — the cost §5.1 anticipates: "the absence
/// of a DWARF Node construct will have a significant impact on query times
/// as DWARF Node reconstruction is required". Compare with
/// [`StoreBackedCube`], which reads the node row's `childrenIds` set and
/// fetches cells by primary key.
#[derive(Debug)]
pub struct MinStoreBackedCube<'a> {
    model: &'a mut crate::models::NosqlMinModel,
    schema: CubeSchema,
    entry_node_id: i64,
}

const MIN_KEYSPACE: &str = "smartcity_min";

impl<'a> MinStoreBackedCube<'a> {
    /// Opens a stored cube for querying.
    pub fn open(
        model: &'a mut crate::models::NosqlMinModel,
        cube_id: i64,
    ) -> Result<MinStoreBackedCube<'a>> {
        let r = model.db_mut().execute(&Statement::Select {
            table: TableRef {
                keyspace: MIN_KEYSPACE.into(),
                table: "dwarf_cube".into(),
            },
            columns: SelectColumns::Named(vec!["entry_node_id".into(), "schema_meta".into()]),
            where_clause: Some(WhereClause {
                column: "id".into(),
                value: CqlValue::Int(cube_id),
            }),
            limit: None,
        })?;
        let row = r.first().ok_or(CoreError::UnknownSchema(cube_id))?;
        let entry_node_id = row.get_int("entry_node_id")?;
        let schema = decode_schema_meta(row.get_text("schema_meta")?)?;
        Ok(MinStoreBackedCube {
            model,
            schema,
            entry_node_id,
        })
    }

    /// The stored cube's schema.
    pub fn schema(&self) -> &CubeSchema {
        &self.schema
    }

    /// Reconstructs a node: every cell whose `parentNodeId` equals
    /// `node_id`, via the secondary index.
    fn node_cells(&mut self, node_id: i64) -> Result<Vec<FetchedCell>> {
        let r = self.model.db_mut().execute(&Statement::Select {
            table: TableRef {
                keyspace: MIN_KEYSPACE.into(),
                table: "dwarf_cell".into(),
            },
            columns: SelectColumns::Named(vec![
                "item_name".into(),
                "measure".into(),
                "childNodeId".into(),
                "leaf".into(),
            ]),
            where_clause: Some(WhereClause {
                column: "parentNodeId".into(),
                value: CqlValue::Int(node_id),
            }),
            limit: None,
        })?;
        let mut out = Vec::with_capacity(r.len());
        for row in r.rows() {
            out.push(FetchedCell {
                key: row.get_text("item_name")?.to_string(),
                measure: row.get_int("measure")?,
                pointer_node: row.get_opt_int("childNodeId")?,
                leaf: row.get_bool("leaf")?,
            });
        }
        Ok(out)
    }

    /// Point / group-by query with node reconstruction at every level.
    pub fn point(&mut self, sel: &[Selection]) -> Result<Option<i64>> {
        assert_eq!(
            sel.len(),
            self.schema.num_dims(),
            "selection arity must match dimensions"
        );
        let mut node_id = self.entry_node_id;
        for s in sel {
            let cells = self.node_cells(node_id)?;
            if cells.is_empty() {
                return Ok(None);
            }
            let wanted = match s {
                Selection::All => None,
                Selection::Value(v) => Some(v.as_str()),
            };
            let matched = cells.into_iter().find(|c| match wanted {
                None => c.key == ALL_KEY,
                Some(v) => c.key == v,
            });
            let Some(cell) = matched else {
                return Ok(None);
            };
            match (cell.leaf, cell.pointer_node) {
                (true, _) => return Ok(Some(cell.measure)),
                (false, Some(next)) => node_id = next,
                (false, None) => {
                    return Err(CoreError::Inconsistent(
                        "non-leaf cell without pointer".into(),
                    ))
                }
            }
        }
        Err(CoreError::Inconsistent(
            "traversal exhausted selections before the leaf level".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappedDwarf;
    use crate::models::SchemaModel;
    use sc_dwarf::{Dwarf, TupleSet};

    fn cube() -> Dwarf {
        let schema = CubeSchema::new(["country", "city", "station"], "bikes");
        let mut ts = TupleSet::new(&schema);
        ts.push(["Ireland", "Dublin", "Fenian St"], 3);
        ts.push(["Ireland", "Dublin", "Smithfield"], 5);
        ts.push(["Ireland", "Cork", "Patrick St"], 2);
        ts.push(["France", "Paris", "Bastille"], 7);
        Dwarf::build(schema, ts)
    }

    #[test]
    fn store_backed_point_queries_match_in_memory() {
        let c = cube();
        let mut model = NosqlDwarfModel::in_memory();
        model.create_schema().unwrap();
        let report = model.store(&MappedDwarf::new(&c), &c, false).unwrap();
        let mut sbc = StoreBackedCube::open(&mut model, report.schema_id).unwrap();
        assert_eq!(sbc.schema().num_dims(), 3);
        let all = Selection::All;
        let v = Selection::value;
        let cases: Vec<Vec<Selection>> = vec![
            vec![v("Ireland"), v("Dublin"), v("Fenian St")],
            vec![v("Ireland"), all.clone(), all.clone()],
            vec![all.clone(), v("Dublin"), all.clone()],
            vec![all.clone(), all.clone(), v("Bastille")],
            vec![all.clone(), all.clone(), all.clone()],
            vec![v("Spain"), all.clone(), all.clone()],
            vec![v("Ireland"), v("Paris"), all.clone()],
        ];
        for sel in cases {
            assert_eq!(sbc.point(&sel).unwrap(), c.point(&sel), "selection {sel:?}");
        }
    }

    #[test]
    fn min_store_backed_queries_match_in_memory() {
        let c = cube();
        let mut model = crate::models::NosqlMinModel::in_memory();
        model.create_schema().unwrap();
        let report = model.store(&MappedDwarf::new(&c), &c, false).unwrap();
        let mut sbc = MinStoreBackedCube::open(&mut model, report.schema_id).unwrap();
        let all = Selection::All;
        let v = Selection::value;
        let cases: Vec<Vec<Selection>> = vec![
            vec![v("Ireland"), v("Dublin"), v("Fenian St")],
            vec![v("Ireland"), all.clone(), all.clone()],
            vec![all.clone(), v("Dublin"), all.clone()],
            vec![all.clone(), all.clone(), all.clone()],
            vec![v("Spain"), all.clone(), all.clone()],
        ];
        for sel in cases {
            assert_eq!(sbc.point(&sel).unwrap(), c.point(&sel), "selection {sel:?}");
        }
    }

    #[test]
    fn fluent_select_matches_point_queries() {
        let c = cube();
        let mut model = NosqlDwarfModel::in_memory();
        model.create_schema().unwrap();
        let report = model.store(&MappedDwarf::new(&c), &c, false).unwrap();
        let mut sbc = StoreBackedCube::open(&mut model, report.schema_id).unwrap();

        // Unmentioned dimensions default to ALL.
        assert_eq!(sbc.select().run().unwrap(), Some(17));
        assert_eq!(
            sbc.select()
                .dim("country", "Ireland")
                .dim("city", "Dublin")
                .dim("station", "Fenian St")
                .run()
                .unwrap(),
            Some(3)
        );
        assert_eq!(sbc.select().dim("city", "Dublin").run().unwrap(), Some(8));
        // `all` re-opens a previously pinned dimension.
        assert_eq!(
            sbc.select().dim("city", "Cork").all("city").run().unwrap(),
            Some(17)
        );
        assert_eq!(sbc.select().dim("station", "Nowhere").run().unwrap(), None);
        assert!(matches!(
            sbc.select().dim("planet", "Earth").run(),
            Err(CoreError::UnknownDimension(name)) if name == "planet"
        ));
    }

    #[test]
    fn unknown_schema_is_an_error() {
        let mut model = NosqlDwarfModel::in_memory();
        model.create_schema().unwrap();
        assert!(matches!(
            StoreBackedCube::open(&mut model, 5),
            Err(CoreError::UnknownSchema(5))
        ));
    }
}
