//! Forward mapping: breadth-first traversal of a DWARF with a visited
//! lookup table (§4 of the paper).
//!
//! A DWARF has multiple inheritance — suffix coalescing makes nodes
//! reachable from many parent cells — so the traversal records every Node
//! and Cell in a lookup table keyed by identity and assigns each a unique
//! id exactly once. The result is a flat, store-agnostic record list each
//! schema model serializes its own way.
//!
//! ALL cells are materialized as cell records with the reserved key
//! [`ALL_KEY`] so the structure (including every ALL pointer) is fully
//! recoverable from the store.

use crate::error::{CoreError, Result};
use sc_dwarf::{AggFn, CubeSchema, Dwarf, NodeId, NONE_NODE};
use sc_json::JsonValue;
use std::collections::VecDeque;

/// Reserved cell key marking ALL cells in the store. Uses a control
/// character so real dimension values cannot collide (enforced at mapping
/// time).
pub const ALL_KEY: &str = "\u{1}ALL";

/// One DWARF node as a store-agnostic record (Table 1-B).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRecord {
    /// Assigned unique id (1-based, per mapping).
    pub id: i64,
    /// Ids of the cells that point to this node (multi-parent).
    pub parent_cell_ids: Vec<i64>,
    /// Ids of the cells contained in this node, ALL cell last.
    pub child_cell_ids: Vec<i64>,
    /// Whether this is the entry (root) node.
    pub root: bool,
    /// Dimension level (0-based), derived during traversal.
    pub level: usize,
}

/// One DWARF cell as a store-agnostic record (Table 1-C / Figure 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellRecord {
    /// Assigned unique id (1-based, per mapping).
    pub id: i64,
    /// Dimension value, or [`ALL_KEY`] for an ALL cell.
    pub key: String,
    /// The cell's aggregate value (leaf measure, or the pointed sub-dwarf's
    /// total — "the value of a cell is synonymous with its child's
    /// aggregate").
    pub measure: i64,
    /// Id of the node containing this cell.
    pub parent_node: i64,
    /// Id of the node this cell points to (`None` at the leaf level).
    pub pointer_node: Option<i64>,
    /// Whether the cell is at the leaf level.
    pub leaf: bool,
    /// The paper's `dimension_table_name`: the dimension this cell's key
    /// belongs to.
    pub dimension: String,
}

impl CellRecord {
    /// Whether this is an ALL cell.
    pub fn is_all(&self) -> bool {
        self.key == ALL_KEY
    }
}

/// The complete mapped form of one DWARF.
#[derive(Debug, Clone)]
pub struct MappedDwarf {
    /// Node records in BFS order (entry node first).
    pub nodes: Vec<NodeRecord>,
    /// Cell records in BFS order.
    pub cells: Vec<CellRecord>,
    /// Assigned id of the entry node.
    pub entry_node_id: i64,
}

impl MappedDwarf {
    /// Maps a cube. Panics if a dimension value collides with [`ALL_KEY`]
    /// (control characters never appear in real feed values; see
    /// [`MappedDwarf::try_new`] for the fallible form).
    pub fn new(cube: &Dwarf) -> MappedDwarf {
        Self::try_new(cube).expect("dimension values must not use the reserved ALL key")
    }

    /// Maps a cube, reporting reserved-key collisions as errors.
    pub fn try_new(cube: &Dwarf) -> Result<MappedDwarf> {
        for dim in 0..cube.num_dims() {
            if cube.interner(dim).get(ALL_KEY).is_some() {
                return Err(CoreError::ReservedKey(ALL_KEY.to_string()));
            }
        }
        // The lookup table of §4: arena node id -> assigned id (0 = not
        // yet visited).
        let mut assigned: Vec<i64> = vec![0; cube.node_count()];
        let mut parents: Vec<Vec<i64>> = vec![Vec::new(); cube.node_count()];
        let mut order: Vec<NodeId> = Vec::with_capacity(cube.node_count());
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        let mut next_node_id: i64 = 0;

        let mut visit = |queue: &mut VecDeque<NodeId>,
                         assigned: &mut Vec<i64>,
                         order: &mut Vec<NodeId>,
                         target: NodeId|
         -> i64 {
            let slot = &mut assigned[target as usize];
            if *slot == 0 {
                next_node_id += 1;
                *slot = next_node_id;
                order.push(target);
                queue.push_back(target);
            }
            *slot
        };

        let entry = visit(&mut queue, &mut assigned, &mut order, cube.root());
        let mut nodes: Vec<NodeRecord> = Vec::with_capacity(cube.node_count());
        let mut cells: Vec<CellRecord> = Vec::new();
        let mut next_cell_id: i64 = 0;

        while let Some(node_id) = queue.pop_front() {
            let node = cube.node(node_id);
            let my_id = assigned[node_id as usize];
            let level = node.node.level as usize;
            let leaf = level == cube.num_dims() - 1;
            let dimension = cube.schema().dimension(level).to_string();
            let mut child_cell_ids = Vec::with_capacity(node.cells.len() + 1);
            for cell in node.cells {
                next_cell_id += 1;
                let pointer = if cell.child == NONE_NODE {
                    None
                } else {
                    let target_id = visit(&mut queue, &mut assigned, &mut order, cell.child);
                    parents[cell.child as usize].push(next_cell_id);
                    Some(target_id)
                };
                child_cell_ids.push(next_cell_id);
                cells.push(CellRecord {
                    id: next_cell_id,
                    key: cube.interner(level).resolve(cell.key).to_string(),
                    measure: cell.measure,
                    parent_node: my_id,
                    pointer_node: pointer,
                    leaf,
                    dimension: dimension.clone(),
                });
            }
            // The ALL cell, stored like any other cell under the reserved
            // key.
            if !node.cells.is_empty() {
                next_cell_id += 1;
                let pointer = if node.node.all_child == NONE_NODE {
                    None
                } else {
                    let target_id =
                        visit(&mut queue, &mut assigned, &mut order, node.node.all_child);
                    parents[node.node.all_child as usize].push(next_cell_id);
                    Some(target_id)
                };
                child_cell_ids.push(next_cell_id);
                cells.push(CellRecord {
                    id: next_cell_id,
                    key: ALL_KEY.to_string(),
                    measure: node.node.total,
                    parent_node: my_id,
                    pointer_node: pointer,
                    leaf,
                    dimension: dimension.clone(),
                });
            }
            nodes.push(NodeRecord {
                id: my_id,
                parent_cell_ids: Vec::new(), // filled below
                child_cell_ids,
                root: my_id == entry,
                level,
            });
        }
        // Fill in parent cell ids now that every edge has been seen.
        for (arena_id, node_record) in order.iter().zip(nodes.iter_mut()) {
            node_record.parent_cell_ids = std::mem::take(&mut parents[*arena_id as usize]);
        }
        Ok(MappedDwarf {
            nodes,
            cells,
            entry_node_id: entry,
        })
    }

    /// Number of node records (the paper's `node_count`).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of cell records (the paper's `cell_count`, ALL cells
    /// included).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }
}

/// A cell as read back from any store: the minimum every model recovers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredCell {
    /// Dimension value or [`ALL_KEY`].
    pub key: String,
    /// Aggregate value.
    pub measure: i64,
    /// Containing node id.
    pub parent_node: i64,
    /// Pointed node id, if any.
    pub pointer_node: Option<i64>,
    /// Whether the cell sits at the leaf level.
    pub leaf: bool,
}

/// Reconstructs the base fact rows from stored cells.
///
/// A full slice (ALL on every dimension) over a
/// [`crate::node_source::StoredCellSource`]: value cells are walked from
/// the entry node down through the same generic traversal the live store
/// cursors use, and each root-to-leaf path of keys is one fact. This is
/// the reverse mapping that makes the model bi-directional.
pub fn rows_from_cells(
    cells: &[StoredCell],
    entry_node_id: i64,
    num_dims: usize,
) -> Result<Vec<(Vec<String>, i64)>> {
    // The aggregate never matters for a slice; leaf measures are copied.
    let mut src =
        crate::node_source::StoredCellSource::new(cells, entry_node_id, num_dims, AggFn::Sum);
    let sel = vec![sc_dwarf::RangeSel::All; num_dims];
    sc_dwarf::slice_over(&mut src, &sel).map_err(CoreError::from)
}

/// Rebuilds a full in-memory [`Dwarf`] from stored cells: the shared tail
/// of every model's `rebuild()` — reverse-map the rows through the
/// [`crate::node_source::StoredCellSource`] traversal, then reconstruct.
pub fn rebuild_cube(schema: CubeSchema, entry_node_id: i64, cells: &[StoredCell]) -> Result<Dwarf> {
    let rows = rows_from_cells(cells, entry_node_id, schema.num_dims())?;
    Ok(Dwarf::from_aggregated_rows(schema, rows))
}

impl StoredCell {
    /// Whether this is an ALL cell.
    pub fn is_all(&self) -> bool {
        self.key == ALL_KEY
    }
}

/// Serializes cube schema metadata (dimension names, measure, aggregate)
/// into the store's `schema_meta` text column — the extension over Table
/// 1-A that makes the reverse mapping self-contained (see DESIGN.md).
pub fn encode_schema_meta(schema: &CubeSchema) -> String {
    JsonValue::object(vec![
        (
            "dimensions",
            JsonValue::Array(
                schema
                    .dimensions()
                    .iter()
                    .map(|d| JsonValue::string(d.clone()))
                    .collect(),
            ),
        ),
        ("measure", JsonValue::string(schema.measure())),
        ("agg", JsonValue::string(schema.agg().name())),
    ])
    .to_json()
}

/// Inverse of [`encode_schema_meta`].
pub fn decode_schema_meta(text: &str) -> Result<CubeSchema> {
    let v =
        sc_json::parse(text).map_err(|e| CoreError::Inconsistent(format!("schema meta: {e}")))?;
    let dims: Vec<String> = v
        .get("dimensions")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| CoreError::Inconsistent("schema meta missing dimensions".into()))?
        .iter()
        .filter_map(|d| d.as_str().map(str::to_string))
        .collect();
    if dims.is_empty() {
        return Err(CoreError::Inconsistent(
            "schema meta has no dimensions".into(),
        ));
    }
    let measure = v
        .get("measure")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| CoreError::Inconsistent("schema meta missing measure".into()))?;
    let agg = match v.get("agg").and_then(JsonValue::as_str) {
        Some("SUM") | None => AggFn::Sum,
        Some("COUNT") => AggFn::Count,
        Some("MIN") => AggFn::Min,
        Some("MAX") => AggFn::Max,
        Some(other) => {
            return Err(CoreError::Inconsistent(format!(
                "unknown aggregate {other:?}"
            )))
        }
    };
    Ok(CubeSchema::new(dims, measure).with_agg(agg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_dwarf::TupleSet;

    fn cube() -> Dwarf {
        let schema = CubeSchema::new(["country", "city", "station"], "bikes");
        let mut ts = TupleSet::new(&schema);
        ts.push(["Ireland", "Dublin", "Fenian St"], 3);
        ts.push(["Ireland", "Dublin", "Smithfield"], 5);
        ts.push(["Ireland", "Cork", "Patrick St"], 2);
        ts.push(["France", "Paris", "Bastille"], 7);
        Dwarf::build(schema, ts)
    }

    #[test]
    fn mapping_visits_each_node_and_cell_once() {
        let c = cube();
        let m = MappedDwarf::new(&c);
        assert_eq!(m.node_count(), c.node_count());
        // Every arena cell plus one ALL cell per non-empty node.
        assert_eq!(m.cell_count(), c.cell_count() + c.node_count());
        // Ids are unique.
        let mut node_ids: Vec<i64> = m.nodes.iter().map(|n| n.id).collect();
        node_ids.sort_unstable();
        node_ids.dedup();
        assert_eq!(node_ids.len(), m.node_count());
        let mut cell_ids: Vec<i64> = m.cells.iter().map(|c| c.id).collect();
        cell_ids.sort_unstable();
        cell_ids.dedup();
        assert_eq!(cell_ids.len(), m.cell_count());
    }

    #[test]
    fn entry_node_is_root_and_bfs_first() {
        let c = cube();
        let m = MappedDwarf::new(&c);
        assert_eq!(m.nodes[0].id, m.entry_node_id);
        assert!(m.nodes[0].root);
        assert_eq!(m.nodes[0].level, 0);
        assert!(m.nodes.iter().skip(1).all(|n| !n.root));
        // Root has no parents; every other node has at least one.
        assert!(m.nodes[0].parent_cell_ids.is_empty());
        assert!(m
            .nodes
            .iter()
            .skip(1)
            .all(|n| !n.parent_cell_ids.is_empty()));
    }

    #[test]
    fn shared_nodes_have_multiple_parents() {
        let c = cube();
        let m = MappedDwarf::new(&c);
        assert!(
            m.nodes.iter().any(|n| n.parent_cell_ids.len() > 1),
            "suffix coalescing must produce at least one multi-parent node"
        );
    }

    #[test]
    fn figure3_shape_cell_exists() {
        let c = cube();
        let m = MappedDwarf::new(&c);
        let fenian = m
            .cells
            .iter()
            .find(|c| c.key == "Fenian St")
            .expect("Fenian St cell mapped");
        assert_eq!(fenian.measure, 3);
        assert!(fenian.leaf);
        assert_eq!(fenian.pointer_node, None);
        assert_eq!(fenian.dimension, "station");
    }

    #[test]
    fn all_cells_close_every_node() {
        let c = cube();
        let m = MappedDwarf::new(&c);
        let all_cells = m.cells.iter().filter(|c| c.is_all()).count();
        assert_eq!(all_cells, m.node_count());
        // Non-leaf ALL cells point somewhere.
        assert!(m
            .cells
            .iter()
            .filter(|c| c.is_all() && !c.leaf)
            .all(|c| c.pointer_node.is_some()));
    }

    #[test]
    fn roundtrip_via_stored_cells() {
        let c = cube();
        let m = MappedDwarf::new(&c);
        let stored: Vec<StoredCell> = m
            .cells
            .iter()
            .map(|c| StoredCell {
                key: c.key.clone(),
                measure: c.measure,
                parent_node: c.parent_node,
                pointer_node: c.pointer_node,
                leaf: c.leaf,
            })
            .collect();
        let rows = rows_from_cells(&stored, m.entry_node_id, c.num_dims()).unwrap();
        let rebuilt = Dwarf::from_aggregated_rows(c.schema().clone(), rows);
        assert_eq!(rebuilt.extract_tuples(), c.extract_tuples());
    }

    #[test]
    fn inconsistent_stores_are_detected() {
        // Entry node with no cells.
        assert!(matches!(
            rows_from_cells(&[], 1, 2),
            Err(CoreError::Inconsistent(_))
        ));
        // Non-leaf cell without pointer.
        let bad = vec![StoredCell {
            key: "x".into(),
            measure: 1,
            parent_node: 1,
            pointer_node: None,
            leaf: false,
        }];
        assert!(matches!(
            rows_from_cells(&bad, 1, 2),
            Err(CoreError::Inconsistent(_))
        ));
        // Cycle / overlong path.
        let cyclic = vec![StoredCell {
            key: "x".into(),
            measure: 1,
            parent_node: 1,
            pointer_node: Some(1),
            leaf: false,
        }];
        assert!(matches!(
            rows_from_cells(&cyclic, 1, 1),
            Err(CoreError::Inconsistent(_))
        ));
    }

    #[test]
    fn schema_meta_roundtrip() {
        let schema = CubeSchema::new(["a", "b"], "m").with_agg(AggFn::Count);
        let text = encode_schema_meta(&schema);
        let back = decode_schema_meta(&text).unwrap();
        assert_eq!(back, schema);
        assert!(decode_schema_meta("{}").is_err());
        assert!(decode_schema_meta("not json").is_err());
    }

    #[test]
    fn reserved_key_is_rejected() {
        let schema = CubeSchema::new(["k"], "m");
        let mut ts = TupleSet::new(&schema);
        ts.push([ALL_KEY], 1);
        let c = Dwarf::build(schema, ts);
        assert!(matches!(
            MappedDwarf::try_new(&c),
            Err(CoreError::ReservedKey(_))
        ));
    }

    #[test]
    fn single_tuple_cube_maps_cleanly() {
        let schema = CubeSchema::new(["a"], "m");
        let mut ts = TupleSet::new(&schema);
        ts.push(["only"], 9);
        let c = Dwarf::build(schema, ts);
        let m = MappedDwarf::new(&c);
        assert_eq!(m.node_count(), 1);
        assert_eq!(m.cell_count(), 2); // value cell + ALL cell
        let stored: Vec<StoredCell> = m
            .cells
            .iter()
            .map(|c| StoredCell {
                key: c.key.clone(),
                measure: c.measure,
                parent_node: c.parent_node,
                pointer_node: c.pointer_node,
                leaf: c.leaf,
            })
            .collect();
        let rows = rows_from_cells(&stored, m.entry_node_id, 1).unwrap();
        assert_eq!(rows, vec![(vec!["only".to_string()], 9)]);
    }
}
