//! Figure 3: rendering a DWARF cell as the CQL INSERT the transformation
//! generates.

use crate::mapping::CellRecord;
use sc_nosql::cql::ast::{Statement, TableRef};
use sc_nosql::CqlValue;

/// Builds the Figure 3 INSERT statement for one mapped cell.
///
/// The paper's example: a cell with key `"Fenian St"`, measure 3, parent
/// node 3, no pointer node, leaf, schema 1, dimension table `Station`
/// becomes
///
/// ```text
/// INSERT INTO DWARF_CELL (id,key,measure,parentNode,pointerNode,leaf,
///     schema_id, dimension_table_name)
/// VALUES (3,"Fenian St", 3,3,null,true,1,"Station");
/// ```
pub fn cell_to_insert(cell: &CellRecord, keyspace: &str, schema_id: i64) -> Statement {
    Statement::Insert {
        table: TableRef {
            keyspace: keyspace.to_string(),
            table: "dwarf_cell".to_string(),
        },
        columns: vec![
            "id".into(),
            "key".into(),
            "measure".into(),
            "parentNode".into(),
            "pointerNode".into(),
            "leaf".into(),
            "schema_id".into(),
            "dimension_table_name".into(),
        ],
        values: vec![
            CqlValue::Int(cell.id),
            CqlValue::Text(cell.key.clone()),
            CqlValue::Int(cell.measure),
            CqlValue::Int(cell.parent_node),
            match cell.pointer_node {
                Some(p) => CqlValue::Int(p),
                None => CqlValue::Null,
            },
            CqlValue::Boolean(cell.leaf),
            CqlValue::Int(schema_id),
            CqlValue::Text(cell.dimension.clone()),
        ],
    }
}

/// Renders the Figure 3 CQL text for one mapped cell.
pub fn cell_to_cql(cell: &CellRecord, keyspace: &str, schema_id: i64) -> String {
    cell_to_insert(cell, keyspace, schema_id).to_cql()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fenian() -> CellRecord {
        CellRecord {
            id: 3,
            key: "Fenian St".into(),
            measure: 3,
            parent_node: 3,
            pointer_node: None,
            leaf: true,
            dimension: "Station".into(),
        }
    }

    #[test]
    fn figure3_text_shape() {
        let cql = cell_to_cql(&fenian(), "ks", 1);
        assert_eq!(
            cql,
            "INSERT INTO ks.dwarf_cell \
             (id,key,measure,parentNode,pointerNode,leaf,schema_id,dimension_table_name) \
             VALUES (3,'Fenian St',3,3,null,true,1,'Station')"
        );
    }

    #[test]
    fn figure3_statement_parses_back() {
        let cql = cell_to_cql(&fenian(), "ks", 1);
        let parsed = sc_nosql::parse_statement(&cql).unwrap();
        assert_eq!(parsed, cell_to_insert(&fenian(), "ks", 1));
    }

    #[test]
    fn pointer_cells_render_ids() {
        let mut c = fenian();
        c.pointer_node = Some(9);
        c.leaf = false;
        let cql = cell_to_cql(&c, "ks", 2);
        assert!(cql.contains(",9,false,2,"));
    }
}
