//! Errors of the mapping layer.

use sc_nosql::NosqlError;
use sc_relational::SqlError;
use std::fmt;

/// Anything that can go wrong storing or rebuilding a cube.
#[derive(Debug)]
pub enum CoreError {
    /// The NoSQL engine failed.
    Nosql(NosqlError),
    /// The relational engine failed.
    Sql(SqlError),
    /// Stored records are inconsistent (dangling ids, missing schema row).
    Inconsistent(String),
    /// The requested schema id does not exist in the store.
    UnknownSchema(i64),
    /// A query named a dimension the cube schema does not have.
    UnknownDimension(String),
    /// A cube used the reserved ALL key as a real dimension value.
    ReservedKey(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Nosql(e) => write!(f, "NoSQL store: {e}"),
            CoreError::Sql(e) => write!(f, "relational store: {e}"),
            CoreError::Inconsistent(m) => write!(f, "inconsistent store: {m}"),
            CoreError::UnknownSchema(id) => write!(f, "no stored DWARF schema with id {id}"),
            CoreError::UnknownDimension(name) => {
                write!(f, "cube schema has no dimension named {name:?}")
            }
            CoreError::ReservedKey(k) => {
                write!(
                    f,
                    "dimension value {k:?} collides with the reserved ALL key"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<NosqlError> for CoreError {
    fn from(e: NosqlError) -> Self {
        CoreError::Nosql(e)
    }
}

impl From<SqlError> for CoreError {
    fn from(e: SqlError) -> Self {
        CoreError::Sql(e)
    }
}

impl From<sc_dwarf::TraverseError<CoreError>> for CoreError {
    fn from(e: sc_dwarf::TraverseError<CoreError>) -> Self {
        match e {
            sc_dwarf::TraverseError::Source(inner) => inner,
            sc_dwarf::TraverseError::Inconsistent(msg) => CoreError::Inconsistent(msg),
        }
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
