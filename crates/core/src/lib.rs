//! # sc-core
//!
//! The paper's contribution: a **bi-directional mapping between in-memory
//! DWARF cubes and database storage**, in the four physical schemas the
//! evaluation compares (§5):
//!
//! | Model | Store | Layout |
//! |---|---|---|
//! | [`models::NosqlDwarfModel`] | `sc-nosql` | Table 1: `DWARF_Schema` + `DWARF_Node` (with `set<int>` edges) + `DWARF_Cell` |
//! | [`models::NosqlMinModel`]   | `sc-nosql` | Table 3: cube + cell only, two secondary indexes |
//! | [`models::MysqlDwarfModel`] | `sc-relational` | Figure 4: `NODE`/`CELL` + `NODE_CHILDREN`/`CELL_CHILDREN` edge tables |
//! | [`models::MysqlMinModel`]   | `sc-relational` | MySQL port of the Min layout |
//!
//! The forward direction ([`mapping::MappedDwarf`] + each model's `store`)
//! walks the DWARF breadth-first with a visited-lookup table — nodes are
//! multi-parented, so each is transformed exactly once (§4) — generating
//! insert statements executed in bulk. The reverse direction (`rebuild`)
//! reads the records back and reconstructs a [`sc_dwarf::Dwarf`] that is
//! *identical* to the original (property-tested). [`store_query`] answers
//! point, range, slice and group-by queries directly from stored rows —
//! no full rebuild — through the shared [`sc_dwarf::source::NodeSource`]
//! traversal core, with [`node_source::StoreNodeSource`] batching each
//! node's cell fetch into one `WHERE id IN (...)` round-trip behind a
//! bounded LRU node cache.
//!
//! ```
//! use sc_core::models::{NosqlDwarfModel, SchemaModel};
//! use sc_core::mapping::MappedDwarf;
//! use sc_dwarf::{CubeSchema, Dwarf, TupleSet, Selection};
//!
//! let schema = CubeSchema::new(["country", "station"], "bikes");
//! let mut ts = TupleSet::new(&schema);
//! ts.push(["Ireland", "Fenian St"], 3);
//! let cube = Dwarf::build(schema, ts);
//!
//! let mut model = NosqlDwarfModel::in_memory();
//! model.create_schema().unwrap();
//! let stored = model.store(&MappedDwarf::new(&cube), &cube, false).unwrap();
//! let back = model.rebuild(stored.schema_id).unwrap();
//! assert_eq!(back.extract_tuples(), cube.extract_tuples());
//! ```

pub mod error;
pub mod mapping;
pub mod models;
pub mod node_source;
mod obs;
pub mod pipeline;
pub mod store_query;
pub mod stream_warehouse;
pub mod transform;

pub use error::CoreError;
pub use mapping::{MappedDwarf, ALL_KEY};
pub use models::{
    ModelKind, MysqlDwarfModel, MysqlMinModel, NosqlDwarfModel, NosqlMinModel, SchemaModel,
    StoreReport,
};
pub use node_source::{
    MinStoreNodeSource, ReadStats, StoreNodeSource, StoredCellSource, DEFAULT_NODE_CACHE_CAPACITY,
};
pub use pipeline::CubeWarehouse;
pub use store_query::{CubeSelect, MinStoreBackedCube, StoreBackedCube};
pub use stream_warehouse::StreamWarehouse;
