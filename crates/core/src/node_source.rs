//! Store-backed [`NodeSource`] implementations: the cursor layer of the
//! unified read path.
//!
//! [`StoreNodeSource`] answers node lookups from the Table-1 NoSQL layout
//! with one node-row read plus **one batched cell fetch**
//! (`WHERE id IN (...)`) per cold node, and keeps a bounded LRU cache of
//! materialized nodes so warm traversals never touch the store.
//! [`MinStoreNodeSource`] reconstructs nodes from the Min layout's
//! `parentNodeId` secondary index (deliberately uncached — the absence of
//! a node construct is the cost §5.1 measures). [`StoredCellSource`] wraps
//! an already-fetched row set, which is how the models' `rebuild()` routes
//! through the same traversal core.

use crate::error::{CoreError, Result};
use crate::mapping::{decode_schema_meta, StoredCell, ALL_KEY};
use crate::models::{NosqlDwarfModel, NosqlMinModel};
use sc_dwarf::source::{CowNode, NodeSource, OwnedCell, OwnedNode, SourceNodeId};
use sc_dwarf::{AggFn, CubeSchema};
use sc_nosql::cql::ast::{SelectColumns, Statement, TableRef, WhereClause};
use sc_nosql::CqlValue;
use std::collections::HashMap;
use std::rc::Rc;

/// Default capacity (in nodes) of the [`StoreNodeSource`] LRU cache. Tune
/// per cube with [`StoreNodeSource::open_with_cache`] /
/// [`crate::StoreBackedCube::open_with_cache`].
pub const DEFAULT_NODE_CACHE_CAPACITY: usize = 1024;

/// Per-source read counters, exposed so callers (CLI `--stats`, parity
/// tests) can observe cache behaviour without the global registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Node views answered from the LRU cache.
    pub node_cache_hits: u64,
    /// Node views that had to touch the store.
    pub node_cache_misses: u64,
    /// SELECT statements issued (node rows + cell batches).
    pub store_selects: u64,
    /// Batched `WHERE id IN (...)` cell fetches issued.
    pub batched_selects: u64,
    /// Rows read from the store (node rows + cell rows).
    pub rows_fetched: u64,
}

impl ReadStats {
    /// Fraction of node lookups served from the cache (0 when none ran).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.node_cache_hits + self.node_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.node_cache_hits as f64 / total as f64
        }
    }

    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &ReadStats) -> ReadStats {
        ReadStats {
            node_cache_hits: self.node_cache_hits - earlier.node_cache_hits,
            node_cache_misses: self.node_cache_misses - earlier.node_cache_misses,
            store_selects: self.store_selects - earlier.store_selects,
            batched_selects: self.batched_selects - earlier.batched_selects,
            rows_fetched: self.rows_fetched - earlier.rows_fetched,
        }
    }
}

/// Bounded LRU map of materialized nodes. Eviction scans for the least
/// recently used entry, which is fine at the intended capacities (a few
/// thousand nodes).
#[derive(Debug)]
struct NodeCache {
    cap: usize,
    tick: u64,
    map: HashMap<SourceNodeId, (Rc<OwnedNode>, u64)>,
}

impl NodeCache {
    fn new(cap: usize) -> NodeCache {
        NodeCache {
            cap,
            tick: 0,
            map: HashMap::with_capacity(cap.min(1024)),
        }
    }

    fn get(&mut self, id: SourceNodeId) -> Option<Rc<OwnedNode>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&id).map(|(node, stamp)| {
            *stamp = tick;
            node.clone()
        })
    }

    fn put(&mut self, id: SourceNodeId, node: Rc<OwnedNode>) {
        if self.cap == 0 {
            return;
        }
        if self.map.len() >= self.cap && !self.map.contains_key(&id) {
            if let Some(lru) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(&id, _)| id)
            {
                self.map.remove(&lru);
            }
        }
        self.tick += 1;
        self.map.insert(id, (node, self.tick));
    }
}

const KEYSPACE: &str = "smartcity";
const MIN_KEYSPACE: &str = "smartcity_min";

fn table(keyspace: &str, name: &str) -> TableRef {
    TableRef {
        keyspace: keyspace.into(),
        table: name.into(),
    }
}

/// A cached, batched cursor over the Table-1 NoSQL layout
/// (`dwarf_node` / `dwarf_cell` in the `smartcity` keyspace).
#[derive(Debug)]
pub struct StoreNodeSource<'a> {
    model: &'a mut NosqlDwarfModel,
    schema_id: i64,
    schema: CubeSchema,
    entry_node_id: i64,
    cache: NodeCache,
    stats: ReadStats,
}

impl<'a> StoreNodeSource<'a> {
    /// Opens a stored schema with the default node-cache capacity.
    pub fn open(model: &'a mut NosqlDwarfModel, schema_id: i64) -> Result<StoreNodeSource<'a>> {
        Self::open_with_cache(model, schema_id, DEFAULT_NODE_CACHE_CAPACITY)
    }

    /// Opens a stored schema with an explicit node-cache capacity
    /// (`0` disables caching).
    pub fn open_with_cache(
        model: &'a mut NosqlDwarfModel,
        schema_id: i64,
        cache_capacity: usize,
    ) -> Result<StoreNodeSource<'a>> {
        let r = model.db_mut().execute(&Statement::select(
            table(KEYSPACE, "dwarf_schema"),
            SelectColumns::named(["entry_node_id", "schema_meta"]),
            Some(WhereClause::eq("id", CqlValue::Int(schema_id))),
            None,
        ))?;
        let row = r.first().ok_or(CoreError::UnknownSchema(schema_id))?;
        let entry_node_id = row.get_int("entry_node_id")?;
        let schema = decode_schema_meta(row.get_text("schema_meta")?)?;
        Ok(StoreNodeSource {
            model,
            schema_id,
            schema,
            entry_node_id,
            cache: NodeCache::new(cache_capacity),
            stats: ReadStats::default(),
        })
    }

    /// The stored schema's cube schema.
    pub fn schema(&self) -> &CubeSchema {
        &self.schema
    }

    /// The stored schema id.
    pub fn schema_id(&self) -> i64 {
        self.schema_id
    }

    /// Snapshot of this source's read counters.
    pub fn stats(&self) -> ReadStats {
        self.stats
    }

    /// Zeroes this source's read counters (the cache keeps its contents).
    pub fn reset_stats(&mut self) {
        self.stats = ReadStats::default();
    }

    /// Materializes one node from the store: the node row's `childrenIds`
    /// set, then every cell of the node in **one** batched
    /// `SELECT ... WHERE id IN (...)` round-trip.
    fn fetch_node(&mut self, id: SourceNodeId) -> Result<OwnedNode> {
        self.stats.store_selects += 1;
        let r = self.model.db_mut().execute(&Statement::select(
            table(KEYSPACE, "dwarf_node"),
            SelectColumns::named(["childrenIds"]),
            Some(WhereClause::eq("id", CqlValue::Int(id))),
            None,
        ))?;
        let row = r
            .first()
            .ok_or_else(|| CoreError::Inconsistent(format!("node {id} missing from store")))?;
        self.stats.rows_fetched += 1;
        let children: Vec<i64> = row.get_int_set("childrenIds")?.iter().copied().collect();
        if children.is_empty() {
            // Only the empty cube's entry node stores no cells.
            return Ok(OwnedNode::from_cells(Vec::new(), None, 0));
        }
        self.stats.store_selects += 1;
        self.stats.batched_selects += 1;
        let values: Vec<CqlValue> = children.iter().map(|&c| CqlValue::Int(c)).collect();
        let r = self.model.db_mut().execute(&Statement::select(
            table(KEYSPACE, "dwarf_cell"),
            SelectColumns::named(["key", "measure", "pointerNode"]),
            Some(WhereClause::any_of("id", values)),
            None,
        ))?;
        if r.len() != children.len() {
            return Err(CoreError::Inconsistent(format!(
                "node {id}: fetched {} of {} cells",
                r.len(),
                children.len()
            )));
        }
        self.stats.rows_fetched += r.len() as u64;
        if sc_obs::enabled() {
            let obs = crate::obs::store_query();
            obs.rows_fetched.add(r.len() as u64 + 1);
            obs.batch_size.record(r.len() as u64);
        }
        let mut cells = Vec::with_capacity(r.len().saturating_sub(1));
        let mut all: Option<(Option<i64>, i64)> = None;
        for row in r.rows() {
            let key = row.get_text("key")?;
            let measure = row.get_int("measure")?;
            let pointer = row.get_opt_int("pointerNode")?;
            if key == ALL_KEY {
                all = Some((pointer, measure));
            } else {
                cells.push(OwnedCell {
                    key: key.to_string(),
                    measure,
                    child: pointer,
                });
            }
        }
        let Some((all_child, total)) = all else {
            return Err(CoreError::Inconsistent(format!(
                "node {id} has no ALL cell"
            )));
        };
        Ok(OwnedNode::from_cells(cells, all_child, total))
    }
}

impl NodeSource<'static> for StoreNodeSource<'_> {
    type Err = CoreError;

    fn num_dims(&self) -> usize {
        self.schema.num_dims()
    }

    fn agg(&self) -> AggFn {
        self.schema.agg()
    }

    fn root(&self) -> Option<SourceNodeId> {
        Some(self.entry_node_id)
    }

    fn node(&mut self, id: SourceNodeId) -> std::result::Result<CowNode<'static>, CoreError> {
        let enabled = sc_obs::enabled();
        if let Some(node) = self.cache.get(id) {
            self.stats.node_cache_hits += 1;
            if enabled {
                crate::obs::store_query().node_cache_hits.add(1);
            }
            return Ok(CowNode::Owned(node));
        }
        self.stats.node_cache_misses += 1;
        if enabled {
            crate::obs::store_query().node_cache_misses.add(1);
        }
        let started = enabled.then(std::time::Instant::now);
        let node = Rc::new(self.fetch_node(id)?);
        if let Some(started) = started {
            crate::obs::store_query()
                .fetch_ns
                .record_duration(started.elapsed());
        }
        self.cache.put(id, node.clone());
        Ok(CowNode::Owned(node))
    }
}

/// A cursor over the **NoSQL-Min** layout (`smartcity_min.dwarf_cell`).
///
/// The Min schema stores no node rows, so every lookup must *reconstruct*
/// the node by querying the cell table's `parentNodeId` secondary index —
/// the cost §5.1 anticipates: "the absence of a DWARF Node construct will
/// have a significant impact on query times as DWARF Node reconstruction
/// is required". It is deliberately left uncached so that contrast stays
/// measurable; compare [`StoreNodeSource`].
#[derive(Debug)]
pub struct MinStoreNodeSource<'a> {
    model: &'a mut NosqlMinModel,
    schema: CubeSchema,
    entry_node_id: i64,
    stats: ReadStats,
}

impl<'a> MinStoreNodeSource<'a> {
    /// Opens a stored cube for querying.
    pub fn open(model: &'a mut NosqlMinModel, cube_id: i64) -> Result<MinStoreNodeSource<'a>> {
        let r = model.db_mut().execute(&Statement::select(
            table(MIN_KEYSPACE, "dwarf_cube"),
            SelectColumns::named(["entry_node_id", "schema_meta"]),
            Some(WhereClause::eq("id", CqlValue::Int(cube_id))),
            None,
        ))?;
        let row = r.first().ok_or(CoreError::UnknownSchema(cube_id))?;
        let entry_node_id = row.get_int("entry_node_id")?;
        let schema = decode_schema_meta(row.get_text("schema_meta")?)?;
        Ok(MinStoreNodeSource {
            model,
            schema,
            entry_node_id,
            stats: ReadStats::default(),
        })
    }

    /// The stored cube's schema.
    pub fn schema(&self) -> &CubeSchema {
        &self.schema
    }

    /// Snapshot of this source's read counters.
    pub fn stats(&self) -> ReadStats {
        self.stats
    }
}

impl NodeSource<'static> for MinStoreNodeSource<'_> {
    type Err = CoreError;

    fn num_dims(&self) -> usize {
        self.schema.num_dims()
    }

    fn agg(&self) -> AggFn {
        self.schema.agg()
    }

    fn root(&self) -> Option<SourceNodeId> {
        Some(self.entry_node_id)
    }

    fn node(&mut self, id: SourceNodeId) -> std::result::Result<CowNode<'static>, CoreError> {
        self.stats.node_cache_misses += 1;
        self.stats.store_selects += 1;
        let r = self.model.db_mut().execute(&Statement::select(
            table(MIN_KEYSPACE, "dwarf_cell"),
            SelectColumns::named(["item_name", "measure", "childNodeId"]),
            Some(WhereClause::eq("parentNodeId", CqlValue::Int(id))),
            None,
        ))?;
        self.stats.rows_fetched += r.len() as u64;
        if r.len() == 0 {
            // No stored cells: the empty cube's entry node (or an unknown
            // id, which the Min layout cannot distinguish).
            return Ok(CowNode::Owned(Rc::new(OwnedNode::from_cells(
                Vec::new(),
                None,
                0,
            ))));
        }
        let mut cells = Vec::with_capacity(r.len() - 1);
        let mut all: Option<(Option<i64>, i64)> = None;
        for row in r.rows() {
            let key = row.get_text("item_name")?;
            let measure = row.get_int("measure")?;
            let pointer = row.get_opt_int("childNodeId")?;
            if key == ALL_KEY {
                all = Some((pointer, measure));
            } else {
                cells.push(OwnedCell {
                    key: key.to_string(),
                    measure,
                    child: pointer,
                });
            }
        }
        let Some((all_child, total)) = all else {
            return Err(CoreError::Inconsistent(format!(
                "node {id} has no ALL cell"
            )));
        };
        Ok(CowNode::Owned(Rc::new(OwnedNode::from_cells(
            cells, all_child, total,
        ))))
    }
}

/// A [`NodeSource`] over an already-fetched row set.
///
/// This is what routes the models' `rebuild()` through the shared
/// traversal core: each model scans its cells into [`StoredCell`]s once,
/// and the reverse mapping walks them with the same generic algorithms the
/// live cursors use.
#[derive(Debug)]
pub struct StoredCellSource {
    nodes: HashMap<SourceNodeId, Rc<OwnedNode>>,
    entry_node_id: i64,
    num_dims: usize,
    agg: AggFn,
}

impl StoredCellSource {
    /// Groups fetched cells by their containing node.
    pub fn new(
        cells: &[StoredCell],
        entry_node_id: i64,
        num_dims: usize,
        agg: AggFn,
    ) -> StoredCellSource {
        struct PendingNode {
            cells: Vec<OwnedCell>,
            all: Option<(Option<i64>, i64)>,
        }
        let mut grouped: HashMap<SourceNodeId, PendingNode> = HashMap::new();
        for c in cells {
            let entry = grouped.entry(c.parent_node).or_insert_with(|| PendingNode {
                cells: Vec::new(),
                all: None,
            });
            if c.is_all() {
                entry.all = Some((c.pointer_node, c.measure));
            } else {
                entry.cells.push(OwnedCell {
                    key: c.key.clone(),
                    measure: c.measure,
                    child: c.pointer_node,
                });
            }
        }
        let nodes = grouped
            .into_iter()
            .map(|(id, pending)| {
                let (all_child, total) = pending.all.unwrap_or((None, 0));
                (
                    id,
                    Rc::new(OwnedNode::from_cells(pending.cells, all_child, total)),
                )
            })
            .collect();
        StoredCellSource {
            nodes,
            entry_node_id,
            num_dims,
            agg,
        }
    }
}

impl NodeSource<'static> for StoredCellSource {
    type Err = CoreError;

    fn num_dims(&self) -> usize {
        self.num_dims
    }

    fn agg(&self) -> AggFn {
        self.agg
    }

    fn root(&self) -> Option<SourceNodeId> {
        Some(self.entry_node_id)
    }

    fn node(&mut self, id: SourceNodeId) -> std::result::Result<CowNode<'static>, CoreError> {
        self.nodes
            .get(&id)
            .cloned()
            .map(CowNode::Owned)
            .ok_or_else(|| CoreError::Inconsistent(format!("node {id} has no stored cells")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(n: u64) -> Rc<OwnedNode> {
        Rc::new(OwnedNode::from_cells(Vec::new(), None, n as i64))
    }

    #[test]
    fn lru_cache_evicts_least_recently_used() {
        let mut cache = NodeCache::new(2);
        cache.put(1, node(1));
        cache.put(2, node(2));
        assert!(cache.get(1).is_some()); // 1 is now more recent than 2
        cache.put(3, node(3)); // evicts 2
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = NodeCache::new(0);
        cache.put(1, node(1));
        assert!(cache.get(1).is_none());
    }

    #[test]
    fn reinserting_a_cached_id_does_not_evict() {
        let mut cache = NodeCache::new(2);
        cache.put(1, node(1));
        cache.put(2, node(2));
        cache.put(2, node(22));
        assert!(cache.get(1).is_some());
        assert_eq!(cache.get(2).unwrap().total, 22);
    }

    #[test]
    fn read_stats_deltas_and_ratio() {
        let a = ReadStats {
            node_cache_hits: 3,
            node_cache_misses: 1,
            store_selects: 2,
            batched_selects: 1,
            rows_fetched: 9,
        };
        assert!((a.hit_ratio() - 0.75).abs() < 1e-9);
        assert_eq!(ReadStats::default().hit_ratio(), 0.0);
        let later = ReadStats {
            node_cache_hits: 5,
            ..a
        };
        assert_eq!(later.since(&a).node_cache_hits, 2);
        assert_eq!(later.since(&a).rows_fetched, 0);
    }
}
