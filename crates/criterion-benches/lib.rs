//! Empty library target; this package exists only for its `[[bench]]`
//! targets (see Cargo.toml for why it sits outside the workspace).
