//! Query latency: in-memory DWARF vs store-backed traversal vs full
//! rebuild — the retrieval side the paper defers to future work.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_bench::prepare_dataset;
use sc_core::models::{NosqlDwarfModel, NosqlMinModel, SchemaModel};
use sc_core::{MappedDwarf, MinStoreBackedCube, StoreBackedCube};
use sc_dwarf::Selection;
use sc_ingest::Window;

fn bench_queries(c: &mut Criterion) {
    let dataset = prepare_dataset(Window::Day, 0.02, false);
    let cube = &dataset.cube;
    let mapped = MappedDwarf::new(cube);
    let mut model = NosqlDwarfModel::in_memory();
    model.create_schema().expect("schema");
    let report = model.store(&mapped, cube, false).expect("store");
    let schema_id = report.schema_id;

    let sel = vec![
        Selection::value("2015"),
        Selection::value("11"),
        Selection::All,
        Selection::All,
        Selection::value("Dublin 2"),
        Selection::All,
        Selection::All,
        Selection::All,
    ];

    // The Min layout for the node-reconstruction comparison (§5.1's
    // anticipated query-time cost of dropping the Node construct).
    let mut min_model = NosqlMinModel::in_memory();
    min_model.create_schema().expect("schema");
    let min_report = min_model.store(&mapped, cube, false).expect("store");
    let min_id = min_report.schema_id;

    let mut group = c.benchmark_group("query/point");
    group.bench_function("in_memory_dwarf", |b| b.iter(|| cube.point(&sel)));
    group.bench_function("store_backed_traversal_(nosql_dwarf)", |b| {
        b.iter(|| {
            let mut sbc = StoreBackedCube::open(&mut model, schema_id).expect("open");
            sbc.point(&sel).expect("query")
        })
    });
    group.bench_function("node_reconstruction_(nosql_min)", |b| {
        b.iter(|| {
            let mut sbc = MinStoreBackedCube::open(&mut min_model, min_id).expect("open");
            sbc.point(&sel).expect("query")
        })
    });
    group.finish();

    let mut group = c.benchmark_group("query/rebuild_full_cube");
    group.sample_size(10);
    group.bench_function("nosql_dwarf_rebuild", |b| {
        b.iter(|| model.rebuild(schema_id).expect("rebuild").tuple_count())
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
