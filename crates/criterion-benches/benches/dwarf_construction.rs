//! DWARF construction scaling: build time and structure size vs input
//! size and dimensionality. Not a paper table, but the substrate cost every
//! experiment sits on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sc_datagen::{BikesGenerator, DatasetSpec};
use sc_dwarf::{CubeSchema, Dwarf, TupleSet};
use sc_ingest::Window;

fn bench_build_by_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("dwarf/build_bikes");
    group.sample_size(10);
    for scale in [0.01, 0.05, 0.1] {
        let spec = DatasetSpec::for_window(Window::Day).scaled_spec(scale);
        let n = spec.target_tuples;
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &spec, |b, spec| {
            let def = BikesGenerator::cube_def();
            b.iter(|| {
                let tuples = BikesGenerator::tuples(spec.clone());
                Dwarf::build(def.schema(), tuples).node_count()
            })
        });
    }
    group.finish();
}

fn bench_build_by_dims(c: &mut Criterion) {
    let mut group = c.benchmark_group("dwarf/build_by_dimensionality");
    group.sample_size(10);
    for d in [2usize, 4, 8] {
        let dims: Vec<String> = (0..d).map(|i| format!("d{i}")).collect();
        let schema = CubeSchema::new(dims, "m");
        group.bench_with_input(BenchmarkId::from_parameter(d), &schema, |b, schema| {
            b.iter(|| {
                let mut ts = TupleSet::new(schema);
                for i in 0..2000usize {
                    let row: Vec<String> = (0..d)
                        .map(|k| format!("v{}", (i * (k * 7 + 3)) % (5 + k)))
                        .collect();
                    ts.push(row.iter().map(String::as_str), i as i64);
                }
                Dwarf::build(schema.clone(), ts).cell_count()
            })
        });
    }
    group.finish();
}

fn bench_point_vs_groupby(c: &mut Criterion) {
    let spec = DatasetSpec::for_window(Window::Day).scaled_spec(0.1);
    let def = BikesGenerator::cube_def();
    let cube = Dwarf::build(def.schema(), BikesGenerator::tuples(spec));
    let mut group = c.benchmark_group("dwarf/query");
    use sc_dwarf::Selection;
    let full = vec![
        Selection::value("2015"),
        Selection::value("11"),
        Selection::value("01"),
        Selection::value("08"),
        Selection::value("Dublin 2"),
        Selection::value("Portobello"),
        Selection::value("open"),
        Selection::value("30"),
    ];
    let rollup = vec![Selection::All; 8];
    group.bench_function("fully_specified_point", |b| {
        b.iter(|| cube.point(&full))
    });
    group.bench_function("grand_total_all_dims", |b| {
        b.iter(|| cube.point(&rollup))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_build_by_size,
    bench_build_by_dims,
    bench_point_vs_groupby
);
criterion_main!(benches);
