//! Table 4 bench: storage size per schema model.
//!
//! Size is deterministic per dataset, so this bench measures the *work* of
//! producing the stored bytes (store + flush) and prints the resulting
//! sizes once so criterion output doubles as a Table 4 row at bench scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_bench::prepare_dataset;
use sc_core::models::ModelKind;
use sc_core::MappedDwarf;
use sc_ingest::Window;

const SCALE: f64 = 0.02;

fn bench_storage(c: &mut Criterion) {
    let dataset = prepare_dataset(Window::Day, SCALE, false);
    let mapped = MappedDwarf::new(&dataset.cube);
    // Print the Table 4 row once.
    println!("\nTable 4 at scale {SCALE} ({} facts):", dataset.cube.tuple_count());
    for kind in ModelKind::ALL {
        let mut model = kind.build().expect("schema");
        let report = model.store(&mapped, &dataset.cube, false).expect("store");
        println!("  {:<12} {:>12}", kind.label(), report.size.to_string());
    }
    let mut group = c.benchmark_group("table4/store_and_flush");
    group.sample_size(10);
    for kind in ModelKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut model = kind.build().expect("schema");
                    let report = model.store(&mapped, &dataset.cube, false).expect("store");
                    report.size.as_bytes()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
