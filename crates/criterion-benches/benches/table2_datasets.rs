//! Table 2 bench: dataset generation and ingest cost per window.
//!
//! Measures (a) raw feed generation, (b) generation + XML parsing +
//! extraction — the ETL front half of the pipeline. Windows run at 2% of
//! the paper's tuple counts so the bench suite stays fast; `repro -- table2`
//! prints the catalog at any scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sc_datagen::{BikesGenerator, DatasetSpec};
use sc_dwarf::TupleSet;
use sc_ingest::extract::{extract_into, ParsedDoc};
use sc_ingest::{MissingPolicy, Window};

const SCALE: f64 = 0.02;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/generate_xml");
    group.sample_size(10);
    for window in [Window::Day, Window::Week] {
        let spec = DatasetSpec::for_window(window).scaled_spec(SCALE);
        group.throughput(Throughput::Elements(spec.target_tuples as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(window),
            &spec,
            |b, spec| {
                b.iter(|| {
                    let bytes: usize = BikesGenerator::new(spec.clone())
                        .map(|s| s.xml.len())
                        .sum();
                    bytes
                })
            },
        );
    }
    group.finish();
}

fn bench_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/parse_and_extract");
    group.sample_size(10);
    for window in [Window::Day, Window::Week] {
        let spec = DatasetSpec::for_window(window).scaled_spec(SCALE);
        // Pre-render the feed so only parse+extract is timed.
        let docs: Vec<String> = BikesGenerator::new(spec.clone()).map(|s| s.xml).collect();
        let def = BikesGenerator::cube_def();
        group.throughput(Throughput::Elements(spec.target_tuples as u64));
        group.bench_with_input(BenchmarkId::from_parameter(window), &docs, |b, docs| {
            b.iter(|| {
                let mut tuples = TupleSet::new(&def.schema());
                for doc in docs {
                    let parsed = ParsedDoc::parse(def.format, doc).expect("well-formed");
                    extract_into(&def, &parsed, &mut tuples, MissingPolicy::Fail)
                        .expect("extraction");
                }
                tuples.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation, bench_extraction);
criterion_main!(benches);
