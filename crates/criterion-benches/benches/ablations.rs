//! Ablations: the design choices DESIGN.md attributes the paper's results
//! to, each isolated.
//!
//! * `set_encoding` — NoSQL-DWARF (edges in `set<int>`) vs MySQL-DWARF
//!   (edge tables): what the collection type saves.
//! * `secondary_index` — NoSQL cell table with vs without the two indexes:
//!   what makes NoSQL-Min lose Table 5.
//! * `coalescing` — DWARF vs fully-materialized (suffix sharing disabled):
//!   what the DWARF structure itself saves.
//! * `prepared_vs_text` — executing prepared statements vs rendering +
//!   parsing CQL text per statement.
//! * `insert_batch` — MySQL per-row statements vs multi-row inserts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_bench::prepare_dataset;
use sc_core::models::{
    ModelKind, MysqlMinModel, NosqlDwarfModel, NosqlMinModel, SchemaModel,
};
use sc_core::MappedDwarf;
use sc_dwarf::builder::{build_with_options, BuildOptions};
use sc_dwarf::{CubeSchema, Dwarf, TupleSet};
use sc_ingest::Window;

const SCALE: f64 = 0.01;

fn bench_set_encoding(c: &mut Criterion) {
    let dataset = prepare_dataset(Window::Day, SCALE, false);
    let mapped = MappedDwarf::new(&dataset.cube);
    println!("\nablation set_encoding (sizes at scale {SCALE}):");
    for kind in [ModelKind::NosqlDwarf, ModelKind::MysqlDwarf] {
        let mut model = kind.build().expect("schema");
        let r = model.store(&mapped, &dataset.cube, false).expect("store");
        println!("  {:<12} {}", kind.label(), r.size);
    }
    let mut group = c.benchmark_group("ablation/set_encoding_store");
    group.sample_size(10);
    for kind in [ModelKind::NosqlDwarf, ModelKind::MysqlDwarf] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut model = kind.build().expect("schema");
                    model.store(&mapped, &dataset.cube, false).expect("store")
                })
            },
        );
    }
    group.finish();
}

fn bench_secondary_index(c: &mut Criterion) {
    let dataset = prepare_dataset(Window::Day, SCALE, false);
    let mapped = MappedDwarf::new(&dataset.cube);
    let mut group = c.benchmark_group("ablation/secondary_index");
    group.sample_size(10);
    // With the two indexes (NoSQL-Min as designed)...
    group.bench_function("with_indexes", |b| {
        b.iter(|| {
            let mut model = NosqlMinModel::in_memory();
            model.create_schema().expect("schema");
            model.store(&mapped, &dataset.cube, false).expect("store")
        })
    });
    // ...vs the same cell layout with no indexes (NosqlDwarf's cell table
    // has no secondary indexes; here we reuse NoSQL-DWARF as the
    // no-secondary-index reference storing strictly more rows).
    group.bench_function("without_indexes_(nosql_dwarf)", |b| {
        b.iter(|| {
            let mut model = NosqlDwarfModel::in_memory();
            model.create_schema().expect("schema");
            model.store(&mapped, &dataset.cube, false).expect("store")
        })
    });
    group.finish();
}

fn bench_coalescing(c: &mut Criterion) {
    // Small synthetic cube; disabling sharing explodes superlinearly.
    fn tuples(schema: &CubeSchema) -> TupleSet {
        let mut ts = TupleSet::new(schema);
        for i in 0..300usize {
            let row: Vec<String> = (0..4)
                .map(|k| format!("v{}", (i * (k * 5 + 2)) % (4 + k)))
                .collect();
            ts.push(row.iter().map(String::as_str), i as i64);
        }
        ts
    }
    let schema = CubeSchema::new(["a", "b", "c", "d"], "m");
    let shared = Dwarf::build(schema.clone(), tuples(&schema));
    let copied = build_with_options(
        schema.clone(),
        tuples(&schema),
        BuildOptions {
            suffix_coalescing: false,
        },
    );
    println!(
        "\nablation coalescing: shared={} nodes / {} cells, materialized={} nodes / {} cells",
        shared.node_count(),
        shared.cell_count(),
        copied.node_count(),
        copied.cell_count()
    );
    let mut group = c.benchmark_group("ablation/coalescing_build");
    group.sample_size(10);
    group.bench_function("suffix_coalescing_on", |b| {
        b.iter(|| Dwarf::build(schema.clone(), tuples(&schema)).node_count())
    });
    group.bench_function("suffix_coalescing_off", |b| {
        b.iter(|| {
            build_with_options(
                schema.clone(),
                tuples(&schema),
                BuildOptions {
                    suffix_coalescing: false,
                },
            )
            .node_count()
        })
    });
    group.finish();
}

fn bench_prepared_vs_text(c: &mut Criterion) {
    let dataset = prepare_dataset(Window::Day, SCALE, false);
    let mapped = MappedDwarf::new(&dataset.cube);
    let mut group = c.benchmark_group("ablation/prepared_vs_text");
    group.sample_size(10);
    group.bench_function("prepared_statements", |b| {
        b.iter(|| {
            let mut model = NosqlDwarfModel::in_memory();
            model.create_schema().expect("schema");
            model.store(&mapped, &dataset.cube, false).expect("store")
        })
    });
    group.bench_function("cql_text_roundtrip", |b| {
        b.iter(|| {
            let mut model = NosqlDwarfModel::in_memory();
            model.create_schema().expect("schema");
            model
                .store_via_text(&mapped, &dataset.cube, false)
                .expect("store")
        })
    });
    group.finish();
}

fn bench_insert_batch(c: &mut Criterion) {
    let dataset = prepare_dataset(Window::Day, SCALE, false);
    let mapped = MappedDwarf::new(&dataset.cube);
    let mut group = c.benchmark_group("ablation/mysql_insert_batch");
    group.sample_size(10);
    for batch in [1usize, 20, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                let mut model = MysqlMinModel::in_memory().with_insert_batch(batch);
                model.create_schema().expect("schema");
                model.store(&mapped, &dataset.cube, false).expect("store")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_set_encoding,
    bench_secondary_index,
    bench_coalescing,
    bench_prepared_vs_text,
    bench_insert_batch
);
criterion_main!(benches);
