//! Table 5 bench: insertion time per schema model, Day and Week windows.
//!
//! The timed section is exactly the paper's: executing the bulk-insert
//! statements against a freshly created schema (model construction and
//! cube mapping are outside the measurement, matching `StoreReport::elapsed`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sc_bench::prepare_dataset;
use sc_core::models::ModelKind;
use sc_core::MappedDwarf;
use sc_ingest::Window;

const SCALE: f64 = 0.02;

fn bench_insertion(c: &mut Criterion) {
    for window in [Window::Day, Window::Week] {
        let dataset = prepare_dataset(window, SCALE, false);
        let mapped = MappedDwarf::new(&dataset.cube);
        let mut group = c.benchmark_group(format!("table5/insert/{window}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(mapped.cell_count() as u64));
        for kind in ModelKind::ALL {
            group.bench_with_input(
                BenchmarkId::from_parameter(kind.label()),
                &kind,
                |b, &kind| {
                    b.iter_custom(|iters| {
                        let mut total = std::time::Duration::ZERO;
                        for _ in 0..iters {
                            let mut model = kind.build().expect("schema");
                            let report =
                                model.store(&mapped, &dataset.cube, false).expect("store");
                            total += report.elapsed;
                        }
                        total
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_insertion);
criterion_main!(benches);
