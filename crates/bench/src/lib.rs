//! # sc-bench
//!
//! The benchmark harness. Two entry points:
//!
//! * **`repro`** (binary) — regenerates the paper's tables and figures in
//!   their published format
//!   (`cargo run -p sc-bench --bin repro --release -- all --scale 0.1`).
//! * **Criterion benches** — statistical micro/meso benchmarks per
//!   experiment (`cargo bench -p sc-bench`).
//!
//! The shared plumbing here builds cubes per dataset window and runs the
//! four schema models over them.

use sc_core::models::{ModelKind, StoreReport};
use sc_core::MappedDwarf;
use sc_datagen::{BikesGenerator, DatasetSpec};
use sc_dwarf::Dwarf;
use sc_ingest::Window;

/// A prepared dataset: the generated cube plus its catalog row.
pub struct PreparedDataset {
    /// Which Table 2 row this is.
    pub spec: DatasetSpec,
    /// Scale factor applied to the paper's tuple count.
    pub scale: f64,
    /// Tuples generated (after scaling, before dedup).
    pub generated_tuples: usize,
    /// Raw XML bytes of the feed at this scale.
    pub raw_xml_bytes: u64,
    /// The built cube.
    pub cube: Dwarf,
}

/// Generates and builds one dataset at `scale`, via the fast tuple path.
///
/// `measure_xml` additionally renders the XML feed to measure its raw size
/// (Table 2's MB column); skip it when only the cube matters.
pub fn prepare_dataset(window: Window, scale: f64, measure_xml: bool) -> PreparedDataset {
    let spec = DatasetSpec::for_window(window);
    let gen_spec = spec.scaled_spec(scale);
    let generated_tuples = gen_spec.target_tuples;
    let raw_xml_bytes = if measure_xml {
        BikesGenerator::new(gen_spec.clone())
            .map(|s| s.xml.len() as u64)
            .sum()
    } else {
        0
    };
    let tuples = BikesGenerator::tuples(gen_spec);
    let def = BikesGenerator::cube_def();
    let cube = Dwarf::build(def.schema(), tuples);
    PreparedDataset {
        spec,
        scale,
        generated_tuples,
        raw_xml_bytes,
        cube,
    }
}

/// Stores a cube in a fresh model of `kind`, returning the report.
pub fn run_model(kind: ModelKind, cube: &Dwarf) -> StoreReport {
    let mapped = MappedDwarf::new(cube);
    let mut model = kind.build().expect("schema creation");
    model.store(&mapped, cube, false).expect("store")
}

/// The windows a scaled run covers: everything whose scaled tuple count
/// stays under `max_tuples`.
pub fn windows_within(scale: f64, max_tuples: usize) -> Vec<Window> {
    Window::ALL
        .into_iter()
        .filter(|w| {
            (DatasetSpec::for_window(*w).paper_tuples as f64 * scale) as usize <= max_tuples
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_small_dataset() {
        let d = prepare_dataset(Window::Day, 0.01, true);
        assert_eq!(d.generated_tuples, 74);
        assert!(d.raw_xml_bytes > 0);
        assert!(!d.cube.is_empty());
        d.cube.validate();
    }

    #[test]
    fn run_model_roundtrip() {
        let d = prepare_dataset(Window::Day, 0.01, false);
        let report = run_model(ModelKind::NosqlDwarf, &d.cube);
        assert!(report.size.as_bytes() > 0);
    }

    #[test]
    fn window_filter() {
        let all = windows_within(1.0, usize::MAX);
        assert_eq!(all.len(), 5);
        let small = windows_within(1.0, 100_000);
        assert_eq!(small, vec![Window::Day, Window::Week]);
    }
}
