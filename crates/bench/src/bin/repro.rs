//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [table2|table4|table5|fig2|fig3|fig4|stream|crashtest|obs|query|serve|netbench|trace|all]
//!       [--scale F] [--full] [--threads N] [--points N] [--seed S] [--stats]
//!       [--port N] [--metrics-port N] [--token TENANT=TOKEN] [--slow-ms N] [--smoke]
//!       [--clients N] [--rows N] [--out PATH]
//! ```
//!
//! * `--scale F` runs each dataset at fraction `F` of the paper's tuple
//!   count (default 0.1).
//! * `--full` is shorthand for `--scale 1.0` (SMonth = 1 181 344 tuples;
//!   expect minutes).
//! * `stream` demonstrates the sharded streaming-ingestion runtime:
//!   `--threads N` (default 4) workers parse the feed in parallel, and the
//!   run reports per-stage counters plus equivalence against the
//!   sequential pipeline.
//! * `crashtest` runs the NoSQL engine's crash matrix: a deterministic
//!   workload is killed at `--points N` (default 64) evenly spaced storage
//!   operations (`--points 0` = every operation), recovered, and checked
//!   against the acknowledged writes. `--seed S` varies the workload.
//! * `obs` runs a small end-to-end workload (streaming ingest → NoSQL
//!   flush → cube queries → crash/recovery) and emits the full `sc-obs`
//!   metric registry as a text report, Prometheus exposition and JSON.
//! * `query` stores a cube in the NoSQL-DWARF model and answers point and
//!   range queries straight from the stored rows through the cached,
//!   batched store cursor, reporting per-query read counters (rows
//!   fetched, batched SELECTs, cache hit ratio) cold and warm.
//! * `serve` starts the sc-server network front door: `--port`/
//!   `--metrics-port` (default 0 = ephemeral), `--token TENANT=TOKEN`
//!   (repeatable; default `demo=demo-token`), `--slow-ms N` slow-query
//!   threshold. `--smoke` runs a self-contained round trip (connect,
//!   INSERT/SELECT, scrape `/metrics`, drained shutdown) and exits.
//! * `netbench` drives a loopback server with `--clients N` concurrent
//!   connections across two tenants, ingesting `--rows N` total rows and
//!   then timing point SELECTs cold (after a flush) and warm, reporting
//!   ingest rows/sec and p50/p99 query latency, plus a recovery phase
//!   (ingest to disk, drop without flushing, time the WAL-replay reopen);
//!   `--out PATH` writes the numbers as JSON (the committed `BENCH_8.json`).
//! * `trace` runs a traced loopback workload (`--rows N` inserts, point
//!   SELECTs off SSTables, one full scan) and dumps the worst retained
//!   trace: a span tree with engine attribution on stdout, and the Chrome
//!   trace-event JSON (load in `chrome://tracing`) to `--out PATH`.
//! * `--stats` appends the registry text report after any subcommand.
//!
//! Absolute numbers differ from the paper (different hardware, embedded
//! engines instead of server processes); the *shape* — who wins, by what
//! factor, where the crossovers are — is the reproduction target. See
//! EXPERIMENTS.md for a recorded comparison.

use sc_bench::{prepare_dataset, run_model, PreparedDataset};
use sc_core::models::{ModelKind, MysqlDwarfModel, NosqlDwarfModel, SchemaModel};
use sc_core::transform::cell_to_cql;
use sc_core::MappedDwarf;
use sc_dwarf::{CubeSchema, Dwarf, TupleSet};
use sc_ingest::Window;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = "all".to_string();
    let mut scale = 0.1f64;
    let mut threads = 4usize;
    let mut points = 64usize;
    let mut seed = 0xC0FFEEu64;
    let mut stats = false;
    let mut port = 0u16;
    let mut metrics_port = 0u16;
    let mut tokens: Vec<(String, String)> = Vec::new();
    let mut slow_ms = 100u64;
    let mut smoke = false;
    let mut clients = 8usize;
    let mut rows = 4000usize;
    let mut out: Option<String> = None;
    let mut explain = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--port" => {
                i += 1;
                port = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--port needs a port number"));
            }
            "--metrics-port" => {
                i += 1;
                metrics_port = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--metrics-port needs a port number"));
            }
            "--token" => {
                i += 1;
                let pair = args
                    .get(i)
                    .and_then(|s| s.split_once('='))
                    .unwrap_or_else(|| usage("--token needs TENANT=TOKEN"));
                tokens.push((pair.0.to_string(), pair.1.to_string()));
            }
            "--slow-ms" => {
                i += 1;
                slow_ms = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--slow-ms needs a non-negative integer"));
            }
            "--smoke" => smoke = true,
            "--clients" => {
                i += 1;
                clients = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--clients needs a positive integer"));
            }
            "--rows" => {
                i += 1;
                rows = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--rows needs a positive integer"));
            }
            "--out" => {
                i += 1;
                out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--out needs a path")),
                );
            }
            "--points" => {
                i += 1;
                points = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--points needs a non-negative integer"));
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an unsigned integer"));
            }
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--scale needs a number in (0, 1]"));
            }
            "--full" => scale = 1.0,
            "--stats" => stats = true,
            "--explain" => explain = true,
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--threads needs a positive integer"));
            }
            c @ ("table2" | "table4" | "table5" | "fig2" | "fig3" | "fig4" | "stream"
            | "crashtest" | "obs" | "query" | "serve" | "netbench" | "trace" | "all") => {
                command = c.to_string();
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    if !(scale > 0.0 && scale <= 1.0) {
        usage("--scale must be in (0, 1]");
    }

    match command.as_str() {
        "table2" => table2(scale),
        "table4" | "table5" => tables45(scale, command == "table4", command == "table5"),
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "stream" => stream(scale, threads),
        "crashtest" => crashtest(seed, points),
        "obs" => obs(threads, seed),
        "query" => query(scale, explain),
        "serve" => serve(port, metrics_port, tokens, slow_ms, smoke),
        "netbench" => netbench(clients, rows, out.as_deref()),
        "trace" => trace_cmd(rows, out.as_deref()),
        "all" => {
            fig2();
            fig3();
            fig4();
            table2(scale);
            tables45(scale, true, true);
            stream(scale, threads);
            query(scale, explain);
        }
        _ => unreachable!(),
    }
    if stats {
        header("Observability: registry report (--stats)");
        print!("{}", sc_obs::Registry::global().snapshot().to_text_report());
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: repro [table2|table4|table5|fig2|fig3|fig4|stream|crashtest|obs|query|serve|netbench|trace|all] \
         [--scale F] [--full] [--threads N] [--points N] [--seed S] [--stats] [--explain] \
         [--port N] [--metrics-port N] [--token TENANT=TOKEN] [--slow-ms N] [--smoke] \
         [--clients N] [--rows N] [--out PATH]"
    );
    std::process::exit(2);
}

fn header(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

/// Table 2: the dataset catalog (raw XML size + tuple counts).
fn table2(scale: f64) {
    header(&format!(
        "Table 2: The datasets used in the experiments (scale {scale})"
    ));
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "", "Day", "Week", "Month", "TMonth", "SMonth"
    );
    let mut sizes = Vec::new();
    let mut counts = Vec::new();
    let mut paper_sizes = Vec::new();
    let mut paper_counts = Vec::new();
    for w in Window::ALL {
        let d = prepare_dataset(w, scale, true);
        sizes.push(format!("{:.1}", d.raw_xml_bytes as f64 / (1024.0 * 1024.0)));
        counts.push(format!("{}", d.generated_tuples));
        paper_sizes.push(format!("{}", d.spec.paper_size_mb));
        paper_counts.push(format!("{}", d.spec.paper_tuples));
    }
    print_row("Size (MB), measured", &sizes);
    print_row("Size (MB), paper", &paper_sizes);
    print_row("Tuples, generated", &counts);
    print_row("Tuples, paper", &paper_counts);
}

fn print_row(label: &str, cells: &[String]) {
    print!("{label:<22}");
    for c in cells {
        print!(" {c:>8}");
    }
    println!();
}

/// Tables 4 and 5: storage size and insertion time for the four models.
fn tables45(scale: f64, show4: bool, show5: bool) {
    let datasets: Vec<PreparedDataset> = Window::ALL
        .into_iter()
        .map(|w| {
            eprintln!("preparing {w} at scale {scale}...");
            prepare_dataset(w, scale, false)
        })
        .collect();
    let mut sizes: Vec<Vec<String>> = vec![Vec::new(); ModelKind::ALL.len()];
    let mut times: Vec<Vec<String>> = vec![Vec::new(); ModelKind::ALL.len()];
    for d in &datasets {
        eprintln!(
            "storing {} ({} facts, {} nodes, {} cells)...",
            d.spec.window,
            d.cube.tuple_count(),
            d.cube.node_count(),
            d.cube.cell_count()
        );
        for (k, kind) in ModelKind::ALL.into_iter().enumerate() {
            let report = run_model(kind, &d.cube);
            sizes[k].push(report.size.paper_mb());
            times[k].push(format!("{}", report.elapsed.as_millis()));
        }
    }
    let labels: Vec<&str> = ModelKind::ALL.iter().map(|k| k.label()).collect();
    if show4 {
        header(&format!(
            "Table 4: DWARF storage performance — Size (MB) used to store a \
             DWARF cube (scale {scale})"
        ));
        println!(
            "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "", "Day", "Week", "Month", "TMonth", "SMonth"
        );
        for (label, row) in labels.iter().zip(&sizes) {
            print_row14(label, row);
        }
        println!("\nPaper's full-scale reference:");
        print_row14("MySQL-DWARF", &strs(&["2", "20", "80", "169", "424"]));
        print_row14("MySQL-Min", &strs(&["< 1", "8", "33", "70", "178"]));
        print_row14("NoSQL-DWARF", &strs(&["< 1", "9", "35", "73", "182"]));
        print_row14("NoSQL-Min", &strs(&["< 1", "11", "45", "96", "243"]));
    }
    if show5 {
        header(&format!(
            "Table 5: DWARF storage time performance — Time (ms) taken to \
             insert a DWARF cube (scale {scale})"
        ));
        println!(
            "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "", "Day", "Week", "Month", "TMonth", "SMonth"
        );
        for (label, row) in labels.iter().zip(&times) {
            print_row14(label, row);
        }
        println!("\nPaper's full-scale reference:");
        print_row14(
            "MySQL-DWARF",
            &strs(&["1768", "12501", "47247", "100466", "255098"]),
        );
        print_row14(
            "MySQL-Min",
            &strs(&["1107", "5955", "22243", "47936", "121221"]),
        );
        print_row14(
            "NoSQL-DWARF",
            &strs(&["927", "4368", "15955", "34203", "89257"]),
        );
        print_row14(
            "NoSQL-Min",
            &strs(&["5699", "57153", "222044", "484498", "1219887"]),
        );
    }
}

fn strs(cells: &[&str]) -> Vec<String> {
    cells.iter().map(|s| s.to_string()).collect()
}

fn print_row14(label: &str, cells: &[String]) {
    print!("{label:<14}");
    for c in cells {
        print!(" {c:>8}");
    }
    println!();
}

fn figure1_cube() -> Dwarf {
    let schema = CubeSchema::new(["country", "city", "station"], "bikes");
    let mut ts = TupleSet::new(&schema);
    ts.push(["Ireland", "Dublin", "Fenian St"], 3);
    ts.push(["Ireland", "Dublin", "Smithfield"], 5);
    ts.push(["Ireland", "Cork", "Patrick St"], 2);
    ts.push(["France", "Paris", "Bastille"], 7);
    Dwarf::build(schema, ts)
}

/// Figure 2: the sample DWARF cube, rendered as Graphviz dot.
fn fig2() {
    header("Figures 1 + 2: sample input tuples and the DWARF they produce");
    println!("input (Figure 1): 4 tuples over (country, city, station) with a bikes measure");
    let cube = figure1_cube();
    println!(
        "resulting DWARF: {} nodes, {} cells\n",
        cube.node_count(),
        cube.cell_count()
    );
    println!("{}", cube.to_dot());
}

/// Figure 3: the generated CQL INSERT for the 'Fenian St' cell.
fn fig3() {
    header("Figure 3: sample DWARF cell values and generated CQL");
    let cube = figure1_cube();
    let mapped = MappedDwarf::new(&cube);
    let fenian = mapped
        .cells
        .iter()
        .find(|c| c.key == "Fenian St")
        .expect("cell exists");
    println!("parentNode: DWARF Node (id {})", fenian.parent_node);
    println!("pointerNode: {:?}", fenian.pointer_node);
    println!("key: {:?}", fenian.key);
    println!("measure: {}", fenian.measure);
    println!("id: {}\n", fenian.id);
    println!("{};", cell_to_cql(fenian, "smartcity", 1));
    // Prove it executes.
    let mut model = NosqlDwarfModel::in_memory();
    model.create_schema().expect("schema");
    model
        .db_mut()
        .execute_cql(&cell_to_cql(fenian, "smartcity", 1))
        .expect("generated CQL executes");
    println!("\n(statement parsed and executed by the engine: ✓)");
}

/// Figure 4: the MySQL-DWARF relational schema.
fn fig4() {
    header("Figure 4: MySQL-DWARF schema for a DWARF cube");
    for ddl in MysqlDwarfModel::ddl() {
        println!("{ddl};\n");
    }
}

/// Crash matrix: kill the engine at injected storage faults, recover, and
/// verify that exactly the acknowledged writes survive.
fn crashtest(seed: u64, points: usize) {
    use sc_nosql::crashtest as ct;
    use std::time::Instant;

    header(&format!(
        "Crash matrix: NoSQL engine power-loss injection (seed {seed})"
    ));
    let limit = if points == 0 { None } else { Some(points) };
    let start = Instant::now();
    let report = ct::sweep(seed, limit).expect("crash matrix must pass");
    let elapsed = start.elapsed();
    println!("workload mutating storage ops {:>8}", report.total_ops);
    println!("crash points tested           {:>8}", report.points_tested);
    println!("crashes fired                 {:>8}", report.crashes_fired);
    println!(
        "in-flight writes found durable{:>8}",
        report.in_flight_survived
    );
    println!("elapsed                       {:>7}ms", elapsed.as_millis());
    println!(
        "\nevery recovery reproduced exactly the acknowledged writes \
         (in-flight statement allowed to persist): ✓"
    );

    // Concurrent variant: writer sessions share group-commit batches, so
    // the crash tears multi-session batches mid-write.
    let conc_points = if points == 0 {
        None
    } else {
        Some(points.min(32))
    };
    let start = Instant::now();
    let report =
        ct::sweep_concurrent(seed, conc_points).expect("concurrent crash matrix must pass");
    let elapsed = start.elapsed();
    println!(
        "\nconcurrent matrix ({} writer sessions, group commit):",
        ct::CONCURRENT_WRITERS
    );
    println!("crash points tested           {:>8}", report.points_tested);
    println!("crashes fired                 {:>8}", report.crashes_fired);
    println!(
        "lost-ack inserts found durable{:>8}",
        report.in_flight_survived
    );
    println!("elapsed                       {:>7}ms", elapsed.as_millis());
    println!("\nevery concurrent recovery satisfied acked ⊆ recovered ⊆ acked ∪ in-flight: ✓");
}

/// Streaming ingestion: the sharded worker pool vs the sequential pipeline.
fn stream(scale: f64, threads: usize) {
    use sc_core::models::ModelKind;
    use sc_core::StreamWarehouse;
    use sc_datagen::{BikesGenerator, DatasetSpec};
    use sc_ingest::StreamPipeline;
    use sc_stream::StreamConfig;
    use std::time::Instant;

    header(&format!(
        "Streaming ingestion: {threads} worker shard(s), Week feed at scale {scale}"
    ));
    let spec = DatasetSpec::for_window(Window::Week).scaled_spec(scale);
    let docs: Vec<String> = BikesGenerator::new(spec).map(|s| s.xml).collect();
    let def = BikesGenerator::cube_def();
    eprintln!("generated {} feed documents...", docs.len());

    let start = Instant::now();
    let mut sequential = StreamPipeline::new(def.clone());
    for doc in &docs {
        sequential.ingest(doc).expect("well-formed generated feed");
    }
    let seq_cube = sequential.build_cube();
    let seq_elapsed = start.elapsed();

    let start = Instant::now();
    let mut warehouse = StreamWarehouse::new(
        def,
        StreamConfig::with_shards(threads),
        ModelKind::NosqlDwarf.build().expect("schema creation"),
    );
    for doc in &docs {
        warehouse.ingest(doc.clone());
    }
    let (cube, report, metrics) = warehouse.close_window(true).expect("flush");
    let par_elapsed = start.elapsed();

    println!("per-stage counters ({threads} shards):");
    println!("  events in            {:>10}", metrics.events_in);
    println!("  events parsed        {:>10}", metrics.events_parsed);
    println!("  events failed        {:>10}", metrics.events_failed);
    println!("  tuples extracted     {:>10}", metrics.tuples_extracted);
    println!("  micro-cubes sealed   {:>10}", metrics.seals);
    println!("  micro-cubes merged   {:>10}", metrics.merges);
    println!("  cubes flushed        {:>10}", metrics.flushes);
    println!("  backpressure stalls  {:>10}", metrics.backpressure_stalls);
    println!(
        "flushed to NoSQL-DWARF: schema id {}, {} node rows, {} cell rows, {}",
        report.schema_id, report.node_rows, report.cell_rows, report.size
    );
    println!(
        "sequential {} ms, sharded-plus-flush {} ms",
        seq_elapsed.as_millis(),
        par_elapsed.as_millis()
    );
    let equivalent = cube.extract_tuples() == seq_cube.extract_tuples();
    println!(
        "equivalence vs sequential pipeline: {}",
        if equivalent {
            "identical facts ✓"
        } else {
            "MISMATCH ✗"
        }
    );
    assert!(equivalent, "sharded ingestion diverged from sequential");
}

/// Observability demo: run a workload that exercises every instrumented
/// crate (stream → dwarf → nosql → storage, plus the fault injector), then
/// emit the global registry in all three exposition formats.
fn obs(threads: usize, seed: u64) {
    use sc_core::models::ModelKind;
    use sc_core::StreamWarehouse;
    use sc_datagen::{BikesGenerator, DatasetSpec};
    use sc_dwarf::{RangeSel, Selection};
    use sc_stream::StreamConfig;

    header(&format!(
        "repro obs: end-to-end ingest with {threads} shard(s), then registry exposition"
    ));

    // Streaming ingest of a small feed into the NoSQL-DWARF model: covers
    // stream.* (sharded pipeline), dwarf.build (micro-cubes + window cube),
    // nosql.* (CQL inserts, commit log, flush) and storage.vfs.*.
    let spec = DatasetSpec::for_window(Window::Day).scaled_spec(0.05);
    let docs: Vec<String> = BikesGenerator::new(spec).map(|s| s.xml).collect();
    let def = BikesGenerator::cube_def();
    let mut warehouse = StreamWarehouse::new(
        def,
        StreamConfig::with_shards(threads),
        ModelKind::NosqlDwarf.build().expect("schema creation"),
    );
    for doc in &docs {
        warehouse.ingest(doc.clone());
    }
    let (cube, report, _metrics) = warehouse.close_window(true).expect("flush");
    eprintln!(
        "ingested {} documents -> cube with {} facts -> {} node rows, {} cell rows",
        docs.len(),
        cube.tuple_count(),
        report.node_rows,
        report.cell_rows
    );

    // A few cube queries so the dwarf.query.* histograms have samples.
    let d = cube.num_dims();
    cube.point(&vec![Selection::All; d]);
    cube.range(&vec![RangeSel::All; d]);

    // A 4-point crash matrix: trips the fault injector and times recovery.
    sc_nosql::crashtest::sweep(seed, Some(4)).expect("crash matrix must pass");

    let snap = sc_obs::Registry::global().snapshot();
    println!("\n---- text report ----");
    print!("{}", snap.to_text_report());
    println!("\n---- prometheus text exposition ----");
    print!("{}", snap.to_prometheus_text());
    println!("\n---- json exposition ----");
    print!("{}", snap.to_json());
}

/// Store-backed querying: point and range answered straight from stored
/// NoSQL rows through the cached, batched node cursor.
fn query(scale: f64, explain: bool) {
    use sc_core::StoreBackedCube;
    use sc_dwarf::{RangeSel, Selection};

    header(&format!(
        "repro query: store-backed point + range through the cached cursor \
         (Day, scale {scale})"
    ));
    let d = prepare_dataset(Window::Day, scale, false);
    let cube = &d.cube;
    let mut model = NosqlDwarfModel::in_memory();
    model.create_schema().expect("schema creation");
    let report = model
        .store(&MappedDwarf::new(cube), cube, false)
        .expect("store");
    println!(
        "stored: schema id {}, {} node rows, {} cell rows",
        report.schema_id, report.node_rows, report.cell_rows
    );
    if explain {
        header("repro query --explain: planner trees for the store's query shapes");
        let db = model.db_mut();
        for cql in [
            format!(
                "EXPLAIN SELECT childrenIds FROM smartcity.dwarf_node WHERE id = {}",
                report.schema_id
            ),
            "EXPLAIN SELECT key, measure, pointerNode FROM smartcity.dwarf_cell \
             WHERE id IN (1, 2, 3)"
                .to_string(),
            "EXPLAIN SELECT COUNT(*) FROM smartcity.dwarf_cell".to_string(),
        ] {
            println!("\n{cql}");
            let r = db.execute_cql(&cql).expect("explain");
            for row in r.rows() {
                println!("  {}", row.get_text("plan").expect("plan line"));
            }
        }
    }
    let mut sbc = StoreBackedCube::open(&mut model, report.schema_id).expect("open stored schema");

    // A real fact to query for: the first extracted tuple.
    let tuples = cube.extract_tuples();
    let (path, _) = tuples.first().expect("dataset is non-empty");
    let sel: Vec<Selection> = path.iter().map(|v| Selection::value(v.as_str())).collect();
    let got = sbc.point(&sel).expect("store-backed point");
    assert_eq!(got, cube.point(&sel), "store disagrees with in-memory cube");
    println!("\npoint {path:?} = {got:?} (matches in-memory: ✓)");
    let cold = sbc.stats();
    println!(
        "cold point query: store rows fetched {}, SELECTs {} ({} batched), \
         cache hit ratio {:.2}",
        cold.rows_fetched,
        cold.store_selects,
        cold.batched_selects,
        cold.hit_ratio()
    );

    // Range over the last dimension, everything above aggregated out.
    let dims = cube.num_dims();
    let last_keys: Vec<&String> = tuples.iter().map(|(p, _)| &p[dims - 1]).collect();
    let lo = last_keys.iter().min().expect("non-empty");
    let hi = last_keys.iter().max().expect("non-empty");
    let mut rsel = vec![RangeSel::All; dims];
    rsel[dims - 1] = RangeSel::between(lo.as_str(), hi.as_str());
    sbc.reset_stats();
    let rv = sbc.range(&rsel).expect("store-backed range");
    assert_eq!(rv, cube.range(&rsel), "store disagrees with in-memory cube");
    let rstats = sbc.stats();
    println!(
        "\nrange [{lo} .. {hi}] over {:?} = {rv:?} (matches in-memory: ✓)",
        cube.schema().dimension(dims - 1)
    );
    println!(
        "cold range query: store rows fetched {}, batched SELECTs {} for {} \
         node misses (at most one batched SELECT per distinct node: {})",
        rstats.rows_fetched,
        rstats.batched_selects,
        rstats.node_cache_misses,
        if rstats.batched_selects <= rstats.node_cache_misses {
            "✓"
        } else {
            "✗"
        }
    );
    assert!(
        rstats.batched_selects <= rstats.node_cache_misses,
        "batching regressed: more cell SELECTs than node misses"
    );

    // The same point query again: the node cache answers it entirely.
    sbc.reset_stats();
    let warm_got = sbc.point(&sel).expect("warm point");
    assert_eq!(warm_got, got, "warm answer diverged");
    let warm = sbc.stats();
    println!(
        "\nwarm point query: store rows fetched {}, cache hit ratio {:.2}",
        warm.rows_fetched,
        warm.hit_ratio()
    );
    assert_eq!(
        warm.rows_fetched, 0,
        "warm identical query touched the store"
    );
    drop(sbc);

    // Absent-key point lookups with ids beyond every SSTable's min/max key
    // fences: the v2 read path must answer them without consulting a bloom
    // filter or reading a single data block. (In-range absent keys are
    // probabilistic — a bloom false positive may read one block — so the
    // deterministic smoke uses fence-rejected keys only.)
    let db = model.db_mut();
    db.flush_all().expect("flush before fence probes");
    let before = sc_obs::Registry::global().snapshot();
    for id in [i64::MAX - 7, i64::MAX / 2, -1, -12345] {
        let r = db
            .execute_cql(&format!(
                "SELECT id FROM smartcity.dwarf_node WHERE id = {id}"
            ))
            .expect("fence-probe select");
        assert!(r.is_empty(), "id {id} must not exist");
    }
    let after = sc_obs::Registry::global().snapshot();
    let hist_sum = |snap: &sc_obs::RegistrySnapshot| {
        snap.histogram("nosql.read.blocks_per_get")
            .cloned()
            .unwrap_or_default()
            .sum
    };
    let blocks = hist_sum(&after) - hist_sum(&before);
    println!("\nabsent point lookups beyond the key fences: data blocks read {blocks}");
    assert_eq!(blocks, 0, "fence-rejected lookups read data blocks");
}

/// Raw HTTP GET against the metrics port (the bench carries no HTTP
/// client; 60 lines of socket code is the whole dependency).
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect metrics port");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("send request");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read response");
    out
}

/// The sc-server network front door: serve until interrupted, or run the
/// `--smoke` self-check used by CI.
fn serve(port: u16, metrics_port: u16, tokens: Vec<(String, String)>, slow_ms: u64, smoke: bool) {
    use sc_server::client::Client;
    use sc_server::{Server, ServerConfig};
    use std::time::Duration;

    let tokens = if tokens.is_empty() {
        vec![("demo".to_string(), "demo-token".to_string())]
    } else {
        tokens
    };
    let mut config = ServerConfig::default().slow_query_threshold(Duration::from_millis(slow_ms));
    config.addr = format!("127.0.0.1:{port}");
    config.metrics_addr = format!("127.0.0.1:{metrics_port}");
    for (tenant, token) in &tokens {
        config = config.tenant(tenant, token);
    }

    let db = sc_nosql::SharedDb::open(sc_nosql::OpenOptions::default()).expect("open engine");
    let server = Server::start(config, db).expect("start server");
    header(&format!(
        "repro serve: CQL protocol on {}, metrics on {}",
        server.addr(),
        server.metrics_addr()
    ));
    for (tenant, _) in &tokens {
        println!("tenant registered: {tenant}");
    }

    if !smoke {
        println!("serving; interrupt (Ctrl-C) to stop");
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }

    // Smoke: one full client round trip over loopback.
    let (_, token) = &tokens[0];
    let mut client = Client::connect(server.addr()).expect("client connect");
    let tenant = client.hello(token).expect("hello");
    client
        .query("CREATE KEYSPACE smoke")
        .expect("create keyspace");
    client
        .query("CREATE TABLE smoke.t (id int, v text, PRIMARY KEY (id))")
        .expect("create table");
    client
        .query("INSERT INTO smoke.t (id, v) VALUES (1, 'round-trip')")
        .expect("insert");
    let rows = client
        .query("SELECT v FROM smoke.t WHERE id = 1")
        .expect("select");
    assert_eq!(
        rows.first().expect("one row").get_text("v").expect("text"),
        "round-trip"
    );
    println!("server smoke: round-trip ok (tenant {tenant}, INSERT + SELECT verified)");

    // Smoke: the metrics port serves Prometheus text with server.* series.
    let scrape = http_get(server.metrics_addr(), "/metrics");
    assert!(
        scrape.starts_with("HTTP/1.1 200"),
        "metrics scrape failed:\n{scrape}"
    );
    assert!(
        scrape.contains("server_requests"),
        "server_requests series missing from scrape:\n{scrape}"
    );
    let health = http_get(server.metrics_addr(), "/healthz");
    assert!(health.contains("ok"), "healthz failed:\n{health}");
    println!("server smoke: metrics ok (server_requests present, healthz ok)");

    // Smoke: the debug port retained at least one trace for the statements
    // above, and a single trace round-trips as Chrome trace-event JSON.
    let listing = http_get(server.metrics_addr(), "/debug/traces");
    assert!(
        listing.starts_with("HTTP/1.1 200"),
        "trace listing failed:\n{listing}"
    );
    let worst_id = listing
        .split("\"trace_id\": \"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("no retained trace in /debug/traces");
    let chrome = http_get(server.metrics_addr(), &format!("/debug/traces/{worst_id}"));
    assert!(
        chrome.starts_with("HTTP/1.1 200"),
        "single-trace fetch failed:\n{chrome}"
    );
    let body = chrome
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.trim())
        .expect("chrome export body");
    assert!(
        body.starts_with('[') && body.ends_with(']') && body.contains("\"ph\": \"X\""),
        "not Chrome trace-event JSON:\n{body}"
    );
    assert_eq!(
        body.matches('{').count(),
        body.matches('}').count(),
        "unbalanced Chrome trace JSON"
    );
    // Some span beyond the root request event must have measurable time.
    let child_has_duration = body
        .lines()
        .skip(2)
        .filter_map(|l| l.split("\"dur\": ").nth(1))
        .filter_map(|rest| rest.split(',').next())
        .filter_map(|v| v.parse::<f64>().ok())
        .any(|d| d > 0.0);
    assert!(
        child_has_duration,
        "trace {worst_id} has no nonzero-duration child span:\n{body}"
    );
    println!(
        "server smoke: traces ok (trace {worst_id} retained, Chrome export round-trips, \
         child span has nonzero duration)"
    );

    // Smoke: drained shutdown joins every thread.
    server.shutdown();
    println!("server smoke: shutdown ok (drained)");
}

fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Loopback network benchmark: concurrent clients over two tenants,
/// ingest throughput plus cold/warm point-query latency.
fn netbench(clients: usize, rows: usize, out: Option<&str>) {
    use sc_server::client::Client;
    use sc_server::{Server, ServerConfig};
    use std::time::Instant;

    header(&format!(
        "repro netbench: {clients} loopback clients, {rows} rows across 2 tenants"
    ));
    let tenants = ["t1", "t2"];
    let db = sc_nosql::SharedDb::open(sc_nosql::OpenOptions::default()).expect("open engine");
    let server = Server::start(
        ServerConfig::default()
            .tenant("t1", "tok-t1")
            .tenant("t2", "tok-t2"),
        db,
    )
    .expect("start server");
    let addr = server.addr();
    let token_for = |client_idx: usize| format!("tok-{}", tenants[client_idx % tenants.len()]);

    for t in tenants {
        let mut c = Client::connect(addr).expect("connect");
        c.hello(&format!("tok-{t}")).expect("hello");
        c.query("CREATE KEYSPACE bench").expect("keyspace");
        c.query("CREATE TABLE bench.readings (id int, station text, bikes int, PRIMARY KEY (id))")
            .expect("table");
    }

    // Ingest: `clients` concurrent connections, `rows` INSERTs total.
    let per_client = rows.div_ceil(clients);
    let total_rows = per_client * clients;
    let ingest_start = Instant::now();
    std::thread::scope(|scope| {
        for client_idx in 0..clients {
            let token = token_for(client_idx);
            scope.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                c.hello(&token).expect("hello");
                for i in 0..per_client {
                    let id = client_idx * per_client + i;
                    c.query(&format!(
                        "INSERT INTO bench.readings (id, station, bikes) VALUES ({id}, 'station {id}', {})",
                        id % 40
                    ))
                    .expect("insert");
                }
            });
        }
    });
    let ingest_elapsed = ingest_start.elapsed();
    let rows_per_sec = total_rows as f64 / ingest_elapsed.as_secs_f64();
    println!(
        "ingest: {total_rows} rows in {} ms over loopback = {rows_per_sec:.0} rows/sec",
        ingest_elapsed.as_millis()
    );

    // Query latency: each client re-reads its own rows point-by-point.
    // Cold = right after a full flush (reads served from SSTables);
    // warm = the same queries again with caches populated.
    let queries_per_client = per_client.min(200);
    let run_pass = |label: &str| -> Vec<u64> {
        let all: std::sync::Mutex<Vec<u64>> = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for client_idx in 0..clients {
                let token = token_for(client_idx);
                let all = &all;
                scope.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    c.hello(&token).expect("hello");
                    let mut lat = Vec::with_capacity(queries_per_client);
                    for i in 0..queries_per_client {
                        let id = client_idx * per_client + i;
                        let t = Instant::now();
                        let r = c
                            .query(&format!(
                                "SELECT station, bikes FROM bench.readings WHERE id = {id}"
                            ))
                            .expect("point select");
                        lat.push(t.elapsed().as_micros() as u64);
                        assert_eq!(r.len(), 1, "{label}: point read missed id {id}");
                    }
                    all.lock().unwrap().extend(lat);
                });
            }
        });
        let mut v = all.into_inner().unwrap();
        v.sort_unstable();
        v
    };

    server.db().flush_all().expect("flush before cold pass");
    let cold = run_pass("cold");
    let warm = run_pass("warm");
    let (cold_p50, cold_p99) = (percentile_us(&cold, 0.50), percentile_us(&cold, 0.99));
    let (warm_p50, warm_p99) = (percentile_us(&warm, 0.50), percentile_us(&warm, 0.99));
    println!(
        "query latency over loopback ({} point SELECTs per pass):",
        cold.len()
    );
    println!("  cold (post-flush)  p50 {cold_p50:>6} us   p99 {cold_p99:>6} us");
    println!("  warm (cached)      p50 {warm_p50:>6} us   p99 {warm_p99:>6} us");

    // Scan/aggregate phase: the operator pipeline end to end — a full-scan
    // COUNT(*) and a grouped aggregate over one tenant's table, first run
    // (cold: first sequential read of the flushed SSTables) then repeated
    // (warm: block cache populated).
    let t1_clients = clients.div_ceil(tenants.len());
    let t1_rows = per_client * t1_clients;
    let scan_us = |c: &mut Client, cql: &str, expect_rows: usize| -> u64 {
        let t = Instant::now();
        let r = c.query(cql).expect("scan query");
        let us = t.elapsed().as_micros() as u64;
        assert_eq!(r.len(), expect_rows, "scan: {cql}");
        us
    };
    let mut c = Client::connect(addr).expect("connect");
    c.hello("tok-t1").expect("hello");
    let count_cql = "SELECT COUNT(*) FROM bench.readings";
    let group_cql = "SELECT bikes, COUNT(*) FROM bench.readings GROUP BY bikes";
    let groups = t1_rows.min(40);
    let count_cold_us = scan_us(&mut c, count_cql, 1);
    let group_cold_us = scan_us(&mut c, group_cql, groups);
    let count_warm_us = scan_us(&mut c, count_cql, 1);
    let group_warm_us = scan_us(&mut c, group_cql, groups);
    let counted = c.query(count_cql).expect("count");
    let counted = counted
        .first()
        .expect("count row")
        .get_int("count")
        .expect("count value");
    assert_eq!(
        counted, t1_rows as i64,
        "full-scan COUNT(*) disagrees with ingested rows"
    );
    println!("scan/aggregate over {t1_rows} rows (tenant t1, post-flush):");
    println!(
        "  COUNT(*) full scan         cold {count_cold_us:>7} us   warm {count_warm_us:>7} us"
    );
    println!("  GROUP BY bikes ({groups} groups)  cold {group_cold_us:>7} us   warm {group_warm_us:>7} us");

    // Contended phase: `clients` writers and `clients` readers at once.
    // Writers append fresh ids; readers point-SELECT the existing rows.
    // Under the old coarse engine mutex every reader queued behind every
    // writer's fsync; with snapshot-isolated reads and group commit the
    // two populations mostly don't collide.
    let contended_writes = per_client;
    let contended_start = Instant::now();
    let read_lat: std::sync::Mutex<Vec<u64>> = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for client_idx in 0..clients {
            let token = token_for(client_idx);
            scope.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                c.hello(&token).expect("hello");
                for i in 0..contended_writes {
                    let id = 1_000_000 + client_idx * contended_writes + i;
                    c.query(&format!(
                        "INSERT INTO bench.readings (id, station, bikes) VALUES ({id}, 'contended {id}', {})",
                        id % 40
                    ))
                    .expect("contended insert");
                }
            });
        }
        for client_idx in 0..clients {
            let token = token_for(client_idx);
            let read_lat = &read_lat;
            scope.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                c.hello(&token).expect("hello");
                let mut lat = Vec::with_capacity(queries_per_client);
                for i in 0..queries_per_client {
                    let id = client_idx * per_client + i;
                    let t = Instant::now();
                    let r = c
                        .query(&format!(
                            "SELECT station, bikes FROM bench.readings WHERE id = {id}"
                        ))
                        .expect("contended point select");
                    lat.push(t.elapsed().as_micros() as u64);
                    assert_eq!(r.len(), 1, "contended: point read missed id {id}");
                }
                read_lat.lock().unwrap().extend(lat);
            });
        }
    });
    let contended_elapsed = contended_start.elapsed();
    let contended_rows = contended_writes * clients;
    let contended_rows_per_sec = contended_rows as f64 / contended_elapsed.as_secs_f64();
    let mut contended_reads = read_lat.into_inner().unwrap();
    contended_reads.sort_unstable();
    let (cont_p50, cont_p99) = (
        percentile_us(&contended_reads, 0.50),
        percentile_us(&contended_reads, 0.99),
    );
    println!(
        "contended ({clients} writers + {clients} readers): \
         {contended_rows} rows ingested at {contended_rows_per_sec:.0} rows/sec, \
         reads p50 {cont_p50} us p99 {cont_p99} us"
    );
    println!(
        "slow queries recorded: {} (threshold {:?})",
        server.slow_queries_recorded(),
        std::time::Duration::from_millis(100)
    );
    server.shutdown();
    println!("netbench: server drained and joined");

    // Compaction-stall phase: the same put workload twice, against an
    // engine tuned so flushes (and the merges they trip) fire constantly.
    // With `compaction_threads(0)` the merge runs inline on the commit
    // path — the puts that trip it eat the whole merge in their latency.
    // With the background pool the flush only *schedules* the merge, so
    // the put tail must not carry merge-sized spikes.
    let stall_rows = total_rows;
    let stall_pass = |threads: usize| -> (Vec<u64>, u64) {
        let before = sc_obs::Registry::global().snapshot();
        let db = sc_nosql::SharedDb::open(
            sc_nosql::OpenOptions::default()
                .memtable_flush_bytes(8192)
                .compaction_threshold(4)
                .compaction_threads(threads),
        )
        .expect("open stall engine");
        db.execute_cql("CREATE KEYSPACE bench").expect("keyspace");
        db.execute_cql(
            "CREATE TABLE bench.readings (id int, station text, bikes int, PRIMARY KEY (id))",
        )
        .expect("table");
        let mut lat = Vec::with_capacity(stall_rows);
        for id in 0..stall_rows {
            let t = Instant::now();
            db.execute_cql(&format!(
                "INSERT INTO bench.readings (id, station, bikes) VALUES \
                 ({id}, 'stall-phase padded station name {id}', {})",
                id % 40
            ))
            .expect("stall insert");
            lat.push(t.elapsed().as_micros() as u64);
        }
        db.drain_compactions();
        let after = sc_obs::Registry::global().snapshot();
        let merges = |snap: &sc_obs::RegistrySnapshot| {
            snap.histogram("nosql.compaction.duration_ns")
                .map(|h| h.count)
                .unwrap_or(0)
        };
        let merged = merges(&after) - merges(&before);
        lat.sort_unstable();
        (lat, merged)
    };
    let (inline_lat, inline_merges) = stall_pass(0);
    let (bg_lat, bg_merges) = stall_pass(2);
    let (stall_inline_p50, stall_inline_p99) = (
        percentile_us(&inline_lat, 0.50),
        percentile_us(&inline_lat, 0.99),
    );
    let (stall_bg_p50, stall_bg_p99) = (percentile_us(&bg_lat, 0.50), percentile_us(&bg_lat, 0.99));
    let stall_inline_max = inline_lat.last().copied().unwrap_or(0);
    let stall_bg_max = bg_lat.last().copied().unwrap_or(0);
    println!("compaction-stall ({stall_rows} puts, flush-heavy engine):");
    println!(
        "  inline merges ({inline_merges} merges)      \
         p50 {stall_inline_p50:>5} us   p99 {stall_inline_p99:>5} us   max {stall_inline_max:>6} us"
    );
    println!(
        "  background pool ({bg_merges} merges)   \
         p50 {stall_bg_p50:>5} us   p99 {stall_bg_p99:>5} us   max {stall_bg_max:>6} us"
    );

    // Recovery phase: ingest to a real on-disk engine, "kill" it by
    // dropping without a flush (everything lives in the WAL), and time the
    // replaying reopen — the startup cost an operator actually pays after
    // a crash.
    let recovery_rows = total_rows;
    let recovery_dir =
        std::env::temp_dir().join(format!("sc-netbench-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&recovery_dir);
    std::fs::create_dir_all(&recovery_dir).expect("create recovery dir");
    let open_disk = || {
        sc_nosql::OpenOptions::default()
            .vfs(sc_storage::Vfs::disk(&recovery_dir).expect("disk vfs"))
    };
    let ingest_start = Instant::now();
    {
        let mut db = open_disk().open().expect("open disk engine");
        db.execute_cql("CREATE KEYSPACE bench").expect("keyspace");
        db.execute_cql(
            "CREATE TABLE bench.readings (id int, station text, bikes int, PRIMARY KEY (id))",
        )
        .expect("table");
        for id in 0..recovery_rows {
            db.execute_cql(&format!(
                "INSERT INTO bench.readings (id, station, bikes) VALUES ({id}, 'station {id}', {})",
                id % 40
            ))
            .expect("recovery insert");
        }
        // Dropped here without flush_all: the reopen must replay the WAL.
    }
    let recovery_ingest_elapsed = ingest_start.elapsed();
    let replay_start = Instant::now();
    let mut recovered = open_disk().recover(true).open().expect("recovering reopen");
    let replay_elapsed = replay_start.elapsed();
    let survivors = recovered
        .execute_cql("SELECT id FROM bench.readings")
        .expect("post-recovery scan");
    assert_eq!(
        survivors.len(),
        recovery_rows,
        "recovery lost rows: {} of {recovery_rows} survived",
        survivors.len()
    );
    drop(recovered);
    let _ = std::fs::remove_dir_all(&recovery_dir);
    let replay_rows_per_sec = recovery_rows as f64 / replay_elapsed.as_secs_f64().max(1e-9);
    println!(
        "recovery: {recovery_rows} unflushed rows ingested to disk in {} ms, \
         WAL replay on reopen took {} ms ({replay_rows_per_sec:.0} rows/sec), \
         all rows verified present",
        recovery_ingest_elapsed.as_millis(),
        replay_elapsed.as_millis()
    );

    if let Some(path) = out {
        let json = format!(
            "{{\n  \"bench\": \"netbench\",\n  \"pr\": 10,\n  \"config\": {{ \"clients\": {clients}, \"tenants\": {}, \"rows\": {total_rows}, \"queries_per_pass\": {} }},\n  \"ingest\": {{ \"rows\": {total_rows}, \"elapsed_ms\": {}, \"rows_per_sec\": {rows_per_sec:.0} }},\n  \"query_latency_us\": {{\n    \"cold\": {{ \"p50\": {cold_p50}, \"p99\": {cold_p99} }},\n    \"warm\": {{ \"p50\": {warm_p50}, \"p99\": {warm_p99} }}\n  }},\n  \"scan_aggregate\": {{ \"rows\": {t1_rows}, \"groups\": {groups}, \"count_us\": {{ \"cold\": {count_cold_us}, \"warm\": {count_warm_us} }}, \"group_by_us\": {{ \"cold\": {group_cold_us}, \"warm\": {group_warm_us} }} }},\n  \"contended\": {{ \"writers\": {clients}, \"readers\": {clients}, \"rows\": {contended_rows}, \"rows_per_sec\": {contended_rows_per_sec:.0}, \"read_p50\": {cont_p50}, \"read_p99\": {cont_p99} }},\n  \"compaction_stall_put_us\": {{ \"rows\": {stall_rows}, \"inline\": {{ \"merges\": {inline_merges}, \"p50\": {stall_inline_p50}, \"p99\": {stall_inline_p99}, \"max\": {stall_inline_max} }}, \"background\": {{ \"threads\": 2, \"merges\": {bg_merges}, \"p50\": {stall_bg_p50}, \"p99\": {stall_bg_p99}, \"max\": {stall_bg_max} }} }},\n  \"recovery\": {{ \"rows\": {recovery_rows}, \"ingest_ms\": {}, \"replay_ms\": {}, \"replay_rows_per_sec\": {replay_rows_per_sec:.0} }}\n}}\n",
            tenants.len(),
            cold.len(),
            ingest_elapsed.as_millis(),
            recovery_ingest_elapsed.as_millis(),
            replay_elapsed.as_millis(),
        );
        std::fs::write(path, json).expect("write --out file");
        println!("wrote {path}");
    }
}

/// Request tracing demo: drive a traced loopback workload, then dump the
/// worst retained trace as an attributed span tree plus Chrome trace-event
/// JSON (`--out PATH`, else printed).
fn trace_cmd(rows: usize, out: Option<&str>) {
    use sc_obs::trace::{Attr, TailSampler};
    use sc_server::client::Client;
    use sc_server::{Server, ServerConfig};
    use std::time::Duration;

    header(&format!(
        "repro trace: {rows}-row traced workload, worst retained trace"
    ));
    let db = sc_nosql::SharedDb::open(sc_nosql::OpenOptions::default()).expect("open engine");
    let server = Server::start(
        ServerConfig::default()
            .tenant("demo", "demo-token")
            .slow_query_threshold(Duration::ZERO)
            .trace_policy(8, 32),
        db,
    )
    .expect("start server");

    let mut client = Client::connect(server.addr()).expect("connect");
    client.hello("demo-token").expect("hello");
    client.query("CREATE KEYSPACE traced").expect("keyspace");
    client
        .query("CREATE TABLE traced.readings (id int, station text, bikes int, PRIMARY KEY (id))")
        .expect("table");
    for id in 0..rows {
        client
            .query(&format!(
                "INSERT INTO traced.readings (id, station, bikes) VALUES ({id}, 'station {id}', {})",
                id % 40
            ))
            .expect("insert");
    }
    // Flush so the point reads below pay the SSTable path (bloom probes,
    // block reads, cache misses) and the trace has something to attribute.
    server.db().flush_all().expect("flush");
    for id in (0..rows).step_by((rows / 64).max(1)) {
        client
            .query(&format!(
                "SELECT station, bikes FROM traced.readings WHERE id = {id}"
            ))
            .expect("point select");
    }
    let (scan, scan_id) = client
        .query_traced("SELECT * FROM traced.readings")
        .expect("full scan");
    assert_eq!(scan.len(), rows, "full scan missed rows");
    server.shutdown();

    let sampler = TailSampler::global();
    let traces = sampler.traces();
    println!(
        "sampler: {} requests offered, {} traces retained (client-chosen scan ID {scan_id:016x})",
        sampler.offered(),
        traces.len()
    );
    let worst = traces.first().expect("no retained traces");
    println!(
        "\nworst trace: {} [{}] tenant {} — {:.3} ms — {}",
        worst.id_hex(),
        worst.kind,
        worst.tenant,
        worst.total_ns as f64 / 1e6,
        worst.detail
    );
    // Render the span tree: spans are stored flat with parent indices.
    let depth_of = |mut idx: usize| {
        let mut depth = 1usize;
        while let Some(p) = worst.spans[idx].parent {
            depth += 1;
            idx = p as usize;
        }
        depth
    };
    for (idx, span) in worst.spans.iter().enumerate() {
        let attrs: Vec<String> = Attr::ALL
            .iter()
            .filter(|&&a| span.attrs[a as usize] != 0)
            .map(|&a| format!("{}={}", a.name(), span.attrs[a as usize]))
            .collect();
        println!(
            "  {:indent$}{} — {:.3} ms{}",
            "",
            span.name,
            span.duration_ns as f64 / 1e6,
            if attrs.is_empty() {
                String::new()
            } else {
                format!("  [{}]", attrs.join(", "))
            },
            indent = depth_of(idx) * 2
        );
    }
    let totals: Vec<String> = Attr::ALL
        .iter()
        .filter(|&&a| worst.attr_total(a) != 0)
        .map(|&a| format!("{}={}", a.name(), worst.attr_total(a)))
        .collect();
    if !totals.is_empty() {
        println!("  attribution totals: {}", totals.join(", "));
    }

    let chrome = worst.to_chrome_trace();
    match out {
        Some(path) => {
            std::fs::write(path, &chrome).expect("write --out file");
            println!("\nwrote Chrome trace-event JSON to {path} (open in chrome://tracing)");
        }
        None => {
            println!("\nChrome trace-event JSON (open in chrome://tracing):");
            println!("{chrome}");
        }
    }
}
