//! Scaling probe: per-model insert time vs dataset size (diagnostics).
use sc_bench::{prepare_dataset, run_model};
use sc_core::models::ModelKind;
use sc_ingest::Window;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(0.02);
    let windows = if args.len() > 1 {
        Window::ALL.to_vec()
    } else {
        vec![Window::Day, Window::Week]
    };
    for window in windows {
        let d = prepare_dataset(window, scale, false);
        eprintln!(
            "{} scale {scale}: {} tuples, {} nodes, {} cells",
            window,
            d.cube.tuple_count(),
            d.cube.node_count(),
            d.cube.cell_count()
        );
        for kind in ModelKind::ALL {
            let t0 = std::time::Instant::now();
            let r = run_model(kind, &d.cube);
            eprintln!(
                "  {:<12} insert={:>8.1}ms total={:>8.1}ms size={}",
                kind.label(),
                r.elapsed.as_secs_f64() * 1000.0,
                t0.elapsed().as_secs_f64() * 1000.0,
                r.size
            );
        }
    }
}
