//! The unified read path must make the store a perfect mirror: every
//! point, range, slice and group-by answered by a [`StoreBackedCube`]
//! (cached, batched NoSQL cursor) must equal the in-memory [`Dwarf`]
//! answer, over randomly generated schemas and tuple sets — cold cache and
//! warm. The warm pass doubles as the caching acceptance check: an
//! identical query replayed against a warm cache fetches zero store rows,
//! and a cold traversal never issues more than one batched cell SELECT per
//! distinct node it visits.

use sc_core::mapping::MappedDwarf;
use sc_core::models::{NosqlDwarfModel, SchemaModel};
use sc_core::StoreBackedCube;
use sc_dwarf::{CubeSchema, Dwarf, RangeSel, Selection, TupleSet};
use sc_encoding::Rng;

/// Small per-dimension vocabularies so random tuples collide and coalesce.
const VOCAB: &[&str] = &[
    "alpha", "bravo", "carol", "delta", "echo", "fox", "golf", "hotel",
];

struct Case {
    cube: Dwarf,
    dims: usize,
}

fn random_case(rng: &mut Rng) -> Case {
    let dims = 1 + rng.gen_range(3) as usize;
    let names: Vec<String> = (0..dims).map(|i| format!("d{i}")).collect();
    let schema = CubeSchema::new(names, "m");
    let mut ts = TupleSet::new(&schema);
    let tuples = 1 + rng.gen_range(40);
    let vocab_size = 2 + rng.gen_range(VOCAB.len() as u64 - 2) as usize;
    for _ in 0..tuples {
        let tuple: Vec<&str> = (0..dims)
            .map(|_| *rng.choice(&VOCAB[..vocab_size]))
            .collect();
        ts.push(tuple, rng.gen_between(-5, 20));
    }
    Case {
        cube: Dwarf::build(schema, ts),
        dims,
    }
}

fn random_point_sel(rng: &mut Rng, dims: usize) -> Vec<Selection> {
    (0..dims)
        .map(|_| {
            if rng.gen_bool(0.4) {
                Selection::All
            } else {
                // Sometimes a value the cube does not contain.
                Selection::value(*rng.choice(VOCAB))
            }
        })
        .collect()
}

fn random_range_sel(rng: &mut Rng, dims: usize) -> Vec<RangeSel> {
    (0..dims)
        .map(|_| match rng.gen_range(3) {
            0 => RangeSel::All,
            1 => RangeSel::value(*rng.choice(VOCAB)),
            _ => {
                // Unordered endpoints on purpose: inverted intervals must
                // agree too (both sides answer None / empty).
                let lo = *rng.choice(VOCAB);
                let hi = *rng.choice(VOCAB);
                RangeSel::between(lo, hi)
            }
        })
        .collect()
}

fn random_mask_dims(rng: &mut Rng, dims: usize) -> Vec<String> {
    (0..dims)
        .filter(|_| rng.gen_bool(0.5))
        .map(|i| format!("d{i}"))
        .collect()
}

#[test]
fn store_backed_queries_match_in_memory_cold_and_warm() {
    let mut rng = Rng::new(0x5eed_cafe);
    for case_no in 0..12 {
        let case = random_case(&mut rng);
        let mut model = NosqlDwarfModel::in_memory();
        model.create_schema().unwrap();
        let report = model
            .store(&MappedDwarf::new(&case.cube), &case.cube, false)
            .unwrap();
        let mut sbc = StoreBackedCube::open(&mut model, report.schema_id).unwrap();

        let points: Vec<Vec<Selection>> = (0..8)
            .map(|_| random_point_sel(&mut rng, case.dims))
            .collect();
        let ranges: Vec<Vec<RangeSel>> = (0..8)
            .map(|_| random_range_sel(&mut rng, case.dims))
            .collect();
        let masks: Vec<Vec<String>> = (0..4)
            .map(|_| random_mask_dims(&mut rng, case.dims))
            .collect();

        // Two passes over identical queries: pass 0 is cold, pass 1 runs
        // entirely out of the node cache.
        for pass in 0..2 {
            sbc.reset_stats();
            for sel in &points {
                assert_eq!(
                    sbc.point(sel).unwrap(),
                    case.cube.point(sel),
                    "case {case_no} pass {pass} point {sel:?}"
                );
            }
            for sel in &ranges {
                assert_eq!(
                    sbc.range(sel).unwrap(),
                    case.cube.range(sel),
                    "case {case_no} pass {pass} range {sel:?}"
                );
                assert_eq!(
                    sbc.slice(sel).unwrap(),
                    case.cube.slice(sel),
                    "case {case_no} pass {pass} slice {sel:?}"
                );
            }
            for dims in &masks {
                assert_eq!(
                    sbc.group_by(dims).unwrap(),
                    case.cube.group_by(dims).unwrap(),
                    "case {case_no} pass {pass} group by {dims:?}"
                );
            }
            let stats = sbc.stats();
            if pass == 0 {
                // Cold: batching means at most one cell SELECT per
                // distinct node materialized.
                assert!(
                    stats.batched_selects <= stats.node_cache_misses,
                    "case {case_no}: {} batched selects for {} misses",
                    stats.batched_selects,
                    stats.node_cache_misses,
                );
            } else {
                // Warm: the identical query mix touches no store rows.
                assert_eq!(
                    stats.rows_fetched, 0,
                    "case {case_no}: warm pass fetched rows"
                );
                assert_eq!(stats.store_selects, 0);
                assert_eq!(stats.node_cache_misses, 0);
            }
        }
    }
}
