//! Observability must be a pure observer: the Table 4 / Table 5 pipeline
//! (cube build → model store → size report) must produce identical numbers
//! with stats on and off.
//!
//! Runs as its own integration-test binary because it flips the
//! process-global `sc_obs` toggle, which would race with other tests in a
//! shared process.

use sc_bench::{prepare_dataset, run_model};
use sc_core::models::ModelKind;
use sc_ingest::Window;

#[derive(Debug, PartialEq, Eq)]
struct TableNumbers {
    /// Table 2/4 inputs: the cube itself.
    tuples: usize,
    nodes: usize,
    cells: usize,
    /// Table 4's number per model: stored size in bytes.
    sizes: Vec<(ModelKind, u64)>,
    /// Table 5 sanity per model: the stored row counts that the timed
    /// insert produced (the elapsed time itself is nondeterministic, so
    /// parity is asserted on everything the timer measures the work of).
    rows: Vec<(ModelKind, usize, usize)>,
}

fn table_numbers() -> TableNumbers {
    let d = prepare_dataset(Window::Day, 0.02, false);
    let mut sizes = Vec::new();
    let mut rows = Vec::new();
    for kind in ModelKind::ALL {
        let report = run_model(kind, &d.cube);
        assert!(
            report.elapsed.as_nanos() > 0,
            "insert time must be measured"
        );
        sizes.push((kind, report.size.as_bytes()));
        rows.push((kind, report.node_rows, report.cell_rows));
    }
    TableNumbers {
        tuples: d.cube.tuple_count(),
        nodes: d.cube.node_count(),
        cells: d.cube.cell_count(),
        sizes,
        rows,
    }
}

#[test]
fn table4_and_table5_numbers_are_identical_with_stats_on_and_off() {
    assert!(sc_obs::enabled(), "stats are on by default");
    let with_stats = table_numbers();
    sc_obs::set_enabled(false);
    let without_stats = table_numbers();
    sc_obs::set_enabled(true);
    let with_stats_again = table_numbers();
    assert_eq!(with_stats, without_stats, "stats off changed the numbers");
    assert_eq!(
        with_stats, with_stats_again,
        "re-enabling changed the numbers"
    );

    // Request tracing must be an equally pure observer: the same numbers
    // with the trace layer armed (even though no request context is active
    // here, every instrumented site now passes through the trace hooks)
    // and with a live trace actually collecting.
    assert!(!sc_obs::trace_enabled(), "tracing is off by default");
    sc_obs::set_trace_enabled(true);
    let with_tracing_armed = table_numbers();
    let traced = {
        let guard = sc_obs::trace::begin(0xBE9C_u64, "bench");
        assert!(guard.is_active());
        let numbers = table_numbers();
        let trace = guard.finish().expect("trace collected");
        assert!(!trace.spans.is_empty(), "pipeline emitted no spans");
        numbers
    };
    sc_obs::set_trace_enabled(false);
    let tracing_off_again = table_numbers();
    assert_eq!(
        with_stats, with_tracing_armed,
        "arming tracing changed the numbers"
    );
    assert_eq!(with_stats, traced, "an active trace changed the numbers");
    assert_eq!(
        with_stats, tracing_off_again,
        "disarming tracing changed the numbers"
    );
}
