//! Engine instrumentation handles (`nosql.*`).
//!
//! One `OnceLock` registers every handle on the global registry; hot paths
//! gate on [`sc_obs::enabled`] before touching them, so the disabled cost
//! is a single relaxed load per call site.
//!
//! Metric map:
//!
//! | name                           | kind      | meaning                                  |
//! |--------------------------------|-----------|------------------------------------------|
//! | `nosql.memtable.puts`          | counter   | rows applied to a memtable               |
//! | `nosql.commitlog.appends`      | counter   | commit-log append calls (batch = 1)      |
//! | `nosql.commitlog.append_bytes` | counter   | framed bytes appended to the commit log  |
//! | `nosql.commitlog.checkpoints`  | counter   | WAL checkpoint passes after flushes      |
//! | `nosql.commitlog.segments_deleted` | counter | redundant WAL segments deleted         |
//! | `nosql.flush.*`                | span      | memtable → SSTable flush (bytes = SSTable size) |
//! | `nosql.compaction.*`           | span      | one merge run (bytes = bytes written)    |
//! | `nosql.compaction.bytes_in`    | counter   | bytes read by merges (input amplification) |
//! | `nosql.compaction.bytes_out`   | counter   | bytes written by merges                  |
//! | `nosql.read.point_queries`     | counter   | `get` calls                              |
//! | `nosql.read.sstables_per_get`  | histogram | SSTables probed per `get`                |
//! | `nosql.read.blocks_per_get`    | histogram | data blocks read per `get`               |
//! | `nosql.bloom.hit`              | counter   | filter said maybe and the key was there  |
//! | `nosql.bloom.miss`             | counter   | filter ruled the key out (no block read) |
//! | `nosql.bloom.false_positive`   | counter   | filter said maybe but the key was absent |
//! | `nosql.read.cols_read`         | counter   | column runs decoded by projected scans   |
//! | `nosql.read.cols_skipped`      | counter   | column runs pruned without decoding      |
//! | `nosql.block_cache.hit`        | counter   | block served from the shared cache       |
//! | `nosql.block_cache.miss`       | counter   | block read from the VFS                  |
//! | `nosql.block_cache.evict`      | counter   | block evicted to stay within budget      |
//! | `nosql.recovery.*`             | span      | `Db` recovery (replay + manifest load)   |
//! | `nosql.recovery.replayed_records` | counter | commit-log records re-applied           |
//! | `nosql.group_commit.batches`   | counter   | WAL batches written (one append each)    |
//! | `nosql.group_commit.records`   | counter   | records carried by those batches         |
//! | `nosql.group_commit.records_per_batch` | histogram | batch size distribution          |
//! | `nosql.group_commit.wait_ns`   | histogram | follower wait for its leader, in ns      |
//! | `nosql.snapshot.opened`        | counter   | `Snapshot` handles opened                |
//! | `nosql.snapshot.closed`        | counter   | `Snapshot` handles dropped               |
//! | `nosql.snapshot.live`          | gauge     | currently live `Snapshot` handles        |

use sc_obs::{Counter, Gauge, Histogram, Registry, SpanHandle};
use std::sync::OnceLock;

pub(crate) struct NosqlObs {
    pub memtable_puts: Counter,
    pub commitlog_appends: Counter,
    pub commitlog_append_bytes: Counter,
    pub commitlog_checkpoints: Counter,
    pub commitlog_segments_deleted: Counter,
    pub flush: SpanHandle,
    pub compaction: SpanHandle,
    pub compaction_bytes_in: Counter,
    pub compaction_bytes_out: Counter,
    pub point_queries: Counter,
    pub sstables_per_get: Histogram,
    pub blocks_per_get: Histogram,
    pub bloom_hit: Counter,
    pub bloom_miss: Counter,
    pub bloom_false_positive: Counter,
    pub cols_read: Counter,
    pub cols_skipped: Counter,
    pub block_cache_hit: Counter,
    pub block_cache_miss: Counter,
    pub block_cache_evict: Counter,
    pub recovery: SpanHandle,
    pub replayed_records: Counter,
    pub group_commit_batches: Counter,
    pub group_commit_records: Counter,
    pub group_commit_records_per_batch: Histogram,
    pub group_commit_wait_ns: Histogram,
    pub snapshot_opened: Counter,
    pub snapshot_closed: Counter,
    pub snapshot_live: Gauge,
}

pub(crate) fn nosql() -> &'static NosqlObs {
    static OBS: OnceLock<NosqlObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = Registry::global();
        NosqlObs {
            memtable_puts: r.counter("nosql.memtable.puts"),
            commitlog_appends: r.counter("nosql.commitlog.appends"),
            commitlog_append_bytes: r.counter("nosql.commitlog.append_bytes"),
            commitlog_checkpoints: r.counter("nosql.commitlog.checkpoints"),
            commitlog_segments_deleted: r.counter("nosql.commitlog.segments_deleted"),
            flush: r.span("nosql.flush"),
            compaction: r.span("nosql.compaction"),
            compaction_bytes_in: r.counter("nosql.compaction.bytes_in"),
            compaction_bytes_out: r.counter("nosql.compaction.bytes_out"),
            point_queries: r.counter("nosql.read.point_queries"),
            sstables_per_get: r.histogram("nosql.read.sstables_per_get"),
            blocks_per_get: r.histogram("nosql.read.blocks_per_get"),
            bloom_hit: r.counter("nosql.bloom.hit"),
            bloom_miss: r.counter("nosql.bloom.miss"),
            bloom_false_positive: r.counter("nosql.bloom.false_positive"),
            cols_read: r.counter("nosql.read.cols_read"),
            cols_skipped: r.counter("nosql.read.cols_skipped"),
            block_cache_hit: r.counter("nosql.block_cache.hit"),
            block_cache_miss: r.counter("nosql.block_cache.miss"),
            block_cache_evict: r.counter("nosql.block_cache.evict"),
            recovery: r.span("nosql.recovery"),
            replayed_records: r.counter("nosql.recovery.replayed_records"),
            group_commit_batches: r.counter("nosql.group_commit.batches"),
            group_commit_records: r.counter("nosql.group_commit.records"),
            group_commit_records_per_batch: r.histogram("nosql.group_commit.records_per_batch"),
            group_commit_wait_ns: r.histogram("nosql.group_commit.wait_ns"),
            snapshot_opened: r.counter("nosql.snapshot.opened"),
            snapshot_closed: r.counter("nosql.snapshot.closed"),
            snapshot_live: r.gauge("nosql.snapshot.live"),
        }
    })
}
