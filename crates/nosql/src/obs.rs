//! Engine instrumentation handles (`nosql.*`).
//!
//! One `OnceLock` registers every handle on the global registry; hot paths
//! gate on [`sc_obs::enabled`] before touching them, so the disabled cost
//! is a single relaxed load per call site.
//!
//! Metric map:
//!
//! | name                           | kind      | meaning                                  |
//! |--------------------------------|-----------|------------------------------------------|
//! | `nosql.memtable.puts`          | counter   | rows applied to a memtable               |
//! | `nosql.commitlog.appends`      | counter   | commit-log append calls (batch = 1)      |
//! | `nosql.commitlog.append_bytes` | counter   | framed bytes appended to the commit log  |
//! | `nosql.flush.*`                | span      | memtable → SSTable flush (bytes = SSTable size) |
//! | `nosql.compaction.*`           | span      | one merge run (bytes = bytes written)    |
//! | `nosql.compaction.bytes_in`    | counter   | bytes read by merges (input amplification) |
//! | `nosql.compaction.bytes_out`   | counter   | bytes written by merges                  |
//! | `nosql.read.point_queries`     | counter   | `get` calls                              |
//! | `nosql.read.sstables_per_get`  | histogram | SSTables probed per `get`                |
//! | `nosql.recovery.*`             | span      | `Db` recovery (replay + manifest load)   |
//! | `nosql.recovery.replayed_records` | counter | commit-log records re-applied           |

use sc_obs::{Counter, Histogram, Registry, SpanHandle};
use std::sync::OnceLock;

pub(crate) struct NosqlObs {
    pub memtable_puts: Counter,
    pub commitlog_appends: Counter,
    pub commitlog_append_bytes: Counter,
    pub flush: SpanHandle,
    pub compaction: SpanHandle,
    pub compaction_bytes_in: Counter,
    pub compaction_bytes_out: Counter,
    pub point_queries: Counter,
    pub sstables_per_get: Histogram,
    pub recovery: SpanHandle,
    pub replayed_records: Counter,
}

pub(crate) fn nosql() -> &'static NosqlObs {
    static OBS: OnceLock<NosqlObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = Registry::global();
        NosqlObs {
            memtable_puts: r.counter("nosql.memtable.puts"),
            commitlog_appends: r.counter("nosql.commitlog.appends"),
            commitlog_append_bytes: r.counter("nosql.commitlog.append_bytes"),
            flush: r.span("nosql.flush"),
            compaction: r.span("nosql.compaction"),
            compaction_bytes_in: r.counter("nosql.compaction.bytes_in"),
            compaction_bytes_out: r.counter("nosql.compaction.bytes_out"),
            point_queries: r.counter("nosql.read.point_queries"),
            sstables_per_get: r.histogram("nosql.read.sstables_per_get"),
            recovery: r.span("nosql.recovery"),
            replayed_records: r.counter("nosql.recovery.replayed_records"),
        }
    })
}
