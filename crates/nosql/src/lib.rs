//! # sc-nosql
//!
//! An embedded columnar NoSQL engine modelled on Apache Cassandra, the store
//! the paper uses for its DWARF cubes. The engine implements the pieces of
//! Cassandra's architecture that the paper's evaluation depends on:
//!
//! * **keyspaces and column families** with typed columns, including the
//!   `set<int>` collection type whose one-write edge encoding is the reason
//!   NoSQL-DWARF wins Table 4/5,
//! * the **write path** — commit log append, memtable insert, SSTable flush,
//!   size-tiered compaction — so insert timing (Table 5) exercises real
//!   mechanisms,
//! * **secondary indexes** maintained as hidden index column families with
//!   one posting row per (value, key) — Cassandra's one-cell-per-posting
//!   layout — plus a read-before-write of the old base row; the extra
//!   writes and reads are what make NoSQL-Min lose Table 5,
//! * a **CQL subset** (`CREATE KEYSPACE/TABLE/INDEX`, `INSERT`, `SELECT`,
//!   `DELETE`, `BEGIN BATCH`) so the paper's Figure 3 statement
//!   transformation runs verbatim,
//! * real **on-disk sizes**: every byte of every SSTable is accounted for
//!   via `sc-storage`, which is what Table 4 measures.
//!
//! ```
//! use sc_nosql::{Db, OpenOptions};
//!
//! let mut db = Db::open(OpenOptions::default()).unwrap();
//! db.execute_cql("CREATE KEYSPACE smartcity").unwrap();
//! db.execute_cql(
//!     "CREATE TABLE smartcity.cells (id int, key text, measure int, PRIMARY KEY (id))",
//! ).unwrap();
//! db.execute_cql(
//!     "INSERT INTO smartcity.cells (id, key, measure) VALUES (3, 'Fenian St', 3)",
//! ).unwrap();
//! let rows = db.execute_cql("SELECT key, measure FROM smartcity.cells WHERE id = 3").unwrap();
//! let row = rows.first().unwrap();
//! assert_eq!(row.get_text("key").unwrap(), "Fenian St");
//! assert_eq!(row.get_int("measure").unwrap(), 3);
//! ```
//!
//! Durability is crash-tested: `sc_storage::Vfs::with_faults` simulates
//! power loss at every mutating storage operation, and the
//! [`crashtest`] sweep asserts that recovery reproduces exactly the
//! acknowledged writes.

pub mod cache;
pub(crate) mod colblock;
pub mod commitlog;
pub(crate) mod compactor;
pub mod cql;
pub mod crashtest;
pub mod engine;
pub mod error;
pub(crate) mod exec;
pub mod manifest;
pub mod memtable;
pub(crate) mod mvcc;
mod obs;
pub mod plan;
pub mod result;
pub mod row;
pub mod schema;
pub mod session;
pub mod snapshot;
pub mod sstable;
pub mod table;
pub mod types;

pub use cache::{BlockCache, CacheStats, DEFAULT_BLOCK_CACHE_BYTES};
pub use cql::ast::{AggFunc, CmpOp, OrderBy, SelectColumns, SelectItem, Statement, WhereClause};
pub use cql::parse_statement;
pub use engine::{Db, DbOptions, OpenOptions, SharedDb};
pub use error::NosqlError;
pub use manifest::{Manifest, ManifestEdit};
pub use result::{QueryResult, QueryRow};
pub use schema::{ColumnDef, TableDef};
pub use session::Session;
pub use snapshot::Snapshot;
pub use types::{CqlType, CqlTypeError, CqlValue};
