//! Leaf operators: the four access paths.

use super::{Operator, RowBatch, BATCH_ROWS};
use crate::error::Result;
use crate::plan::Predicate;
use crate::row::Row;
use crate::table::TableCore;
use crate::types::CqlValue;
use std::collections::HashSet;
use std::sync::Arc;

/// One bloom/fence-checked probe of the primary key.
pub struct PointScan {
    core: Arc<TableCore>,
    key: Vec<u8>,
    bound: u64,
    done: bool,
}

impl PointScan {
    pub(crate) fn new(core: Arc<TableCore>, key: Vec<u8>, bound: u64) -> PointScan {
        PointScan {
            core,
            key,
            bound,
            done: false,
        }
    }
}

impl Operator for PointScan {
    fn name(&self) -> &'static str {
        "PointScan"
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        Ok(self.core.get(&self.key, self.bound)?.map(|row| RowBatch {
            rows: vec![row.values],
        }))
    }
}

/// One probe per distinct `IN` key; statement order preserved, duplicates
/// collapsed, missing keys skipped (the pinned multi-point semantics).
pub struct MultiPointScan {
    core: Arc<TableCore>,
    keys: Vec<Vec<u8>>,
    pos: usize,
    bound: u64,
}

impl MultiPointScan {
    pub(crate) fn new(core: Arc<TableCore>, keys: &[CqlValue], bound: u64) -> MultiPointScan {
        let mut seen: HashSet<Vec<u8>> = HashSet::with_capacity(keys.len());
        let mut encoded = Vec::with_capacity(keys.len());
        for key in keys {
            let k = key.encode_key();
            if seen.insert(k.clone()) {
                encoded.push(k);
            }
        }
        MultiPointScan {
            core,
            keys: encoded,
            pos: 0,
            bound,
        }
    }
}

impl Operator for MultiPointScan {
    fn name(&self) -> &'static str {
        "MultiPointScan"
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        let mut batch = RowBatch::with_capacity(BATCH_ROWS.min(self.keys.len() - self.pos));
        while self.pos < self.keys.len() && batch.rows.len() < BATCH_ROWS {
            let key = &self.keys[self.pos];
            self.pos += 1;
            if let Some(row) = self.core.get(key, self.bound)? {
                batch.rows.push(row.values);
            }
        }
        Ok((!batch.rows.is_empty()).then_some(batch))
    }
}

/// Posting scan of a hidden index table, then one base-table probe per
/// posting id with a staleness re-check (postings may trail overwrites
/// racing the index update).
pub struct IndexScan {
    core: Arc<TableCore>,
    idx_core: Arc<TableCore>,
    col_index: usize,
    values: Vec<CqlValue>,
    /// Posting ids, gathered on the first pull; statement order of
    /// values, key order within a value, duplicates collapsed.
    ids: Option<Vec<i64>>,
    pos: usize,
    bound: u64,
}

impl IndexScan {
    pub(crate) fn new(
        core: Arc<TableCore>,
        idx_core: Arc<TableCore>,
        col_index: usize,
        values: Vec<CqlValue>,
        bound: u64,
    ) -> IndexScan {
        IndexScan {
            core,
            idx_core,
            col_index,
            values,
            ids: None,
            pos: 0,
            bound,
        }
    }

    fn gather_ids(&mut self) -> Result<()> {
        let mut ids = Vec::new();
        let mut seen: HashSet<i64> = HashSet::new();
        for value in &self.values {
            // The write path's posting-key layout: len-prefixed value key
            // ++ id; the value prefix covers every posting of the value.
            let prefix = crate::engine::DbCore::posting_prefix(value);
            for (_, posting) in self.idx_core.scan_prefix(&prefix, self.bound)? {
                if let Some(id) = posting.values[1].as_int() {
                    if seen.insert(id) {
                        ids.push(id);
                    }
                }
            }
        }
        self.ids = Some(ids);
        Ok(())
    }
}

impl Operator for IndexScan {
    fn name(&self) -> &'static str {
        "IndexScan"
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        if self.ids.is_none() {
            self.gather_ids()?;
        }
        let ids = self.ids.as_ref().expect("ids gathered above");
        let mut batch = RowBatch::with_capacity(BATCH_ROWS.min(ids.len().saturating_sub(self.pos)));
        while self.pos < ids.len() && batch.rows.len() < BATCH_ROWS {
            let id = ids[self.pos];
            self.pos += 1;
            if let Some(row) = self.core.get(&CqlValue::Int(id).encode_key(), self.bound)? {
                if self.values.contains(&row.values[self.col_index]) {
                    batch.rows.push(row.values);
                }
            }
        }
        Ok((!batch.rows.is_empty()).then_some(batch))
    }
}

/// Key-ordered scan of the whole table, with pushed-down residual
/// predicates and an optional pushed `LIMIT` (counted after filtering).
pub struct FullScan {
    core: Arc<TableCore>,
    residual: Vec<Predicate>,
    remaining: Option<usize>,
    /// Base-layout columns to materialize (`None` = all): v3 SSTables
    /// decode only these column runs, leaving the rest `Null`. The planner
    /// guarantees every column read above the scan is in the set.
    projection: Option<Vec<usize>>,
    rows: Option<std::vec::IntoIter<(Vec<u8>, Row)>>,
    bound: u64,
}

impl FullScan {
    pub(crate) fn new(
        core: Arc<TableCore>,
        residual: Vec<Predicate>,
        pushed_limit: Option<usize>,
        projection: Option<Vec<usize>>,
        bound: u64,
    ) -> FullScan {
        FullScan {
            core,
            residual,
            remaining: pushed_limit,
            projection,
            rows: None,
            bound,
        }
    }
}

impl Operator for FullScan {
    fn name(&self) -> &'static str {
        "FullScan"
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        if self.rows.is_none() {
            self.rows = Some(
                self.core
                    .scan_projected(self.bound, self.projection.as_deref())?
                    .into_iter(),
            );
        }
        if self.remaining == Some(0) {
            return Ok(None);
        }
        let iter = self.rows.as_mut().expect("scan materialized above");
        let mut batch = RowBatch::with_capacity(BATCH_ROWS);
        for (_, row) in iter {
            if !self.residual.iter().all(|p| p.matches(&row.values)) {
                continue;
            }
            batch.rows.push(row.values);
            if let Some(remaining) = &mut self.remaining {
                *remaining -= 1;
                if *remaining == 0 {
                    break;
                }
            }
            if batch.rows.len() >= BATCH_ROWS {
                break;
            }
        }
        Ok((!batch.rows.is_empty()).then_some(batch))
    }
}
