//! Per-operator trace attribution.

use super::{Operator, RowBatch};
use crate::error::Result;
use sc_obs::trace::{self, Attr};

/// Wraps an operator so every pull runs inside a trace stage named after
/// the operator. Attribution follows the pull chain:
///
/// * [`Attr::OpRowsOut`] is charged **inside** the operator's own stage —
///   the rows this operator emitted,
/// * [`Attr::OpRowsIn`] is charged **after** the stage closes, so it
///   lands on the innermost still-open stage: the consuming operator's
///   span (or the statement root for the pipeline's output).
///
/// Storage-level attribution (blocks read, cache hits, bloom checks)
/// recorded during the pull nests under the operator's stage
/// automatically, which is what makes per-operator cost visible in
/// `GET /debug/traces`. When no trace is active on the thread the whole
/// wrapper is two relaxed thread-local reads per pull.
pub struct Traced {
    inner: Box<dyn Operator>,
}

impl Traced {
    pub(crate) fn new(inner: Box<dyn Operator>) -> Traced {
        Traced { inner }
    }
}

impl Operator for Traced {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        let batch = {
            let _stage = trace::stage(self.inner.name());
            let batch = self.inner.next_batch()?;
            let rows = batch.as_ref().map_or(0, |b| b.rows.len() as u64);
            trace::add(Attr::OpRowsOut, rows);
            batch
        };
        trace::add(
            Attr::OpRowsIn,
            batch.as_ref().map_or(0, |b| b.rows.len()) as u64,
        );
        Ok(batch)
    }
}
