//! Row-shape and row-set operators: Filter, Project, Sort, Limit.

use super::{Operator, RowBatch, BATCH_ROWS};
use crate::error::Result;
use crate::plan::Predicate;
use crate::types::CqlValue;

/// Drops rows failing an AND-joined predicate list.
pub struct Filter {
    input: Box<dyn Operator>,
    predicates: Vec<Predicate>,
}

impl Filter {
    pub(crate) fn new(input: Box<dyn Operator>, predicates: Vec<Predicate>) -> Filter {
        Filter { input, predicates }
    }
}

impl Operator for Filter {
    fn name(&self) -> &'static str {
        "Filter"
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        while let Some(mut batch) = self.input.next_batch()? {
            batch
                .rows
                .retain(|row| self.predicates.iter().all(|p| p.matches(row)));
            if !batch.rows.is_empty() {
                return Ok(Some(batch));
            }
        }
        Ok(None)
    }
}

/// Narrows each row to the selected column indices.
pub struct Project {
    input: Box<dyn Operator>,
    indices: Vec<usize>,
}

impl Project {
    pub(crate) fn new(input: Box<dyn Operator>, indices: Vec<usize>) -> Project {
        Project { input, indices }
    }
}

impl Operator for Project {
    fn name(&self) -> &'static str {
        "Project"
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        let Some(batch) = self.input.next_batch()? else {
            return Ok(None);
        };
        let rows = batch
            .rows
            .into_iter()
            .map(|row| self.indices.iter().map(|&i| row[i].clone()).collect())
            .collect();
        Ok(Some(RowBatch { rows }))
    }
}

/// Total sort on one column. Drains its input on the first pull (sorting
/// is a pipeline breaker), then re-emits in batches. The sort is stable,
/// so ties keep the input's key order.
pub struct Sort {
    input: Box<dyn Operator>,
    key: usize,
    desc: bool,
    sorted: Option<std::vec::IntoIter<Vec<CqlValue>>>,
}

impl Sort {
    pub(crate) fn new(input: Box<dyn Operator>, key: usize, desc: bool) -> Sort {
        Sort {
            input,
            key,
            desc,
            sorted: None,
        }
    }
}

impl Operator for Sort {
    fn name(&self) -> &'static str {
        "Sort"
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        if self.sorted.is_none() {
            let mut rows = super::drain(self.input.as_mut())?;
            let key = self.key;
            if self.desc {
                rows.sort_by(|a, b| b[key].cmp_sort(&a[key]));
            } else {
                rows.sort_by(|a, b| a[key].cmp_sort(&b[key]));
            }
            self.sorted = Some(rows.into_iter());
        }
        let iter = self.sorted.as_mut().expect("sorted above");
        let rows: Vec<Vec<CqlValue>> = iter.take(BATCH_ROWS).collect();
        Ok((!rows.is_empty()).then_some(RowBatch { rows }))
    }
}

/// Caps the number of rows emitted; stops pulling its input once the cap
/// is reached.
pub struct Limit {
    input: Box<dyn Operator>,
    remaining: usize,
}

impl Limit {
    pub(crate) fn new(input: Box<dyn Operator>, limit: usize) -> Limit {
        Limit {
            input,
            remaining: limit,
        }
    }
}

impl Operator for Limit {
    fn name(&self) -> &'static str {
        "Limit"
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let Some(mut batch) = self.input.next_batch()? else {
            return Ok(None);
        };
        batch.rows.truncate(self.remaining);
        self.remaining -= batch.rows.len();
        Ok(Some(batch))
    }
}
