//! The batch operator pipeline that executes planned `SELECT`s (see
//! DESIGN.md §5h).
//!
//! # The batch contract
//!
//! An [`Operator`] is a pull-based iterator over [`RowBatch`]es of up to
//! [`BATCH_ROWS`] rows. `next_batch` returns `Ok(Some(batch))` with at
//! least one row, `Ok(None)` once exhausted (and on every call after
//! that), or an error. Rows are `Vec<CqlValue>` in the operator's output
//! layout: scans emit the base table's full layout; `Project` and
//! `Aggregate` change it.
//!
//! Operators own `Arc` clones of the table runtimes they read, resolved
//! by the engine at build time, and read at one fixed MVCC bound — a
//! pipeline sees a single consistent version of the table no matter how
//! long it runs or what commits meanwhile.
//!
//! Every operator is wrapped in [`traced::Traced`], which records the
//! per-pull span and the rows-in/rows-out attribution counters that
//! surface in `/debug/traces`.

pub mod aggregate;
pub mod scan;
pub mod traced;
pub mod transform;

use crate::error::Result;
use crate::plan::{PlanNode, ScanKind};
use crate::table::TableCore;
use crate::types::CqlValue;
use std::sync::Arc;

/// Target rows per batch. Large enough to amortize per-batch dispatch,
/// small enough to keep a pipeline's working set in cache.
pub const BATCH_ROWS: usize = 1024;

/// One batch of rows flowing between operators.
#[derive(Debug, Default)]
pub struct RowBatch {
    /// The rows, each in the producing operator's output layout.
    pub rows: Vec<Vec<CqlValue>>,
}

impl RowBatch {
    /// A batch with capacity for one full batch.
    pub fn with_capacity(n: usize) -> RowBatch {
        RowBatch {
            rows: Vec::with_capacity(n),
        }
    }
}

/// A pull-based batch operator.
pub trait Operator {
    /// The operator's display name (`PointScan`, `Filter`, …); used as
    /// the trace span name and in `EXPLAIN` output.
    fn name(&self) -> &'static str;

    /// Pulls the next non-empty batch, or `None` when exhausted.
    fn next_batch(&mut self) -> Result<Option<RowBatch>>;
}

/// The table runtimes a pipeline reads: the base table and, for index
/// scans, the hidden posting table.
#[derive(Debug, Clone)]
pub struct Cores {
    /// The scanned table.
    pub base: Arc<TableCore>,
    /// The posting table, when the plan's scan is an index scan.
    pub index: Option<Arc<TableCore>>,
}

/// Builds the operator pipeline for a plan subtree. `bound` is the MVCC
/// read bound every storage access uses.
pub fn build(plan: &PlanNode, cores: &Cores, bound: u64) -> Box<dyn Operator> {
    let op: Box<dyn Operator> = match plan {
        PlanNode::Scan(node) => match &node.kind {
            ScanKind::Point { key } => Box::new(scan::PointScan::new(
                Arc::clone(&cores.base),
                key.encode_key(),
                bound,
            )),
            ScanKind::MultiPoint { keys } => Box::new(scan::MultiPointScan::new(
                Arc::clone(&cores.base),
                keys,
                bound,
            )),
            ScanKind::Index {
                col_index, values, ..
            } => Box::new(scan::IndexScan::new(
                Arc::clone(&cores.base),
                Arc::clone(
                    cores
                        .index
                        .as_ref()
                        .expect("index scan plans carry a posting core"),
                ),
                *col_index,
                values.clone(),
                bound,
            )),
            ScanKind::Full => Box::new(scan::FullScan::new(
                Arc::clone(&cores.base),
                node.residual.clone(),
                node.pushed_limit,
                node.projection.as_ref().map(|p| p.indices.clone()),
                bound,
            )),
        },
        PlanNode::Filter {
            input, predicates, ..
        } => Box::new(transform::Filter::new(
            build(input, cores, bound),
            predicates.clone(),
        )),
        PlanNode::Project { input, indices, .. } => Box::new(transform::Project::new(
            build(input, cores, bound),
            indices.clone(),
        )),
        PlanNode::Sort {
            input, key, desc, ..
        } => Box::new(transform::Sort::new(
            build(input, cores, bound),
            *key,
            *desc,
        )),
        PlanNode::Limit { input, limit, .. } => {
            Box::new(transform::Limit::new(build(input, cores, bound), *limit))
        }
        PlanNode::Aggregate {
            input,
            group_by,
            aggs,
            output,
            ..
        } => Box::new(aggregate::Aggregate::new(
            build(input, cores, bound),
            group_by.clone(),
            aggs.clone(),
            output.clone(),
        )),
    };
    Box::new(traced::Traced::new(op))
}

/// Drains an operator into a row vector.
pub fn drain(op: &mut dyn Operator) -> Result<Vec<Vec<CqlValue>>> {
    let mut rows = Vec::new();
    while let Some(batch) = op.next_batch()? {
        rows.extend(batch.rows);
    }
    Ok(rows)
}
