//! Grouped and global aggregation.

use super::{Operator, RowBatch, BATCH_ROWS};
use crate::cql::ast::AggFunc;
use crate::error::{NosqlError, Result};
use crate::plan::{AggOutput, AggSpec};
use crate::types::CqlValue;
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// Group key with [`CqlValue::cmp_sort`] order, so output groups emerge
/// in a deterministic, data-independent order.
#[derive(Debug, PartialEq, Eq)]
struct GroupKey(Vec<CqlValue>);

impl Ord for GroupKey {
    fn cmp(&self, other: &GroupKey) -> Ordering {
        for (a, b) in self.0.iter().zip(&other.0) {
            match a.cmp_sort(b) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

impl PartialOrd for GroupKey {
    fn partial_cmp(&self, other: &GroupKey) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Running state of one aggregate within one group.
#[derive(Debug, Default)]
struct AggState {
    /// Rows seen (`COUNT(*)`) or non-null arguments seen (everything
    /// else).
    count: i64,
    /// Running integer sum (`SUM`/`AVG`).
    sum: i64,
    /// Running minimum in [`CqlValue::cmp_sort`] order, nulls skipped.
    min: Option<CqlValue>,
    /// Running maximum, nulls skipped.
    max: Option<CqlValue>,
}

impl AggState {
    fn accumulate(&mut self, spec: &AggSpec, row: &[CqlValue]) -> Result<()> {
        let Some(arg) = spec.input else {
            // COUNT(*): every row counts.
            self.count += 1;
            return Ok(());
        };
        let value = &row[arg];
        if value.is_null() {
            // SQL aggregate semantics: nulls do not participate.
            return Ok(());
        }
        self.count += 1;
        match spec.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => {
                // Checked, not wrapping: a wrapped running total silently
                // returns an arbitrary number (and the old `wrapping_add`
                // hid a debug-build panic behind large SUMs).
                self.sum = self.sum.checked_add(value.as_int().unwrap_or(0)).ok_or(
                    NosqlError::AggregateOverflow {
                        func: match spec.func {
                            AggFunc::Sum => "SUM",
                            _ => "AVG",
                        },
                    },
                )?;
            }
            AggFunc::Min => {
                let better = self
                    .min
                    .as_ref()
                    .is_none_or(|m| value.cmp_sort(m) == Ordering::Less);
                if better {
                    self.min = Some(value.clone());
                }
            }
            AggFunc::Max => {
                let better = self
                    .max
                    .as_ref()
                    .is_none_or(|m| value.cmp_sort(m) == Ordering::Greater);
                if better {
                    self.max = Some(value.clone());
                }
            }
        }
        Ok(())
    }

    fn finish(&self, spec: &AggSpec) -> CqlValue {
        match spec.func {
            AggFunc::Count => CqlValue::Int(self.count),
            AggFunc::Sum if self.count == 0 => CqlValue::Null,
            AggFunc::Sum => CqlValue::Int(self.sum),
            // Integer division, as in Cassandra's int avg.
            AggFunc::Avg if self.count == 0 => CqlValue::Null,
            AggFunc::Avg => CqlValue::Int(self.sum / self.count),
            AggFunc::Min => self.min.clone().unwrap_or(CqlValue::Null),
            AggFunc::Max => self.max.clone().unwrap_or(CqlValue::Null),
        }
    }
}

/// Drains its input on the first pull, accumulating one [`AggState`] per
/// aggregate per group, then emits one output row per group in group-key
/// order. With no `GROUP BY` there is exactly one output row — even over
/// empty input (`count` 0, other aggregates null).
pub struct Aggregate {
    input: Box<dyn Operator>,
    group_by: Vec<usize>,
    aggs: Vec<AggSpec>,
    output: Vec<AggOutput>,
    results: Option<std::vec::IntoIter<Vec<CqlValue>>>,
}

impl Aggregate {
    pub(crate) fn new(
        input: Box<dyn Operator>,
        group_by: Vec<usize>,
        aggs: Vec<AggSpec>,
        output: Vec<AggOutput>,
    ) -> Aggregate {
        Aggregate {
            input,
            group_by,
            aggs,
            output,
            results: None,
        }
    }

    fn run(&mut self) -> Result<Vec<Vec<CqlValue>>> {
        let mut groups: BTreeMap<GroupKey, Vec<AggState>> = BTreeMap::new();
        let fresh = |aggs: &[AggSpec]| -> Vec<AggState> {
            aggs.iter().map(|_| AggState::default()).collect()
        };
        if self.group_by.is_empty() {
            // A global aggregate emits a row even over nothing.
            groups.insert(GroupKey(Vec::new()), fresh(&self.aggs));
        }
        while let Some(batch) = self.input.next_batch()? {
            for row in &batch.rows {
                let key = GroupKey(self.group_by.iter().map(|&i| row[i].clone()).collect());
                let states = groups.entry(key).or_insert_with(|| fresh(&self.aggs));
                for (state, spec) in states.iter_mut().zip(&self.aggs) {
                    state.accumulate(spec, row)?;
                }
            }
        }
        let mut rows = Vec::with_capacity(groups.len());
        for (key, states) in &groups {
            let row: Vec<CqlValue> = self
                .output
                .iter()
                .map(|out| match out {
                    AggOutput::Group(col) => {
                        let pos = self
                            .group_by
                            .iter()
                            .position(|g| g == col)
                            .expect("projected grouping columns are in GROUP BY");
                        key.0[pos].clone()
                    }
                    AggOutput::Agg(i) => states[*i].finish(&self.aggs[*i]),
                })
                .collect();
            rows.push(row);
        }
        Ok(rows)
    }
}

impl Operator for Aggregate {
    fn name(&self) -> &'static str {
        "Aggregate"
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        if self.results.is_none() {
            let rows = self.run()?;
            self.results = Some(rows.into_iter());
        }
        let iter = self.results.as_mut().expect("aggregated above");
        let rows: Vec<Vec<CqlValue>> = iter.take(BATCH_ROWS).collect();
        Ok((!rows.is_empty()).then_some(RowBatch { rows }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::NosqlError;

    /// Feeds a fixed row set through the operator interface once.
    struct Rows(Option<Vec<Vec<CqlValue>>>);

    impl Operator for Rows {
        fn name(&self) -> &'static str {
            "Rows"
        }

        fn next_batch(&mut self) -> Result<Option<RowBatch>> {
            Ok(self.0.take().map(|rows| RowBatch { rows }))
        }
    }

    fn sum_of(values: Vec<i64>, func: AggFunc) -> Result<Vec<Vec<CqlValue>>> {
        let rows = values.into_iter().map(|v| vec![CqlValue::Int(v)]).collect();
        let mut agg = Aggregate::new(
            Box::new(Rows(Some(rows))),
            Vec::new(),
            vec![AggSpec {
                func,
                input: Some(0),
                column: Some("v".to_string()),
            }],
            vec![AggOutput::Agg(0)],
        );
        super::super::drain(&mut agg)
    }

    #[test]
    fn sum_overflow_is_a_typed_error_not_a_wrap() {
        let err = sum_of(vec![i64::MAX, 1], AggFunc::Sum).unwrap_err();
        assert!(
            matches!(err, NosqlError::AggregateOverflow { func: "SUM" }),
            "{err:?}"
        );
    }

    #[test]
    fn sum_underflow_is_a_typed_error() {
        let err = sum_of(vec![i64::MIN, -1], AggFunc::Sum).unwrap_err();
        assert!(
            matches!(err, NosqlError::AggregateOverflow { func: "SUM" }),
            "{err:?}"
        );
    }

    #[test]
    fn avg_overflow_is_a_typed_error() {
        // AVG's *running sum* overflows even though the mean would fit.
        let err = sum_of(vec![i64::MAX, i64::MAX], AggFunc::Avg).unwrap_err();
        assert!(
            matches!(err, NosqlError::AggregateOverflow { func: "AVG" }),
            "{err:?}"
        );
    }

    #[test]
    fn in_range_sums_still_work() {
        let rows = sum_of(vec![i64::MAX - 1, 1, -2, 2], AggFunc::Sum).unwrap();
        assert_eq!(rows, vec![vec![CqlValue::Int(i64::MAX)]]);
    }
}
