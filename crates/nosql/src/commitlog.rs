//! The commit log: durability journal of the write path.
//!
//! Every mutation is framed and appended before it touches the memtable,
//! exactly as Cassandra does; Table 5's insertion time therefore pays real
//! serialization and append costs per statement (and batches amortize the
//! append, like Cassandra's `BEGIN BATCH`).
//!
//! Frame format: `[len: u32][crc: u32][payload]` where `crc` covers the
//! payload. Replay stops cleanly at a torn tail.
//!
//! The log is **segmented**: appends go to an active segment file which is
//! rotated out once it reaches [`DEFAULT_SEGMENT_BYTES`]
//! (`OpenOptions::wal_segment_bytes`). Closed segments are immutable and
//! record the highest sequence they contain, so a checkpoint after a
//! memtable flush can delete exactly the segments made redundant —
//! without segmentation the log would only ever shrink at an explicit
//! `flush_all`, growing without bound under sustained writes.

use crate::error::{NosqlError, Result};
use sc_encoding::{Crc32, Decoder, Encoder};
use sc_storage::{StorageError, Vfs};
use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default byte size at which the active segment is rotated out.
pub const DEFAULT_SEGMENT_BYTES: u64 = 512 * 1024;

/// A mutation record as stored in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Qualified table name the mutation applies to.
    pub table: String,
    /// Encoded partition key.
    pub key: Vec<u8>,
    /// Encoded row body, empty for a tombstone.
    pub body: Vec<u8>,
    /// Write timestamp.
    pub timestamp: u64,
}

/// A closed (rotated-out) segment: immutable on disk, checkpointable once
/// every record at or below `max_seq` is covered by SSTables.
#[derive(Debug)]
struct Segment {
    name: String,
    /// Highest record sequence in the segment; `u64::MAX` when unknown
    /// (pre-existing file opened without repair — conservatively never
    /// checkpointed).
    max_seq: u64,
}

/// Mutable segment bookkeeping, behind one mutex. The group commit admits
/// a single appender at a time, so the lock is uncontended on the write
/// path; checkpoints and truncation serialize against it.
#[derive(Debug)]
struct SegState {
    /// Closed segments, oldest first.
    closed: Vec<Segment>,
    /// Active segment file name (the unsuffixed base for a fresh log).
    active: String,
    active_bytes: u64,
    active_max_seq: u64,
    /// Suffix index the next rotation will use.
    next_index: u64,
}

/// Append handle for one engine's commit log.
#[derive(Debug)]
pub struct CommitLog {
    vfs: Vfs,
    base: String,
    segment_bytes: u64,
    segs: Mutex<SegState>,
}

impl CommitLog {
    /// Opens (or creates) the log at `base`. Pre-existing segments
    /// (`base`, `base.000002`, ...) are adopted in index order; the
    /// highest becomes the active segment.
    pub fn open(vfs: Vfs, base: impl Into<String>) -> CommitLog {
        let base = base.into();
        let mut names: Vec<(u64, String)> = vfs
            .list(&base)
            .unwrap_or_default()
            .into_iter()
            .filter_map(|n| Self::segment_index(&base, &n).map(|i| (i, n)))
            .collect();
        names.sort_unstable();
        let (active, next_index) = match names.last() {
            Some((i, n)) => (n.clone(), i + 1),
            None => (base.clone(), 2),
        };
        let active_bytes = vfs.len(&active).unwrap_or(0);
        let segs = SegState {
            closed: names[..names.len().saturating_sub(1)]
                .iter()
                .map(|(_, n)| Segment {
                    name: n.clone(),
                    max_seq: u64::MAX,
                })
                .collect(),
            active,
            active_bytes,
            // Unknown contents must never be checkpointed away; `repair`
            // (run before any engine append) computes the real values.
            active_max_seq: if active_bytes > 0 { u64::MAX } else { 0 },
            next_index: next_index.max(2),
        };
        CommitLog {
            vfs,
            base,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            segs: Mutex::new(segs),
        }
    }

    /// Sets the rotation threshold (builder-style, before first use).
    pub fn with_segment_bytes(mut self, bytes: u64) -> CommitLog {
        self.segment_bytes = bytes.max(1);
        self
    }

    /// `base` → 1, `base.NNN` (all digits) → NNN; anything else is not a
    /// segment of this log.
    fn segment_index(base: &str, name: &str) -> Option<u64> {
        if name == base {
            return Some(1);
        }
        let suffix = name.strip_prefix(base)?.strip_prefix('.')?;
        if suffix.is_empty() || !suffix.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        suffix.parse().ok()
    }

    fn lock_segs(&self) -> std::sync::MutexGuard<'_, SegState> {
        self.segs.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn frame(record: &LogRecord, out: &mut Encoder) {
        let mut payload = Encoder::new();
        payload
            .put_str(&record.table)
            .put_bytes(&record.key)
            .put_bytes(&record.body)
            .put_u64_fixed(record.timestamp);
        let payload = payload.into_bytes();
        out.put_u32_fixed(payload.len() as u32);
        out.put_u32_fixed(Crc32::of(&payload));
        out.put_raw(&payload);
    }

    /// Appends one mutation.
    pub fn append(&self, record: &LogRecord) -> Result<()> {
        self.append_batch(std::slice::from_ref(record))
    }

    /// Appends a group of mutations in one write (batch commit), rotating
    /// the active segment first when it is full. Rotation is pure
    /// bookkeeping — the new segment file is created by this very append —
    /// so a batch is still exactly one storage write.
    pub fn append_batch(&self, records: &[LogRecord]) -> Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let mut enc = Encoder::new();
        let mut max_seq = 0;
        for r in records {
            Self::frame(r, &mut enc);
            max_seq = max_seq.max(r.timestamp);
        }
        let mut segs = self.lock_segs();
        if segs.active_bytes >= self.segment_bytes {
            let closed = Segment {
                name: segs.active.clone(),
                max_seq: segs.active_max_seq,
            };
            segs.closed.push(closed);
            segs.active = format!("{}.{:06}", self.base, segs.next_index);
            segs.next_index += 1;
            segs.active_bytes = 0;
            segs.active_max_seq = 0;
        }
        self.record_append(enc.bytes().len());
        self.vfs.append(&segs.active, enc.bytes())?;
        segs.active_bytes += enc.bytes().len() as u64;
        segs.active_max_seq = segs.active_max_seq.max(max_seq);
        Ok(())
    }

    fn record_append(&self, framed_len: usize) {
        if sc_obs::enabled() {
            let o = crate::obs::nosql();
            o.commitlog_appends.inc();
            o.commitlog_append_bytes.add(framed_len as u64);
        }
    }

    /// Bytes currently in the log, across every segment.
    pub fn size(&self) -> u64 {
        let segs = self.lock_segs();
        segs.closed
            .iter()
            .map(|s| self.vfs.len(&s.name).unwrap_or(0))
            .sum::<u64>()
            + self.vfs.len(&segs.active).unwrap_or(0)
    }

    /// Number of live segments including the active one (observability).
    pub fn segment_count(&self) -> usize {
        self.lock_segs().closed.len() + 1
    }

    /// Deletes every segment and resets to a fresh log (after a full
    /// checkpoint makes the whole log redundant).
    pub fn truncate(&self) -> Result<()> {
        let mut segs = self.lock_segs();
        for seg in &segs.closed {
            self.vfs.delete(&seg.name)?;
        }
        self.vfs.delete(&segs.active)?;
        *segs = SegState {
            closed: Vec::new(),
            active: self.base.clone(),
            active_bytes: 0,
            active_max_seq: 0,
            next_index: 2,
        };
        Ok(())
    }

    /// Deletes closed segments whose every record is at or below `floor`
    /// (redundant once flushed to SSTables). The active segment is never
    /// deleted. Returns the number of segments removed.
    pub fn checkpoint(&self, floor: u64) -> Result<usize> {
        let mut segs = self.lock_segs();
        let mut deleted = 0usize;
        let mut err = None;
        segs.closed.retain(|seg| {
            if err.is_some() || seg.max_seq > floor {
                return true;
            }
            match self.vfs.delete(&seg.name) {
                Ok(()) => {
                    deleted += 1;
                    false
                }
                Err(e) => {
                    // Keep the segment listed: its records must stay
                    // replayable until the file is actually gone.
                    err = Some(e);
                    true
                }
            }
        });
        drop(segs);
        if sc_obs::enabled() {
            let o = crate::obs::nosql();
            o.commitlog_checkpoints.inc();
            o.commitlog_segments_deleted.add(deleted as u64);
        }
        match err {
            Some(e) => Err(e.into()),
            None => Ok(deleted),
        }
    }

    /// Decodes one segment: intact records, the byte length of the valid
    /// prefix, and the highest sequence seen.
    fn replay_segment(&self, name: &str) -> Result<(Vec<LogRecord>, u64, u64)> {
        let data = match self.vfs.read_all(name) {
            Ok(d) => d,
            Err(sc_storage::StorageError::NotFound(_)) => return Ok((Vec::new(), 0, 0)),
            Err(e) => return Err(e.into()),
        };
        let mut out = Vec::new();
        let mut dec = Decoder::new(&data);
        let mut good_len = 0u64;
        let mut max_seq = 0u64;
        while dec.remaining() >= 8 {
            let len = dec.get_u32_fixed()? as usize;
            let crc = dec.get_u32_fixed()?;
            if dec.remaining() < len {
                break; // torn tail
            }
            let payload = dec.get_raw(len)?;
            if Crc32::of(payload) != crc {
                break; // corrupt tail
            }
            let mut p = Decoder::new(payload);
            let table = p.get_str().map_err(NosqlError::from)?.to_string();
            let key = p.get_bytes()?.to_vec();
            let body = p.get_bytes()?.to_vec();
            let timestamp = p.get_u64_fixed()?;
            max_seq = max_seq.max(timestamp);
            out.push(LogRecord {
                table,
                key,
                body,
                timestamp,
            });
            good_len = (data.len() - dec.remaining()) as u64;
        }
        Ok((out, good_len, max_seq))
    }

    /// Segment names in age order (closed oldest-first, then active).
    fn segment_names(&self) -> Vec<String> {
        let segs = self.lock_segs();
        let mut names: Vec<String> = segs.closed.iter().map(|s| s.name.clone()).collect();
        names.push(segs.active.clone());
        names
    }

    /// Replays all intact records across every segment, in age order. A
    /// torn or corrupt frame ends the replay without error (standard
    /// commit-log semantics); anything after it — including later
    /// segments — is ignored.
    pub fn replay(&self) -> Result<Vec<LogRecord>> {
        let mut out = Vec::new();
        for name in self.segment_names() {
            let (records, good_len, _) = self.replay_segment(&name)?;
            out.extend(records);
            if good_len < self.vfs.len(&name).unwrap_or(0) {
                break;
            }
        }
        Ok(out)
    }

    /// Replays the log and physically removes any torn tail: the damaged
    /// segment is truncated to its valid prefix and every later segment is
    /// deleted, then the segment bookkeeping (per-segment max sequences,
    /// active segment) is rebuilt from what survived.
    ///
    /// Replay alone is not enough: if the tear stayed on disk, the next
    /// appended record would land *after* it and be unreachable on the next
    /// replay — an acknowledged write silently lost one crash later.
    pub fn repair(&self) -> Result<Vec<LogRecord>> {
        let names = self.segment_names();
        let mut out = Vec::new();
        let mut survivors: Vec<Segment> = Vec::new();
        let mut torn_at = None;
        for (i, name) in names.iter().enumerate() {
            let (records, good_len, max_seq) = self.replay_segment(name)?;
            let file_len = self.vfs.len(name).unwrap_or(0);
            out.extend(records);
            survivors.push(Segment {
                name: name.clone(),
                max_seq,
            });
            if good_len < file_len {
                self.vfs.truncate(name, good_len)?;
                torn_at = Some(i);
                break;
            }
        }
        if let Some(i) = torn_at {
            // A tear can only be the end of the log; later segments (a
            // corruption case, never a clean crash) are unreachable by
            // replay and must not outlive it.
            for name in &names[i + 1..] {
                self.vfs.delete(name)?;
            }
        }
        let mut segs = self.lock_segs();
        let active = survivors.pop();
        match active {
            Some(active) => {
                *segs = SegState {
                    next_index: Self::segment_index(&self.base, &active.name)
                        .map_or(2, |i| i + 1)
                        .max(2),
                    active_bytes: self.vfs.len(&active.name).unwrap_or(0),
                    active_max_seq: active.max_seq,
                    active: active.name,
                    closed: survivors,
                };
            }
            None => {
                *segs = SegState {
                    closed: Vec::new(),
                    active: self.base.clone(),
                    active_bytes: 0,
                    active_max_seq: 0,
                    next_index: 2,
                };
            }
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Group commit
// ---------------------------------------------------------------------------

/// Cloneable image of a WAL append failure, so one leader's error can be
/// delivered to every session in its batch. [`StorageError`] itself is not
/// `Clone` (it can wrap an `io::Error`), so the two cases the crash matrix
/// distinguishes are preserved exactly and everything else keeps its
/// message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum WalError {
    /// Round-trips [`StorageError::Injected`] losslessly: fault-injection
    /// tests still see the crash op they armed.
    Injected { op: u64, file: String },
    /// Any other failure, flattened to its message.
    Other(String),
}

impl WalError {
    fn of(e: &NosqlError) -> WalError {
        match e {
            NosqlError::Storage(StorageError::Injected { op, file }) => WalError::Injected {
                op: *op,
                file: file.clone(),
            },
            other => WalError::Other(other.to_string()),
        }
    }

    pub fn into_nosql(self) -> NosqlError {
        match self {
            WalError::Injected { op, file } => {
                NosqlError::Storage(StorageError::Injected { op, file })
            }
            WalError::Other(msg) => NosqlError::Storage(StorageError::Io(std::io::Error::new(
                std::io::ErrorKind::Other,
                msg,
            ))),
        }
    }
}

#[derive(Debug)]
struct Outcome {
    result: Option<WalError>,
    /// Followers still due to read this outcome; the last one removes it.
    readers_left: usize,
}

#[derive(Debug)]
struct GcState {
    /// Records accumulated for the batch generation `buf_gen`.
    buf: Vec<LogRecord>,
    /// Sessions with records in `buf`.
    waiters: usize,
    /// Generation currently accepting joiners.
    buf_gen: u64,
    /// Highest generation whose append has finished (ok or failed).
    completed_gen: u64,
    /// A leader is between taking a batch and publishing its outcome.
    leader_active: bool,
    /// Outcomes awaiting follower pickup, keyed by generation.
    outcomes: HashMap<u64, Outcome>,
}

/// Group-commit front end over [`CommitLog`]: concurrent sessions' appends
/// are coalesced into one storage write using a leader/follower protocol.
///
/// The first session to find no leader running becomes the leader for the
/// current batch generation: it may linger `max_delay` to let followers
/// pile in, then takes the buffer, bumps the generation (late joiners
/// start the next batch), appends every record in **one** VFS write, and
/// publishes the shared outcome. Followers just enqueue their records and
/// wait for their generation to complete. Because a batch is a single
/// append, a crash preserves a prefix of whole batches: every acked write
/// is in a completed batch (durable), and an un-acked batch is at worst a
/// torn tail that replay drops cleanly.
#[derive(Debug)]
pub(crate) struct GroupCommitLog {
    log: CommitLog,
    state: Mutex<GcState>,
    cond: Condvar,
    max_delay: Duration,
}

impl GroupCommitLog {
    /// Wraps `log`; `max_delay` is the latency the leader may add while
    /// waiting for followers (zero = commit immediately, batches still
    /// form naturally while a leader's append is in flight).
    pub fn new(log: CommitLog, max_delay: Duration) -> GroupCommitLog {
        GroupCommitLog {
            log,
            // Generation 1 is the first batch; completed_gen starts below
            // it so no waiter can observe its batch as already done.
            state: Mutex::new(GcState {
                buf: Vec::new(),
                waiters: 0,
                buf_gen: 1,
                completed_gen: 0,
                leader_active: false,
                outcomes: HashMap::new(),
            }),
            cond: Condvar::new(),
            max_delay,
        }
    }

    /// The wrapped log, for replay/repair/size/truncate during recovery
    /// and flush (single-caller phases).
    pub fn plain(&self) -> &CommitLog {
        &self.log
    }

    /// Deletes closed segments fully covered by `floor` (see
    /// [`CommitLog::checkpoint`]). Safe concurrently with appends: the
    /// segment bookkeeping serializes internally and the active segment is
    /// never touched.
    pub fn checkpoint(&self, floor: u64) -> Result<usize> {
        self.log.checkpoint(floor)
    }

    /// Durably appends `records` (one session's mutation, possibly a
    /// multi-record batch statement), sharing the storage write with every
    /// concurrent session. Returns only after the carrying batch's append
    /// has completed; on failure every session of the batch gets the same
    /// error.
    pub fn append_group(&self, records: Vec<LogRecord>) -> std::result::Result<(), WalError> {
        let enter = Instant::now();
        crate::mvcc::perturb(21);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let my_gen = st.buf_gen;
        st.buf.extend(records);
        st.waiters += 1;
        loop {
            if st.completed_gen >= my_gen {
                // A leader finished our generation: pick up the outcome.
                let result = match st.outcomes.get_mut(&my_gen) {
                    Some(o) => {
                        o.readers_left -= 1;
                        let r = o.result.clone();
                        if o.readers_left == 0 {
                            st.outcomes.remove(&my_gen);
                        }
                        r
                    }
                    None => None,
                };
                drop(st);
                let waited = enter.elapsed();
                crate::mvcc::add_queue_wait(waited);
                if sc_obs::enabled() {
                    crate::obs::nosql()
                        .group_commit_wait_ns
                        .record_duration(waited);
                }
                return match result {
                    Some(e) => Err(e),
                    None => Ok(()),
                };
            }
            if !st.leader_active && st.buf_gen == my_gen {
                return self.lead(st, my_gen, enter);
            }
            crate::mvcc::perturb(22);
            st = self.cond.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn lead(
        &self,
        mut st: std::sync::MutexGuard<'_, GcState>,
        my_gen: u64,
        enter: Instant,
    ) -> std::result::Result<(), WalError> {
        st.leader_active = true;
        if !self.max_delay.is_zero() && st.waiters == 1 {
            // Alone so far: linger briefly so concurrent sessions can join
            // this batch. The wait is deliberate queueing, not execution.
            let delay_start = Instant::now();
            let (s, _) = self
                .cond
                .wait_timeout(st, self.max_delay)
                .unwrap_or_else(|e| e.into_inner());
            st = s;
            crate::mvcc::add_queue_wait(delay_start.elapsed());
        }
        let batch = std::mem::take(&mut st.buf);
        let batch_waiters = std::mem::take(&mut st.waiters);
        // Late joiners from here on belong to the next generation.
        st.buf_gen += 1;
        drop(st);

        crate::mvcc::perturb(23);
        let result = self
            .log
            .append_batch(&batch)
            .err()
            .map(|e| WalError::of(&e));
        if sc_obs::enabled() {
            let o = crate::obs::nosql();
            o.group_commit_batches.inc();
            o.group_commit_records.add(batch.len() as u64);
            o.group_commit_records_per_batch.record(batch.len() as u64);
            o.group_commit_wait_ns.record_duration(enter.elapsed());
        }

        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.completed_gen = my_gen;
        if batch_waiters > 1 {
            st.outcomes.insert(
                my_gen,
                Outcome {
                    result: result.clone(),
                    readers_left: batch_waiters - 1,
                },
            );
        }
        st.leader_active = false;
        drop(st);
        self.cond.notify_all();
        match result {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u8) -> LogRecord {
        LogRecord {
            table: "ks.t".into(),
            key: vec![i],
            body: vec![i; i as usize],
            timestamp: i as u64,
        }
    }

    #[test]
    fn append_and_replay() {
        let vfs = Vfs::memory();
        let log = CommitLog::open(vfs, "ks/commitlog");
        log.append(&rec(1)).unwrap();
        log.append_batch(&[rec(2), rec(3)]).unwrap();
        assert_eq!(log.replay().unwrap(), vec![rec(1), rec(2), rec(3)]);
        assert!(log.size() > 0);
    }

    #[test]
    fn replay_of_missing_log_is_empty() {
        let log = CommitLog::open(Vfs::memory(), "nope");
        assert!(log.replay().unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_dropped() {
        let vfs = Vfs::memory();
        let log = CommitLog::open(vfs.clone(), "log");
        log.append(&rec(1)).unwrap();
        log.append(&rec(2)).unwrap();
        // Simulate a torn write: truncate the file mid-frame.
        let data = vfs.read_all("log").unwrap();
        vfs.delete("log").unwrap();
        vfs.append("log", &data[..data.len() - 3]).unwrap();
        assert_eq!(log.replay().unwrap(), vec![rec(1)]);
    }

    #[test]
    fn corrupt_payload_stops_replay() {
        let vfs = Vfs::memory();
        let log = CommitLog::open(vfs.clone(), "log");
        log.append(&rec(1)).unwrap();
        let mut data = vfs.read_all("log").unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xff;
        vfs.delete("log").unwrap();
        vfs.append("log", &data).unwrap();
        assert!(log.replay().unwrap().is_empty());
    }

    #[test]
    fn repair_truncates_torn_tail_physically() {
        let vfs = Vfs::memory();
        let log = CommitLog::open(vfs.clone(), "log");
        log.append(&rec(1)).unwrap();
        let good = vfs.len("log").unwrap();
        log.append(&rec(2)).unwrap();
        vfs.truncate("log", vfs.len("log").unwrap() - 3).unwrap();
        assert_eq!(log.repair().unwrap(), vec![rec(1)]);
        assert_eq!(log.size(), good, "torn bytes removed from disk");
        // Regression: without the physical truncation, this append would
        // land beyond the tear and be unreachable on the next replay.
        log.append(&rec(3)).unwrap();
        assert_eq!(log.replay().unwrap(), vec![rec(1), rec(3)]);
    }

    #[test]
    fn truncate_resets() {
        let vfs = Vfs::memory();
        let log = CommitLog::open(vfs, "log");
        log.append(&rec(1)).unwrap();
        log.truncate().unwrap();
        assert_eq!(log.size(), 0);
        assert!(log.replay().unwrap().is_empty());
    }

    #[test]
    fn appends_rotate_into_segments_and_replay_in_order() {
        let vfs = Vfs::memory();
        let log = CommitLog::open(vfs.clone(), "log").with_segment_bytes(64);
        for i in 1..=12 {
            log.append(&rec(i)).unwrap();
        }
        assert!(log.segment_count() > 1, "64-byte segments must rotate");
        assert_eq!(log.replay().unwrap(), (1..=12).map(rec).collect::<Vec<_>>());
        let files = vfs.list("log").unwrap();
        assert_eq!(files.len(), log.segment_count());
        assert!(files.contains(&"log".to_string()), "base is segment one");
        // A reopened handle adopts the same segments.
        let reopened = CommitLog::open(vfs, "log");
        assert_eq!(
            reopened.replay().unwrap(),
            (1..=12).map(rec).collect::<Vec<_>>()
        );
    }

    #[test]
    fn checkpoint_deletes_only_fully_covered_closed_segments() {
        let vfs = Vfs::memory();
        // 1-byte threshold: every append rotates, one record per segment.
        let log = CommitLog::open(vfs.clone(), "log").with_segment_bytes(1);
        for i in 1..=5 {
            log.append(&rec(i)).unwrap();
        }
        assert_eq!(log.segment_count(), 5);
        assert_eq!(log.checkpoint(3).unwrap(), 3);
        assert_eq!(log.replay().unwrap(), vec![rec(4), rec(5)]);
        // The active segment survives even a floor above everything.
        assert_eq!(log.checkpoint(u64::MAX).unwrap(), 1);
        assert_eq!(log.replay().unwrap(), vec![rec(5)]);
        assert!(log.size() > 0);
        // And appends continue on it.
        log.append(&rec(6)).unwrap();
        assert_eq!(log.replay().unwrap(), vec![rec(5), rec(6)]);
    }

    #[test]
    fn repair_rebuilds_segment_state_after_a_torn_active_segment() {
        let vfs = Vfs::memory();
        {
            let log = CommitLog::open(vfs.clone(), "log").with_segment_bytes(1);
            for i in 1..=3 {
                log.append(&rec(i)).unwrap();
            }
        }
        // Tear the active (newest) segment mid-frame, as a power cut would.
        vfs.truncate("log.000003", vfs.len("log.000003").unwrap() - 2)
            .unwrap();
        let log = CommitLog::open(vfs.clone(), "log").with_segment_bytes(1);
        assert_eq!(log.repair().unwrap(), vec![rec(1), rec(2)]);
        // Post-repair appends stay reachable, and checkpoints work off the
        // per-segment sequences repair computed.
        log.append(&rec(4)).unwrap();
        assert_eq!(log.replay().unwrap(), vec![rec(1), rec(2), rec(4)]);
        assert_eq!(log.checkpoint(2).unwrap(), 2);
        assert_eq!(log.replay().unwrap(), vec![rec(4)]);
    }

    #[test]
    fn truncate_removes_every_segment() {
        let vfs = Vfs::memory();
        let log = CommitLog::open(vfs.clone(), "log").with_segment_bytes(1);
        for i in 1..=4 {
            log.append(&rec(i)).unwrap();
        }
        log.truncate().unwrap();
        assert_eq!(log.size(), 0);
        assert!(log.replay().unwrap().is_empty());
        assert!(vfs.list("log").unwrap().is_empty(), "all segments deleted");
        log.append(&rec(9)).unwrap();
        assert_eq!(log.replay().unwrap(), vec![rec(9)]);
    }

    #[test]
    fn group_commit_single_caller_appends_immediately() {
        let vfs = Vfs::memory();
        let gc = GroupCommitLog::new(CommitLog::open(vfs, "log"), Duration::ZERO);
        gc.append_group(vec![rec(1)]).unwrap();
        gc.append_group(vec![rec(2), rec(3)]).unwrap();
        assert_eq!(gc.plain().replay().unwrap(), vec![rec(1), rec(2), rec(3)]);
    }

    #[test]
    fn group_commit_coalesces_concurrent_sessions() {
        let vfs = Vfs::memory();
        let gc = std::sync::Arc::new(GroupCommitLog::new(
            CommitLog::open(vfs, "log"),
            Duration::from_millis(2),
        ));
        let threads: Vec<_> = (0..8u8)
            .map(|i| {
                let gc = std::sync::Arc::clone(&gc);
                std::thread::spawn(move || gc.append_group(vec![rec(i + 1)]).unwrap())
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut replayed = gc.plain().replay().unwrap();
        replayed.sort_by_key(|r| r.timestamp);
        assert_eq!(replayed, (1..=8).map(rec).collect::<Vec<_>>());
    }

    #[test]
    fn group_commit_failure_reaches_every_waiter() {
        // Crash on the first mutating operation: every session's append
        // fails, and the error stays an injected-crash error end to end.
        let (vfs, faults) = Vfs::with_faults(Vfs::memory(), 7);
        faults.crash_at(0);
        let gc = std::sync::Arc::new(GroupCommitLog::new(
            CommitLog::open(vfs, "log"),
            Duration::from_millis(2),
        ));
        let threads: Vec<_> = (0..4u8)
            .map(|i| {
                let gc = std::sync::Arc::clone(&gc);
                std::thread::spawn(move || gc.append_group(vec![rec(i + 1)]))
            })
            .collect();
        for t in threads {
            let err = t.join().unwrap().unwrap_err();
            assert!(
                matches!(err, WalError::Injected { .. }),
                "expected injected-crash error, got {err:?}"
            );
        }
    }

    #[test]
    fn batch_is_one_storage_write() {
        // The batch framing writes the same record bytes; total size of a
        // batch equals the sum of individual frames.
        let vfs1 = Vfs::memory();
        let single = CommitLog::open(vfs1, "a");
        single.append(&rec(1)).unwrap();
        single.append(&rec(2)).unwrap();
        let vfs2 = Vfs::memory();
        let batched = CommitLog::open(vfs2, "b");
        batched.append_batch(&[rec(1), rec(2)]).unwrap();
        assert_eq!(single.size(), batched.size());
    }
}
