//! The commit log: durability journal of the write path.
//!
//! Every mutation is framed and appended before it touches the memtable,
//! exactly as Cassandra does; Table 5's insertion time therefore pays real
//! serialization and append costs per statement (and batches amortize the
//! append, like Cassandra's `BEGIN BATCH`).
//!
//! Frame format: `[len: u32][crc: u32][payload]` where `crc` covers the
//! payload. Replay stops cleanly at a torn tail.

use crate::error::{NosqlError, Result};
use sc_encoding::{Crc32, Decoder, Encoder};
use sc_storage::Vfs;

/// A mutation record as stored in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Qualified table name the mutation applies to.
    pub table: String,
    /// Encoded partition key.
    pub key: Vec<u8>,
    /// Encoded row body, empty for a tombstone.
    pub body: Vec<u8>,
    /// Write timestamp.
    pub timestamp: u64,
}

/// Append handle for one engine's commit log.
#[derive(Debug)]
pub struct CommitLog {
    vfs: Vfs,
    file: String,
}

impl CommitLog {
    /// Opens (or creates) the log at `file`.
    pub fn open(vfs: Vfs, file: impl Into<String>) -> CommitLog {
        CommitLog {
            vfs,
            file: file.into(),
        }
    }

    fn frame(record: &LogRecord, out: &mut Encoder) {
        let mut payload = Encoder::new();
        payload
            .put_str(&record.table)
            .put_bytes(&record.key)
            .put_bytes(&record.body)
            .put_u64_fixed(record.timestamp);
        let payload = payload.into_bytes();
        out.put_u32_fixed(payload.len() as u32);
        out.put_u32_fixed(Crc32::of(&payload));
        out.put_raw(&payload);
    }

    /// Appends one mutation.
    pub fn append(&self, record: &LogRecord) -> Result<()> {
        let mut enc = Encoder::new();
        Self::frame(record, &mut enc);
        self.record_append(enc.bytes().len());
        self.vfs.append(&self.file, enc.bytes())?;
        Ok(())
    }

    /// Appends a group of mutations in one write (batch commit).
    pub fn append_batch(&self, records: &[LogRecord]) -> Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let mut enc = Encoder::new();
        for r in records {
            Self::frame(r, &mut enc);
        }
        self.record_append(enc.bytes().len());
        self.vfs.append(&self.file, enc.bytes())?;
        Ok(())
    }

    fn record_append(&self, framed_len: usize) {
        if sc_obs::enabled() {
            let o = crate::obs::nosql();
            o.commitlog_appends.inc();
            o.commitlog_append_bytes.add(framed_len as u64);
        }
    }

    /// Bytes currently in the log.
    pub fn size(&self) -> u64 {
        self.vfs.len(&self.file).unwrap_or(0)
    }

    /// Truncates the log (after a flush makes it redundant).
    pub fn truncate(&self) -> Result<()> {
        self.vfs.delete(&self.file)?;
        Ok(())
    }

    /// Replays all intact records; a torn or corrupt tail ends the replay
    /// without error (standard commit-log semantics).
    pub fn replay(&self) -> Result<Vec<LogRecord>> {
        Ok(self.replay_with_len()?.0)
    }

    /// [`CommitLog::replay`], also returning the byte length of the valid
    /// prefix (where the torn tail, if any, begins).
    pub fn replay_with_len(&self) -> Result<(Vec<LogRecord>, u64)> {
        let data = match self.vfs.read_all(&self.file) {
            Ok(d) => d,
            Err(sc_storage::StorageError::NotFound(_)) => return Ok((Vec::new(), 0)),
            Err(e) => return Err(e.into()),
        };
        let mut out = Vec::new();
        let mut dec = Decoder::new(&data);
        let mut good_len = 0u64;
        while dec.remaining() >= 8 {
            let len = dec.get_u32_fixed()? as usize;
            let crc = dec.get_u32_fixed()?;
            if dec.remaining() < len {
                break; // torn tail
            }
            let payload = dec.get_raw(len)?;
            if Crc32::of(payload) != crc {
                break; // corrupt tail
            }
            let mut p = Decoder::new(payload);
            let table = p.get_str().map_err(NosqlError::from)?.to_string();
            let key = p.get_bytes()?.to_vec();
            let body = p.get_bytes()?.to_vec();
            let timestamp = p.get_u64_fixed()?;
            out.push(LogRecord {
                table,
                key,
                body,
                timestamp,
            });
            good_len = (data.len() - dec.remaining()) as u64;
        }
        Ok((out, good_len))
    }

    /// Replays the log and physically truncates any torn tail off the file.
    ///
    /// Replay alone is not enough: if the tear stayed on disk, the next
    /// appended record would land *after* it and be unreachable on the next
    /// replay — an acknowledged write silently lost one crash later.
    pub fn repair(&self) -> Result<Vec<LogRecord>> {
        let (records, good_len) = self.replay_with_len()?;
        if self.size() > good_len {
            self.vfs.truncate(&self.file, good_len)?;
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u8) -> LogRecord {
        LogRecord {
            table: "ks.t".into(),
            key: vec![i],
            body: vec![i; i as usize],
            timestamp: i as u64,
        }
    }

    #[test]
    fn append_and_replay() {
        let vfs = Vfs::memory();
        let log = CommitLog::open(vfs, "ks/commitlog");
        log.append(&rec(1)).unwrap();
        log.append_batch(&[rec(2), rec(3)]).unwrap();
        assert_eq!(log.replay().unwrap(), vec![rec(1), rec(2), rec(3)]);
        assert!(log.size() > 0);
    }

    #[test]
    fn replay_of_missing_log_is_empty() {
        let log = CommitLog::open(Vfs::memory(), "nope");
        assert!(log.replay().unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_dropped() {
        let vfs = Vfs::memory();
        let log = CommitLog::open(vfs.clone(), "log");
        log.append(&rec(1)).unwrap();
        log.append(&rec(2)).unwrap();
        // Simulate a torn write: truncate the file mid-frame.
        let data = vfs.read_all("log").unwrap();
        vfs.delete("log").unwrap();
        vfs.append("log", &data[..data.len() - 3]).unwrap();
        assert_eq!(log.replay().unwrap(), vec![rec(1)]);
    }

    #[test]
    fn corrupt_payload_stops_replay() {
        let vfs = Vfs::memory();
        let log = CommitLog::open(vfs.clone(), "log");
        log.append(&rec(1)).unwrap();
        let mut data = vfs.read_all("log").unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xff;
        vfs.delete("log").unwrap();
        vfs.append("log", &data).unwrap();
        assert!(log.replay().unwrap().is_empty());
    }

    #[test]
    fn repair_truncates_torn_tail_physically() {
        let vfs = Vfs::memory();
        let log = CommitLog::open(vfs.clone(), "log");
        log.append(&rec(1)).unwrap();
        let good = vfs.len("log").unwrap();
        log.append(&rec(2)).unwrap();
        vfs.truncate("log", vfs.len("log").unwrap() - 3).unwrap();
        assert_eq!(log.repair().unwrap(), vec![rec(1)]);
        assert_eq!(log.size(), good, "torn bytes removed from disk");
        // Regression: without the physical truncation, this append would
        // land beyond the tear and be unreachable on the next replay.
        log.append(&rec(3)).unwrap();
        assert_eq!(log.replay().unwrap(), vec![rec(1), rec(3)]);
    }

    #[test]
    fn truncate_resets() {
        let vfs = Vfs::memory();
        let log = CommitLog::open(vfs, "log");
        log.append(&rec(1)).unwrap();
        log.truncate().unwrap();
        assert_eq!(log.size(), 0);
        assert!(log.replay().unwrap().is_empty());
    }

    #[test]
    fn batch_is_one_storage_write() {
        // The batch framing writes the same record bytes; total size of a
        // batch equals the sum of individual frames.
        let vfs1 = Vfs::memory();
        let single = CommitLog::open(vfs1, "a");
        single.append(&rec(1)).unwrap();
        single.append(&rec(2)).unwrap();
        let vfs2 = Vfs::memory();
        let batched = CommitLog::open(vfs2, "b");
        batched.append_batch(&[rec(1), rec(2)]).unwrap();
        assert_eq!(single.size(), batched.size());
    }
}
