//! Per-connection statement state over the shared engine core.

use crate::cql::ast::Statement;
use crate::cql::parse_statement;
use crate::engine::DbCore;
use crate::error::{NosqlError, Result};
use crate::mvcc;
use crate::result::QueryResult;
use crate::snapshot::Snapshot;
use std::sync::Arc;
use std::time::Duration;

/// A statement-execution session: the unit of per-connection state over a
/// [`crate::SharedDb`].
///
/// Sessions are cheap (an `Arc` clone plus a few fields) and independent:
/// each carries its own `USE` keyspace and its own commit-wait accounting,
/// while every statement executes against the same shared, internally
/// synchronized engine core — two sessions on different threads proceed
/// concurrently.
///
/// [`Session::last_commit_wait`] reports how long the previous statement
/// spent queueing in the group-commit WAL rather than executing; servers
/// subtract it from wall-clock latency so slow-query logs and latency
/// metrics attribute time to the statement, not to its neighbors' fsyncs.
#[derive(Debug)]
pub struct Session {
    core: Arc<DbCore>,
    keyspace: Option<String>,
    tag: Option<String>,
    last_commit_wait: Duration,
}

impl Session {
    pub(crate) fn new(core: Arc<DbCore>) -> Session {
        Session {
            core,
            keyspace: None,
            tag: None,
            last_commit_wait: Duration::ZERO,
        }
    }

    /// Labels this session for diagnostics (slow-query attribution). The
    /// tag is free-form — servers use the authenticated tenant/connection.
    pub fn set_tag(&mut self, tag: impl Into<String>) {
        self.tag = Some(tag.into());
    }

    /// The diagnostic label, if one was set.
    pub fn tag(&self) -> Option<&str> {
        self.tag.as_deref()
    }

    /// The session's current `USE` keyspace, if any.
    pub fn keyspace(&self) -> Option<&str> {
        self.keyspace.as_deref()
    }

    /// Parses and executes one CQL statement.
    pub fn execute_cql(&mut self, cql: &str) -> Result<QueryResult> {
        let stmt = parse_statement(cql)?;
        self.execute(&stmt)
    }

    /// Executes a pre-parsed statement. `USE` is handled here (it mutates
    /// session state); everything else resolves unqualified table
    /// references against the session keyspace and runs on the shared
    /// core.
    pub fn execute(&mut self, stmt: &Statement) -> Result<QueryResult> {
        mvcc::reset_queue_wait();
        let result = match stmt {
            Statement::Use { keyspace } => {
                if !self.core.has_keyspace(keyspace) {
                    return Err(NosqlError::UnknownKeyspace(keyspace.clone()));
                }
                self.keyspace = Some(keyspace.clone());
                Ok(QueryResult::empty())
            }
            // Rewriting clones the whole statement; skip it when every ref
            // is already qualified (the common case for server traffic,
            // where tenant confinement qualifies refs up front).
            _ => match &self.keyspace {
                Some(ks) if stmt.table_refs().iter().any(|t| !t.is_qualified()) => {
                    self.core.execute(&stmt.with_default_keyspace(ks))
                }
                _ => self.core.execute(stmt),
            },
        };
        self.last_commit_wait = mvcc::queue_wait();
        result
    }

    /// How long the most recent statement spent waiting on the
    /// group-commit queue (leader's linger + follower's wait for the
    /// leader's fsync). Subtract from wall-clock time to get execution
    /// time.
    pub fn last_commit_wait(&self) -> Duration {
        self.last_commit_wait
    }

    /// Pins a point-in-time, read-only view of the database (same as
    /// [`crate::SharedDb::snapshot`]).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::new(Arc::clone(&self.core))
    }
}
