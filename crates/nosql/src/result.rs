//! Typed query results.
//!
//! [`QueryResult`] used to be a bare `(columns, Vec<Vec<CqlValue>>)` pair,
//! which pushed positional `row[0].as_int()` matching into every caller.
//! Rows are now [`QueryRow`]s that know their column names: callers ask for
//! `row.get_int("measure")` and get a real [`NosqlError`] — naming the
//! column — when the name or type is wrong.
//!
//! Each row shares the column-name list via `Arc`, so the per-row overhead
//! over the old representation is one pointer.

use crate::error::{NosqlError, Result};
use crate::types::{CqlTypeError, CqlValue};
use std::collections::BTreeSet;
use std::fmt;
use std::ops::Index;
use std::sync::Arc;

/// The outcome of a `SELECT` (or any statement; mutations return
/// [`QueryResult::empty`]).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    columns: Arc<[String]>,
    rows: Vec<QueryRow>,
}

/// One result row, with named-column access.
#[derive(Debug, Clone)]
pub struct QueryRow {
    columns: Arc<[String]>,
    values: Vec<CqlValue>,
}

impl QueryResult {
    /// Builds a result from column names and positional rows (the engine's
    /// internal representation).
    pub fn new(columns: Vec<String>, rows: Vec<Vec<CqlValue>>) -> QueryResult {
        let columns: Arc<[String]> = columns.into();
        let rows = rows
            .into_iter()
            .map(|values| QueryRow {
                columns: Arc::clone(&columns),
                values,
            })
            .collect();
        QueryResult { columns, rows }
    }

    /// A result with no columns and no rows.
    pub fn empty() -> QueryResult {
        QueryResult {
            columns: Arc::from(Vec::new()),
            rows: Vec::new(),
        }
    }

    /// The selected column names, in order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The result rows.
    pub fn rows(&self) -> &[QueryRow] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The first row, if any.
    pub fn first(&self) -> Option<&QueryRow> {
        self.rows.first()
    }

    /// Iterates the rows.
    pub fn iter(&self) -> std::slice::Iter<'_, QueryRow> {
        self.rows.iter()
    }

    /// Consumes the result into its rows.
    pub fn into_rows(self) -> Vec<QueryRow> {
        self.rows
    }
}

impl<'a> IntoIterator for &'a QueryResult {
    type Item = &'a QueryRow;
    type IntoIter = std::slice::Iter<'a, QueryRow>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

impl IntoIterator for QueryResult {
    type Item = QueryRow;
    type IntoIter = std::vec::IntoIter<QueryRow>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.into_iter()
    }
}

impl QueryRow {
    /// The value in the named column; `UnknownColumn` if the name is not in
    /// the result.
    pub fn get(&self, column: &str) -> Result<&CqlValue> {
        let idx = self
            .columns
            .iter()
            .position(|c| c == column)
            .ok_or_else(|| NosqlError::UnknownColumn {
                table: "<result>".into(),
                column: column.into(),
            })?;
        Ok(&self.values[idx])
    }

    /// Typed extraction via the [`TryFrom<&CqlValue>`] impls; a mismatch
    /// becomes `TypeMismatch` naming `column`.
    pub fn try_get<'a, T>(&'a self, column: &str) -> Result<T>
    where
        T: TryFrom<&'a CqlValue, Error = CqlTypeError>,
    {
        let value = self.get(column)?;
        T::try_from(value).map_err(|e| NosqlError::TypeMismatch {
            column: column.into(),
            expected: e.expected.into(),
            found: e.found.into(),
        })
    }

    /// The named column as `int`.
    pub fn get_int(&self, column: &str) -> Result<i64> {
        self.try_get(column)
    }

    /// The named column as `int`, with `Null` mapping to `None`.
    pub fn get_opt_int(&self, column: &str) -> Result<Option<i64>> {
        self.try_get(column)
    }

    /// The named column as `text`.
    pub fn get_text(&self, column: &str) -> Result<&str> {
        self.try_get(column)
    }

    /// The named column as `boolean`.
    pub fn get_bool(&self, column: &str) -> Result<bool> {
        self.try_get(column)
    }

    /// The named column as `set<int>`.
    pub fn get_int_set(&self, column: &str) -> Result<&BTreeSet<i64>> {
        self.try_get(column)
    }

    /// The column names this row was selected with.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The positional values (escape hatch for generic code).
    pub fn values(&self) -> &[CqlValue] {
        &self.values
    }

    /// Consumes the row into its positional values.
    pub fn into_values(self) -> Vec<CqlValue> {
        self.values
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the row has no columns.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl Index<usize> for QueryRow {
    type Output = CqlValue;

    fn index(&self, idx: usize) -> &CqlValue {
        &self.values[idx]
    }
}

/// Rows compare by value only — two rows with the same values are equal even
/// if selected under different column lists.
impl PartialEq for QueryRow {
    fn eq(&self, other: &QueryRow) -> bool {
        self.values == other.values
    }
}

impl PartialEq<Vec<CqlValue>> for QueryRow {
    fn eq(&self, other: &Vec<CqlValue>) -> bool {
        self.values == *other
    }
}

impl PartialEq<QueryRow> for Vec<CqlValue> {
    fn eq(&self, other: &QueryRow) -> bool {
        *self == other.values
    }
}

impl PartialEq<[CqlValue]> for QueryRow {
    fn eq(&self, other: &[CqlValue]) -> bool {
        self.values.as_slice() == other
    }
}

impl fmt::Display for QueryRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, (c, v)) in self.columns.iter().zip(&self.values).enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{c}={v}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> QueryResult {
        QueryResult::new(
            vec!["id".into(), "key".into(), "ptr".into()],
            vec![vec![
                CqlValue::Int(7),
                CqlValue::Text("Fenian St".into()),
                CqlValue::Null,
            ]],
        )
    }

    #[test]
    fn named_access() {
        let r = result();
        let row = r.first().unwrap();
        assert_eq!(row.get_int("id").unwrap(), 7);
        assert_eq!(row.get_text("key").unwrap(), "Fenian St");
        assert_eq!(row.get_opt_int("ptr").unwrap(), None);
    }

    #[test]
    fn unknown_column_and_type_mismatch_name_the_column() {
        let r = result();
        let row = r.first().unwrap();
        match row.get_int("nope").unwrap_err() {
            NosqlError::UnknownColumn { column, .. } => assert_eq!(column, "nope"),
            e => panic!("unexpected error {e}"),
        }
        match row.get_text("id").unwrap_err() {
            NosqlError::TypeMismatch {
                column,
                expected,
                found,
            } => {
                assert_eq!(column, "id");
                assert_eq!(expected, "text");
                assert_eq!(found, "int");
            }
            e => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn positional_escape_hatch_and_vec_equality() {
        let r = result();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows()[0][0], CqlValue::Int(7));
        assert_eq!(
            r.rows(),
            vec![vec![
                CqlValue::Int(7),
                CqlValue::Text("Fenian St".into()),
                CqlValue::Null,
            ]]
        );
    }

    #[test]
    fn empty_result() {
        let r = QueryResult::empty();
        assert!(r.is_empty());
        assert!(r.columns().is_empty());
        assert!(r.first().is_none());
    }

    #[test]
    fn iteration() {
        let r = QueryResult::new(
            vec!["n".into()],
            vec![vec![CqlValue::Int(1)], vec![CqlValue::Int(2)]],
        );
        let sum: i64 = r.iter().map(|row| row.get_int("n").unwrap()).sum();
        assert_eq!(sum, 3);
        let owned: Vec<QueryRow> = r.into_rows();
        assert_eq!(owned.len(), 2);
    }
}
