//! Per-column-family runtime: memtable + SSTables, flush and compaction.

use crate::cache::BlockCache;
use crate::commitlog::{CommitLog, LogRecord};
use crate::error::Result;
use crate::manifest::{Manifest, ManifestEdit};
use crate::memtable::{Entry, Memtable};
use crate::row::Row;
use crate::schema::TableDef;
use crate::sstable::{write_sstable, SsTable, SstEntry};
use sc_encoding::{Decoder, Encoder};
use sc_storage::Vfs;

/// Flush/compaction tuning.
#[derive(Debug, Clone, Copy)]
pub struct TableOptions {
    /// Memtable bytes that trigger a flush.
    pub memtable_flush_bytes: usize,
    /// SSTable count that triggers a full compaction.
    pub compaction_threshold: usize,
}

impl Default for TableOptions {
    fn default() -> Self {
        Self {
            memtable_flush_bytes: 4 * 1024 * 1024,
            compaction_threshold: 8,
        }
    }
}

/// Runtime state of one column family.
#[derive(Debug)]
pub struct TableRuntime {
    def: TableDef,
    vfs: Vfs,
    manifest: Manifest,
    memtable: Memtable,
    sstables: Vec<SsTable>, // oldest first
    next_sst_id: u64,
    options: TableOptions,
    /// The engine-wide shared block cache every SSTable reads through.
    cache: BlockCache,
}

impl TableRuntime {
    /// Creates runtime state for a (new) table. `manifest` is the engine-wide
    /// SSTable manifest through which every flush and compaction publishes;
    /// `cache` is the engine-wide shared block cache.
    pub fn new(
        def: TableDef,
        vfs: Vfs,
        manifest: Manifest,
        options: TableOptions,
        cache: BlockCache,
    ) -> TableRuntime {
        TableRuntime {
            def,
            vfs,
            manifest,
            memtable: Memtable::new(),
            sstables: Vec::new(),
            next_sst_id: 0,
            options,
            cache,
        }
    }

    /// The table definition.
    pub fn def(&self) -> &TableDef {
        &self.def
    }

    /// Registers a new secondary index name on the definition.
    pub fn add_index(&mut self, column: &str) {
        self.def.indexed_columns.push(column.to_string());
    }

    fn sst_prefix(&self) -> String {
        format!("{}/{}/sst-", self.def.keyspace, self.def.name)
    }

    /// Applies a write: logs it, buffers it, maybe flushes.
    ///
    /// `log` is the engine-wide commit log (may be `None` during replay).
    pub fn put(
        &mut self,
        row: Option<Row>,
        key: Vec<u8>,
        timestamp: u64,
        log: Option<&CommitLog>,
    ) -> Result<()> {
        let mut body_enc = Encoder::new();
        if let Some(r) = &row {
            r.encode(&mut body_enc, timestamp);
        }
        let body = body_enc.into_bytes();
        if let Some(log) = log {
            log.append(&LogRecord {
                table: self.def.qualified_name(),
                key: key.clone(),
                body: body.clone(),
                timestamp,
            })?;
        }
        let size = key.len() + body.len();
        if sc_obs::enabled() {
            crate::obs::nosql().memtable_puts.inc();
        }
        self.memtable.put(key, Entry { row, timestamp }, size);
        if self.memtable.approximate_bytes() >= self.options.memtable_flush_bytes {
            self.flush()?;
        }
        Ok(())
    }

    /// Applies a replayed log record (no re-logging).
    pub fn apply_log_record(&mut self, record: LogRecord) -> Result<()> {
        let row = if record.body.is_empty() {
            None
        } else {
            let mut dec = Decoder::new(&record.body);
            let (row, _) = Row::decode(&mut dec)?;
            Some(row)
        };
        let size = record.key.len() + record.body.len();
        self.memtable.put(
            record.key,
            Entry {
                row,
                timestamp: record.timestamp,
            },
            size,
        );
        Ok(())
    }

    /// Point read through memtable then SSTables (newest first).
    pub fn get(&self, key: &[u8]) -> Result<Option<Row>> {
        let stats = sc_obs::enabled();
        if stats {
            crate::obs::nosql().point_queries.inc();
        }
        if let Some(entry) = self.memtable.get(key) {
            if stats {
                crate::obs::nosql().sstables_per_get.record(0);
                crate::obs::nosql().blocks_per_get.record(0);
            }
            return Ok(entry.row.clone());
        }
        let mut probed = 0u64;
        let mut blocks = 0u64;
        for sst in self.sstables.iter().rev() {
            probed += 1;
            let probe = sst.probe(key)?;
            blocks += probe.blocks_read;
            if let Some(e) = probe.entry {
                if stats {
                    crate::obs::nosql().sstables_per_get.record(probed);
                    crate::obs::nosql().blocks_per_get.record(blocks);
                }
                return Ok(match e.body {
                    Some(body) => {
                        let mut dec = Decoder::new(&body);
                        Some(Row::decode(&mut dec)?.0)
                    }
                    None => None,
                });
            }
        }
        if stats {
            crate::obs::nosql().sstables_per_get.record(probed);
            crate::obs::nosql().blocks_per_get.record(blocks);
        }
        Ok(None)
    }

    /// Full scan: newest version per key, tombstones elided, key order.
    pub fn scan(&self) -> Result<Vec<(Vec<u8>, Row)>> {
        // Collect newest-first sources: memtable, then sstables newest->oldest.
        let mut seen: std::collections::BTreeMap<Vec<u8>, Option<Row>> =
            std::collections::BTreeMap::new();
        // Oldest first so newer sources overwrite.
        for sst in &self.sstables {
            for e in sst.scan()? {
                let row = match e.body {
                    Some(body) => {
                        let mut dec = Decoder::new(&body);
                        Some(Row::decode(&mut dec)?.0)
                    }
                    None => None,
                };
                seen.insert(e.key, row);
            }
        }
        for (key, entry) in self.memtable.iter() {
            seen.insert(key.clone(), entry.row.clone());
        }
        Ok(seen
            .into_iter()
            .filter_map(|(k, v)| v.map(|row| (k, row)))
            .collect())
    }

    /// Bounded scan: newest version per key among keys starting with
    /// `prefix`, tombstones elided, key order.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Row)>> {
        let mut seen: std::collections::BTreeMap<Vec<u8>, Option<Row>> =
            std::collections::BTreeMap::new();
        for sst in &self.sstables {
            for e in sst.scan_prefix(prefix)? {
                let row = match e.body {
                    Some(body) => {
                        let mut dec = Decoder::new(&body);
                        Some(Row::decode(&mut dec)?.0)
                    }
                    None => None,
                };
                seen.insert(e.key, row);
            }
        }
        for (key, entry) in self.memtable.iter_prefix(prefix) {
            seen.insert(key.clone(), entry.row.clone());
        }
        Ok(seen
            .into_iter()
            .filter_map(|(k, v)| v.map(|row| (k, row)))
            .collect())
    }

    /// Flushes the memtable to a new SSTable.
    pub fn flush(&mut self) -> Result<()> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        let mut span = crate::obs::nosql().flush.start();
        let drained = self.memtable.drain();
        let mut entries = Vec::with_capacity(drained.len());
        for (key, entry) in drained {
            let body = entry.row.map(|row| {
                let mut enc = Encoder::new();
                row.encode(&mut enc, entry.timestamp);
                enc.into_bytes()
            });
            entries.push(SstEntry {
                key,
                body,
                timestamp: entry.timestamp,
            });
        }
        let file = format!("{}{:06}", self.sst_prefix(), self.next_sst_id);
        self.next_sst_id += 1;
        write_sstable(&self.vfs, &file, &entries)?;
        // Publish order matters for crash safety: data first, manifest
        // second. A crash in between leaves an orphan file that recovery
        // deletes, never a published name without its bytes.
        self.manifest
            .commit(&ManifestEdit::add(self.def.qualified_name(), &file))?;
        self.sstables.push(SsTable::open_with_cache(
            self.vfs.clone(),
            &file,
            self.cache.clone(),
        )?);
        span.add_bytes(self.sstables.last().map(SsTable::size).unwrap_or(0));
        drop(span);
        if self.sstables.len() >= self.options.compaction_threshold {
            self.compact_tiered()?;
        }
        Ok(())
    }

    /// Size-tiered compaction (Cassandra's default strategy): merge an
    /// age-contiguous run of at least `compaction_threshold` SSTables whose
    /// sizes are within 4x of each other. Unlike a full compaction this
    /// bounds write amplification to O(log n) rewrites per byte, which keeps
    /// big bulk loads linear.
    pub fn compact_tiered(&mut self) -> Result<()> {
        loop {
            let n = self.sstables.len();
            let threshold = self.options.compaction_threshold.max(2);
            let mut pick: Option<(usize, usize)> = None;
            'outer: for start in 0..n {
                let mut min = u64::MAX;
                let mut max = 0u64;
                for end in start..n {
                    let size = self.sstables[end].size().max(1);
                    min = min.min(size);
                    max = max.max(size);
                    if max > min.saturating_mul(4) {
                        break;
                    }
                    if end - start + 1 >= threshold {
                        pick = Some((start, end));
                        break 'outer;
                    }
                }
            }
            let Some((start, end)) = pick else {
                return Ok(());
            };
            self.merge_run(start, end)?;
        }
    }

    /// Merges the age-contiguous run `[start..=end]` of SSTables into one,
    /// preserving the run's position in the age order.
    fn merge_run(&mut self, start: usize, end: usize) -> Result<()> {
        let mut span = crate::obs::nosql().compaction.start();
        if sc_obs::enabled() {
            let bytes_in: u64 = self.sstables[start..=end].iter().map(SsTable::size).sum();
            crate::obs::nosql().compaction_bytes_in.add(bytes_in);
        }
        let mut merged: std::collections::BTreeMap<Vec<u8>, SstEntry> =
            std::collections::BTreeMap::new();
        for sst in &self.sstables[start..=end] {
            for e in sst.scan()? {
                merged.insert(e.key.clone(), e);
            }
        }
        // Tombstones can only be dropped when no older SSTable might hold a
        // shadowed live version.
        let drop_tombstones = start == 0;
        let entries: Vec<SstEntry> = merged
            .into_values()
            .filter(|e| !drop_tombstones || e.body.is_some())
            .collect();
        let file = format!("{}{:06}", self.sst_prefix(), self.next_sst_id);
        self.next_sst_id += 1;
        write_sstable(&self.vfs, &file, &entries)?;
        let new = SsTable::open_with_cache(self.vfs.clone(), &file, self.cache.clone())?;
        span.add_bytes(new.size());
        if sc_obs::enabled() {
            crate::obs::nosql().compaction_bytes_out.add(new.size());
        }
        // One append swaps the whole run atomically; the edit's splice
        // position records where the merged table sits in age order. Only
        // after the swap is durable are the old files deleted — a crash in
        // between leaves them as orphans for recovery to sweep.
        let qualified = self.def.qualified_name();
        self.manifest.commit(&ManifestEdit {
            adds: vec![(qualified.clone(), file.clone())],
            removes: self.sstables[start..=end]
                .iter()
                .map(|sst| (qualified.clone(), sst.file().to_string()))
                .collect(),
        })?;
        let removed: Vec<SsTable> = self
            .sstables
            .splice(start..=end, std::iter::once(new))
            .collect();
        for old in removed {
            self.cache.evict_file(old.file());
            self.vfs.delete(old.file())?;
        }
        Ok(())
    }

    /// Full compaction: merge every SSTable into one, newest version wins,
    /// tombstones dropped (full compaction may do so safely).
    pub fn compact(&mut self) -> Result<()> {
        if self.sstables.len() <= 1 {
            return Ok(());
        }
        self.merge_run(0, self.sstables.len() - 1)
    }

    /// Reattaches an existing SSTable file (recovery). Files must be
    /// attached oldest-first — i.e. in the manifest's age order, which is
    /// *not* always name order: a tiered merge's output carries the largest
    /// id but sits mid-sequence in age.
    pub fn attach_sstable(&mut self, file: &str) -> Result<()> {
        self.sstables.push(SsTable::open_with_cache(
            self.vfs.clone(),
            file,
            self.cache.clone(),
        )?);
        // Keep new flushes numbered after anything already on disk.
        if let Some(num) = file.rsplit('-').next().and_then(|s| s.parse::<u64>().ok()) {
            self.next_sst_id = self.next_sst_id.max(num + 1);
        }
        Ok(())
    }

    /// On-disk bytes of this table's SSTables (flush first for an accurate
    /// total — the engine's size API does).
    pub fn disk_size(&self) -> u64 {
        self.sstables.iter().map(SsTable::size).sum()
    }

    /// Rows buffered in the memtable (not yet on disk).
    pub fn memtable_len(&self) -> usize {
        self.memtable.len()
    }

    /// Number of SSTables backing the table.
    pub fn sstable_count(&self) -> usize {
        self.sstables.len()
    }

    /// The backing SSTable file names, oldest first.
    pub fn sstable_files(&self) -> Vec<String> {
        self.sstables
            .iter()
            .map(|sst| sst.file().to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::types::{CqlType, CqlValue};

    fn def() -> TableDef {
        TableDef::new(
            "ks",
            "t",
            vec![
                ColumnDef {
                    name: "id".into(),
                    ty: CqlType::Int,
                },
                ColumnDef {
                    name: "v".into(),
                    ty: CqlType::Text,
                },
            ],
            "id",
        )
        .unwrap()
    }

    fn row(id: i64, v: &str) -> (Vec<u8>, Row) {
        let r = Row::new(vec![CqlValue::Int(id), CqlValue::Text(v.into())]);
        (CqlValue::Int(id).encode_key(), r)
    }

    fn small_options() -> TableOptions {
        TableOptions {
            memtable_flush_bytes: 256,
            compaction_threshold: 3,
        }
    }

    fn runtime(vfs: Vfs, options: TableOptions) -> TableRuntime {
        TableRuntime::new(
            def(),
            vfs.clone(),
            Manifest::open(vfs),
            options,
            BlockCache::new(crate::cache::DEFAULT_BLOCK_CACHE_BYTES),
        )
    }

    #[test]
    fn put_get_across_flushes() {
        let mut t = runtime(Vfs::memory(), small_options());
        for i in 0..50 {
            let (k, r) = row(i, &format!("v{i}"));
            t.put(Some(r), k, i as u64, None).unwrap();
        }
        assert!(t.sstable_count() >= 1, "small threshold must have flushed");
        for i in 0..50 {
            let (k, r) = row(i, &format!("v{i}"));
            assert_eq!(t.get(&k).unwrap(), Some(r));
        }
        assert!(t.get(&CqlValue::Int(999).encode_key()).unwrap().is_none());
    }

    #[test]
    fn newest_version_wins_after_flush() {
        let mut t = runtime(Vfs::memory(), small_options());
        let (k, r1) = row(1, "old");
        t.put(Some(r1), k.clone(), 1, None).unwrap();
        t.flush().unwrap();
        let (_, r2) = row(1, "new");
        t.put(Some(r2.clone()), k.clone(), 2, None).unwrap();
        assert_eq!(t.get(&k).unwrap(), Some(r2.clone()));
        t.flush().unwrap();
        assert_eq!(t.get(&k).unwrap(), Some(r2));
    }

    #[test]
    fn tombstone_hides_older_versions() {
        let mut t = runtime(Vfs::memory(), small_options());
        let (k, r) = row(1, "x");
        t.put(Some(r), k.clone(), 1, None).unwrap();
        t.flush().unwrap();
        t.put(None, k.clone(), 2, None).unwrap();
        assert_eq!(t.get(&k).unwrap(), None);
        assert!(t.scan().unwrap().is_empty());
    }

    #[test]
    fn compaction_reclaims_overwrites_and_tombstones() {
        let mut t = runtime(Vfs::memory(), small_options());
        for round in 0..3 {
            for i in 0..10 {
                let (k, r) = row(i, &format!("round{round}"));
                t.put(Some(r), k, round * 100 + i as u64, None).unwrap();
            }
            t.flush().unwrap();
        }
        let (k_del, _) = row(0, "");
        t.put(None, k_del.clone(), 999, None).unwrap();
        t.flush().unwrap();
        t.compact().unwrap();
        assert_eq!(t.sstable_count(), 1);
        let rows = t.scan().unwrap();
        assert_eq!(rows.len(), 9, "id 0 deleted, 1..9 live");
        for (_, r) in rows {
            assert_eq!(r.values[1], CqlValue::Text("round2".into()));
        }
    }

    #[test]
    fn compaction_shrinks_disk() {
        let mut t = runtime(Vfs::memory(), small_options());
        // Write the same keys repeatedly across flushes.
        for round in 0..2 {
            for i in 0..20 {
                let (k, r) = row(i, "payload-payload-payload");
                t.put(Some(r), k, round * 100 + i as u64, None).unwrap();
            }
            t.flush().unwrap();
        }
        let before = t.disk_size();
        t.compact().unwrap();
        let after = t.disk_size();
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn tiered_compaction_bounds_sstable_count() {
        let mut t = runtime(Vfs::memory(), small_options());
        for i in 0..2000 {
            let (k, r) = row(i, &format!("value number {i}"));
            t.put(Some(r), k, i as u64, None).unwrap();
        }
        t.flush().unwrap();
        // With ~50-byte rows and a 256-byte flush threshold this produced
        // hundreds of flushes; tiering must keep the live set logarithmic.
        assert!(
            t.sstable_count() <= 16,
            "tiering failed: {} sstables",
            t.sstable_count()
        );
        // And the data is intact.
        for i in (0..2000).step_by(97) {
            let (k, r) = row(i, &format!("value number {i}"));
            assert_eq!(t.get(&k).unwrap(), Some(r));
        }
    }

    #[test]
    fn tiered_compaction_preserves_newest_version_and_tombstones() {
        let mut t = runtime(Vfs::memory(), small_options());
        // Interleave overwrites and deletes across many flush cycles.
        for round in 0..20 {
            for i in 0..10 {
                let (k, r) = row(i, &format!("round {round}"));
                t.put(Some(r), k, (round * 100 + i) as u64, None).unwrap();
            }
            let (k_del, _) = row(round % 10, "");
            t.put(None, k_del, (round * 100 + 50) as u64, None).unwrap();
            t.flush().unwrap();
        }
        // Key (19 % 10)=9 was deleted in the final round, after its write.
        let (k9, _) = row(9, "");
        assert_eq!(t.get(&k9).unwrap(), None);
        // Other keys show the last round's value.
        let (k0, r0) = row(0, "round 19");
        assert_eq!(t.get(&k0).unwrap(), Some(r0));
    }

    #[test]
    fn tiered_merge_keeps_tombstones_full_compact_drops_them() {
        // Regression for the tombstone-drop rule in `merge_run`: a tiered
        // merge of a run that does NOT start at the oldest SSTable must keep
        // tombstones physically (an older table may still hold a shadowed
        // live version), while a full compaction may drop them.
        let vfs = Vfs::memory();
        let options = TableOptions {
            memtable_flush_bytes: 64 * 1024, // manual flushes only
            compaction_threshold: 3,
        };
        let mut t = runtime(vfs.clone(), options);
        // Oldest SSTable: key 1 live, plus bulk so it is >4x larger than
        // the later tables (keeps it out of their size tier).
        for i in 1..=30 {
            let (k, r) = row(i, "a long enough payload to fatten the oldest table");
            t.put(Some(r), k, i as u64, None).unwrap();
        }
        t.flush().unwrap();
        // Three small young SSTables; the first deletes key 1.
        let (k1, _) = row(1, "");
        t.put(None, k1.clone(), 100, None).unwrap();
        t.flush().unwrap();
        let (k41, r41) = row(41, "x");
        t.put(Some(r41), k41, 101, None).unwrap();
        t.flush().unwrap();
        let (k42, r42) = row(42, "y");
        t.put(Some(r42), k42, 102, None).unwrap();
        t.flush().unwrap();
        // The third young flush crossed the threshold, so flush() ran the
        // tiered compaction itself: the three young tables merged while the
        // oversized oldest stayed out of the run.
        assert_eq!(t.sstable_count(), 2);
        // The delete must still shadow the old live version...
        assert_eq!(t.get(&k1).unwrap(), None);
        // ...because the merged young table physically kept the tombstone.
        let files = {
            let mut f = vfs.list("ks/t/sst-").unwrap();
            f.sort();
            f
        };
        let young =
            crate::sstable::SsTable::open(vfs.clone(), files.last().unwrap().clone()).unwrap();
        let tombstone = young.get(&k1).unwrap().expect("tombstone entry present");
        assert_eq!(tombstone.body, None);
        // Full compaction covers the whole history, so the tombstone (and
        // the key) disappear from disk while the delete stays effective.
        t.compact().unwrap();
        assert_eq!(t.sstable_count(), 1);
        assert_eq!(t.get(&k1).unwrap(), None);
        let files = vfs.list("ks/t/sst-").unwrap();
        assert_eq!(files.len(), 1);
        let merged = crate::sstable::SsTable::open(vfs, files[0].clone()).unwrap();
        assert!(merged.get(&k1).unwrap().is_none(), "tombstone not dropped");
        assert!(merged.scan().unwrap().iter().all(|e| e.body.is_some()));
    }

    #[test]
    fn scan_merges_memtable_and_sstables_in_key_order() {
        let mut t = runtime(Vfs::memory(), small_options());
        let (k2, r2) = row(2, "b");
        t.put(Some(r2), k2, 1, None).unwrap();
        t.flush().unwrap();
        let (k1, r1) = row(1, "a");
        t.put(Some(r1), k1, 2, None).unwrap();
        let rows = t.scan().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1.values[0], CqlValue::Int(1));
        assert_eq!(rows[1].1.values[0], CqlValue::Int(2));
    }
}
