//! Per-column-family runtime: sharded memtable + SSTables, flush and
//! compaction, all behind `&self`.
//!
//! `TableCore` is the concurrent successor of the old `TableRuntime`.
//! Writers insert into the FNV-sharded memtable (per-shard mutexes);
//! readers run lock-free against the memtable shards and take only a
//! read guard on the SSTable list, which they hold across every probe so
//! a concurrent compaction can never delete a file out from under them.
//! Flush and compaction serialize on a per-table maintenance mutex and
//! never block reads except for the instant they swap the SSTable list.
//!
//! A flush is two-phase: drained entries are published as a **frozen
//! run** (readable, immutable) while the SSTable is written, then the
//! SSTable is attached and the frozen run retired. Readers therefore see
//! every committed write at all times; a brief overlap where a write is
//! visible both frozen and on disk is harmless because point reads
//! resolve by max sequence.

use crate::cache::BlockCache;
use crate::error::Result;
use crate::manifest::{Manifest, ManifestEdit};
use crate::memtable::ShardedMemtable;
use crate::mvcc::{SeqTracker, SnapshotRegistry};
use crate::row::Row;
use crate::schema::TableDef;
use crate::sstable::{write_sstable, SsTable, SstEntry};
use sc_encoding::{Decoder, Encoder};
use sc_storage::Vfs;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Flush/compaction tuning.
#[derive(Debug, Clone, Copy)]
pub struct TableOptions {
    /// Memtable bytes that trigger a flush.
    pub memtable_flush_bytes: usize,
    /// SSTable count that triggers a full compaction.
    pub compaction_threshold: usize,
}

impl Default for TableOptions {
    fn default() -> Self {
        Self {
            memtable_flush_bytes: 4 * 1024 * 1024,
            compaction_threshold: 8,
        }
    }
}

/// Entries drained from the memtable, readable while their SSTable is
/// being written.
#[derive(Debug)]
struct FrozenRun {
    entries: BTreeMap<Vec<u8>, (Option<Row>, u64)>,
}

/// Runtime state of one column family. All methods take `&self`; the type
/// is `Send + Sync` and shared via `Arc` between sessions.
#[derive(Debug)]
pub(crate) struct TableCore {
    def: RwLock<Arc<TableDef>>,
    vfs: Vfs,
    manifest: Manifest,
    mem: ShardedMemtable,
    /// At most one frozen run exists at a time (flushes serialize on
    /// `maint`); `None` outside a flush's write window.
    flushing: RwLock<Option<Arc<FrozenRun>>>,
    /// Open SSTables, oldest first.
    ssts: RwLock<Vec<Arc<SsTable>>>,
    next_sst_id: AtomicU64,
    /// Serializes flush and compaction for this table.
    maint: Mutex<()>,
    /// Boundary of the last successful flush: every WAL record of this
    /// table at or below it is covered by SSTables. Feeds the engine's
    /// commit-log checkpoint floor (see [`TableCore::wal_floor`]).
    wal_floor: AtomicU64,
    /// Serializes read-modify-write statements (UPDATE, and any write to an
    /// indexed table): the read half must observe every prior RMW's write.
    rmw: Mutex<()>,
    /// Set while a background compaction job for this table sits in the
    /// pool's queue; deduplicates scheduling (at most one queued job per
    /// table). Cleared by the worker *before* it runs, so a flush landing
    /// mid-compaction can re-queue.
    compact_queued: AtomicBool,
    /// Set when the engine drops the table (TRUNCATE, close): background
    /// maintenance landing afterwards becomes a no-op instead of writing
    /// files for a dead table.
    retired: AtomicBool,
    options: TableOptions,
    /// The engine-wide shared block cache every SSTable reads through.
    cache: BlockCache,
}

fn decode_body(body: &[u8]) -> Result<Row> {
    let mut dec = Decoder::new(body);
    Ok(Row::decode(&mut dec)?.0)
}

impl TableCore {
    /// Creates runtime state for a (new) table. `manifest` is the
    /// engine-wide SSTable manifest through which every flush and
    /// compaction publishes; `cache` is the engine-wide shared block cache.
    pub fn new(
        def: TableDef,
        vfs: Vfs,
        manifest: Manifest,
        options: TableOptions,
        cache: BlockCache,
    ) -> TableCore {
        TableCore {
            def: RwLock::new(Arc::new(def)),
            vfs,
            manifest,
            mem: ShardedMemtable::new(),
            flushing: RwLock::new(None),
            ssts: RwLock::new(Vec::new()),
            next_sst_id: AtomicU64::new(0),
            maint: Mutex::new(()),
            wal_floor: AtomicU64::new(0),
            rmw: Mutex::new(()),
            compact_queued: AtomicBool::new(false),
            retired: AtomicBool::new(false),
            options,
            cache,
        }
    }

    /// The table definition (cheap `Arc` clone).
    pub fn def(&self) -> Arc<TableDef> {
        Arc::clone(&self.def.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Takes this table's read-modify-write lock. Statements that read the
    /// current row before writing (UPDATE, index maintenance) hold it across
    /// the read *and* the commit so concurrent RMWs serialize.
    pub fn rmw_lock(&self) -> std::sync::MutexGuard<'_, ()> {
        self.rmw.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a new secondary index name on the definition.
    pub fn add_index(&self, column: &str) {
        let mut def = self.def.write().unwrap_or_else(|e| e.into_inner());
        let mut updated = (**def).clone();
        updated.indexed_columns.push(column.to_string());
        *def = Arc::new(updated);
    }

    fn sst_prefix(&self) -> String {
        let def = self.def();
        format!("{}/{}/sst-", def.keyspace, def.name)
    }

    /// Applies a write to the memtable. The caller has already made the
    /// mutation durable (group-commit WAL) or is replaying the log.
    /// `gc_floor` gates version-chain pruning (see
    /// [`SnapshotRegistry::gc_floor`]).
    pub fn apply(&self, key: Vec<u8>, row: Option<Row>, seq: u64, cost: usize, gc_floor: u64) {
        if sc_obs::enabled() {
            crate::obs::nosql().memtable_puts.inc();
        }
        crate::mvcc::perturb(31);
        self.mem.put(key, row, seq, cost, gc_floor);
    }

    /// Point read at MVCC bound `bound`: the newest version with
    /// `seq <= bound` wins, wherever it lives.
    pub fn get(&self, key: &[u8], bound: u64) -> Result<Option<Row>> {
        let stats = sc_obs::enabled();
        if stats {
            crate::obs::nosql().point_queries.inc();
        }
        crate::mvcc::perturb(32);
        let mut best: Option<(Option<Row>, u64)> = None;
        if let Some(hit) = self.mem.get(key, bound) {
            if hit.definitive {
                // Chain complete above the hit: nothing newer can exist in
                // a frozen run or SSTable. Warm reads stay disk-free.
                if stats {
                    crate::obs::nosql().sstables_per_get.record(0);
                    crate::obs::nosql().blocks_per_get.record(0);
                }
                sc_obs::trace::add(sc_obs::trace::Attr::MemtableHits, 1);
                return Ok(hit.row);
            }
            best = Some((hit.row, hit.seq));
        }
        if let Some(frozen) = self
            .flushing
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
        {
            if let Some((row, seq)) = frozen.entries.get(key) {
                if *seq <= bound && best.as_ref().is_none_or(|(_, b)| seq > b) {
                    best = Some((row.clone(), *seq));
                }
            }
        }
        // Hold the read guard across every probe so compaction cannot
        // delete a file mid-lookup.
        let ssts = self.ssts.read().unwrap_or_else(|e| e.into_inner());
        let mut probed = 0u64;
        let mut blocks = 0u64;
        // One stage for the whole disk-probe loop: its duration is the
        // statement's block-read time in the request trace.
        let _read_stage = if ssts.is_empty() {
            None
        } else {
            Some(sc_obs::trace::stage("nosql.block_read"))
        };
        for sst in ssts.iter().rev() {
            probed += 1;
            let probe = sst.probe(key)?;
            blocks += probe.blocks_read;
            if let Some(e) = probe.entry {
                if e.timestamp > bound {
                    // Not yet visible at this bound; per-key sequences are
                    // monotone across age order, so an older SSTable may
                    // still hold the visible version.
                    continue;
                }
                if best.as_ref().is_none_or(|(_, b)| e.timestamp > *b) {
                    let row = match &e.body {
                        Some(body) => Some(decode_body(body)?),
                        None => None,
                    };
                    best = Some((row, e.timestamp));
                }
                // First visible on-disk hit is the newest on disk.
                break;
            }
        }
        if stats {
            crate::obs::nosql().sstables_per_get.record(probed);
            crate::obs::nosql().blocks_per_get.record(blocks);
        }
        if probed > 0 {
            sc_obs::trace::add(sc_obs::trace::Attr::SstableProbes, probed);
            sc_obs::trace::add(sc_obs::trace::Attr::BlocksRead, blocks);
        }
        Ok(best.and_then(|(row, _)| row))
    }

    /// Full scan at `bound`: newest visible version per key, tombstones
    /// elided, key order.
    pub fn scan(&self, bound: u64) -> Result<Vec<(Vec<u8>, Row)>> {
        self.scan_merge(bound, None, None)
    }

    /// Full scan decoding only the columns in `proj` from v3 SSTables
    /// (`None` = all). Pruned columns come back as `Null`; rows served from
    /// the memtable or frozen run are always complete, so callers must only
    /// look at projected positions.
    pub fn scan_projected(
        &self,
        bound: u64,
        proj: Option<&[usize]>,
    ) -> Result<Vec<(Vec<u8>, Row)>> {
        self.scan_merge(bound, None, proj)
    }

    /// Bounded scan at `bound`: like [`TableCore::scan`] but restricted to
    /// keys starting with `prefix`.
    pub fn scan_prefix(&self, prefix: &[u8], bound: u64) -> Result<Vec<(Vec<u8>, Row)>> {
        self.scan_merge(bound, Some(prefix), None)
    }

    fn scan_merge(
        &self,
        bound: u64,
        prefix: Option<&[u8]>,
        proj: Option<&[usize]>,
    ) -> Result<Vec<(Vec<u8>, Row)>> {
        // Layers ordered oldest → newest: SSTables (age order), frozen
        // run, memtable. Within the on-disk layers, later always means a
        // newer per-key sequence, so plain overwrite is correct; the
        // memtable layer can hold *older* snapshot-retained versions, so
        // it must compare sequences.
        let mut seen: BTreeMap<Vec<u8>, (Option<Row>, u64)> = BTreeMap::new();
        {
            let ssts = self.ssts.read().unwrap_or_else(|e| e.into_inner());
            for sst in ssts.iter() {
                match prefix {
                    Some(p) => {
                        for e in sst.scan_prefix(p)? {
                            if e.timestamp > bound {
                                continue;
                            }
                            let row = match &e.body {
                                Some(body) => Some(decode_body(body)?),
                                None => None,
                            };
                            seen.insert(e.key, (row, e.timestamp));
                        }
                    }
                    None => {
                        // Row-form scan: v3 tables decode only the
                        // projected column runs.
                        for (key, row, seq) in sst.scan_rows(proj)? {
                            if seq > bound {
                                continue;
                            }
                            seen.insert(key, (row, seq));
                        }
                    }
                }
            }
        }
        if let Some(frozen) = self
            .flushing
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
        {
            for (key, (row, seq)) in &frozen.entries {
                if *seq > bound || prefix.is_some_and(|p| !key.starts_with(p)) {
                    continue;
                }
                seen.insert(key.clone(), (row.clone(), *seq));
            }
        }
        let mem_entries = match prefix {
            Some(p) => self.mem.visible_prefix(p, bound),
            None => self.mem.visible_entries(bound),
        };
        for (key, row, seq) in mem_entries {
            match seen.get(&key) {
                Some((_, existing)) if *existing >= seq => {}
                _ => {
                    seen.insert(key, (row, seq));
                }
            }
        }
        Ok(seen
            .into_iter()
            .filter_map(|(k, (row, _))| row.map(|r| (k, r)))
            .collect())
    }

    /// Flushes committed memtable versions to a new SSTable. Blocks on the
    /// maintenance mutex (explicit flush).
    pub fn flush(&self, tracker: &SeqTracker, registry: &SnapshotRegistry) -> Result<()> {
        let guard = self.maint.lock().unwrap_or_else(|e| e.into_inner());
        self.flush_locked(&guard, tracker, registry)
    }

    /// Threshold-triggered flush: skips silently when another flush or
    /// compaction is already running (that one will cover the data, or the
    /// next put re-triggers). Returns whether a flush ran, so the engine
    /// knows a WAL checkpoint may now pay off.
    pub fn maybe_flush(&self, tracker: &SeqTracker, registry: &SnapshotRegistry) -> Result<bool> {
        if self.mem.approx_bytes() < self.options.memtable_flush_bytes {
            return Ok(false);
        }
        let Ok(guard) = self.maint.try_lock() else {
            return Ok(false);
        };
        if self.mem.approx_bytes() < self.options.memtable_flush_bytes {
            return Ok(false);
        }
        self.flush_locked(&guard, tracker, registry)?;
        Ok(true)
    }

    /// The sequence at or below which every commit-log record of this
    /// table is redundant. With buffered writes that is the last flush
    /// boundary; an idle table (no memtable versions, no flush in flight)
    /// reports the visible watermark instead so it never pins the
    /// engine-wide checkpoint floor at its last — possibly ancient —
    /// flush.
    ///
    /// Ordering matters for the idle fast path: the watermark is read
    /// *before* the emptiness checks. Any record with a sequence at or
    /// below that watermark completed earlier, and the commit path applies
    /// to the memtable before completing — so at check time the version is
    /// either still buffered (non-empty, take the flushed floor) or was
    /// drained by a flush whose boundary the floor already covers.
    /// Sequences still outstanding at the read are above the watermark and
    /// stay retained either way.
    pub fn wal_floor(&self, tracker: &SeqTracker) -> u64 {
        let flushed = self.wal_floor.load(Ordering::Acquire);
        let visible = tracker.visible();
        let idle = self.mem.approx_bytes() == 0
            && self
                .flushing
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .is_none();
        if idle {
            flushed.max(visible)
        } else {
            flushed
        }
    }

    fn flush_locked(
        &self,
        _maint: &std::sync::MutexGuard<'_, ()>,
        tracker: &SeqTracker,
        registry: &SnapshotRegistry,
    ) -> Result<()> {
        let boundary = tracker.visible();
        let gc_floor = registry.gc_floor(tracker);
        crate::mvcc::perturb(33);
        let staged = self.mem.peek_up_to(boundary);
        if staged.is_empty() {
            // Nothing at or below the boundary needs disk: every such
            // record is already flushed or shadowed, so the WAL prefix is
            // redundant and the floor may advance. Still sweep shadowed
            // versions so retained garbage cannot pin the byte counter
            // above the flush threshold forever.
            self.mem.gc(gc_floor);
            self.wal_floor.fetch_max(boundary, Ordering::AcqRel);
            return Ok(());
        }
        let mut span = crate::obs::nosql().flush.start();
        // Publish the frozen run BEFORE draining the shards (and before
        // the slow SSTable write): a reader must find every acked version
        // in at least one layer at every instant. See
        // [`ShardedMemtable::peek_up_to`] for the read-skew window the
        // old drain-then-publish order left open.
        let frozen = Arc::new(FrozenRun { entries: staged });
        *self.flushing.write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&frozen));
        crate::mvcc::perturb(36);
        let drained = self.mem.drain_up_to(boundary, gc_floor);
        let undo = |this: &TableCore| {
            // Restore exactly what the drain removed — the frozen run may
            // hold entries the drain intentionally left in their shards.
            this.mem.reinsert(drained.clone());
            *this.flushing.write().unwrap_or_else(|e| e.into_inner()) = None;
        };

        let mut entries = Vec::with_capacity(frozen.entries.len());
        for (key, (row, seq)) in &frozen.entries {
            let body = row.as_ref().map(|row| {
                let mut enc = Encoder::new();
                row.encode(&mut enc, *seq);
                enc.into_bytes()
            });
            entries.push(SstEntry {
                key: key.clone(),
                body,
                timestamp: *seq,
            });
        }
        let file = format!(
            "{}{:06}",
            self.sst_prefix(),
            self.next_sst_id.fetch_add(1, Ordering::Relaxed)
        );
        if let Err(e) = write_sstable(&self.vfs, &file, &entries) {
            undo(self);
            return Err(e);
        }
        // Publish order matters for crash safety: data first, manifest
        // second. A crash in between leaves an orphan file that recovery
        // deletes, never a published name without its bytes.
        let qualified = self.def().qualified_name();
        if let Err(e) = self.manifest.commit(&ManifestEdit::add(&qualified, &file)) {
            undo(self);
            let _ = self.vfs.delete(&file);
            return Err(e);
        }
        let sst = match SsTable::open_with_cache(self.vfs.clone(), &file, self.cache.clone()) {
            Ok(sst) => Arc::new(sst),
            Err(e) => {
                // Published but unreadable — surface the error; recovery
                // would face the same file.
                undo(self);
                return Err(e);
            }
        };
        span.add_bytes(sst.size());
        {
            // Attach before retiring the frozen run: readers must always
            // find the data in at least one layer.
            let mut ssts = self.ssts.write().unwrap_or_else(|e| e.into_inner());
            ssts.push(sst);
        }
        crate::mvcc::perturb(34);
        *self.flushing.write().unwrap_or_else(|e| e.into_inner()) = None;
        // Only now — SSTable durable and attached — are the WAL records at
        // or below the boundary redundant.
        self.wal_floor.fetch_max(boundary, Ordering::AcqRel);
        // Deliberately NO compaction here: running a multi-SSTable merge on
        // the committing session's thread stalled every put behind it. The
        // engine checks [`TableCore::needs_compaction`] after the flush and
        // either hands the table to the background pool or (with
        // `compaction_threads = 0`) compacts inline.
        Ok(())
    }

    /// Whether the SSTable count has reached the compaction threshold.
    pub fn needs_compaction(&self) -> bool {
        self.sstable_count() >= self.options.compaction_threshold
    }

    /// Claims this table's single background-queue slot. Returns `false`
    /// when a job is already queued (the scheduled run will see the new
    /// SSTable too).
    pub fn try_queue_compaction(&self) -> bool {
        !self.compact_queued.swap(true, Ordering::AcqRel)
    }

    /// Releases the queue slot (worker, just before running the job, so a
    /// flush landing mid-merge can re-queue).
    pub fn clear_compaction_queued(&self) {
        self.compact_queued.store(false, Ordering::Release);
    }

    /// Size-tiered compaction behind the maintenance lock — the background
    /// pool's entry point, also used inline when the pool is disabled. A
    /// no-op on a retired table.
    pub fn compact_tiered(&self, registry: &SnapshotRegistry) -> Result<()> {
        let _maint = self.maint.lock().unwrap_or_else(|e| e.into_inner());
        if self.retired.load(Ordering::Acquire) {
            return Ok(());
        }
        self.compact_tiered_locked(registry)
    }

    /// Marks the table dead (TRUNCATE, close) and waits out any in-flight
    /// maintenance. Afterwards a queued background job finds the flag and
    /// returns without touching storage.
    pub fn retire(&self) {
        self.retired.store(true, Ordering::Release);
        drop(self.maint.lock().unwrap_or_else(|e| e.into_inner()));
    }

    /// Size-tiered compaction (Cassandra's default strategy): merge an
    /// age-contiguous run of at least `compaction_threshold` SSTables whose
    /// sizes are within 4x of each other. Bounds write amplification to
    /// O(log n) rewrites per byte. Caller holds the maintenance lock.
    fn compact_tiered_locked(&self, registry: &SnapshotRegistry) -> Result<()> {
        loop {
            let pick = {
                let ssts = self.ssts.read().unwrap_or_else(|e| e.into_inner());
                let n = ssts.len();
                let threshold = self.options.compaction_threshold.max(2);
                let mut pick: Option<(usize, usize)> = None;
                'outer: for start in 0..n {
                    let mut min = u64::MAX;
                    let mut max = 0u64;
                    for (end, sst) in ssts.iter().enumerate().skip(start) {
                        let size = sst.size().max(1);
                        min = min.min(size);
                        max = max.max(size);
                        if max > min.saturating_mul(4) {
                            break;
                        }
                        if end - start + 1 >= threshold {
                            pick = Some((start, end));
                            break 'outer;
                        }
                    }
                }
                pick
            };
            let Some((start, end)) = pick else {
                return Ok(());
            };
            if !self.merge_run(start, end, registry)? {
                // Deferred for a pinned snapshot; retry on a later flush.
                return Ok(());
            }
        }
    }

    /// Merges the age-contiguous run `[start..=end]` of SSTables into one,
    /// preserving the run's position in the age order. Returns `false`
    /// (without merging) when a pinned snapshot still reads below the
    /// run's newest sequence: merging keeps only the newest version per
    /// key, which would destroy the older versions that snapshot needs.
    /// Pins taken *after* this check are safe — a new pin's bound is the
    /// current visible watermark, which no flushed sequence exceeds.
    fn merge_run(&self, start: usize, end: usize, registry: &SnapshotRegistry) -> Result<bool> {
        let ssts = self.ssts.read().unwrap_or_else(|e| e.into_inner());
        let run: Vec<Arc<SsTable>> = ssts[start..=end].iter().map(Arc::clone).collect();
        drop(ssts);

        let mut span = crate::obs::nosql().compaction.start();
        if sc_obs::enabled() {
            let bytes_in: u64 = run.iter().map(|s| s.size()).sum();
            crate::obs::nosql().compaction_bytes_in.add(bytes_in);
        }
        let mut merged: BTreeMap<Vec<u8>, SstEntry> = BTreeMap::new();
        let mut max_ts = 0u64;
        for sst in &run {
            for e in sst.scan()? {
                max_ts = max_ts.max(e.timestamp);
                merged.insert(e.key.clone(), e);
            }
        }
        if registry.min_pinned() < max_ts {
            return Ok(false);
        }
        // Tombstones can only be dropped when no older SSTable might hold a
        // shadowed live version.
        let drop_tombstones = start == 0;
        if drop_tombstones {
            // A snapshot-retained version a past flush left behind in the
            // memtable (shadowed by a now-flushed newer sequence) is pruned
            // lazily; if its shadowing record here is a tombstone we are
            // about to drop, the stale version would become the newest for
            // its key and resurrect a deleted row. Purge those chains
            // eagerly before committing to the drop. `max_ts` is a valid
            // GC floor: `min_pinned() >= max_ts` was just checked, and the
            // visible watermark covers every flushed sequence.
            self.mem.gc(max_ts);
        }
        let entries: Vec<SstEntry> = merged
            .into_values()
            .filter(|e| !drop_tombstones || e.body.is_some())
            .collect();
        let file = format!(
            "{}{:06}",
            self.sst_prefix(),
            self.next_sst_id.fetch_add(1, Ordering::Relaxed)
        );
        write_sstable(&self.vfs, &file, &entries)?;
        let new = Arc::new(SsTable::open_with_cache(
            self.vfs.clone(),
            &file,
            self.cache.clone(),
        )?);
        span.add_bytes(new.size());
        if sc_obs::enabled() {
            crate::obs::nosql().compaction_bytes_out.add(new.size());
        }
        // One append swaps the whole run atomically; the edit's splice
        // position records where the merged table sits in age order. Only
        // after the swap is durable are the old files deleted — a crash in
        // between leaves them as orphans for recovery to sweep.
        let qualified = self.def().qualified_name();
        self.manifest.commit(&ManifestEdit {
            adds: vec![(qualified.clone(), file.clone())],
            removes: run
                .iter()
                .map(|sst| (qualified.clone(), sst.file().to_string()))
                .collect(),
        })?;
        let removed: Vec<Arc<SsTable>> = {
            let mut ssts = self.ssts.write().unwrap_or_else(|e| e.into_inner());
            ssts.splice(start..=end, std::iter::once(new)).collect()
        };
        // No reader can be probing these now: point reads and scans hold
        // the list's read guard across all their probes, and the write
        // guard above waited those out.
        for old in removed {
            self.cache.evict_file(old.file());
            self.vfs.delete(old.file())?;
        }
        Ok(true)
    }

    /// Full compaction: merge every SSTable into one, newest version wins,
    /// tombstones dropped (full compaction may do so safely).
    pub fn compact(&self, registry: &SnapshotRegistry) -> Result<()> {
        let _maint = self.maint.lock().unwrap_or_else(|e| e.into_inner());
        let n = {
            let ssts = self.ssts.read().unwrap_or_else(|e| e.into_inner());
            ssts.len()
        };
        if n <= 1 {
            return Ok(());
        }
        self.merge_run(0, n - 1, registry)?;
        Ok(())
    }

    /// Reattaches an existing SSTable file (recovery). Files must be
    /// attached oldest-first — i.e. in the manifest's age order, which is
    /// *not* always name order: a tiered merge's output carries the largest
    /// id but sits mid-sequence in age.
    pub fn attach_sstable(&self, file: &str) -> Result<()> {
        let sst = Arc::new(SsTable::open_with_cache(
            self.vfs.clone(),
            file,
            self.cache.clone(),
        )?);
        let mut ssts = self.ssts.write().unwrap_or_else(|e| e.into_inner());
        ssts.push(sst);
        // Keep new flushes numbered after anything already on disk.
        self.reserve_sst_id(file);
        Ok(())
    }

    /// Keeps `next_sst_id` above `file`'s id when the file belongs to this
    /// table. Recovery calls this for manifest-listed *and* orphan files,
    /// so a crashed flush's or merge's id is never handed out again.
    pub fn reserve_sst_id(&self, file: &str) {
        if !file.starts_with(&self.sst_prefix()) {
            return;
        }
        if let Some(num) = file.rsplit('-').next().and_then(|s| s.parse::<u64>().ok()) {
            self.next_sst_id.fetch_max(num + 1, Ordering::Relaxed);
        }
    }

    /// Largest sequence stored in this table's SSTables (recovery sets the
    /// tracker floor above it).
    pub fn max_disk_seq(&self) -> Result<u64> {
        let ssts = self.ssts.read().unwrap_or_else(|e| e.into_inner());
        let mut max = 0u64;
        for sst in ssts.iter() {
            for e in sst.scan()? {
                max = max.max(e.timestamp);
            }
        }
        Ok(max)
    }

    /// Newest on-disk sequence for `key`, if any SSTable holds it. Per-key
    /// sequences are monotone across the age order, so the newest-first
    /// probe can stop at the first hit. Recovery uses this to skip WAL
    /// records that a flushed version already covers.
    pub fn newest_disk_seq(&self, key: &[u8]) -> Result<Option<u64>> {
        let ssts = self.ssts.read().unwrap_or_else(|e| e.into_inner());
        for sst in ssts.iter().rev() {
            if let Some(e) = sst.probe(key)?.entry {
                return Ok(Some(e.timestamp));
            }
        }
        Ok(None)
    }

    /// On-disk bytes of this table's SSTables (flush first for an accurate
    /// total — the engine's size API does).
    pub fn disk_size(&self) -> u64 {
        let ssts = self.ssts.read().unwrap_or_else(|e| e.into_inner());
        ssts.iter().map(|s| s.size()).sum()
    }

    /// Number of SSTables backing the table.
    pub fn sstable_count(&self) -> usize {
        self.ssts.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Estimated live row count: buffered memtable keys plus every
    /// SSTable's stored entry count. Overwrites and tombstones are counted
    /// once per layer they appear in, so this is an upper bound — exactly
    /// what the query planner wants for costing scans.
    pub fn estimate_rows(&self) -> u64 {
        let mut rows = self.mem.key_count() as u64;
        if let Some(frozen) = self
            .flushing
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
        {
            rows += frozen.entries.len() as u64;
        }
        let ssts = self.ssts.read().unwrap_or_else(|e| e.into_inner());
        rows + ssts.iter().map(|s| s.len() as u64).sum::<u64>()
    }

    /// The backing SSTable file names, oldest first.
    pub fn sstable_files(&self) -> Vec<String> {
        let ssts = self.ssts.read().unwrap_or_else(|e| e.into_inner());
        ssts.iter().map(|sst| sst.file().to_string()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::types::{CqlType, CqlValue};

    fn def() -> TableDef {
        TableDef::new(
            "ks",
            "t",
            vec![
                ColumnDef {
                    name: "id".into(),
                    ty: CqlType::Int,
                },
                ColumnDef {
                    name: "v".into(),
                    ty: CqlType::Text,
                },
            ],
            "id",
        )
        .unwrap()
    }

    fn row(id: i64, v: &str) -> (Vec<u8>, Row) {
        let r = Row::new(vec![CqlValue::Int(id), CqlValue::Text(v.into())]);
        (CqlValue::Int(id).encode_key(), r)
    }

    fn small_options() -> TableOptions {
        TableOptions {
            memtable_flush_bytes: 256,
            compaction_threshold: 3,
        }
    }

    struct Harness {
        table: TableCore,
        tracker: SeqTracker,
        registry: SnapshotRegistry,
    }

    impl Harness {
        fn new(vfs: Vfs, options: TableOptions) -> Harness {
            Harness {
                table: TableCore::new(
                    def(),
                    vfs.clone(),
                    Manifest::open(vfs),
                    options,
                    BlockCache::new(crate::cache::DEFAULT_BLOCK_CACHE_BYTES),
                ),
                tracker: SeqTracker::new(),
                registry: SnapshotRegistry::new(),
            }
        }

        /// Write-path shape of the engine (inline-compaction mode): alloc,
        /// apply, complete, the flush threshold check, then the compaction
        /// threshold check the engine runs after a flush.
        fn put(&self, key: Vec<u8>, row: Option<Row>) {
            let seq = self.tracker.alloc();
            let cost = key.len() + 40;
            let gc_floor = self.registry.gc_floor(&self.tracker);
            self.table.apply(key, row, seq, cost, gc_floor);
            self.tracker.complete(seq);
            if self
                .table
                .maybe_flush(&self.tracker, &self.registry)
                .unwrap()
            {
                self.maybe_compact();
            }
        }

        fn get(&self, key: &[u8]) -> Option<Row> {
            self.table.get(key, u64::MAX).unwrap()
        }

        fn flush(&self) {
            self.table.flush(&self.tracker, &self.registry).unwrap();
            self.maybe_compact();
        }

        /// The engine's post-flush hook with `compaction_threads = 0`.
        fn maybe_compact(&self) {
            if self.table.needs_compaction() {
                self.table.compact_tiered(&self.registry).unwrap();
            }
        }
    }

    #[test]
    fn put_get_across_flushes() {
        let h = Harness::new(Vfs::memory(), small_options());
        for i in 0..50 {
            let (k, r) = row(i, &format!("v{i}"));
            h.put(k, Some(r));
        }
        assert!(
            h.table.sstable_count() >= 1,
            "small threshold must have flushed"
        );
        for i in 0..50 {
            let (k, r) = row(i, &format!("v{i}"));
            assert_eq!(h.get(&k), Some(r));
        }
        assert!(h.get(&CqlValue::Int(999).encode_key()).is_none());
    }

    #[test]
    fn newest_version_wins_after_flush() {
        let h = Harness::new(Vfs::memory(), small_options());
        let (k, r1) = row(1, "old");
        h.put(k.clone(), Some(r1));
        h.flush();
        let (_, r2) = row(1, "new");
        h.put(k.clone(), Some(r2.clone()));
        assert_eq!(h.get(&k), Some(r2.clone()));
        h.flush();
        assert_eq!(h.get(&k), Some(r2));
    }

    #[test]
    fn tombstone_hides_older_versions() {
        let h = Harness::new(Vfs::memory(), small_options());
        let (k, r) = row(1, "x");
        h.put(k.clone(), Some(r));
        h.flush();
        h.put(k.clone(), None);
        assert_eq!(h.get(&k), None);
        assert!(h.table.scan(u64::MAX).unwrap().is_empty());
    }

    #[test]
    fn compaction_reclaims_overwrites_and_tombstones() {
        let h = Harness::new(Vfs::memory(), small_options());
        for round in 0..3 {
            for i in 0..10 {
                let (k, r) = row(i, &format!("round{round}"));
                h.put(k, Some(r));
            }
            h.flush();
        }
        let (k_del, _) = row(0, "");
        h.put(k_del, None);
        h.flush();
        h.table.compact(&h.registry).unwrap();
        assert_eq!(h.table.sstable_count(), 1);
        let rows = h.table.scan(u64::MAX).unwrap();
        assert_eq!(rows.len(), 9, "id 0 deleted, 1..9 live");
        for (_, r) in rows {
            assert_eq!(r.values[1], CqlValue::Text("round2".into()));
        }
    }

    #[test]
    fn compaction_shrinks_disk() {
        let h = Harness::new(Vfs::memory(), small_options());
        for _round in 0..2 {
            for i in 0..20 {
                let (k, r) = row(i, "payload-payload-payload");
                h.put(k, Some(r));
            }
            h.flush();
        }
        let before = h.table.disk_size();
        h.table.compact(&h.registry).unwrap();
        let after = h.table.disk_size();
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn tiered_compaction_bounds_sstable_count() {
        let h = Harness::new(Vfs::memory(), small_options());
        for i in 0..2000 {
            let (k, r) = row(i, &format!("value number {i}"));
            h.put(k, Some(r));
        }
        h.flush();
        // With ~50-byte rows and a 256-byte flush threshold this produced
        // hundreds of flushes; tiering must keep the live set logarithmic.
        assert!(
            h.table.sstable_count() <= 16,
            "tiering failed: {} sstables",
            h.table.sstable_count()
        );
        // And the data is intact.
        for i in (0..2000).step_by(97) {
            let (k, r) = row(i, &format!("value number {i}"));
            assert_eq!(h.get(&k), Some(r));
        }
    }

    #[test]
    fn tiered_compaction_preserves_newest_version_and_tombstones() {
        let h = Harness::new(Vfs::memory(), small_options());
        // Interleave overwrites and deletes across many flush cycles.
        for round in 0..20 {
            for i in 0..10 {
                let (k, r) = row(i, &format!("round {round}"));
                h.put(k, Some(r));
            }
            let (k_del, _) = row(round % 10, "");
            h.put(k_del, None);
            h.flush();
        }
        // Key (19 % 10)=9 was deleted in the final round, after its write.
        let (k9, _) = row(9, "");
        assert_eq!(h.get(&k9), None);
        // Other keys show the last round's value.
        let (k0, r0) = row(0, "round 19");
        assert_eq!(h.get(&k0), Some(r0));
    }

    #[test]
    fn tiered_merge_keeps_tombstones_full_compact_drops_them() {
        // Regression for the tombstone-drop rule in `merge_run`: a tiered
        // merge of a run that does NOT start at the oldest SSTable must keep
        // tombstones physically (an older table may still hold a shadowed
        // live version), while a full compaction may drop them.
        let vfs = Vfs::memory();
        let options = TableOptions {
            memtable_flush_bytes: 64 * 1024, // manual flushes only
            compaction_threshold: 3,
        };
        let h = Harness::new(vfs.clone(), options);
        // Oldest SSTable: key 1 live, plus bulk so it is >4x larger than
        // the later tables (keeps it out of their size tier).
        for i in 1..=30 {
            let (k, r) = row(i, "a long enough payload to fatten the oldest table");
            h.put(k, Some(r));
        }
        h.flush();
        // Three small young SSTables; the first deletes key 1.
        let (k1, _) = row(1, "");
        h.put(k1.clone(), None);
        h.flush();
        let (k41, r41) = row(41, "x");
        h.put(k41, Some(r41));
        h.flush();
        let (k42, r42) = row(42, "y");
        h.put(k42, Some(r42));
        h.flush();
        // The third young flush crossed the threshold, so flush() ran the
        // tiered compaction itself: the three young tables merged while the
        // oversized oldest stayed out of the run.
        assert_eq!(h.table.sstable_count(), 2);
        // The delete must still shadow the old live version...
        assert_eq!(h.get(&k1), None);
        // ...because the merged young table physically kept the tombstone.
        let files = {
            let mut f = vfs.list("ks/t/sst-").unwrap();
            f.sort();
            f
        };
        let young =
            crate::sstable::SsTable::open(vfs.clone(), files.last().unwrap().clone()).unwrap();
        let tombstone = young.get(&k1).unwrap().expect("tombstone entry present");
        assert_eq!(tombstone.body, None);
        // Full compaction covers the whole history, so the tombstone (and
        // the key) disappear from disk while the delete stays effective.
        h.table.compact(&h.registry).unwrap();
        assert_eq!(h.table.sstable_count(), 1);
        assert_eq!(h.get(&k1), None);
        let files = vfs.list("ks/t/sst-").unwrap();
        assert_eq!(files.len(), 1);
        let merged = crate::sstable::SsTable::open(vfs, files[0].clone()).unwrap();
        assert!(merged.get(&k1).unwrap().is_none(), "tombstone not dropped");
        assert!(merged.scan().unwrap().iter().all(|e| e.body.is_some()));
    }

    #[test]
    fn scan_merges_memtable_and_sstables_in_key_order() {
        let h = Harness::new(Vfs::memory(), small_options());
        let (k2, r2) = row(2, "b");
        h.put(k2, Some(r2));
        h.flush();
        let (k1, r1) = row(1, "a");
        h.put(k1, Some(r1));
        let rows = h.table.scan(u64::MAX).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1.values[0], CqlValue::Int(1));
        assert_eq!(rows[1].1.values[0], CqlValue::Int(2));
    }

    #[test]
    fn snapshot_bound_reads_see_the_past_across_a_flush() {
        let h = Harness::new(
            Vfs::memory(),
            TableOptions {
                memtable_flush_bytes: 64 * 1024,
                compaction_threshold: 8,
            },
        );
        let (k, r1) = row(1, "v1");
        h.put(k.clone(), Some(r1.clone()));
        // Pin the current watermark like a Snapshot handle would.
        let pin = h.registry.pin_current(&h.tracker);
        let (_, r2) = row(1, "v2");
        h.put(k.clone(), Some(r2.clone()));
        h.flush();
        assert_eq!(h.get(&k), Some(r2), "unpinned reads see the new version");
        assert_eq!(
            h.table.get(&k, pin).unwrap(),
            Some(r1),
            "the pinned bound still reads the old version after the flush"
        );
        h.registry.unpin(pin);
    }

    #[test]
    fn compaction_defers_while_a_snapshot_reads_below_it() {
        let vfs = Vfs::memory();
        let h = Harness::new(
            vfs,
            TableOptions {
                memtable_flush_bytes: 64 * 1024,
                compaction_threshold: 8,
            },
        );
        let (k, r1) = row(1, "old");
        h.put(k.clone(), Some(r1.clone()));
        h.flush();
        let pin = h.registry.pin_current(&h.tracker);
        let (_, r2) = row(1, "new");
        h.put(k.clone(), Some(r2.clone()));
        h.flush();
        assert_eq!(h.table.sstable_count(), 2);
        // The merge would keep only "new"; the pin still needs "old".
        h.table.compact(&h.registry).unwrap();
        assert_eq!(h.table.sstable_count(), 2, "merge deferred for the pin");
        assert_eq!(h.table.get(&k, pin).unwrap(), Some(r1));
        h.registry.unpin(pin);
        h.table.compact(&h.registry).unwrap();
        assert_eq!(h.table.sstable_count(), 1, "merge proceeds once released");
        assert_eq!(h.get(&k), Some(r2));
    }

    #[test]
    fn compaction_tombstone_drop_purges_stale_memtable_versions() {
        // Resurrection hazard: a snapshot pins an old live version, a
        // delete shadows it, and the flush drains only the tombstone (the
        // "hole" case keeps the pinned version in the memtable). Once the
        // snapshot is gone, a tombstone-dropping compaction must purge that
        // stale memtable version too — otherwise it becomes the newest
        // version for the key and the deleted row comes back.
        let h = Harness::new(
            Vfs::memory(),
            TableOptions {
                memtable_flush_bytes: 64 * 1024,
                compaction_threshold: 8,
            },
        );
        let (k1, r1) = row(1, "live");
        h.put(k1.clone(), Some(r1));
        let pin = h.registry.pin_current(&h.tracker);
        h.put(k1.clone(), None);
        h.flush(); // SSTable 1: tombstone; pinned live version stays buffered
        let (k2, r2) = row(2, "other");
        h.put(k2.clone(), Some(r2.clone()));
        h.flush(); // SSTable 2, so compact() has a run to merge
        h.registry.unpin(pin);
        h.table.compact(&h.registry).unwrap();
        assert_eq!(h.get(&k1), None, "deleted row resurrected by compaction");
        let rows = h.table.scan(u64::MAX).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, k2);
        assert_eq!(rows[0].1, r2);
    }
}
