//! The database engine: catalog + table runtimes + write/read paths.
//!
//! # Concurrency model (see DESIGN.md §5g)
//!
//! The engine core ([`DbCore`]) is `Send + Sync` and shared by every
//! session through an `Arc` — there is no global statement mutex.
//!
//! - **Reads** never block writers. A `SELECT` pins the MVCC watermark
//!   ([`crate::mvcc::ReadPin`]) and resolves each key to the newest
//!   version at or below that bound, across memtable shards, the frozen
//!   flush run, and immutable SSTables (probed under a read guard so
//!   compaction can never delete a file mid-lookup). Concurrent writers
//!   can never tear a read: versions above the pin are invisible.
//! - **Writes** append to the group-commit WAL
//!   ([`crate::commitlog::GroupCommitLog`]) — concurrent sessions share
//!   one fsync via a leader/follower protocol — then insert into the
//!   FNV-sharded memtable under per-shard mutexes.
//! - **Read-modify-write statements** (UPDATE, and any write to a table
//!   with secondary indexes) serialize on a per-table RMW mutex so the
//!   read half always observes the previous RMW's write.
//! - **DDL and TRUNCATE** take the engine state's write lock, which also
//!   guarantees `flush_all` sees no in-flight statements.
//!
//! Lock order (outermost first): engine state → per-table RMW → WAL
//! group → per-table maintenance → memtable shard / SSTable list.

use crate::cache::{BlockCache, CacheStats, DEFAULT_BLOCK_CACHE_BYTES};
use crate::commitlog::{CommitLog, GroupCommitLog, LogRecord, WalError};
use crate::compactor::CompactionPool;
use crate::cql::ast::{Statement, TableRef, WhereClause};
use crate::cql::parse_statement;
use crate::error::{NosqlError, Result};
use crate::exec;
use crate::manifest::{Manifest, ManifestEdit};
use crate::mvcc::{ReadPin, SeqGuard, SeqTracker, SnapshotRegistry};
use crate::plan;
use crate::result::QueryResult;
use crate::row::Row;
use crate::schema::{Catalog, ColumnDef, TableDef};
use crate::session::Session;
use crate::snapshot::Snapshot;
use crate::table::{TableCore, TableOptions};
use crate::types::{CqlType, CqlValue};
use sc_encoding::ByteSize;
use sc_storage::Vfs;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// Engine construction options (legacy shape, kept for the deprecated
/// constructors; new code uses [`OpenOptions`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct DbOptions {
    /// Per-table flush/compaction tuning.
    pub table: TableOptions,
}

/// Builder for [`Db::open`] / [`SharedDb::open`].
///
/// ```
/// use sc_nosql::{Db, OpenOptions};
///
/// let db = Db::open(OpenOptions::default()).unwrap(); // fresh, in-memory
/// # drop(db);
/// ```
///
/// Reopening an existing disk runs full crash recovery:
///
/// ```no_run
/// # use sc_nosql::{Db, OpenOptions};
/// # let vfs = sc_storage::Vfs::memory();
/// let db = Db::open(OpenOptions::default().vfs(vfs).recover(true)).unwrap();
/// ```
#[derive(Debug, Clone, Default)]
pub struct OpenOptions {
    vfs: Option<Vfs>,
    recover: bool,
    table: TableOptions,
    block_cache_bytes: Option<usize>,
    group_commit_delay: Duration,
    wal_segment_bytes: Option<u64>,
    compaction_threads: Option<usize>,
}

impl OpenOptions {
    /// Starts from the defaults: fresh in-memory VFS, no recovery, default
    /// flush/compaction tuning, zero group-commit delay.
    pub fn new() -> OpenOptions {
        OpenOptions::default()
    }

    /// Opens over an explicit VFS (defaults to a fresh in-memory one).
    pub fn vfs(mut self, vfs: Vfs) -> OpenOptions {
        self.vfs = Some(vfs);
        self
    }

    /// Runs crash recovery on open: schema-journal replay (with torn-tail
    /// repair), manifest-ordered SSTable attach, orphan-file sweep, and
    /// commit-log replay (with torn-tail repair).
    pub fn recover(mut self, recover: bool) -> OpenOptions {
        self.recover = recover;
        self
    }

    /// Memtable bytes that trigger a flush.
    pub fn memtable_flush_bytes(mut self, bytes: usize) -> OpenOptions {
        self.table.memtable_flush_bytes = bytes;
        self
    }

    /// SSTable count that triggers compaction.
    pub fn compaction_threshold(mut self, count: usize) -> OpenOptions {
        self.table.compaction_threshold = count;
        self
    }

    /// Sets the whole per-table tuning block at once.
    pub fn table_options(mut self, table: TableOptions) -> OpenOptions {
        self.table = table;
        self
    }

    /// Byte budget of the engine-wide shared SSTable block cache (default
    /// 4 MiB; 0 disables caching).
    pub fn block_cache_bytes(mut self, bytes: usize) -> OpenOptions {
        self.block_cache_bytes = Some(bytes);
        self
    }

    /// How long a group-commit leader lingers for followers to join its
    /// WAL batch when it would otherwise commit alone. Zero (the default)
    /// commits immediately — concurrent sessions still coalesce, because
    /// whoever arrives while a leader's write is in flight joins the next
    /// batch. A small delay (tens of microseconds) trades single-session
    /// latency for larger batches under contention.
    pub fn group_commit_delay(mut self, delay: Duration) -> OpenOptions {
        self.group_commit_delay = delay;
        self
    }

    /// Background compaction worker threads (default 2). A flush that
    /// crosses the SSTable threshold enqueues its table for these workers
    /// and returns, so commits never wait for a multi-SSTable merge;
    /// distinct tables (base and hidden index column families included)
    /// compact in parallel across the pool. `0` disables the pool and runs
    /// the merge inline on the flushing thread — deterministic, which is
    /// what the fault-injection crash tests pin.
    pub fn compaction_threads(mut self, threads: usize) -> OpenOptions {
        self.compaction_threads = Some(threads);
        self
    }

    /// Bytes an active commit-log segment may reach before the next append
    /// rotates to a fresh segment (default
    /// [`crate::commitlog::DEFAULT_SEGMENT_BYTES`]). Smaller segments let
    /// post-flush checkpoints reclaim WAL space sooner; larger ones mean
    /// fewer files.
    pub fn wal_segment_bytes(mut self, bytes: u64) -> OpenOptions {
        self.wal_segment_bytes = Some(bytes);
        self
    }

    /// Builds the engine; sugar for [`Db::open`].
    pub fn open(self) -> Result<Db> {
        Db::open(self)
    }

    /// Builds the engine behind a [`SharedDb`] handle.
    #[deprecated(note = "use `SharedDb::open(options)`")]
    pub fn open_shared(self) -> Result<SharedDb> {
        SharedDb::open(self)
    }
}

const SCHEMA_LOG: &str = "schema.log";
const COMMIT_LOG: &str = "commitlog";

/// Estimated memtable overhead per version beyond key and body bytes.
const VERSION_COST: usize = 48;

/// Catalog + table runtimes, swapped atomically under one lock. DML and
/// SELECT hold the read side; DDL, TRUNCATE and `flush_all` the write
/// side.
#[derive(Debug)]
struct EngineState {
    catalog: Catalog,
    tables: HashMap<String, Arc<TableCore>>,
}

impl EngineState {
    fn core(&self, qualified: &str) -> &Arc<TableCore> {
        self.tables
            .get(qualified)
            .expect("runtime exists for cataloged table")
    }
}

/// One pending row mutation, bound for the WAL and a memtable.
struct PendingWrite {
    table: Arc<TableCore>,
    qualified: String,
    key: Vec<u8>,
    /// `None` writes a tombstone.
    row: Option<Row>,
}

/// The engine core shared by every [`Db`], [`SharedDb`], [`Session`] and
/// [`Snapshot`] handle. All methods take `&self`.
#[derive(Debug)]
pub(crate) struct DbCore {
    vfs: Vfs,
    manifest: Manifest,
    state: RwLock<EngineState>,
    wal: GroupCommitLog,
    pub(crate) tracker: SeqTracker,
    /// `Arc` so background compaction jobs can hold the registry across
    /// the engine's locks; every in-process use goes through deref.
    pub(crate) registry: Arc<SnapshotRegistry>,
    options: DbOptions,
    /// Shared across every table's SSTables; see [`BlockCache`].
    cache: BlockCache,
    /// Background compaction workers; `None` when
    /// [`OpenOptions::compaction_threads`] is 0 (merges then run inline on
    /// the flushing thread). Dropping the core drains and joins the pool,
    /// so close never abandons a scheduled merge.
    pool: Option<CompactionPool>,
}

impl DbCore {
    fn open(options: OpenOptions) -> Result<DbCore> {
        let vfs = options.vfs.unwrap_or_else(Vfs::memory);
        let manifest = Manifest::open(vfs.clone());
        let mut log = CommitLog::open(vfs.clone(), COMMIT_LOG);
        if let Some(bytes) = options.wal_segment_bytes {
            log = log.with_segment_bytes(bytes);
        }
        let core = DbCore {
            vfs,
            manifest,
            state: RwLock::new(EngineState {
                catalog: Catalog::new(),
                tables: HashMap::new(),
            }),
            wal: GroupCommitLog::new(log, options.group_commit_delay),
            tracker: SeqTracker::new(),
            registry: Arc::new(SnapshotRegistry::new()),
            options: DbOptions {
                table: options.table,
            },
            cache: BlockCache::new(
                options
                    .block_cache_bytes
                    .unwrap_or(DEFAULT_BLOCK_CACHE_BYTES),
            ),
            pool: {
                let threads = options.compaction_threads.unwrap_or(2);
                (threads > 0).then(|| CompactionPool::new(threads))
            },
        };
        if options.recover {
            core.recover_state()?;
        }
        // Mark the disk as manifest-managed from the very first open, so a
        // crash during the first flush can never be mistaken for a
        // pre-manifest layout.
        core.manifest.ensure_exists()?;
        Ok(core)
    }

    fn read_state(&self) -> RwLockReadGuard<'_, EngineState> {
        self.state.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_state(&self) -> RwLockWriteGuard<'_, EngineState> {
        self.state.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Crash recovery: rebuild catalog and runtimes from the journals,
    /// repairing every torn tail and sweeping unpublished files, so that the
    /// reopened engine contains exactly the acknowledged writes (plus,
    /// possibly, the one in-flight write the crash interrupted after its
    /// WAL frame became durable).
    fn recover_state(&self) -> Result<()> {
        let _span = crate::obs::nosql().recovery.start();
        let mut state = self.write_state();
        self.replay_schema_journal(&mut state)?;
        // Disks written before the manifest existed have SSTables but no
        // MANIFEST: adopt them in name order and publish that as the first
        // manifest record.
        if !self.manifest.exists() {
            self.adopt_legacy_sstables(&state)?;
        }
        let live = self.manifest.repair()?;
        for (qualified, files) in &live {
            if let Some(table) = state.tables.get(qualified) {
                // Manifest order is age order — not name order, because a
                // tiered merge's output sits mid-sequence in age.
                for file in files {
                    table.attach_sstable(file)?;
                }
            }
        }
        self.sweep_orphans(&state, &live)?;
        // Replay surviving commit-log records; `repair` truncates a torn
        // final record so later appends stay reachable.
        let records = self.wal.plain().repair()?;
        if sc_obs::enabled() {
            crate::obs::nosql()
                .replayed_records
                .add(records.len() as u64);
        }
        let mut max_seq = 0;
        for record in records {
            max_seq = max_seq.max(record.timestamp);
            if let Some(table) = state.tables.get(&record.table) {
                // Segment checkpointing deletes a segment only when *all*
                // of it is flushed, so a surviving segment may hold records
                // older than a flushed version of the same key (group
                // commit interleaves sequence allocation with append
                // order). Re-applying such a record would sit at the head
                // of its memtable chain and shadow the newer on-disk
                // version for definitive reads — skip anything a flushed
                // sequence already covers.
                if table
                    .newest_disk_seq(&record.key)?
                    .is_some_and(|d| d >= record.timestamp)
                {
                    continue;
                }
                let row = if record.body.is_empty() {
                    None
                } else {
                    let mut dec = sc_encoding::Decoder::new(&record.body);
                    Some(Row::decode(&mut dec)?.0)
                };
                let cost = record.key.len() + record.body.len() + VERSION_COST;
                table.apply(record.key, row, record.timestamp, cost, 0);
            }
        }
        // The sequence floor must clear everything durable — WAL *and*
        // SSTables (the WAL may have been truncated after a flush). Reads
        // compare sequences, so a fresh write allocated below an on-disk
        // sequence would be invisibly shadowed.
        for table in state.tables.values() {
            max_seq = max_seq.max(table.max_disk_seq()?);
        }
        self.tracker.set_floor(max_seq);
        Ok(())
    }

    /// Replays DDL from the schema journal. The journal is line-framed; a
    /// crash mid-append leaves a trailing segment without a terminating
    /// newline, which is truncated away. A *complete* line that fails to
    /// parse is genuine corruption and still errors.
    fn replay_schema_journal(&self, state: &mut EngineState) -> Result<()> {
        let data = match self.vfs.read_all(SCHEMA_LOG) {
            Ok(d) => d,
            Err(sc_storage::StorageError::NotFound(_)) => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        let good_len = data.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
        if good_len < data.len() {
            self.vfs.truncate(SCHEMA_LOG, good_len as u64)?;
        }
        let text = std::str::from_utf8(&data[..good_len])
            .map_err(|_| NosqlError::Corrupt("schema journal is not UTF-8".into()))?;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let stmt = parse_statement(line)?;
            self.apply_ddl(state, &stmt, false)?;
        }
        Ok(())
    }

    /// Adopts pre-manifest SSTables (best available order: file name).
    fn adopt_legacy_sstables(&self, state: &EngineState) -> Result<()> {
        let mut edit = ManifestEdit::default();
        for (qualified, table) in &state.tables {
            let def = table.def();
            let prefix = format!("{}/{}/sst-", def.keyspace, def.name);
            for file in self.vfs.list(&prefix)? {
                edit.adds.push((qualified.clone(), file));
            }
        }
        self.manifest.commit(&edit)?;
        Ok(())
    }

    /// Deletes SSTable files the manifest does not consider live: leftovers
    /// of flushes/compactions that crashed between writing data and
    /// publishing it, or after publishing a swap but before deleting inputs.
    ///
    /// Every orphan's id is reserved on its owning table *before* the file
    /// goes away. A crashed flush or merge can leave `sst-N` on disk with
    /// `N` above everything the manifest lists; seeding `next_sst_id` from
    /// manifest files alone would hand the very next flush that same name —
    /// and if the sweep's delete is itself interrupted, the reused name
    /// would collide with the stale bytes on the following recovery.
    fn sweep_orphans(
        &self,
        state: &EngineState,
        live: &BTreeMap<String, Vec<String>>,
    ) -> Result<()> {
        let live_files: HashSet<&str> = live.values().flatten().map(String::as_str).collect();
        for file in self.vfs.list("")? {
            if file.contains("/sst-") && !live_files.contains(file.as_str()) {
                for table in state.tables.values() {
                    table.reserve_sst_id(&file);
                }
                self.vfs.delete(&file)?;
            }
        }
        Ok(())
    }

    pub(crate) fn has_keyspace(&self, name: &str) -> bool {
        self.read_state().catalog.has_keyspace(name)
    }

    fn catalog_snapshot(&self) -> Catalog {
        self.read_state().catalog.clone()
    }

    /// Rejects statements whose table references never got a keyspace —
    /// only a [`Session`] with a `USE` keyspace can resolve those.
    fn check_qualified(stmt: &Statement) -> Result<()> {
        for r in stmt.table_refs() {
            if !r.is_qualified() {
                return Err(NosqlError::Parse(format!(
                    "unqualified table {:?} requires a session keyspace (USE)",
                    r.table
                )));
            }
        }
        Ok(())
    }

    pub(crate) fn execute(&self, stmt: &Statement) -> Result<QueryResult> {
        Self::check_qualified(stmt)?;
        match stmt {
            Statement::Use { .. } => Err(NosqlError::Unsupported(
                "USE needs session state; execute it on a `Session`".into(),
            )),
            Statement::CreateKeyspace { .. }
            | Statement::CreateTable { .. }
            | Statement::CreateIndex { .. } => {
                let mut state = self.write_state();
                self.apply_ddl(&mut state, stmt, true)?;
                Ok(QueryResult::empty())
            }
            Statement::Insert {
                table,
                columns,
                values,
            } => {
                let state = self.read_state();
                self.insert(&state, table, columns, values)?;
                Ok(QueryResult::empty())
            }
            Statement::Select { .. } => {
                let state = self.read_state();
                let pin = ReadPin::new(&self.registry, &self.tracker);
                self.run_select(&state, stmt, pin.seq())
            }
            Statement::Explain { statement } => {
                let state = self.read_state();
                self.explain(&state, statement)
            }
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => {
                let state = self.read_state();
                self.update(&state, table, assignments, where_clause)?;
                Ok(QueryResult::empty())
            }
            Statement::Delete {
                table,
                where_clause,
            } => {
                let state = self.read_state();
                self.delete(&state, table, where_clause)?;
                Ok(QueryResult::empty())
            }
            Statement::Truncate { table } => {
                let mut state = self.write_state();
                self.truncate(&mut state, table)?;
                Ok(QueryResult::empty())
            }
            Statement::Batch { statements } => {
                // Statements commit individually; under concurrency their
                // WAL frames still coalesce through the group commit.
                for s in statements {
                    self.execute(s)?;
                }
                Ok(QueryResult::empty())
            }
        }
    }

    /// SELECT at a fixed MVCC bound (a [`Snapshot`]'s view).
    pub(crate) fn execute_read(&self, stmt: &Statement, bound: u64) -> Result<QueryResult> {
        Self::check_qualified(stmt)?;
        match stmt {
            Statement::Select { .. } => {
                let state = self.read_state();
                self.run_select(&state, stmt, bound)
            }
            Statement::Explain { statement } => {
                let state = self.read_state();
                self.explain(&state, statement)
            }
            _ => Err(NosqlError::Unsupported(
                "snapshots are read-only: only SELECT is allowed".into(),
            )),
        }
    }

    fn journal_ddl(&self, stmt: &Statement) -> Result<()> {
        let mut line = stmt.to_cql();
        line.push('\n');
        self.vfs.append(SCHEMA_LOG, line.as_bytes())?;
        Ok(())
    }

    fn new_table_core(&self, def: TableDef) -> Arc<TableCore> {
        Arc::new(TableCore::new(
            def,
            self.vfs.clone(),
            self.manifest.clone(),
            self.options.table,
            self.cache.clone(),
        ))
    }

    fn apply_ddl(&self, state: &mut EngineState, stmt: &Statement, journal: bool) -> Result<()> {
        match stmt {
            Statement::CreateKeyspace { name } => {
                state.catalog.create_keyspace(name)?;
            }
            Statement::CreateTable {
                table,
                columns,
                primary_key,
            } => {
                let defs: Vec<ColumnDef> = columns
                    .iter()
                    .map(|(name, ty)| ColumnDef {
                        name: name.clone(),
                        ty: *ty,
                    })
                    .collect();
                let def = TableDef::new(&table.keyspace, &table.table, defs, primary_key)?;
                state.catalog.create_table(def.clone())?;
                state
                    .tables
                    .insert(def.qualified_name(), self.new_table_core(def));
            }
            Statement::CreateIndex { table, column } => {
                self.create_index(state, table, column)?;
            }
            _ => unreachable!("apply_ddl called on non-DDL"),
        }
        if journal {
            self.journal_ddl(stmt)?;
        }
        Ok(())
    }

    fn create_index(&self, state: &mut EngineState, table: &TableRef, column: &str) -> Result<()> {
        let def = Arc::clone(state.catalog.table(&table.keyspace, &table.table)?);
        let col_idx = def
            .column_index(column)
            .ok_or_else(|| NosqlError::UnknownColumn {
                table: def.name.clone(),
                column: column.to_string(),
            })?;
        if def.is_indexed(column) {
            return Err(NosqlError::AlreadyExists(format!("index on {column:?}")));
        }
        if def.columns[col_idx].ty == CqlType::IntSet {
            return Err(NosqlError::Unsupported(
                "secondary indexes on set<int> columns".into(),
            ));
        }
        if def.pk_column().ty != CqlType::Int {
            return Err(NosqlError::Unsupported(
                "secondary indexes require an int primary key (posting sets hold ints)".into(),
            ));
        }
        // The hidden index column family: one row per posting, keyed by
        // `hex(indexed value) ':' row id` — Cassandra's one-cell-per-posting
        // physical layout expressed as rows.
        let idx_name = def.index_table_name(column);
        let idx_def = TableDef::new(
            &def.keyspace,
            &idx_name,
            vec![
                ColumnDef {
                    name: "k".into(),
                    ty: CqlType::Text,
                },
                ColumnDef {
                    name: "id".into(),
                    ty: CqlType::Int,
                },
            ],
            "k",
        )?;
        state.tables.insert(
            idx_def.qualified_name(),
            self.new_table_core(idx_def.clone()),
        );
        state.catalog.create_table(idx_def)?;
        state
            .catalog
            .table_mut(&table.keyspace, &table.table)?
            .indexed_columns
            .push(column.to_string());
        state
            .core(&format!("{}.{}", table.keyspace, table.table))
            .add_index(column);
        // Backfill for rows already present. The state write lock excludes
        // every concurrent statement, so reading at the top bound is exact.
        let base_def = Arc::clone(state.catalog.table(&table.keyspace, &table.table)?);
        let existing = state.core(&base_def.qualified_name()).scan(u64::MAX)?;
        let mut writes = Vec::new();
        for (_, row) in existing {
            let value = row.values[col_idx].clone();
            if value.is_null() {
                continue;
            }
            let pk = row.pk(&base_def).clone();
            writes.push(self.posting_write(state, &base_def, column, &value, &pk, true));
        }
        self.commit_writes(state, writes)
    }

    /// Commits a set of row mutations: one sequence per record, one WAL
    /// group append (durable before anything becomes visible), then the
    /// memtable inserts. On a WAL error nothing was applied and every
    /// allocated sequence completes unused, so the watermark never stalls.
    fn commit_writes(&self, state: &EngineState, writes: Vec<PendingWrite>) -> Result<()> {
        if writes.is_empty() {
            return Ok(());
        }
        let guards: Vec<SeqGuard> = writes
            .iter()
            .map(|_| SeqGuard::new(&self.tracker))
            .collect();
        let mut records = Vec::with_capacity(writes.len());
        for (w, g) in writes.iter().zip(&guards) {
            let body = match &w.row {
                Some(row) => {
                    let mut enc = sc_encoding::Encoder::new();
                    row.encode(&mut enc, g.seq());
                    enc.into_bytes()
                }
                None => Vec::new(),
            };
            records.push(LogRecord {
                table: w.qualified.clone(),
                key: w.key.clone(),
                body,
                timestamp: g.seq(),
            });
        }
        let body_lens: Vec<usize> = records.iter().map(|r| r.body.len()).collect();
        self.wal
            .append_group(records)
            .map_err(WalError::into_nosql)?;
        let gc_floor = self.registry.gc_floor(&self.tracker);
        let mut touched: Vec<Arc<TableCore>> = Vec::new();
        for ((w, g), body_len) in writes.into_iter().zip(&guards).zip(body_lens) {
            let cost = w.key.len() + body_len + VERSION_COST;
            w.table.apply(w.key, w.row, g.seq(), cost, gc_floor);
            if !touched.iter().any(|t| Arc::ptr_eq(t, &w.table)) {
                touched.push(w.table);
            }
        }
        // Completing the sequences publishes the writes to the watermark.
        drop(guards);
        let mut flushed = false;
        for table in &touched {
            if table.maybe_flush(&self.tracker, &self.registry)? {
                flushed = true;
                // The flush may have crossed the compaction threshold.
                // Hand the merge to the background pool (or run it here
                // when the pool is disabled) — never inside the flush
                // itself, which would stall this commit and, through the
                // WAL group, every commit behind it.
                if table.needs_compaction() {
                    self.schedule_compaction(table)?;
                }
            }
        }
        if flushed {
            // A flush just made a WAL prefix redundant; drop any commit-log
            // segment every table has flushed past. This is what bounds the
            // log (and recovery replay) under sustained writes — without it
            // only an explicit `flush_all` ever reclaims WAL space.
            let floor = state
                .tables
                .values()
                .map(|t| t.wal_floor(&self.tracker))
                .min()
                .unwrap_or(0);
            self.wal.checkpoint(floor)?;
        }
        Ok(())
    }

    fn insert(
        &self,
        state: &EngineState,
        table: &TableRef,
        columns: &[String],
        values: &[CqlValue],
    ) -> Result<()> {
        let def = Arc::clone(state.catalog.table(&table.keyspace, &table.table)?);
        if columns.len() != values.len() {
            return Err(NosqlError::Parse(format!(
                "INSERT binds {} columns but {} values",
                columns.len(),
                values.len()
            )));
        }
        // Assemble the full row (unbound columns become null).
        let mut row_values = vec![CqlValue::Null; def.columns.len()];
        for (name, value) in columns.iter().zip(values) {
            let idx = def
                .column_index(name)
                .ok_or_else(|| NosqlError::UnknownColumn {
                    table: def.name.clone(),
                    column: name.clone(),
                })?;
            if !value.matches(def.columns[idx].ty) {
                return Err(NosqlError::TypeMismatch {
                    column: name.clone(),
                    expected: def.columns[idx].ty.name().to_string(),
                    found: value.type_name().to_string(),
                });
            }
            row_values[idx] = value.clone();
        }
        if row_values[def.primary_key].is_null() {
            return Err(NosqlError::MissingPrimaryKey(def.pk_column().name.clone()));
        }
        self.put_row(state, &def, Row::new(row_values))
    }

    /// Full write path for one row. Index-free tables take the blind,
    /// lock-free path; indexed tables serialize on the table's RMW mutex
    /// for the read-before-write that keeps postings consistent (a real
    /// cost of Cassandra-style secondary indexes).
    fn put_row(&self, state: &EngineState, def: &TableDef, row: Row) -> Result<()> {
        let qualified = def.qualified_name();
        let table = Arc::clone(state.core(&qualified));
        if def.indexed_columns.is_empty() {
            let key = row.pk_bytes(def);
            return self.commit_writes(
                state,
                vec![PendingWrite {
                    table,
                    qualified,
                    key,
                    row: Some(row),
                }],
            );
        }
        let _rmw = table.rmw_lock();
        self.put_row_rmw_locked(state, def, &table, row)
    }

    /// The indexed-table write path; the caller holds the table's RMW lock.
    fn put_row_rmw_locked(
        &self,
        state: &EngineState,
        def: &TableDef,
        table: &Arc<TableCore>,
        row: Row,
    ) -> Result<()> {
        let qualified = def.qualified_name();
        let key = row.pk_bytes(def);
        let mut writes = Vec::new();
        if !def.indexed_columns.is_empty() {
            // Read-before-write at the top bound: the RMW lock guarantees
            // every previous write to this table is already applied.
            let old_row = table.get(&key, u64::MAX)?;
            let pk = row.pk(def).clone();
            for column in &def.indexed_columns {
                let idx = def.column_index(column).expect("index on known column");
                let new_value = row.values[idx].clone();
                let old_value = old_row.as_ref().map(|r| r.values[idx].clone());
                if old_value.as_ref() == Some(&new_value) {
                    continue;
                }
                if let Some(old) = old_value {
                    if !old.is_null() {
                        writes.push(self.posting_write(state, def, column, &old, &pk, false));
                    }
                }
                if !new_value.is_null() {
                    writes.push(self.posting_write(state, def, column, &new_value, &pk, true));
                }
            }
        }
        writes.push(PendingWrite {
            table: Arc::clone(table),
            qualified,
            key,
            row: Some(row),
        });
        self.commit_writes(state, writes)
    }

    /// Posting-row key: `len-prefixed(value key) ++ order-preserving id`.
    /// The value-key prefix groups a per-value partition; the id suffix
    /// makes each posting its own row. Like Cassandra's index entries, the
    /// indexed value is stored once (in the key), not repeated in the body.
    fn posting_key(value: &CqlValue, id: i64) -> Vec<u8> {
        let mut enc = sc_encoding::Encoder::new();
        enc.put_bytes(&value.encode_key());
        enc.put_raw(&((id as u64) ^ (1u64 << 63)).to_be_bytes());
        enc.into_bytes()
    }

    /// Prefix covering every posting of `value` (the read side lives in
    /// [`crate::exec::scan::IndexScan`]).
    pub(crate) fn posting_prefix(value: &CqlValue) -> Vec<u8> {
        let mut enc = sc_encoding::Encoder::new();
        enc.put_bytes(&value.encode_key());
        enc.into_bytes()
    }

    fn posting_write(
        &self,
        state: &EngineState,
        def: &TableDef,
        column: &str,
        value: &CqlValue,
        pk: &CqlValue,
        add: bool,
    ) -> PendingWrite {
        let idx_qualified = format!("{}.{}", def.keyspace, def.index_table_name(column));
        let id = pk
            .as_int()
            .expect("index creation enforced int primary keys");
        let key = Self::posting_key(value, id);
        // Minimal body: the indexed value lives in the key only.
        let row = add.then(|| Row::new(vec![CqlValue::Null, CqlValue::Int(id)]));
        PendingWrite {
            table: Arc::clone(state.core(&idx_qualified)),
            qualified: idx_qualified,
            key,
            row,
        }
    }

    /// Cassandra UPDATE semantics: an upsert — unassigned columns keep
    /// their existing values (or null for a fresh row). Serializes on the
    /// table's RMW mutex: concurrent UPDATEs to the same table never lose
    /// each other's column writes.
    fn update(
        &self,
        state: &EngineState,
        table: &TableRef,
        assignments: &[(String, CqlValue)],
        where_clause: &WhereClause,
    ) -> Result<()> {
        let def = Arc::clone(state.catalog.table(&table.keyspace, &table.table)?);
        let WhereClause::Eq {
            column: w_column,
            value: w_value,
        } = where_clause
        else {
            return Err(NosqlError::Unsupported(
                "UPDATE requires an equality WHERE on the primary key".into(),
            ));
        };
        if w_column != &def.pk_column().name {
            return Err(NosqlError::Unsupported(format!(
                "UPDATE is by primary key ({})",
                def.pk_column().name
            )));
        }
        if !w_value.matches(def.pk_column().ty) {
            return Err(NosqlError::TypeMismatch {
                column: w_column.clone(),
                expected: def.pk_column().ty.name().to_string(),
                found: w_value.type_name().to_string(),
            });
        }
        let key = w_value.encode_key();
        let core = Arc::clone(state.core(&def.qualified_name()));
        let _rmw = core.rmw_lock();
        let existing = core.get(&key, u64::MAX)?;
        let mut values = existing
            .map(|r| r.values)
            .unwrap_or_else(|| vec![CqlValue::Null; def.columns.len()]);
        values[def.primary_key] = w_value.clone();
        for (column, value) in assignments {
            let idx = def
                .column_index(column)
                .ok_or_else(|| NosqlError::UnknownColumn {
                    table: def.name.clone(),
                    column: column.clone(),
                })?;
            if idx == def.primary_key {
                return Err(NosqlError::Unsupported(
                    "the primary key cannot be SET".into(),
                ));
            }
            if !value.matches(def.columns[idx].ty) {
                return Err(NosqlError::TypeMismatch {
                    column: column.clone(),
                    expected: def.columns[idx].ty.name().to_string(),
                    found: value.type_name().to_string(),
                });
            }
            values[idx] = value.clone();
        }
        self.put_row_rmw_locked(state, &def, &core, Row::new(values))
    }

    fn delete(
        &self,
        state: &EngineState,
        table: &TableRef,
        where_clause: &WhereClause,
    ) -> Result<()> {
        let def = Arc::clone(state.catalog.table(&table.keyspace, &table.table)?);
        let WhereClause::Eq {
            column: w_column,
            value: w_value,
        } = where_clause
        else {
            return Err(NosqlError::Unsupported(
                "DELETE requires an equality WHERE on the primary key".into(),
            ));
        };
        if w_column != &def.pk_column().name {
            return Err(NosqlError::Unsupported(format!(
                "DELETE is by primary key ({})",
                def.pk_column().name
            )));
        }
        let key = w_value.encode_key();
        let qualified = def.qualified_name();
        let core = Arc::clone(state.core(&qualified));
        if def.indexed_columns.is_empty() {
            // Blind tombstone: no read, no RMW lock.
            return self.commit_writes(
                state,
                vec![PendingWrite {
                    table: core,
                    qualified,
                    key,
                    row: None,
                }],
            );
        }
        let _rmw = core.rmw_lock();
        let old_row = core.get(&key, u64::MAX)?;
        let mut writes = vec![PendingWrite {
            table: Arc::clone(&core),
            qualified,
            key,
            row: None,
        }];
        if let Some(old) = old_row {
            for column in &def.indexed_columns {
                let idx = def.column_index(column).expect("index on known column");
                let value = old.values[idx].clone();
                if !value.is_null() {
                    writes.push(self.posting_write(
                        state,
                        &def,
                        column,
                        &value,
                        old.pk(&def),
                        false,
                    ));
                }
            }
        }
        self.commit_writes(state, writes)
    }

    fn truncate(&self, state: &mut EngineState, table: &TableRef) -> Result<()> {
        let def = Arc::clone(state.catalog.table(&table.keyspace, &table.table)?);
        // Checkpoint before touching the manifest: the WAL still holds this
        // table's pre-truncate mutations, and recovery would replay them
        // into the rebuilt (empty) runtime, resurrecting truncated data.
        // Flushing everything and truncating the log removes them; the
        // caller holds the state write lock, so no statement is in flight
        // and the truncated WAL loses nothing. A crash anywhere inside the
        // truncate is safe — the TRUNCATE was not yet acknowledged, so both
        // "applied" and "not applied" are legal recovery outcomes.
        self.checkpoint_all_locked(state)?;
        let rebuild = |state: &mut EngineState, name: &str| -> Result<()> {
            let qualified = format!("{}.{}", def.keyspace, name);
            let fresh_def = (**state.catalog.table(&def.keyspace, name)?).clone();
            // A background compaction job may still hold the old runtime:
            // retire it first, which waits out any in-flight merge and
            // turns later jobs into no-ops, so nothing re-publishes the
            // files this TRUNCATE is about to delete.
            if let Some(old) = state.tables.get(&qualified) {
                old.retire();
            }
            // Retire the files from the manifest first (one atomic record):
            // a crash mid-delete then leaves orphans for recovery to sweep,
            // never a manifest pointing at half-deleted tables.
            let files = state
                .tables
                .get(&qualified)
                .map(|t| t.sstable_files())
                .unwrap_or_default();
            self.manifest.commit(&ManifestEdit {
                adds: Vec::new(),
                removes: files
                    .iter()
                    .map(|f| (qualified.clone(), f.clone()))
                    .collect(),
            })?;
            for f in &files {
                self.cache.evict_file(f);
                self.vfs.delete(f)?;
            }
            state
                .tables
                .insert(qualified, self.new_table_core(fresh_def));
            Ok(())
        };
        rebuild(state, &def.name)?;
        for column in &def.indexed_columns {
            rebuild(state, &def.index_table_name(column))?;
        }
        Ok(())
    }

    /// Statistics for the planner's cost model, gathered from structures
    /// the engine already maintains (no extra bookkeeping on any hot
    /// path).
    fn table_stats(&self, core: &TableCore) -> plan::TableStats {
        let cache = self.cache.stats();
        let lookups = cache.hits + cache.misses;
        let cache_hit_rate = if lookups == 0 {
            0.0
        } else {
            cache.hits as f64 / lookups as f64
        };
        plan::TableStats {
            rows: core.estimate_rows(),
            sstables: core.sstable_count(),
            cache_hit_rate,
        }
    }

    /// Plans a `SELECT` and resolves the table runtimes its pipeline
    /// reads. The only SELECT entry point — `execute`, snapshots, and
    /// `EXPLAIN` all come through here, so semantics and plans can never
    /// diverge.
    fn plan_parts(
        &self,
        state: &EngineState,
        stmt: &Statement,
    ) -> Result<(plan::SelectPlan, exec::Cores)> {
        let Statement::Select {
            table,
            columns,
            where_clause,
            group_by,
            order_by,
            limit,
        } = stmt
        else {
            return Err(NosqlError::Unsupported(
                "EXPLAIN covers SELECT statements only".into(),
            ));
        };
        let def = Arc::clone(state.catalog.table(&table.keyspace, &table.table)?);
        let base = Arc::clone(state.core(&def.qualified_name()));
        let stats = self.table_stats(&base);
        let plan = plan::plan_select(
            &def,
            columns,
            where_clause,
            group_by,
            order_by.as_ref(),
            *limit,
            &stats,
        )?;
        let index = plan
            .root
            .scan()
            .index_table
            .as_ref()
            .map(|qualified| Arc::clone(state.core(qualified)));
        Ok((plan, exec::Cores { base, index }))
    }

    /// Executes a `SELECT` at MVCC bound `bound` through the operator
    /// pipeline: plan, build operators, drain.
    fn run_select(&self, state: &EngineState, stmt: &Statement, bound: u64) -> Result<QueryResult> {
        let (plan, cores) = self.plan_parts(state, stmt)?;
        let mut op = exec::build(&plan.root, &cores, bound);
        let rows = exec::drain(op.as_mut())?;
        Ok(QueryResult::new(plan.columns, rows))
    }

    /// `EXPLAIN <select>`: plans the inner statement and returns the plan
    /// tree as one `plan` text column, cost estimates included.
    fn explain(&self, state: &EngineState, stmt: &Statement) -> Result<QueryResult> {
        let (plan, _cores) = self.plan_parts(state, stmt)?;
        Ok(QueryResult::new(
            vec!["plan".to_string()],
            plan::explain::result_rows(&plan),
        ))
    }

    /// Flushes every memtable to disk and truncates the commit log (its
    /// contents are now redundant). Takes the state write lock, so no
    /// statement is in flight: the watermark covers every write and the
    /// truncated WAL loses nothing.
    pub(crate) fn flush_all(&self) -> Result<()> {
        let state = self.write_state();
        self.checkpoint_all_locked(&state)
    }

    /// Flush every table, then truncate the (now fully redundant) commit
    /// log. The caller holds the state write lock.
    fn checkpoint_all_locked(&self, state: &EngineState) -> Result<()> {
        for table in state.tables.values() {
            table.flush(&self.tracker, &self.registry)?;
            if table.needs_compaction() {
                self.schedule_compaction(table)?;
            }
        }
        self.wal.plain().truncate()?;
        Ok(())
    }

    /// Post-flush compaction hook. With a pool, enqueue the table (its
    /// queue slot collapses duplicate schedules) and return immediately;
    /// with `compaction_threads = 0`, merge inline right here.
    fn schedule_compaction(&self, table: &Arc<TableCore>) -> Result<()> {
        match &self.pool {
            Some(pool) => {
                pool.schedule(table, &self.registry);
                Ok(())
            }
            None => table.compact_tiered(&self.registry),
        }
    }

    /// Blocks until every queued background compaction has finished (a
    /// no-op with `compaction_threads = 0`).
    pub(crate) fn drain_compactions(&self) {
        if let Some(pool) = &self.pool {
            pool.drain();
        }
    }

    /// Compacts every table fully.
    pub(crate) fn compact_all(&self) -> Result<()> {
        let state = self.read_state();
        for table in state.tables.values() {
            table.compact(&self.registry)?;
        }
        Ok(())
    }

    /// On-disk size of one table's SSTables (hidden index tables *not*
    /// included; see [`DbCore::keyspace_size`]).
    pub(crate) fn table_size(&self, keyspace: &str, table: &str) -> Result<ByteSize> {
        let state = self.read_state();
        state.catalog.table(keyspace, table)?;
        Ok(ByteSize::bytes(
            state.core(&format!("{keyspace}.{table}")).disk_size(),
        ))
    }

    /// Total on-disk size of a keyspace: all tables including hidden index
    /// column families. This is the paper's `size_as_mb` measurement.
    ///
    /// Waits out any queued background merges first: a size probed while a
    /// merge is mid-flight would count inputs and output both (or neither
    /// merged), making the number racy.
    pub(crate) fn keyspace_size(&self, keyspace: &str) -> Result<ByteSize> {
        self.drain_compactions();
        let state = self.read_state();
        state.catalog.tables_in(keyspace)?; // validates the keyspace
        let mut total = 0;
        for (qualified, table) in &state.tables {
            if qualified.starts_with(&format!("{keyspace}.")) {
                total += table.disk_size();
            }
        }
        Ok(ByteSize::bytes(total))
    }

    pub(crate) fn commitlog_size(&self) -> ByteSize {
        ByteSize::bytes(self.wal.plain().size())
    }

    pub(crate) fn block_cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// An embedded Cassandra-like database handle.
///
/// `Db` keeps the historical single-owner, `&mut self` API; it is a thin
/// wrapper over the shared engine core, so converting to the concurrent
/// [`SharedDb`] handle is free.
#[derive(Debug)]
pub struct Db {
    core: Arc<DbCore>,
}

impl Db {
    /// Opens an engine per `options`. Without `.recover(true)` the VFS is
    /// assumed empty; with it, the on-disk state is replayed and repaired.
    pub fn open(options: OpenOptions) -> Result<Db> {
        Ok(Db {
            core: Arc::new(DbCore::open(options)?),
        })
    }

    /// Creates an engine over an in-memory VFS (tests, benchmarks).
    #[deprecated(note = "use `Db::open(OpenOptions::default())`")]
    pub fn in_memory() -> Db {
        Db::open(OpenOptions::default()).expect("opening a fresh in-memory engine cannot fail")
    }

    /// Creates an engine over an explicit VFS.
    #[deprecated(note = "use `Db::open(OpenOptions::default().vfs(vfs))`")]
    pub fn with_options(vfs: Vfs, options: DbOptions) -> Db {
        Db::open(OpenOptions::default().vfs(vfs).table_options(options.table))
            .expect("opening without recovery cannot fail")
    }

    /// Reopens an engine from an existing VFS.
    #[deprecated(note = "use `Db::open(OpenOptions::default().vfs(vfs).recover(true))`")]
    pub fn recover(vfs: Vfs, options: DbOptions) -> Result<Db> {
        Db::open(
            OpenOptions::default()
                .vfs(vfs)
                .table_options(options.table)
                .recover(true),
        )
    }

    /// A point-in-time copy of the schema catalog.
    pub fn catalog(&self) -> Catalog {
        self.core.catalog_snapshot()
    }

    /// Parses and executes one CQL statement.
    pub fn execute_cql(&mut self, cql: &str) -> Result<QueryResult> {
        let stmt = parse_statement(cql)?;
        self.execute(&stmt)
    }

    /// Executes a pre-parsed statement (the "prepared" fast path the bulk
    /// loader uses).
    pub fn execute(&mut self, stmt: &Statement) -> Result<QueryResult> {
        self.core.execute(stmt)
    }

    /// Flushes every memtable and truncates the commit log. Call before
    /// measuring sizes.
    pub fn flush_all(&mut self) -> Result<()> {
        self.core.flush_all()
    }

    /// Compacts every table fully.
    pub fn compact_all(&mut self) -> Result<()> {
        self.core.compact_all()
    }

    /// Blocks until every queued background compaction has finished (a
    /// no-op with [`OpenOptions::compaction_threads`] 0). Call before
    /// asserting on SSTable counts or measuring steady-state disk size.
    pub fn drain_compactions(&self) {
        self.core.drain_compactions()
    }

    /// On-disk size of one table's SSTables (hidden index tables *not*
    /// included; see [`Db::keyspace_size`]).
    pub fn table_size(&self, keyspace: &str, table: &str) -> Result<ByteSize> {
        self.core.table_size(keyspace, table)
    }

    /// Total on-disk size of a keyspace: all tables including hidden index
    /// column families. This is the paper's `size_as_mb` measurement.
    pub fn keyspace_size(&self, keyspace: &str) -> Result<ByteSize> {
        self.core.keyspace_size(keyspace)
    }

    /// Commit-log bytes currently on disk.
    pub fn commitlog_size(&self) -> ByteSize {
        self.core.commitlog_size()
    }

    /// Point-in-time counters of the engine's shared block cache.
    pub fn block_cache_stats(&self) -> CacheStats {
        self.core.block_cache_stats()
    }

    /// Converts this handle into the concurrent [`SharedDb`] handle.
    #[deprecated(note = "open the engine with `SharedDb::open(options)` instead")]
    pub fn into_shared(self) -> SharedDb {
        SharedDb { core: self.core }
    }
}

/// A cloneable, thread-shared engine handle.
///
/// `SharedDb` replaced the old `Arc<Mutex<Db>>` alias: the engine core is
/// internally synchronized, so clones execute statements **concurrently**
/// — snapshot-isolated reads never block behind writers, and concurrent
/// writers share WAL fsyncs through the group commit. Per-connection
/// state (the `USE` keyspace, slow-query attribution) lives on
/// [`Session`]; point-in-time reads on [`Snapshot`].
///
/// ```
/// use sc_nosql::{OpenOptions, SharedDb};
///
/// let db = SharedDb::open(OpenOptions::default()).unwrap();
/// let mut session = db.session();
/// session.execute_cql("CREATE KEYSPACE ks").unwrap();
/// session.execute_cql("CREATE TABLE ks.t (id int, PRIMARY KEY (id))").unwrap();
/// session.execute_cql("USE ks").unwrap();
/// session.execute_cql("INSERT INTO t (id) VALUES (1)").unwrap();
/// let snap = db.snapshot();
/// session.execute_cql("INSERT INTO t (id) VALUES (2)").unwrap();
/// // The snapshot still sees exactly one row.
/// assert_eq!(snap.execute_cql("SELECT * FROM ks.t").unwrap().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SharedDb {
    core: Arc<DbCore>,
}

impl SharedDb {
    /// Opens an engine per `options` behind a shared handle.
    pub fn open(options: OpenOptions) -> Result<SharedDb> {
        Ok(SharedDb {
            core: Arc::new(DbCore::open(options)?),
        })
    }

    /// Opens a new session: the unit of per-connection statement state.
    pub fn session(&self) -> Session {
        Session::new(Arc::clone(&self.core))
    }

    /// Pins a point-in-time, read-only view of the database.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::new(Arc::clone(&self.core))
    }

    /// Parses and executes one statement without session state (no `USE`
    /// resolution). Convenience for administrative one-shots.
    pub fn execute_cql(&self, cql: &str) -> Result<QueryResult> {
        let stmt = parse_statement(cql)?;
        self.core.execute(&stmt)
    }

    /// Flushes every memtable and truncates the commit log. Waits for all
    /// in-flight statements (state write lock).
    pub fn flush_all(&self) -> Result<()> {
        self.core.flush_all()
    }

    /// Compacts every table fully.
    pub fn compact_all(&self) -> Result<()> {
        self.core.compact_all()
    }

    /// Blocks until every queued background compaction has finished (a
    /// no-op with [`OpenOptions::compaction_threads`] 0).
    pub fn drain_compactions(&self) {
        self.core.drain_compactions()
    }

    /// On-disk size of one table's SSTables.
    pub fn table_size(&self, keyspace: &str, table: &str) -> Result<ByteSize> {
        self.core.table_size(keyspace, table)
    }

    /// Total on-disk size of a keyspace including hidden index tables.
    pub fn keyspace_size(&self, keyspace: &str) -> Result<ByteSize> {
        self.core.keyspace_size(keyspace)
    }

    /// Commit-log bytes currently on disk.
    pub fn commitlog_size(&self) -> ByteSize {
        self.core.commitlog_size()
    }

    /// Point-in-time counters of the engine's shared block cache.
    pub fn block_cache_stats(&self) -> CacheStats {
        self.core.block_cache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Db {
        let mut db = Db::open(OpenOptions::default()).unwrap();
        db.execute_cql("CREATE KEYSPACE ks").unwrap();
        db.execute_cql(
            "CREATE TABLE ks.cells (id int, key text, parent int, leaf boolean, \
             kids set<int>, PRIMARY KEY (id))",
        )
        .unwrap();
        db
    }

    #[test]
    fn insert_select_by_pk() {
        let mut db = setup();
        db.execute_cql(
            "INSERT INTO ks.cells (id, key, parent, leaf, kids) \
             VALUES (3, 'Fenian St', 1, true, {4, 5})",
        )
        .unwrap();
        let r = db
            .execute_cql("SELECT key, kids FROM ks.cells WHERE id = 3")
            .unwrap();
        assert_eq!(r.columns(), vec!["key", "kids"]);
        assert_eq!(
            r.rows(),
            vec![vec![
                CqlValue::Text("Fenian St".into()),
                CqlValue::int_set([4, 5])
            ]]
        );
    }

    #[test]
    fn insert_is_upsert() {
        let mut db = setup();
        db.execute_cql("INSERT INTO ks.cells (id, key) VALUES (1, 'old')")
            .unwrap();
        db.execute_cql("INSERT INTO ks.cells (id, key) VALUES (1, 'new')")
            .unwrap();
        let r = db
            .execute_cql("SELECT key FROM ks.cells WHERE id = 1")
            .unwrap();
        assert_eq!(r.rows(), vec![vec![CqlValue::Text("new".into())]]);
    }

    #[test]
    fn unbound_columns_are_null() {
        let mut db = setup();
        db.execute_cql("INSERT INTO ks.cells (id) VALUES (9)")
            .unwrap();
        let r = db
            .execute_cql("SELECT key, leaf FROM ks.cells WHERE id = 9")
            .unwrap();
        assert_eq!(r.rows(), vec![vec![CqlValue::Null, CqlValue::Null]]);
    }

    #[test]
    fn unknown_select_column_is_typed_everywhere() {
        // Every position a column can appear in a SELECT reports the same
        // typed error, regardless of access path.
        let mut db = setup();
        db.execute_cql("INSERT INTO ks.cells (id, key) VALUES (1, 'a')")
            .unwrap();
        for cql in [
            "SELECT nope FROM ks.cells",
            "SELECT nope FROM ks.cells WHERE id = 1",
            "SELECT id, nope FROM ks.cells WHERE id IN (1, 2)",
            "SELECT * FROM ks.cells WHERE nope = 1",
            "SELECT * FROM ks.cells WHERE id = 1 AND nope > 2",
            "SELECT * FROM ks.cells ORDER BY nope",
            "SELECT nope, COUNT(*) FROM ks.cells GROUP BY nope",
            "SELECT SUM(nope) FROM ks.cells",
            "EXPLAIN SELECT nope FROM ks.cells",
        ] {
            match db.execute_cql(cql) {
                Err(NosqlError::UnknownColumn { table, column }) => {
                    assert_eq!(
                        (table.as_str(), column.as_str()),
                        ("cells", "nope"),
                        "{cql}"
                    );
                }
                other => panic!("{cql}: expected UnknownColumn, got {other:?}"),
            }
        }
    }

    #[test]
    fn type_checking() {
        let mut db = setup();
        assert!(matches!(
            db.execute_cql("INSERT INTO ks.cells (id, key) VALUES (1, 2)"),
            Err(NosqlError::TypeMismatch { .. })
        ));
        assert!(matches!(
            db.execute_cql("INSERT INTO ks.cells (key) VALUES ('x')"),
            Err(NosqlError::MissingPrimaryKey(_))
        ));
        assert!(matches!(
            db.execute_cql("INSERT INTO ks.cells (id, nope) VALUES (1, 2)"),
            Err(NosqlError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn in_list_on_primary_key_is_multi_point() {
        let mut db = setup();
        for i in 0..10 {
            db.execute_cql(&format!(
                "INSERT INTO ks.cells (id, key) VALUES ({i}, 'k{i}')"
            ))
            .unwrap();
        }
        // Survives a flush (keys come back from SSTables too).
        db.flush_all().unwrap();
        let r = db
            .execute_cql("SELECT id, key FROM ks.cells WHERE id IN (7, 2, 2, 99)")
            .unwrap();
        // Statement order, duplicates collapsed, missing keys skipped.
        let ids: Vec<i64> = r.iter().map(|row| row.get_int("id").unwrap()).collect();
        assert_eq!(ids, vec![7, 2]);
        // The empty list matches nothing.
        let r = db
            .execute_cql("SELECT id FROM ks.cells WHERE id IN ()")
            .unwrap();
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn in_list_on_indexed_and_plain_columns() {
        let mut db = setup();
        db.execute_cql("CREATE INDEX ON ks.cells (parent)").unwrap();
        for i in 0..9 {
            db.execute_cql(&format!(
                "INSERT INTO ks.cells (id, key, parent) VALUES ({i}, 'k{}', {})",
                i % 2,
                i % 3
            ))
            .unwrap();
        }
        // Indexed column: union of postings.
        let r = db
            .execute_cql("SELECT id FROM ks.cells WHERE parent IN (0, 2)")
            .unwrap();
        let mut ids: Vec<i64> = r.iter().map(|row| row.get_int("id").unwrap()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 2, 3, 5, 6, 8]);
        // Unindexed column: scan + membership filter.
        let r = db
            .execute_cql("SELECT id FROM ks.cells WHERE key IN ('k1')")
            .unwrap();
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn update_and_delete_reject_in_lists() {
        let mut db = setup();
        assert!(matches!(
            db.execute_cql("UPDATE ks.cells SET key = 'x' WHERE id IN (1, 2)"),
            Err(NosqlError::Unsupported(_))
        ));
        assert!(matches!(
            db.execute_cql("DELETE FROM ks.cells WHERE id IN (1, 2)"),
            Err(NosqlError::Unsupported(_))
        ));
    }

    #[test]
    fn secondary_index_lookup() {
        let mut db = setup();
        db.execute_cql("CREATE INDEX ON ks.cells (parent)").unwrap();
        for i in 0..10 {
            db.execute_cql(&format!(
                "INSERT INTO ks.cells (id, key, parent) VALUES ({i}, 'k{i}', {})",
                i % 3
            ))
            .unwrap();
        }
        let r = db
            .execute_cql("SELECT id FROM ks.cells WHERE parent = 1")
            .unwrap();
        let mut ids: Vec<i64> = r.iter().map(|row| row.get_int("id").unwrap()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 4, 7]);
    }

    #[test]
    fn index_backfills_existing_rows() {
        let mut db = setup();
        db.execute_cql("INSERT INTO ks.cells (id, parent) VALUES (1, 42)")
            .unwrap();
        db.execute_cql("CREATE INDEX ON ks.cells (parent)").unwrap();
        let r = db
            .execute_cql("SELECT id FROM ks.cells WHERE parent = 42")
            .unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn index_tracks_overwrites_and_deletes() {
        let mut db = setup();
        db.execute_cql("CREATE INDEX ON ks.cells (parent)").unwrap();
        db.execute_cql("INSERT INTO ks.cells (id, parent) VALUES (1, 10)")
            .unwrap();
        db.execute_cql("INSERT INTO ks.cells (id, parent) VALUES (1, 20)")
            .unwrap();
        assert!(db
            .execute_cql("SELECT id FROM ks.cells WHERE parent = 10")
            .unwrap()
            .is_empty());
        assert_eq!(
            db.execute_cql("SELECT id FROM ks.cells WHERE parent = 20")
                .unwrap()
                .len(),
            1
        );
        db.execute_cql("DELETE FROM ks.cells WHERE id = 1").unwrap();
        assert!(db
            .execute_cql("SELECT id FROM ks.cells WHERE parent = 20")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn nulls_are_not_indexed() {
        let mut db = setup();
        db.execute_cql("CREATE INDEX ON ks.cells (parent)").unwrap();
        db.execute_cql("INSERT INTO ks.cells (id, key) VALUES (1, 'x')")
            .unwrap();
        // Index table stays empty.
        let idx_size = db.table_size("ks", "cells__idx_parent").unwrap();
        db.flush_all().unwrap();
        let _ = idx_size;
        assert!(db
            .execute_cql("SELECT id FROM ks.cells WHERE parent = 0")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn unindexed_filter_falls_back_to_scan() {
        let mut db = setup();
        db.execute_cql("INSERT INTO ks.cells (id, key) VALUES (1, 'hit')")
            .unwrap();
        db.execute_cql("INSERT INTO ks.cells (id, key) VALUES (2, 'miss')")
            .unwrap();
        let r = db
            .execute_cql("SELECT id FROM ks.cells WHERE key = 'hit'")
            .unwrap();
        assert_eq!(r.rows(), vec![vec![CqlValue::Int(1)]]);
    }

    #[test]
    fn select_all_and_limit() {
        let mut db = setup();
        for i in 0..5 {
            db.execute_cql(&format!("INSERT INTO ks.cells (id) VALUES ({i})"))
                .unwrap();
        }
        let r = db.execute_cql("SELECT * FROM ks.cells").unwrap();
        assert_eq!(r.len(), 5);
        assert_eq!(r.columns().len(), 5);
        let r = db.execute_cql("SELECT id FROM ks.cells LIMIT 2").unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn truncate_clears_table_and_indexes() {
        let mut db = setup();
        db.execute_cql("CREATE INDEX ON ks.cells (parent)").unwrap();
        db.execute_cql("INSERT INTO ks.cells (id, parent) VALUES (1, 2)")
            .unwrap();
        db.execute_cql("TRUNCATE ks.cells").unwrap();
        assert!(db.execute_cql("SELECT * FROM ks.cells").unwrap().is_empty());
        assert!(db
            .execute_cql("SELECT id FROM ks.cells WHERE parent = 2")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn sizes_after_flush() {
        let mut db = setup();
        for i in 0..100 {
            db.execute_cql(&format!(
                "INSERT INTO ks.cells (id, key) VALUES ({i}, 'station name {i}')"
            ))
            .unwrap();
        }
        assert!(db.commitlog_size().as_bytes() > 0);
        db.flush_all().unwrap();
        assert_eq!(db.commitlog_size().as_bytes(), 0);
        let size = db.table_size("ks", "cells").unwrap();
        assert!(size.as_bytes() > 2000, "got {size}");
        assert!(db.keyspace_size("ks").unwrap().as_bytes() > 0);
    }

    #[test]
    fn index_inflates_keyspace_size() {
        let mut plain = setup();
        let mut indexed = setup();
        indexed
            .execute_cql("CREATE INDEX ON ks.cells (parent)")
            .unwrap();
        for db in [&mut plain, &mut indexed] {
            for i in 0..200 {
                db.execute_cql(&format!(
                    "INSERT INTO ks.cells (id, parent) VALUES ({i}, {})",
                    i % 10
                ))
                .unwrap();
            }
            db.flush_all().unwrap();
        }
        let p = plain.keyspace_size("ks").unwrap();
        let x = indexed.keyspace_size("ks").unwrap();
        assert!(x > p, "indexed {x} must exceed plain {p}");
    }

    #[test]
    fn recovery_from_schema_journal_and_commitlog() {
        let vfs = Vfs::memory();
        {
            let mut db = Db::open(OpenOptions::default().vfs(vfs.clone())).unwrap();
            db.execute_cql("CREATE KEYSPACE ks").unwrap();
            db.execute_cql("CREATE TABLE ks.t (id int, v text, PRIMARY KEY (id))")
                .unwrap();
            db.execute_cql("INSERT INTO ks.t (id, v) VALUES (1, 'logged')")
                .unwrap();
            // No flush: the row lives only in the commit log.
        }
        let mut db = Db::open(OpenOptions::default().vfs(vfs).recover(true)).unwrap();
        let r = db.execute_cql("SELECT v FROM ks.t WHERE id = 1").unwrap();
        assert_eq!(r.rows(), vec![vec![CqlValue::Text("logged".into())]]);
    }

    #[test]
    fn recovery_reattaches_sstables() {
        let vfs = Vfs::memory();
        {
            let mut db = Db::open(OpenOptions::default().vfs(vfs.clone())).unwrap();
            db.execute_cql("CREATE KEYSPACE ks").unwrap();
            db.execute_cql("CREATE TABLE ks.t (id int, v text, PRIMARY KEY (id))")
                .unwrap();
            db.execute_cql("INSERT INTO ks.t (id, v) VALUES (1, 'flushed')")
                .unwrap();
            db.flush_all().unwrap();
        }
        let mut db = Db::open(OpenOptions::default().vfs(vfs).recover(true)).unwrap();
        let r = db.execute_cql("SELECT v FROM ks.t WHERE id = 1").unwrap();
        assert_eq!(r.rows(), vec![vec![CqlValue::Text("flushed".into())]]);
    }

    #[test]
    fn recovery_keeps_sequences_above_flushed_writes() {
        // Regression: after flush_all the WAL is empty, so the sequence
        // floor must come from the SSTables. A fresh write allocated below
        // the flushed sequences would be invisibly shadowed by old data.
        let vfs = Vfs::memory();
        {
            let mut db = Db::open(OpenOptions::default().vfs(vfs.clone())).unwrap();
            db.execute_cql("CREATE KEYSPACE ks").unwrap();
            db.execute_cql("CREATE TABLE ks.t (id int, v text, PRIMARY KEY (id))")
                .unwrap();
            db.execute_cql("INSERT INTO ks.t (id, v) VALUES (1, 'old')")
                .unwrap();
            db.flush_all().unwrap();
        }
        let mut db = Db::open(OpenOptions::default().vfs(vfs).recover(true)).unwrap();
        db.execute_cql("INSERT INTO ks.t (id, v) VALUES (1, 'new')")
            .unwrap();
        let r = db.execute_cql("SELECT v FROM ks.t WHERE id = 1").unwrap();
        assert_eq!(r.rows(), vec![vec![CqlValue::Text("new".into())]]);
    }

    #[test]
    fn compaction_does_not_resurrect_deletes_kept_for_snapshots() {
        // End-to-end run of the review scenario: a snapshot keeps the
        // pre-delete version buffered across the flush (the memtable "hole"
        // case); after the snapshot drops, a full compaction drops the
        // tombstone from disk and must purge that stale buffered version
        // too, or the deleted row comes back.
        let shared = SharedDb::open(OpenOptions::default()).unwrap();
        let mut s = shared.session();
        s.execute_cql("CREATE KEYSPACE ks").unwrap();
        s.execute_cql("CREATE TABLE ks.t (id int, v text, PRIMARY KEY (id))")
            .unwrap();
        s.execute_cql("INSERT INTO ks.t (id, v) VALUES (1, 'doomed')")
            .unwrap();
        let snap = shared.snapshot();
        s.execute_cql("DELETE FROM ks.t WHERE id = 1").unwrap();
        shared.flush_all().unwrap();
        s.execute_cql("INSERT INTO ks.t (id, v) VALUES (2, 'other')")
            .unwrap();
        shared.flush_all().unwrap();
        drop(snap);
        shared.compact_all().unwrap();
        assert!(
            s.execute_cql("SELECT v FROM ks.t WHERE id = 1")
                .unwrap()
                .is_empty(),
            "compaction resurrected a deleted row"
        );
        assert_eq!(s.execute_cql("SELECT * FROM ks.t").unwrap().len(), 1);
    }

    #[test]
    fn truncate_survives_crash_recovery() {
        // An acknowledged TRUNCATE must stay effective after a crash: the
        // WAL records written before it must not be replayed into the
        // rebuilt table. The sibling table keeps its unflushed row, proving
        // recovery still replays what it should.
        let vfs = Vfs::memory();
        {
            let mut db = Db::open(OpenOptions::default().vfs(vfs.clone())).unwrap();
            db.execute_cql("CREATE KEYSPACE ks").unwrap();
            db.execute_cql("CREATE TABLE ks.a (id int, v text, PRIMARY KEY (id))")
                .unwrap();
            db.execute_cql("CREATE TABLE ks.b (id int, v text, PRIMARY KEY (id))")
                .unwrap();
            db.execute_cql("INSERT INTO ks.a (id, v) VALUES (1, 'pre')")
                .unwrap();
            db.execute_cql("INSERT INTO ks.a (id, v) VALUES (2, 'pre')")
                .unwrap();
            db.execute_cql("INSERT INTO ks.b (id, v) VALUES (7, 'keep')")
                .unwrap();
            db.execute_cql("TRUNCATE ks.a").unwrap();
            db.execute_cql("INSERT INTO ks.a (id, v) VALUES (3, 'post')")
                .unwrap();
            // Crash: drop without flushing.
        }
        let mut db = Db::open(OpenOptions::default().vfs(vfs).recover(true)).unwrap();
        let r = db.execute_cql("SELECT id FROM ks.a").unwrap();
        let ids: Vec<i64> = r.iter().map(|row| row.get_int("id").unwrap()).collect();
        assert_eq!(ids, vec![3], "pre-truncate rows resurrected by replay");
        let r = db.execute_cql("SELECT v FROM ks.b WHERE id = 7").unwrap();
        assert_eq!(r.rows(), vec![vec![CqlValue::Text("keep".into())]]);
    }

    #[test]
    fn threshold_flushes_checkpoint_the_commit_log() {
        // Under sustained writes with no explicit flush_all, post-flush
        // checkpoints must keep deleting flushed-past WAL segments: the log
        // stays bounded and recovery replays a suffix, not the whole
        // history.
        let vfs = Vfs::memory();
        {
            let mut db = Db::open(
                OpenOptions::default()
                    .vfs(vfs.clone())
                    .memtable_flush_bytes(512)
                    .wal_segment_bytes(1024),
            )
            .unwrap();
            db.execute_cql("CREATE KEYSPACE ks").unwrap();
            db.execute_cql("CREATE TABLE ks.t (id int, v text, PRIMARY KEY (id))")
                .unwrap();
            for i in 0..400 {
                db.execute_cql(&format!(
                    "INSERT INTO ks.t (id, v) VALUES ({i}, 'payload number {i}')"
                ))
                .unwrap();
            }
            let wal = db.commitlog_size().as_bytes();
            assert!(
                wal < 16 * 1024,
                "WAL grew unbounded despite threshold flushes: {wal} bytes"
            );
            // Crash without flush_all.
        }
        let mut db = Db::open(OpenOptions::default().vfs(vfs).recover(true)).unwrap();
        let r = db.execute_cql("SELECT * FROM ks.t").unwrap();
        assert_eq!(r.len(), 400, "checkpointing lost acknowledged writes");
    }

    #[test]
    fn shared_handle_runs_sessions_concurrently() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Db>();
        assert_send::<SharedDb>();
        assert_sync::<SharedDb>();
        assert_send::<Session>();

        let shared = SharedDb::open(OpenOptions::default()).unwrap();
        let mut admin = shared.session();
        admin.execute_cql("CREATE KEYSPACE ks").unwrap();
        admin
            .execute_cql("CREATE TABLE ks.t (id int, v int, PRIMARY KEY (id))")
            .unwrap();
        std::thread::scope(|scope| {
            for t in 0..4i64 {
                let shared = shared.clone();
                scope.spawn(move || {
                    let mut session = shared.session();
                    session.execute_cql("USE ks").unwrap();
                    for i in 0..16i64 {
                        session
                            .execute_cql(&format!(
                                "INSERT INTO t (id, v) VALUES ({}, {t})",
                                t * 100 + i
                            ))
                            .unwrap();
                    }
                });
            }
        });
        let n = admin.execute_cql("SELECT COUNT(*) FROM ks.t").unwrap();
        assert_eq!(n.first().unwrap().get_int("count").unwrap(), 64);
    }

    #[test]
    fn session_use_resolves_unqualified_tables() {
        let shared = SharedDb::open(OpenOptions::default()).unwrap();
        let mut s = shared.session();
        s.execute_cql("CREATE KEYSPACE ks").unwrap();
        s.execute_cql("CREATE TABLE ks.t (id int, PRIMARY KEY (id))")
            .unwrap();
        // Unqualified without USE fails...
        assert!(s.execute_cql("INSERT INTO t (id) VALUES (1)").is_err());
        // ...USE of a missing keyspace fails...
        assert!(matches!(
            s.execute_cql("USE nope"),
            Err(NosqlError::UnknownKeyspace(_))
        ));
        assert_eq!(s.keyspace(), None);
        // ...and after USE the same statement lands in ks.t.
        s.execute_cql("USE ks").unwrap();
        assert_eq!(s.keyspace(), Some("ks"));
        s.execute_cql("INSERT INTO t (id) VALUES (1)").unwrap();
        assert_eq!(s.execute_cql("SELECT * FROM t").unwrap().len(), 1);
        // Qualified statements ignore the session keyspace.
        assert_eq!(s.execute_cql("SELECT * FROM ks.t").unwrap().len(), 1);
        // A second session has its own (empty) state.
        let mut other = shared.session();
        assert!(other.execute_cql("SELECT * FROM t").is_err());
        // The bare engine core rejects USE outright.
        let mut db = Db::open(OpenOptions::default()).unwrap();
        assert!(matches!(
            db.execute_cql("USE ks"),
            Err(NosqlError::Unsupported(_))
        ));
    }

    #[test]
    fn snapshots_are_stable_and_read_only() {
        let shared = SharedDb::open(OpenOptions::default()).unwrap();
        let mut s = shared.session();
        s.execute_cql("CREATE KEYSPACE ks").unwrap();
        s.execute_cql("CREATE TABLE ks.t (id int, v text, PRIMARY KEY (id))")
            .unwrap();
        s.execute_cql("INSERT INTO ks.t (id, v) VALUES (1, 'before')")
            .unwrap();
        let snap = shared.snapshot();
        s.execute_cql("INSERT INTO ks.t (id, v) VALUES (1, 'after')")
            .unwrap();
        s.execute_cql("INSERT INTO ks.t (id, v) VALUES (2, 'new-row')")
            .unwrap();
        // The snapshot's view is frozen at its creation point...
        let r = snap.execute_cql("SELECT v FROM ks.t WHERE id = 1").unwrap();
        assert_eq!(r.rows(), vec![vec![CqlValue::Text("before".into())]]);
        assert_eq!(snap.execute_cql("SELECT * FROM ks.t").unwrap().len(), 1);
        // ...even across a flush of the newer data.
        shared.flush_all().unwrap();
        let r = snap.execute_cql("SELECT v FROM ks.t WHERE id = 1").unwrap();
        assert_eq!(r.rows(), vec![vec![CqlValue::Text("before".into())]]);
        // Live reads see everything.
        assert_eq!(s.execute_cql("SELECT * FROM ks.t").unwrap().len(), 2);
        // Writes through a snapshot are rejected.
        assert!(matches!(
            snap.execute_cql("INSERT INTO ks.t (id) VALUES (9)"),
            Err(NosqlError::Unsupported(_))
        ));
        drop(snap);
    }

    #[test]
    fn concurrent_updates_do_not_lose_columns() {
        // UPDATE is a read-modify-write; the per-table RMW lock must keep
        // two concurrent single-column UPDATEs from erasing each other.
        let shared = SharedDb::open(OpenOptions::default()).unwrap();
        let mut s = shared.session();
        s.execute_cql("CREATE KEYSPACE ks").unwrap();
        s.execute_cql("CREATE TABLE ks.t (id int, a int, b int, PRIMARY KEY (id))")
            .unwrap();
        s.execute_cql("INSERT INTO ks.t (id, a, b) VALUES (1, 0, 0)")
            .unwrap();
        std::thread::scope(|scope| {
            for col in ["a", "b"] {
                let shared = shared.clone();
                scope.spawn(move || {
                    let mut session = shared.session();
                    for i in 1..=50i64 {
                        session
                            .execute_cql(&format!("UPDATE ks.t SET {col} = {i} WHERE id = 1"))
                            .unwrap();
                    }
                });
            }
        });
        let r = s.execute_cql("SELECT a, b FROM ks.t WHERE id = 1").unwrap();
        assert_eq!(
            r.rows(),
            vec![vec![CqlValue::Int(50), CqlValue::Int(50)]],
            "a concurrent UPDATE erased the other column's writes"
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shared_shims_still_work() {
        // Compatibility shims for the pre-MVCC API shape.
        let shared = OpenOptions::default().open_shared().unwrap();
        let mut s = shared.session();
        s.execute_cql("CREATE KEYSPACE ks").unwrap();
        let db = Db::open(OpenOptions::default()).unwrap();
        let shared2 = db.into_shared();
        let mut s2 = shared2.session();
        s2.execute_cql("CREATE KEYSPACE ks2").unwrap();
        assert!(shared2.clone().session().execute_cql("USE ks2").is_ok());
    }

    #[test]
    fn group_commit_delay_coalesces_writers() {
        let shared =
            SharedDb::open(OpenOptions::default().group_commit_delay(Duration::from_micros(200)))
                .unwrap();
        let mut s = shared.session();
        s.execute_cql("CREATE KEYSPACE ks").unwrap();
        s.execute_cql("CREATE TABLE ks.t (id int, PRIMARY KEY (id))")
            .unwrap();
        std::thread::scope(|scope| {
            for t in 0..8i64 {
                let shared = shared.clone();
                scope.spawn(move || {
                    let mut session = shared.session();
                    for i in 0..8i64 {
                        session
                            .execute_cql(&format!(
                                "INSERT INTO ks.t (id) VALUES ({})",
                                t * 1000 + i
                            ))
                            .unwrap();
                    }
                });
            }
        });
        let n = s.execute_cql("SELECT COUNT(*) FROM ks.t").unwrap();
        assert_eq!(n.first().unwrap().get_int("count").unwrap(), 64);
    }

    #[test]
    fn batch_executes_all() {
        let mut db = setup();
        db.execute_cql(
            "BEGIN BATCH \
             INSERT INTO ks.cells (id) VALUES (1); \
             INSERT INTO ks.cells (id) VALUES (2); \
             APPLY BATCH",
        )
        .unwrap();
        assert_eq!(db.execute_cql("SELECT * FROM ks.cells").unwrap().len(), 2);
    }
}
