//! The database engine: catalog + table runtimes + write/read paths.

use crate::cache::{BlockCache, CacheStats, DEFAULT_BLOCK_CACHE_BYTES};
use crate::commitlog::CommitLog;
use crate::cql::ast::{SelectColumns, Statement, TableRef, WhereClause};
use crate::cql::parse_statement;
use crate::error::{NosqlError, Result};
use crate::manifest::{Manifest, ManifestEdit};
use crate::result::QueryResult;
use crate::row::Row;
use crate::schema::{Catalog, ColumnDef, TableDef};
use crate::table::{TableOptions, TableRuntime};
use crate::types::{CqlType, CqlValue};
use sc_encoding::ByteSize;
use sc_storage::Vfs;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// A thread-shared engine handle: one coarse mutex over the whole engine.
///
/// This is the unit `sc-server` sessions serialize on — every network
/// session clones the `Arc` and locks around each statement. Reads and
/// writes are fully serialized for now; lock-free snapshot reads (MVCC)
/// are the roadmap's next engine milestone and will replace this alias
/// without changing callers' cloning pattern.
pub type SharedDb = Arc<Mutex<Db>>;

/// Engine construction options (legacy shape, kept for the deprecated
/// constructors; new code uses [`OpenOptions`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct DbOptions {
    /// Per-table flush/compaction tuning.
    pub table: TableOptions,
}

/// Builder for [`Db::open`], the single way to construct an engine.
///
/// ```
/// use sc_nosql::{Db, OpenOptions};
///
/// let db = Db::open(OpenOptions::default()).unwrap(); // fresh, in-memory
/// # drop(db);
/// ```
///
/// Reopening an existing disk runs full crash recovery:
///
/// ```no_run
/// # use sc_nosql::{Db, OpenOptions};
/// # let vfs = sc_storage::Vfs::memory();
/// let db = Db::open(OpenOptions::default().vfs(vfs).recover(true)).unwrap();
/// ```
#[derive(Debug, Clone, Default)]
pub struct OpenOptions {
    vfs: Option<Vfs>,
    recover: bool,
    table: TableOptions,
    block_cache_bytes: Option<usize>,
}

impl OpenOptions {
    /// Starts from the defaults: fresh in-memory VFS, no recovery, default
    /// flush/compaction tuning.
    pub fn new() -> OpenOptions {
        OpenOptions::default()
    }

    /// Opens over an explicit VFS (defaults to a fresh in-memory one).
    pub fn vfs(mut self, vfs: Vfs) -> OpenOptions {
        self.vfs = Some(vfs);
        self
    }

    /// Runs crash recovery on open: schema-journal replay (with torn-tail
    /// repair), manifest-ordered SSTable attach, orphan-file sweep, and
    /// commit-log replay (with torn-tail repair).
    pub fn recover(mut self, recover: bool) -> OpenOptions {
        self.recover = recover;
        self
    }

    /// Memtable bytes that trigger a flush.
    pub fn memtable_flush_bytes(mut self, bytes: usize) -> OpenOptions {
        self.table.memtable_flush_bytes = bytes;
        self
    }

    /// SSTable count that triggers compaction.
    pub fn compaction_threshold(mut self, count: usize) -> OpenOptions {
        self.table.compaction_threshold = count;
        self
    }

    /// Sets the whole per-table tuning block at once.
    pub fn table_options(mut self, table: TableOptions) -> OpenOptions {
        self.table = table;
        self
    }

    /// Byte budget of the engine-wide shared SSTable block cache (default
    /// 4 MiB; 0 disables caching).
    pub fn block_cache_bytes(mut self, bytes: usize) -> OpenOptions {
        self.block_cache_bytes = Some(bytes);
        self
    }

    /// Builds the engine; sugar for [`Db::open`].
    pub fn open(self) -> Result<Db> {
        Db::open(self)
    }

    /// Builds the engine and wraps it in a [`SharedDb`] handle; sugar for
    /// `Db::open(..).map(Db::into_shared)`.
    pub fn open_shared(self) -> Result<SharedDb> {
        Db::open(self).map(Db::into_shared)
    }
}

/// An embedded Cassandra-like database.
#[derive(Debug)]
pub struct Db {
    vfs: Vfs,
    manifest: Manifest,
    catalog: Catalog,
    tables: HashMap<String, TableRuntime>,
    log: CommitLog,
    clock: u64,
    options: DbOptions,
    /// Shared across every table's SSTables; see [`BlockCache`].
    cache: BlockCache,
}

const SCHEMA_LOG: &str = "schema.log";
const COMMIT_LOG: &str = "commitlog";

impl Db {
    /// Opens an engine per `options`. Without `.recover(true)` the VFS is
    /// assumed empty; with it, the on-disk state is replayed and repaired.
    pub fn open(options: OpenOptions) -> Result<Db> {
        let vfs = options.vfs.unwrap_or_else(Vfs::memory);
        let manifest = Manifest::open(vfs.clone());
        let log = CommitLog::open(vfs.clone(), COMMIT_LOG);
        let mut db = Db {
            vfs,
            manifest,
            catalog: Catalog::new(),
            tables: HashMap::new(),
            log,
            clock: 0,
            options: DbOptions {
                table: options.table,
            },
            cache: BlockCache::new(
                options
                    .block_cache_bytes
                    .unwrap_or(DEFAULT_BLOCK_CACHE_BYTES),
            ),
        };
        if options.recover {
            db.recover_state()?;
        }
        // Mark the disk as manifest-managed from the very first open, so a
        // crash during the first flush can never be mistaken for a
        // pre-manifest layout.
        db.manifest.ensure_exists()?;
        Ok(db)
    }

    /// Creates an engine over an in-memory VFS (tests, benchmarks).
    #[deprecated(note = "use `Db::open(OpenOptions::default())`")]
    pub fn in_memory() -> Db {
        Db::open(OpenOptions::default()).expect("opening a fresh in-memory engine cannot fail")
    }

    /// Creates an engine over an explicit VFS.
    #[deprecated(note = "use `Db::open(OpenOptions::default().vfs(vfs))`")]
    pub fn with_options(vfs: Vfs, options: DbOptions) -> Db {
        Db::open(OpenOptions::default().vfs(vfs).table_options(options.table))
            .expect("opening without recovery cannot fail")
    }

    /// Reopens an engine from an existing VFS.
    #[deprecated(note = "use `Db::open(OpenOptions::default().vfs(vfs).recover(true))`")]
    pub fn recover(vfs: Vfs, options: DbOptions) -> Result<Db> {
        Db::open(
            OpenOptions::default()
                .vfs(vfs)
                .table_options(options.table)
                .recover(true),
        )
    }

    /// Crash recovery: rebuild catalog and runtimes from the journals,
    /// repairing every torn tail and sweeping unpublished files, so that the
    /// reopened engine contains exactly the acknowledged writes.
    fn recover_state(&mut self) -> Result<()> {
        let _span = crate::obs::nosql().recovery.start();
        self.replay_schema_journal()?;
        // Disks written before the manifest existed have SSTables but no
        // MANIFEST: adopt them in name order and publish that as the first
        // manifest record.
        if !self.manifest.exists() {
            self.adopt_legacy_sstables()?;
        }
        let live = self.manifest.repair()?;
        for (qualified, files) in &live {
            if let Some(rt) = self.tables.get_mut(qualified) {
                // Manifest order is age order — not name order, because a
                // tiered merge's output sits mid-sequence in age.
                for file in files {
                    rt.attach_sstable(file)?;
                }
            }
        }
        self.sweep_orphans(&live)?;
        // Replay surviving commit-log records; `repair` truncates a torn
        // final record so later appends stay reachable.
        let records = self.log.repair()?;
        if sc_obs::enabled() {
            crate::obs::nosql()
                .replayed_records
                .add(records.len() as u64);
        }
        let mut max_ts = 0;
        for record in records {
            max_ts = max_ts.max(record.timestamp);
            if let Some(rt) = self.tables.get_mut(&record.table) {
                rt.apply_log_record(record)?;
            }
        }
        self.clock = max_ts + 1;
        Ok(())
    }

    /// Replays DDL from the schema journal. The journal is line-framed; a
    /// crash mid-append leaves a trailing segment without a terminating
    /// newline, which is truncated away. A *complete* line that fails to
    /// parse is genuine corruption and still errors.
    fn replay_schema_journal(&mut self) -> Result<()> {
        let data = match self.vfs.read_all(SCHEMA_LOG) {
            Ok(d) => d,
            Err(sc_storage::StorageError::NotFound(_)) => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        let good_len = data.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
        if good_len < data.len() {
            self.vfs.truncate(SCHEMA_LOG, good_len as u64)?;
        }
        let text = std::str::from_utf8(&data[..good_len])
            .map_err(|_| NosqlError::Corrupt("schema journal is not UTF-8".into()))?;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let stmt = parse_statement(line)?;
            self.apply_ddl(&stmt, false)?;
        }
        Ok(())
    }

    /// Adopts pre-manifest SSTables (best available order: file name).
    fn adopt_legacy_sstables(&mut self) -> Result<()> {
        let mut edit = ManifestEdit::default();
        let qualified_names: Vec<String> = self.tables.keys().cloned().collect();
        for qualified in qualified_names {
            let prefix = {
                let def = self.tables[&qualified].def();
                format!("{}/{}/sst-", def.keyspace, def.name)
            };
            for file in self.vfs.list(&prefix)? {
                edit.adds.push((qualified.clone(), file));
            }
        }
        self.manifest.commit(&edit)?;
        Ok(())
    }

    /// Deletes SSTable files the manifest does not consider live: leftovers
    /// of flushes/compactions that crashed between writing data and
    /// publishing it, or after publishing a swap but before deleting inputs.
    fn sweep_orphans(&mut self, live: &BTreeMap<String, Vec<String>>) -> Result<()> {
        let live_files: HashSet<&str> = live.values().flatten().map(String::as_str).collect();
        for file in self.vfs.list("")? {
            if file.contains("/sst-") && !live_files.contains(file.as_str()) {
                self.vfs.delete(&file)?;
            }
        }
        Ok(())
    }

    fn next_ts(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// The schema catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Parses and executes one CQL statement.
    pub fn execute_cql(&mut self, cql: &str) -> Result<QueryResult> {
        let stmt = parse_statement(cql)?;
        self.execute(&stmt)
    }

    /// Executes a pre-parsed statement (the "prepared" fast path the bulk
    /// loader uses).
    pub fn execute(&mut self, stmt: &Statement) -> Result<QueryResult> {
        match stmt {
            Statement::CreateKeyspace { .. }
            | Statement::CreateTable { .. }
            | Statement::CreateIndex { .. } => {
                self.apply_ddl(stmt, true)?;
                Ok(QueryResult::empty())
            }
            Statement::Insert {
                table,
                columns,
                values,
            } => {
                self.insert(table, columns, values)?;
                Ok(QueryResult::empty())
            }
            Statement::Select {
                table,
                columns,
                where_clause,
                limit,
            } => self.select(table, columns, where_clause.as_ref(), *limit),
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => {
                self.update(table, assignments, where_clause)?;
                Ok(QueryResult::empty())
            }
            Statement::Delete {
                table,
                where_clause,
            } => {
                self.delete(table, where_clause)?;
                Ok(QueryResult::empty())
            }
            Statement::Truncate { table } => {
                self.truncate(table)?;
                Ok(QueryResult::empty())
            }
            Statement::Batch { statements } => {
                for s in statements {
                    self.execute(s)?;
                }
                Ok(QueryResult::empty())
            }
        }
    }

    fn journal_ddl(&self, stmt: &Statement) -> Result<()> {
        let mut line = stmt.to_cql();
        line.push('\n');
        self.vfs.append(SCHEMA_LOG, line.as_bytes())?;
        Ok(())
    }

    fn apply_ddl(&mut self, stmt: &Statement, journal: bool) -> Result<()> {
        match stmt {
            Statement::CreateKeyspace { name } => {
                self.catalog.create_keyspace(name)?;
            }
            Statement::CreateTable {
                table,
                columns,
                primary_key,
            } => {
                let defs: Vec<ColumnDef> = columns
                    .iter()
                    .map(|(name, ty)| ColumnDef {
                        name: name.clone(),
                        ty: *ty,
                    })
                    .collect();
                let def = TableDef::new(&table.keyspace, &table.table, defs, primary_key)?;
                self.catalog.create_table(def.clone())?;
                self.tables.insert(
                    def.qualified_name(),
                    TableRuntime::new(
                        def,
                        self.vfs.clone(),
                        self.manifest.clone(),
                        self.options.table,
                        self.cache.clone(),
                    ),
                );
            }
            Statement::CreateIndex { table, column } => {
                self.create_index(table, column)?;
            }
            _ => unreachable!("apply_ddl called on non-DDL"),
        }
        if journal {
            self.journal_ddl(stmt)?;
        }
        Ok(())
    }

    fn create_index(&mut self, table: &TableRef, column: &str) -> Result<()> {
        let def = self.catalog.table(&table.keyspace, &table.table)?.clone();
        let col_idx = def
            .column_index(column)
            .ok_or_else(|| NosqlError::UnknownColumn {
                table: def.name.clone(),
                column: column.to_string(),
            })?;
        if def.is_indexed(column) {
            return Err(NosqlError::AlreadyExists(format!("index on {column:?}")));
        }
        if def.columns[col_idx].ty == CqlType::IntSet {
            return Err(NosqlError::Unsupported(
                "secondary indexes on set<int> columns".into(),
            ));
        }
        if def.pk_column().ty != CqlType::Int {
            return Err(NosqlError::Unsupported(
                "secondary indexes require an int primary key (posting sets hold ints)".into(),
            ));
        }
        // The hidden index column family: one row per posting, keyed by
        // `hex(indexed value) ':' row id` — Cassandra's one-cell-per-posting
        // physical layout expressed as rows.
        let idx_name = def.index_table_name(column);
        let idx_def = TableDef::new(
            &def.keyspace,
            &idx_name,
            vec![
                ColumnDef {
                    name: "k".into(),
                    ty: CqlType::Text,
                },
                ColumnDef {
                    name: "id".into(),
                    ty: CqlType::Int,
                },
            ],
            "k",
        )?;
        self.tables.insert(
            idx_def.qualified_name(),
            TableRuntime::new(
                idx_def.clone(),
                self.vfs.clone(),
                self.manifest.clone(),
                self.options.table,
                self.cache.clone(),
            ),
        );
        self.catalog.create_table(idx_def)?;
        self.catalog
            .table_mut(&table.keyspace, &table.table)?
            .indexed_columns
            .push(column.to_string());
        self.tables
            .get_mut(&format!("{}.{}", table.keyspace, table.table))
            .expect("runtime exists for cataloged table")
            .add_index(column);
        // Backfill for rows already present.
        let existing = self
            .tables
            .get(&format!("{}.{}", table.keyspace, table.table))
            .expect("runtime exists")
            .scan()?;
        let base_def = self.catalog.table(&table.keyspace, &table.table)?.clone();
        for (_, row) in existing {
            let pk = row.pk(&base_def).clone();
            let value = row.values[col_idx].clone();
            self.index_add(&base_def, column, &value, &pk)?;
        }
        Ok(())
    }

    fn runtime_mut(&mut self, qualified: &str) -> &mut TableRuntime {
        self.tables
            .get_mut(qualified)
            .expect("runtime exists for cataloged table")
    }

    fn insert(&mut self, table: &TableRef, columns: &[String], values: &[CqlValue]) -> Result<()> {
        let def = self.catalog.table(&table.keyspace, &table.table)?.clone();
        if columns.len() != values.len() {
            return Err(NosqlError::Parse(format!(
                "INSERT binds {} columns but {} values",
                columns.len(),
                values.len()
            )));
        }
        // Assemble the full row (unbound columns become null).
        let mut row_values = vec![CqlValue::Null; def.columns.len()];
        for (name, value) in columns.iter().zip(values) {
            let idx = def
                .column_index(name)
                .ok_or_else(|| NosqlError::UnknownColumn {
                    table: def.name.clone(),
                    column: name.clone(),
                })?;
            if !value.matches(def.columns[idx].ty) {
                return Err(NosqlError::TypeMismatch {
                    column: name.clone(),
                    expected: def.columns[idx].ty.name().to_string(),
                    found: value.type_name().to_string(),
                });
            }
            row_values[idx] = value.clone();
        }
        if row_values[def.primary_key].is_null() {
            return Err(NosqlError::MissingPrimaryKey(def.pk_column().name.clone()));
        }
        let row = Row::new(row_values);
        self.put_row(&def, row)
    }

    /// Full write path for one row: secondary-index read-before-write,
    /// commit-log append, memtable insert, posting updates.
    fn put_row(&mut self, def: &TableDef, row: Row) -> Result<()> {
        let qualified = def.qualified_name();
        let key = row.pk_bytes(def);
        // Gather index work up front so the row can move into the memtable
        // without a clone (the common, index-free path pays nothing here).
        let mut index_ops: Vec<(String, Option<CqlValue>, Option<CqlValue>)> = Vec::new();
        let pk = if def.indexed_columns.is_empty() {
            CqlValue::Null
        } else {
            // Read-before-write: indexed tables must look up the previous
            // row version to keep postings consistent (a real cost of
            // Cassandra-style secondary indexes).
            let old_row = self.runtime_mut(&qualified).get(&key)?;
            for column in &def.indexed_columns {
                let idx = def.column_index(column).expect("index on known column");
                let new_value = row.values[idx].clone();
                let old_value = old_row.as_ref().map(|r| r.values[idx].clone());
                if old_value.as_ref() == Some(&new_value) {
                    continue;
                }
                index_ops.push((column.clone(), old_value, Some(new_value)));
            }
            row.pk(def).clone()
        };
        let ts = self.next_ts();
        {
            let log = &self.log;
            let rt = self
                .tables
                .get_mut(&qualified)
                .expect("runtime exists for cataloged table");
            rt.put(Some(row), key, ts, Some(log))?;
        }
        for (column, old_value, new_value) in index_ops {
            if let Some(old) = old_value {
                if !old.is_null() {
                    self.index_remove(def, &column, &old, &pk)?;
                }
            }
            if let Some(new) = new_value {
                if !new.is_null() {
                    self.index_add(def, &column, &new, &pk)?;
                }
            }
        }
        Ok(())
    }

    /// Posting-row key: `len-prefixed(value key) ++ order-preserving id`.
    /// The value-key prefix groups a per-value partition; the id suffix
    /// makes each posting its own row. Like Cassandra's index entries, the
    /// indexed value is stored once (in the key), not repeated in the body.
    fn posting_key(value: &CqlValue, id: i64) -> Vec<u8> {
        let mut enc = sc_encoding::Encoder::new();
        enc.put_bytes(&value.encode_key());
        enc.put_raw(&((id as u64) ^ (1u64 << 63)).to_be_bytes());
        enc.into_bytes()
    }

    /// Prefix covering every posting of `value`.
    fn posting_prefix(value: &CqlValue) -> Vec<u8> {
        let mut enc = sc_encoding::Encoder::new();
        enc.put_bytes(&value.encode_key());
        enc.into_bytes()
    }

    fn index_write(
        &mut self,
        def: &TableDef,
        column: &str,
        value: &CqlValue,
        pk: &CqlValue,
        add: bool,
    ) -> Result<()> {
        let idx_qualified = format!("{}.{}", def.keyspace, def.index_table_name(column));
        let id = pk
            .as_int()
            .expect("index creation enforced int primary keys");
        let key = Self::posting_key(value, id);
        let ts = self.next_ts();
        // Minimal body: the indexed value lives in the key only.
        let row = add.then(|| Row::new(vec![CqlValue::Null, CqlValue::Int(id)]));
        let log = &self.log;
        let rt = self
            .tables
            .get_mut(&idx_qualified)
            .expect("runtime exists for index table");
        rt.put(row, key, ts, Some(log))?;
        Ok(())
    }

    fn index_add(
        &mut self,
        def: &TableDef,
        column: &str,
        value: &CqlValue,
        pk: &CqlValue,
    ) -> Result<()> {
        self.index_write(def, column, value, pk, true)
    }

    fn index_remove(
        &mut self,
        def: &TableDef,
        column: &str,
        value: &CqlValue,
        pk: &CqlValue,
    ) -> Result<()> {
        self.index_write(def, column, value, pk, false)
    }

    /// Cassandra UPDATE semantics: an upsert — unassigned columns keep
    /// their existing values (or null for a fresh row).
    fn update(
        &mut self,
        table: &TableRef,
        assignments: &[(String, CqlValue)],
        where_clause: &WhereClause,
    ) -> Result<()> {
        let def = self.catalog.table(&table.keyspace, &table.table)?.clone();
        let WhereClause::Eq {
            column: w_column,
            value: w_value,
        } = where_clause
        else {
            return Err(NosqlError::Unsupported(
                "UPDATE requires an equality WHERE on the primary key".into(),
            ));
        };
        if w_column != &def.pk_column().name {
            return Err(NosqlError::Unsupported(format!(
                "UPDATE is by primary key ({})",
                def.pk_column().name
            )));
        }
        if !w_value.matches(def.pk_column().ty) {
            return Err(NosqlError::TypeMismatch {
                column: w_column.clone(),
                expected: def.pk_column().ty.name().to_string(),
                found: w_value.type_name().to_string(),
            });
        }
        let key = w_value.encode_key();
        let qualified = def.qualified_name();
        let existing = self.runtime_mut(&qualified).get(&key)?;
        let mut values = existing
            .map(|r| r.values)
            .unwrap_or_else(|| vec![CqlValue::Null; def.columns.len()]);
        values[def.primary_key] = w_value.clone();
        for (column, value) in assignments {
            let idx = def
                .column_index(column)
                .ok_or_else(|| NosqlError::UnknownColumn {
                    table: def.name.clone(),
                    column: column.clone(),
                })?;
            if idx == def.primary_key {
                return Err(NosqlError::Unsupported(
                    "the primary key cannot be SET".into(),
                ));
            }
            if !value.matches(def.columns[idx].ty) {
                return Err(NosqlError::TypeMismatch {
                    column: column.clone(),
                    expected: def.columns[idx].ty.name().to_string(),
                    found: value.type_name().to_string(),
                });
            }
            values[idx] = value.clone();
        }
        self.put_row(&def, Row::new(values))
    }

    fn delete(&mut self, table: &TableRef, where_clause: &WhereClause) -> Result<()> {
        let def = self.catalog.table(&table.keyspace, &table.table)?.clone();
        let WhereClause::Eq {
            column: w_column,
            value: w_value,
        } = where_clause
        else {
            return Err(NosqlError::Unsupported(
                "DELETE requires an equality WHERE on the primary key".into(),
            ));
        };
        if w_column != &def.pk_column().name {
            return Err(NosqlError::Unsupported(format!(
                "DELETE is by primary key ({})",
                def.pk_column().name
            )));
        }
        let key = w_value.encode_key();
        let qualified = def.qualified_name();
        let old_row = self.runtime_mut(&qualified).get(&key)?;
        let ts = self.next_ts();
        {
            let log = &self.log;
            let rt = self
                .tables
                .get_mut(&qualified)
                .expect("runtime exists for cataloged table");
            rt.put(None, key, ts, Some(log))?;
        }
        if let Some(old) = old_row {
            for column in def.indexed_columns.clone() {
                let idx = def.column_index(&column).expect("index on known column");
                let value = old.values[idx].clone();
                if !value.is_null() {
                    self.index_remove(&def, &column, &value, old.pk(&def))?;
                }
            }
        }
        Ok(())
    }

    fn truncate(&mut self, table: &TableRef) -> Result<()> {
        let def = self.catalog.table(&table.keyspace, &table.table)?.clone();
        let rebuild = |db: &mut Db, name: &str| -> Result<()> {
            let qualified = format!("{}.{}", def.keyspace, name);
            let fresh_def = (**db.catalog.table(&def.keyspace, name)?).clone();
            // Retire the files from the manifest first (one atomic record):
            // a crash mid-delete then leaves orphans for recovery to sweep,
            // never a manifest pointing at half-deleted tables.
            let files = db
                .tables
                .get(&qualified)
                .map(|rt| rt.sstable_files())
                .unwrap_or_default();
            db.manifest.commit(&ManifestEdit {
                adds: Vec::new(),
                removes: files
                    .iter()
                    .map(|f| (qualified.clone(), f.clone()))
                    .collect(),
            })?;
            for f in &files {
                db.cache.evict_file(f);
                db.vfs.delete(f)?;
            }
            db.tables.insert(
                qualified,
                TableRuntime::new(
                    fresh_def,
                    db.vfs.clone(),
                    db.manifest.clone(),
                    db.options.table,
                    db.cache.clone(),
                ),
            );
            Ok(())
        };
        rebuild(self, &def.name)?;
        for column in &def.indexed_columns {
            rebuild(self, &def.index_table_name(column))?;
        }
        Ok(())
    }

    /// Executes `WHERE column IN (...)`.
    ///
    /// On the primary key this is a multi-point read: one memtable/SSTable
    /// probe per distinct key, no scan — the primitive batched store
    /// fetches ride on. On an indexed column it unions the per-value
    /// posting scans; otherwise it degrades to a scan with a membership
    /// filter.
    fn select_in(
        &mut self,
        def: &TableDef,
        qualified: &str,
        column: &str,
        values: &[CqlValue],
    ) -> Result<Vec<Row>> {
        if column == def.pk_column().name {
            let mut seen: HashSet<Vec<u8>> = HashSet::with_capacity(values.len());
            let mut out = Vec::with_capacity(values.len());
            for v in values {
                let key = v.encode_key();
                if !seen.insert(key.clone()) {
                    continue;
                }
                if let Some(row) = self.runtime_mut(qualified).get(&key)? {
                    out.push(row);
                }
            }
            return Ok(out);
        }
        if def.is_indexed(column) {
            let idx_qualified = format!("{}.{}", def.keyspace, def.index_table_name(column));
            let col_idx = def.column_index(column).expect("indexed column exists");
            let mut ids = Vec::new();
            let mut seen_ids: HashSet<i64> = HashSet::new();
            for v in values {
                let prefix = Self::posting_prefix(v);
                for (_, r) in self.runtime_mut(&idx_qualified).scan_prefix(&prefix)? {
                    if let Some(id) = r.values[1].as_int() {
                        if seen_ids.insert(id) {
                            ids.push(id);
                        }
                    }
                }
            }
            let mut out = Vec::with_capacity(ids.len());
            for id in ids {
                if let Some(row) = self
                    .runtime_mut(qualified)
                    .get(&CqlValue::Int(id).encode_key())?
                {
                    // Re-check: postings may be stale relative to
                    // overwrites racing the index update.
                    if values.contains(&row.values[col_idx]) {
                        out.push(row);
                    }
                }
            }
            return Ok(out);
        }
        let col_idx = def
            .column_index(column)
            .ok_or_else(|| NosqlError::UnknownColumn {
                table: def.name.clone(),
                column: column.to_string(),
            })?;
        Ok(self
            .runtime_mut(qualified)
            .scan()?
            .into_iter()
            .map(|(_, r)| r)
            .filter(|r| values.contains(&r.values[col_idx]))
            .collect())
    }

    fn select(
        &mut self,
        table: &TableRef,
        columns: &SelectColumns,
        where_clause: Option<&WhereClause>,
        limit: Option<usize>,
    ) -> Result<QueryResult> {
        let def = self.catalog.table(&table.keyspace, &table.table)?.clone();
        let qualified = def.qualified_name();
        let mut rows: Vec<Row> = match where_clause {
            None => self
                .runtime_mut(&qualified)
                .scan()?
                .into_iter()
                .map(|(_, r)| r)
                .collect(),
            Some(WhereClause::Eq { column, value }) if *column == def.pk_column().name => {
                let key = value.encode_key();
                self.runtime_mut(&qualified)
                    .get(&key)?
                    .into_iter()
                    .collect()
            }
            Some(WhereClause::Eq { column, value }) if def.is_indexed(column) => {
                let idx_qualified = format!("{}.{}", def.keyspace, def.index_table_name(column));
                let prefix = Self::posting_prefix(value);
                let postings = self.runtime_mut(&idx_qualified).scan_prefix(&prefix)?;
                let ids: Vec<i64> = postings
                    .iter()
                    .filter_map(|(_, r)| r.values[1].as_int())
                    .collect();
                let col_idx = def.column_index(column).expect("indexed column exists");
                let mut out = Vec::with_capacity(ids.len());
                for id in ids {
                    if let Some(row) = self
                        .runtime_mut(&qualified)
                        .get(&CqlValue::Int(id).encode_key())?
                    {
                        // Re-check: postings may be stale relative to
                        // overwrites racing the index update.
                        if row.values[col_idx] == *value {
                            out.push(row);
                        }
                    }
                }
                out
            }
            Some(WhereClause::Eq { column, value }) => {
                // Unindexed filter: full scan (CQL would demand ALLOW
                // FILTERING; we accept it for diagnostics and tests).
                let col_idx =
                    def.column_index(column)
                        .ok_or_else(|| NosqlError::UnknownColumn {
                            table: def.name.clone(),
                            column: column.clone(),
                        })?;
                self.runtime_mut(&qualified)
                    .scan()?
                    .into_iter()
                    .map(|(_, r)| r)
                    .filter(|r| r.values[col_idx] == *value)
                    .collect()
            }
            Some(WhereClause::In { column, values }) => {
                self.select_in(&def, &qualified, column, values)?
            }
        };
        if let Some(n) = limit {
            rows.truncate(n);
        }
        if matches!(columns, SelectColumns::Count) {
            return Ok(QueryResult::new(
                vec!["count".to_string()],
                vec![vec![CqlValue::Int(rows.len() as i64)]],
            ));
        }
        let (names, indices): (Vec<String>, Vec<usize>) = match columns {
            SelectColumns::Count => unreachable!("handled above"),
            SelectColumns::All => (
                def.columns.iter().map(|c| c.name.clone()).collect(),
                (0..def.columns.len()).collect(),
            ),
            SelectColumns::Named(names) => {
                let mut idx = Vec::with_capacity(names.len());
                for n in names {
                    idx.push(
                        def.column_index(n)
                            .ok_or_else(|| NosqlError::UnknownColumn {
                                table: def.name.clone(),
                                column: n.clone(),
                            })?,
                    );
                }
                (names.clone(), idx)
            }
        };
        let projected = rows
            .into_iter()
            .map(|r| indices.iter().map(|&i| r.values[i].clone()).collect())
            .collect();
        Ok(QueryResult::new(names, projected))
    }

    /// Flushes every memtable to disk and truncates the commit log (its
    /// contents are now redundant). Call before measuring sizes.
    pub fn flush_all(&mut self) -> Result<()> {
        for rt in self.tables.values_mut() {
            rt.flush()?;
        }
        self.log.truncate()?;
        Ok(())
    }

    /// Compacts every table fully.
    pub fn compact_all(&mut self) -> Result<()> {
        for rt in self.tables.values_mut() {
            rt.compact()?;
        }
        Ok(())
    }

    /// On-disk size of one table's SSTables (hidden index tables *not*
    /// included; see [`Db::keyspace_size`]).
    pub fn table_size(&self, keyspace: &str, table: &str) -> Result<ByteSize> {
        self.catalog.table(keyspace, table)?;
        let rt = self
            .tables
            .get(&format!("{keyspace}.{table}"))
            .expect("runtime exists");
        Ok(ByteSize::bytes(rt.disk_size()))
    }

    /// Total on-disk size of a keyspace: all tables including hidden index
    /// column families. This is the paper's `size_as_mb` measurement.
    pub fn keyspace_size(&self, keyspace: &str) -> Result<ByteSize> {
        self.catalog.tables_in(keyspace)?; // validates the keyspace
        let mut total = 0;
        for (qualified, rt) in &self.tables {
            if qualified.starts_with(&format!("{keyspace}.")) {
                total += rt.disk_size();
            }
        }
        Ok(ByteSize::bytes(total))
    }

    /// Commit-log bytes currently on disk.
    pub fn commitlog_size(&self) -> ByteSize {
        ByteSize::bytes(self.log.size())
    }

    /// Point-in-time counters of the engine's shared block cache.
    pub fn block_cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Wraps the engine in the coarse-mutex [`SharedDb`] handle that
    /// multi-session callers (the network server) clone per session.
    pub fn into_shared(self) -> SharedDb {
        Arc::new(Mutex::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Db {
        let mut db = Db::open(OpenOptions::default()).unwrap();
        db.execute_cql("CREATE KEYSPACE ks").unwrap();
        db.execute_cql(
            "CREATE TABLE ks.cells (id int, key text, parent int, leaf boolean, \
             kids set<int>, PRIMARY KEY (id))",
        )
        .unwrap();
        db
    }

    #[test]
    fn insert_select_by_pk() {
        let mut db = setup();
        db.execute_cql(
            "INSERT INTO ks.cells (id, key, parent, leaf, kids) \
             VALUES (3, 'Fenian St', 1, true, {4, 5})",
        )
        .unwrap();
        let r = db
            .execute_cql("SELECT key, kids FROM ks.cells WHERE id = 3")
            .unwrap();
        assert_eq!(r.columns(), vec!["key", "kids"]);
        assert_eq!(
            r.rows(),
            vec![vec![
                CqlValue::Text("Fenian St".into()),
                CqlValue::int_set([4, 5])
            ]]
        );
    }

    #[test]
    fn insert_is_upsert() {
        let mut db = setup();
        db.execute_cql("INSERT INTO ks.cells (id, key) VALUES (1, 'old')")
            .unwrap();
        db.execute_cql("INSERT INTO ks.cells (id, key) VALUES (1, 'new')")
            .unwrap();
        let r = db
            .execute_cql("SELECT key FROM ks.cells WHERE id = 1")
            .unwrap();
        assert_eq!(r.rows(), vec![vec![CqlValue::Text("new".into())]]);
    }

    #[test]
    fn unbound_columns_are_null() {
        let mut db = setup();
        db.execute_cql("INSERT INTO ks.cells (id) VALUES (9)")
            .unwrap();
        let r = db
            .execute_cql("SELECT key, leaf FROM ks.cells WHERE id = 9")
            .unwrap();
        assert_eq!(r.rows(), vec![vec![CqlValue::Null, CqlValue::Null]]);
    }

    #[test]
    fn type_checking() {
        let mut db = setup();
        assert!(matches!(
            db.execute_cql("INSERT INTO ks.cells (id, key) VALUES (1, 2)"),
            Err(NosqlError::TypeMismatch { .. })
        ));
        assert!(matches!(
            db.execute_cql("INSERT INTO ks.cells (key) VALUES ('x')"),
            Err(NosqlError::MissingPrimaryKey(_))
        ));
        assert!(matches!(
            db.execute_cql("INSERT INTO ks.cells (id, nope) VALUES (1, 2)"),
            Err(NosqlError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn in_list_on_primary_key_is_multi_point() {
        let mut db = setup();
        for i in 0..10 {
            db.execute_cql(&format!(
                "INSERT INTO ks.cells (id, key) VALUES ({i}, 'k{i}')"
            ))
            .unwrap();
        }
        // Survives a flush (keys come back from SSTables too).
        db.flush_all().unwrap();
        let r = db
            .execute_cql("SELECT id, key FROM ks.cells WHERE id IN (7, 2, 2, 99)")
            .unwrap();
        // Statement order, duplicates collapsed, missing keys skipped.
        let ids: Vec<i64> = r.iter().map(|row| row.get_int("id").unwrap()).collect();
        assert_eq!(ids, vec![7, 2]);
        // The empty list matches nothing.
        let r = db
            .execute_cql("SELECT id FROM ks.cells WHERE id IN ()")
            .unwrap();
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn in_list_on_indexed_and_plain_columns() {
        let mut db = setup();
        db.execute_cql("CREATE INDEX ON ks.cells (parent)").unwrap();
        for i in 0..9 {
            db.execute_cql(&format!(
                "INSERT INTO ks.cells (id, key, parent) VALUES ({i}, 'k{}', {})",
                i % 2,
                i % 3
            ))
            .unwrap();
        }
        // Indexed column: union of postings.
        let r = db
            .execute_cql("SELECT id FROM ks.cells WHERE parent IN (0, 2)")
            .unwrap();
        let mut ids: Vec<i64> = r.iter().map(|row| row.get_int("id").unwrap()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 2, 3, 5, 6, 8]);
        // Unindexed column: scan + membership filter.
        let r = db
            .execute_cql("SELECT id FROM ks.cells WHERE key IN ('k1')")
            .unwrap();
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn update_and_delete_reject_in_lists() {
        let mut db = setup();
        assert!(matches!(
            db.execute_cql("UPDATE ks.cells SET key = 'x' WHERE id IN (1, 2)"),
            Err(NosqlError::Unsupported(_))
        ));
        assert!(matches!(
            db.execute_cql("DELETE FROM ks.cells WHERE id IN (1, 2)"),
            Err(NosqlError::Unsupported(_))
        ));
    }

    #[test]
    fn secondary_index_lookup() {
        let mut db = setup();
        db.execute_cql("CREATE INDEX ON ks.cells (parent)").unwrap();
        for i in 0..10 {
            db.execute_cql(&format!(
                "INSERT INTO ks.cells (id, key, parent) VALUES ({i}, 'k{i}', {})",
                i % 3
            ))
            .unwrap();
        }
        let r = db
            .execute_cql("SELECT id FROM ks.cells WHERE parent = 1")
            .unwrap();
        let mut ids: Vec<i64> = r.iter().map(|row| row.get_int("id").unwrap()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 4, 7]);
    }

    #[test]
    fn index_backfills_existing_rows() {
        let mut db = setup();
        db.execute_cql("INSERT INTO ks.cells (id, parent) VALUES (1, 42)")
            .unwrap();
        db.execute_cql("CREATE INDEX ON ks.cells (parent)").unwrap();
        let r = db
            .execute_cql("SELECT id FROM ks.cells WHERE parent = 42")
            .unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn index_tracks_overwrites_and_deletes() {
        let mut db = setup();
        db.execute_cql("CREATE INDEX ON ks.cells (parent)").unwrap();
        db.execute_cql("INSERT INTO ks.cells (id, parent) VALUES (1, 10)")
            .unwrap();
        db.execute_cql("INSERT INTO ks.cells (id, parent) VALUES (1, 20)")
            .unwrap();
        assert!(db
            .execute_cql("SELECT id FROM ks.cells WHERE parent = 10")
            .unwrap()
            .is_empty());
        assert_eq!(
            db.execute_cql("SELECT id FROM ks.cells WHERE parent = 20")
                .unwrap()
                .len(),
            1
        );
        db.execute_cql("DELETE FROM ks.cells WHERE id = 1").unwrap();
        assert!(db
            .execute_cql("SELECT id FROM ks.cells WHERE parent = 20")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn nulls_are_not_indexed() {
        let mut db = setup();
        db.execute_cql("CREATE INDEX ON ks.cells (parent)").unwrap();
        db.execute_cql("INSERT INTO ks.cells (id, key) VALUES (1, 'x')")
            .unwrap();
        // Index table stays empty.
        let idx_size = db.table_size("ks", "cells__idx_parent").unwrap();
        db.flush_all().unwrap();
        let _ = idx_size;
        assert!(db
            .execute_cql("SELECT id FROM ks.cells WHERE parent = 0")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn unindexed_filter_falls_back_to_scan() {
        let mut db = setup();
        db.execute_cql("INSERT INTO ks.cells (id, key) VALUES (1, 'hit')")
            .unwrap();
        db.execute_cql("INSERT INTO ks.cells (id, key) VALUES (2, 'miss')")
            .unwrap();
        let r = db
            .execute_cql("SELECT id FROM ks.cells WHERE key = 'hit'")
            .unwrap();
        assert_eq!(r.rows(), vec![vec![CqlValue::Int(1)]]);
    }

    #[test]
    fn select_all_and_limit() {
        let mut db = setup();
        for i in 0..5 {
            db.execute_cql(&format!("INSERT INTO ks.cells (id) VALUES ({i})"))
                .unwrap();
        }
        let r = db.execute_cql("SELECT * FROM ks.cells").unwrap();
        assert_eq!(r.len(), 5);
        assert_eq!(r.columns().len(), 5);
        let r = db.execute_cql("SELECT id FROM ks.cells LIMIT 2").unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn truncate_clears_table_and_indexes() {
        let mut db = setup();
        db.execute_cql("CREATE INDEX ON ks.cells (parent)").unwrap();
        db.execute_cql("INSERT INTO ks.cells (id, parent) VALUES (1, 2)")
            .unwrap();
        db.execute_cql("TRUNCATE ks.cells").unwrap();
        assert!(db.execute_cql("SELECT * FROM ks.cells").unwrap().is_empty());
        assert!(db
            .execute_cql("SELECT id FROM ks.cells WHERE parent = 2")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn sizes_after_flush() {
        let mut db = setup();
        for i in 0..100 {
            db.execute_cql(&format!(
                "INSERT INTO ks.cells (id, key) VALUES ({i}, 'station name {i}')"
            ))
            .unwrap();
        }
        assert!(db.commitlog_size().as_bytes() > 0);
        db.flush_all().unwrap();
        assert_eq!(db.commitlog_size().as_bytes(), 0);
        let size = db.table_size("ks", "cells").unwrap();
        assert!(size.as_bytes() > 2000, "got {size}");
        assert!(db.keyspace_size("ks").unwrap().as_bytes() > 0);
    }

    #[test]
    fn index_inflates_keyspace_size() {
        let mut plain = setup();
        let mut indexed = setup();
        indexed
            .execute_cql("CREATE INDEX ON ks.cells (parent)")
            .unwrap();
        for db in [&mut plain, &mut indexed] {
            for i in 0..200 {
                db.execute_cql(&format!(
                    "INSERT INTO ks.cells (id, parent) VALUES ({i}, {})",
                    i % 10
                ))
                .unwrap();
            }
            db.flush_all().unwrap();
        }
        let p = plain.keyspace_size("ks").unwrap();
        let x = indexed.keyspace_size("ks").unwrap();
        assert!(x > p, "indexed {x} must exceed plain {p}");
    }

    #[test]
    fn recovery_from_schema_journal_and_commitlog() {
        let vfs = Vfs::memory();
        {
            let mut db = Db::open(OpenOptions::default().vfs(vfs.clone())).unwrap();
            db.execute_cql("CREATE KEYSPACE ks").unwrap();
            db.execute_cql("CREATE TABLE ks.t (id int, v text, PRIMARY KEY (id))")
                .unwrap();
            db.execute_cql("INSERT INTO ks.t (id, v) VALUES (1, 'logged')")
                .unwrap();
            // No flush: the row lives only in the commit log.
        }
        let mut db = Db::open(OpenOptions::default().vfs(vfs).recover(true)).unwrap();
        let r = db.execute_cql("SELECT v FROM ks.t WHERE id = 1").unwrap();
        assert_eq!(r.rows(), vec![vec![CqlValue::Text("logged".into())]]);
    }

    #[test]
    fn recovery_reattaches_sstables() {
        let vfs = Vfs::memory();
        {
            let mut db = Db::open(OpenOptions::default().vfs(vfs.clone())).unwrap();
            db.execute_cql("CREATE KEYSPACE ks").unwrap();
            db.execute_cql("CREATE TABLE ks.t (id int, v text, PRIMARY KEY (id))")
                .unwrap();
            db.execute_cql("INSERT INTO ks.t (id, v) VALUES (1, 'flushed')")
                .unwrap();
            db.flush_all().unwrap();
        }
        let mut db = Db::open(OpenOptions::default().vfs(vfs).recover(true)).unwrap();
        let r = db.execute_cql("SELECT v FROM ks.t WHERE id = 1").unwrap();
        assert_eq!(r.rows(), vec![vec![CqlValue::Text("flushed".into())]]);
    }

    #[test]
    fn shared_handle_is_send_across_threads() {
        // Compile-time: the coarse-mutex handle must be shareable between
        // session threads (Mutex<Db> is Sync iff Db is Send).
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Db>();
        assert_sync::<SharedDb>();

        let shared = OpenOptions::default().open_shared().unwrap();
        shared
            .lock()
            .unwrap()
            .execute_cql("CREATE KEYSPACE ks")
            .unwrap();
        shared
            .lock()
            .unwrap()
            .execute_cql("CREATE TABLE ks.t (id int, v int, PRIMARY KEY (id))")
            .unwrap();
        std::thread::scope(|scope| {
            for t in 0..4i64 {
                let shared = Arc::clone(&shared);
                scope.spawn(move || {
                    for i in 0..16i64 {
                        shared
                            .lock()
                            .unwrap()
                            .execute_cql(&format!(
                                "INSERT INTO ks.t (id, v) VALUES ({}, {t})",
                                t * 100 + i
                            ))
                            .unwrap();
                    }
                });
            }
        });
        let n = shared
            .lock()
            .unwrap()
            .execute_cql("SELECT COUNT(*) FROM ks.t")
            .unwrap();
        assert_eq!(n.first().unwrap().get_int("count").unwrap(), 64);
    }

    #[test]
    fn batch_executes_all() {
        let mut db = setup();
        db.execute_cql(
            "BEGIN BATCH \
             INSERT INTO ks.cells (id) VALUES (1); \
             INSERT INTO ks.cells (id) VALUES (2); \
             APPLY BATCH",
        )
        .unwrap();
        assert_eq!(db.execute_cql("SELECT * FROM ks.cells").unwrap().len(), 2);
    }
}
