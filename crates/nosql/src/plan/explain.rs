//! `EXPLAIN` rendering: one indented line per plan node, root first.
//!
//! Every line ends with a `  (cost: rows≈…, total≈…)` suffix carrying the
//! planner's estimates. Consumers that want a stable structural view (the
//! sqllogictest `plan` directive) strip the suffix at `"  (cost:"` —
//! estimates move with table statistics, the tree shape does not.

use super::logical::{PlanNode, Predicate, ScanKind, SelectPlan};
use crate::types::CqlValue;

fn preds(list: &[Predicate]) -> String {
    let parts: Vec<String> = list.iter().map(Predicate::render).collect();
    parts.join(" AND ")
}

fn describe(node: &PlanNode) -> String {
    match node {
        PlanNode::Scan(scan) => {
            let mut s = match &scan.kind {
                ScanKind::Point { key } => format!(
                    "PointScan {} key={} (bloom+fence checked)",
                    scan.table,
                    key.to_cql_literal()
                ),
                ScanKind::MultiPoint { keys } => {
                    format!("MultiPointScan {} keys={}", scan.table, keys.len())
                }
                ScanKind::Index { column, values, .. } => format!(
                    "IndexScan {} via {} on {} values={}",
                    scan.table,
                    scan.index_table.as_deref().unwrap_or("?"),
                    column,
                    values.len()
                ),
                ScanKind::Full => format!("FullScan {}", scan.table),
            };
            if !scan.residual.is_empty() {
                s.push_str(&format!(" where {}", preds(&scan.residual)));
            }
            if let Some(n) = scan.pushed_limit {
                s.push_str(&format!(" limit={n}"));
            }
            if let Some(p) = &scan.projection {
                s.push_str(&format!(
                    " cols=[{}] (+{} pruned)",
                    p.names.join(", "),
                    p.pruned
                ));
            }
            s
        }
        PlanNode::Filter { predicates, .. } => format!("Filter {}", preds(predicates)),
        PlanNode::Project { names, .. } => format!("Project [{}]", names.join(", ")),
        PlanNode::Sort { column, desc, .. } => {
            format!("Sort by {column} {}", if *desc { "desc" } else { "asc" })
        }
        PlanNode::Limit { limit, .. } => format!("Limit {limit}"),
        PlanNode::Aggregate {
            names, group_by, ..
        } => format!("Aggregate [{}] groups={}", names.join(", "), group_by.len()),
    }
}

fn render_node(node: &PlanNode, depth: usize, out: &mut Vec<String>) {
    let est = node.estimate();
    out.push(format!(
        "{}{}  (cost: rows≈{:.0}, total≈{:.1})",
        "  ".repeat(depth),
        describe(node),
        est.rows,
        est.cost
    ));
    match node {
        PlanNode::Scan(_) => {}
        PlanNode::Filter { input, .. }
        | PlanNode::Project { input, .. }
        | PlanNode::Sort { input, .. }
        | PlanNode::Limit { input, .. }
        | PlanNode::Aggregate { input, .. } => render_node(input, depth + 1, out),
    }
}

/// Renders the plan as indented text lines, root first.
pub fn render(plan: &SelectPlan) -> Vec<String> {
    let mut out = Vec::new();
    render_node(&plan.root, 0, &mut out);
    out
}

/// The lines as the rows of an `EXPLAIN` result (one `plan` text column).
pub fn result_rows(plan: &SelectPlan) -> Vec<Vec<CqlValue>> {
    render(plan)
        .into_iter()
        .map(|line| vec![CqlValue::Text(line)])
        .collect()
}
