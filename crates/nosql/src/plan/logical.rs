//! The logical plan tree: pure data, no table runtimes.

use crate::cql::ast::{AggFunc, CmpOp};
use crate::types::CqlValue;

/// Cardinality and cost estimates attached to every plan node. `cost` is
/// cumulative (the node plus everything below it), in the planner's
/// abstract units (see [`crate::plan::planner`] for the constants).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Estimate {
    /// Estimated rows the node emits.
    pub rows: f64,
    /// Estimated cumulative cost of producing them.
    pub cost: f64,
}

/// A resolved single-column predicate test.
#[derive(Debug, Clone, PartialEq)]
pub enum PredTest {
    /// `column = value`.
    Eq(CqlValue),
    /// `column IN (values)`.
    In(Vec<CqlValue>),
    /// `column <op> value`.
    Cmp(CmpOp, CqlValue),
}

/// A predicate with its column resolved to a row index.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Column name (for display).
    pub column: String,
    /// Index into the base table's row layout.
    pub index: usize,
    /// The test applied to that cell.
    pub test: PredTest,
}

impl Predicate {
    /// Whether `row` (base-table layout) satisfies the predicate.
    /// Comparisons follow SQL's null semantics: a null cell never
    /// matches a range test (equality against an explicit null does).
    pub fn matches(&self, row: &[CqlValue]) -> bool {
        let cell = &row[self.index];
        match &self.test {
            PredTest::Eq(value) => cell == value,
            PredTest::In(values) => values.contains(cell),
            PredTest::Cmp(op, value) => {
                !cell.is_null() && !value.is_null() && op.accepts(cell.cmp_sort(value))
            }
        }
    }

    /// Renders the predicate as CQL-ish text for `EXPLAIN`.
    pub fn render(&self) -> String {
        match &self.test {
            PredTest::Eq(v) => format!("{} = {}", self.column, v.to_cql_literal()),
            PredTest::In(vs) => {
                let lits: Vec<String> = vs.iter().map(CqlValue::to_cql_literal).collect();
                format!("{} IN ({})", self.column, lits.join(", "))
            }
            PredTest::Cmp(op, v) => {
                format!("{} {} {}", self.column, op.symbol(), v.to_cql_literal())
            }
        }
    }
}

/// How the scan reaches rows.
#[derive(Debug, Clone, PartialEq)]
pub enum ScanKind {
    /// One bloom/fence-checked probe of the primary key.
    Point {
        /// The key value.
        key: CqlValue,
    },
    /// One probe per distinct `IN` key, in statement order.
    MultiPoint {
        /// Key values, already deduplicated, statement order preserved.
        keys: Vec<CqlValue>,
    },
    /// Posting scan of a hidden index table, then a probe per posting id
    /// with a staleness re-check against the base row.
    Index {
        /// The indexed column's name.
        column: String,
        /// Its index in the base row layout (for the re-check).
        col_index: usize,
        /// Accepted values (one for `=`, several for `IN`).
        values: Vec<CqlValue>,
    },
    /// Key-ordered scan of the whole table.
    Full,
}

/// The leaf of every plan: a scan of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanNode {
    /// Qualified base-table name (`ks.table`).
    pub table: String,
    /// Qualified posting-table name, for [`ScanKind::Index`].
    pub index_table: Option<String>,
    /// Access path.
    pub kind: ScanKind,
    /// Predicates evaluated inside the scan (full scans only; pushdown).
    pub residual: Vec<Predicate>,
    /// Row cap applied inside the scan, counted after `residual`.
    pub pushed_limit: Option<usize>,
    /// Column pruning applied by the scan (full scans only). `None` means
    /// every column is materialized.
    pub projection: Option<ScanProjection>,
    /// Estimates.
    pub est: Estimate,
}

/// The columns a full scan materializes: the select list plus every
/// predicate and sort-key column. v3 SSTables skip decoding the column
/// runs outside `indices`; pruned cells surface as `Null` and are never
/// read above the scan.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanProjection {
    /// Base-layout indices to materialize, sorted ascending.
    pub indices: Vec<usize>,
    /// The same columns by name (for `EXPLAIN`).
    pub names: Vec<String>,
    /// Base-layout columns pruned (schema width minus `indices`).
    pub pruned: usize,
}

/// One aggregate computed by an [`PlanNode::Aggregate`].
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Argument column index in the input layout; `None` for `COUNT(*)`.
    pub input: Option<usize>,
    /// Argument column name (for display).
    pub column: Option<String>,
}

/// One output column of an [`PlanNode::Aggregate`], in select-list order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggOutput {
    /// A grouping column, by input-layout index.
    Group(usize),
    /// An aggregate, by position in the node's `aggs`.
    Agg(usize),
}

/// A logical plan node. The tree is linear (every node has at most one
/// input); rows flow leaf-to-root.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Table access.
    Scan(ScanNode),
    /// Drops rows failing a predicate conjunction.
    Filter {
        /// Input node.
        input: Box<PlanNode>,
        /// AND-joined predicates.
        predicates: Vec<Predicate>,
        /// Estimates.
        est: Estimate,
    },
    /// Narrows rows to the selected columns.
    Project {
        /// Input node.
        input: Box<PlanNode>,
        /// Input-layout indices, in output order.
        indices: Vec<usize>,
        /// Output column names (for display).
        names: Vec<String>,
        /// Estimates.
        est: Estimate,
    },
    /// Total sort on one column ([`CqlValue::cmp_sort`] order; stable, so
    /// ties keep the input's key order).
    Sort {
        /// Input node.
        input: Box<PlanNode>,
        /// Sort-key index in the input layout.
        key: usize,
        /// Sort-key column name (for display).
        column: String,
        /// `true` for `DESC`.
        desc: bool,
        /// Estimates.
        est: Estimate,
    },
    /// Caps the row count.
    Limit {
        /// Input node.
        input: Box<PlanNode>,
        /// Maximum rows emitted.
        limit: usize,
        /// Estimates.
        est: Estimate,
    },
    /// Grouped (or global) aggregation. Output rows follow the group
    /// keys' [`CqlValue::cmp_sort`] order for determinism.
    Aggregate {
        /// Input node.
        input: Box<PlanNode>,
        /// Grouping column indices in the input layout.
        group_by: Vec<usize>,
        /// Aggregates computed per group.
        aggs: Vec<AggSpec>,
        /// Output layout, in select-list order.
        output: Vec<AggOutput>,
        /// Output column names, aligned with `output`.
        names: Vec<String>,
        /// Estimates.
        est: Estimate,
    },
}

impl PlanNode {
    /// The node's estimates.
    pub fn estimate(&self) -> Estimate {
        match self {
            PlanNode::Scan(s) => s.est,
            PlanNode::Filter { est, .. }
            | PlanNode::Project { est, .. }
            | PlanNode::Sort { est, .. }
            | PlanNode::Limit { est, .. }
            | PlanNode::Aggregate { est, .. } => *est,
        }
    }

    /// The scan at the bottom of the tree.
    pub fn scan(&self) -> &ScanNode {
        match self {
            PlanNode::Scan(s) => s,
            PlanNode::Filter { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::Sort { input, .. }
            | PlanNode::Limit { input, .. }
            | PlanNode::Aggregate { input, .. } => input.scan(),
        }
    }
}

/// A planned `SELECT`: the operator tree plus its output schema.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectPlan {
    /// Root of the plan tree.
    pub root: PlanNode,
    /// Output column names, in select-list order.
    pub columns: Vec<String>,
}
