//! Lowering and planning: AST → validated logical plan → access path and
//! pushdowns → cost annotations.
//!
//! # Cost model
//!
//! Costs are abstract units anchored to "stream one row out of a
//! memtable/SSTable merge = 1". The inputs are the statistics the engine
//! already collects: the table's estimated row count (memtable key count
//! + frozen run + SSTable `entry_count` metadata), its SSTable count, and
//! the shared block cache's hit rate. The constants are deliberately
//! crude — they only need to rank point probes below posting scans below
//! full scans, which they do by construction:
//!
//! * a **point probe** costs [`PROBE`] plus one data-block read weighted
//!   by the cache miss rate (bloom filters keep a probe to at most one
//!   block, so the SSTable count does not multiply it),
//! * a **full scan** costs one [`SEQ_ROW`] per row plus the miss-weighted
//!   block reads at an assumed [`ROWS_PER_BLOCK`] density,
//! * an **index scan** pays a posting row plus a base-table probe per
//!   estimated match,
//! * selectivities are fixed guesses: [`EQ_SELECTIVITY`] per equality,
//!   [`CMP_SELECTIVITY`] per range test, `k × eq` for an `IN` of `k`
//!   values,
//! * grouped aggregation estimates `√n` output groups.

use super::logical::{
    AggOutput, AggSpec, Estimate, PlanNode, PredTest, Predicate, ScanKind, ScanNode,
    ScanProjection, SelectPlan,
};
use crate::cql::ast::{AggFunc, OrderBy, SelectColumns, SelectItem, WhereClause};
use crate::error::{NosqlError, Result};
use crate::schema::TableDef;
use crate::types::CqlType;

/// Streaming one row out of the memtable/SSTable merge: the unit cost.
const SEQ_ROW: f64 = 1.0;
/// Fixed cost of one key probe (shard lookup + bloom/fence checks).
const PROBE: f64 = 2.0;
/// One block-cache miss: a VFS read plus block decode.
const BLOCK_READ: f64 = 8.0;
/// Assumed rows per data block when costing scan misses.
const ROWS_PER_BLOCK: f64 = 64.0;
/// Per-row cost of evaluating a predicate conjunction.
const FILTER_ROW: f64 = 0.1;
/// Per-row-per-`log₂(n)` cost of sorting.
const SORT_ROW: f64 = 0.2;
/// Per-row cost of aggregate accumulation.
const AGG_ROW: f64 = 0.2;
/// Per-row cost of projection.
const PROJECT_ROW: f64 = 0.05;
/// Assumed fraction of rows matching an equality on a non-key column.
const EQ_SELECTIVITY: f64 = 0.1;
/// Assumed fraction of rows matching a range comparison.
const CMP_SELECTIVITY: f64 = 1.0 / 3.0;

/// Statistics the planner consumes, gathered by the engine from the
/// structures it already maintains.
#[derive(Debug, Clone, Copy)]
pub struct TableStats {
    /// Estimated live rows (memtable keys + frozen run + SSTable metas;
    /// overcounts overwritten keys, which is fine for ranking).
    pub rows: u64,
    /// Live SSTables backing the table.
    pub sstables: usize,
    /// Shared block cache hit rate in `[0, 1]`; `0` (cold) when the
    /// cache has served nothing yet.
    pub cache_hit_rate: f64,
}

impl TableStats {
    fn miss_rate(&self) -> f64 {
        (1.0 - self.cache_hit_rate).clamp(0.0, 1.0)
    }

    /// Cost of one point probe.
    fn probe_cost(&self) -> f64 {
        if self.sstables == 0 {
            PROBE
        } else {
            PROBE + self.miss_rate() * BLOCK_READ
        }
    }

    /// Cost of streaming `n` rows off a full scan.
    fn scan_cost(&self, n: f64) -> f64 {
        n * SEQ_ROW + (n / ROWS_PER_BLOCK) * self.miss_rate() * BLOCK_READ
    }
}

fn unknown_column(def: &TableDef, column: &str) -> NosqlError {
    NosqlError::UnknownColumn {
        table: def.name.clone(),
        column: column.to_string(),
    }
}

fn resolve_column(def: &TableDef, column: &str) -> Result<usize> {
    def.column_index(column)
        .ok_or_else(|| unknown_column(def, column))
}

/// Phase 1 of lowering: resolve and type-check the `WHERE` conjunction.
fn resolve_predicates(def: &TableDef, where_clause: &[WhereClause]) -> Result<Vec<Predicate>> {
    let mut preds = Vec::with_capacity(where_clause.len());
    for clause in where_clause {
        let column = clause.column().to_string();
        let index = resolve_column(def, &column)?;
        let test = match clause {
            WhereClause::Eq { value, .. } => PredTest::Eq(value.clone()),
            WhereClause::In { values, .. } => PredTest::In(values.clone()),
            WhereClause::Cmp { op, value, .. } => {
                let ty = def.columns[index].ty;
                if ty == CqlType::IntSet {
                    return Err(NosqlError::Unsupported(format!(
                        "range comparisons on set<int> column {column:?}"
                    )));
                }
                if !value.is_null() && !value.matches(ty) {
                    return Err(NosqlError::TypeMismatch {
                        column: column.clone(),
                        expected: ty.name().to_string(),
                        found: value.type_name().to_string(),
                    });
                }
                PredTest::Cmp(*op, value.clone())
            }
        };
        preds.push(Predicate {
            column,
            index,
            test,
        });
    }
    Ok(preds)
}

fn selectivity(pred: &Predicate) -> f64 {
    match &pred.test {
        PredTest::Eq(_) => EQ_SELECTIVITY,
        PredTest::In(values) => (values.len() as f64 * EQ_SELECTIVITY).min(1.0),
        PredTest::Cmp(..) => CMP_SELECTIVITY,
    }
}

fn combined_selectivity(preds: &[Predicate]) -> f64 {
    preds.iter().map(selectivity).product()
}

/// How attractive a predicate is as the access path. Primary-key probes
/// beat posting scans beat nothing; equality beats `IN` (fewer probes).
fn access_score(def: &TableDef, pred: &Predicate) -> u8 {
    let on_pk = pred.column == def.pk_column().name;
    match (&pred.test, on_pk, def.is_indexed(&pred.column)) {
        (PredTest::Eq(_), true, _) => 4,
        (PredTest::In(_), true, _) => 3,
        (PredTest::Eq(_), false, true) => 2,
        (PredTest::In(_), false, true) => 1,
        _ => 0,
    }
}

/// Phase 2: pick the access path and push what the scan can absorb.
/// Returns the scan node (costed) and the predicates that must be
/// filtered above it.
fn choose_access(
    def: &TableDef,
    mut preds: Vec<Predicate>,
    stats: &TableStats,
) -> (ScanNode, Vec<Predicate>) {
    let table = def.qualified_name();
    let best = preds
        .iter()
        .enumerate()
        .max_by_key(|(i, p)| (access_score(def, p), usize::MAX - i))
        .filter(|(_, p)| access_score(def, p) > 0)
        .map(|(i, _)| i);
    let Some(best) = best else {
        // Full scan: every predicate is evaluated inside the scan, which
        // lets a pushed LIMIT stop the stream early.
        let n = stats.rows as f64;
        let filtered = n * combined_selectivity(&preds);
        let cost = stats.scan_cost(n)
            + if preds.is_empty() {
                0.0
            } else {
                n * FILTER_ROW
            };
        return (
            ScanNode {
                table,
                index_table: None,
                kind: ScanKind::Full,
                residual: preds,
                pushed_limit: None,
                projection: None,
                est: Estimate {
                    rows: filtered,
                    cost,
                },
            },
            Vec::new(),
        );
    };
    let chosen = preds.remove(best);
    let (kind, index_table, est) = match chosen.test {
        PredTest::Eq(key) if chosen.column == def.pk_column().name => (
            ScanKind::Point { key },
            None,
            Estimate {
                rows: 1.0,
                cost: stats.probe_cost(),
            },
        ),
        PredTest::In(keys) if chosen.column == def.pk_column().name => {
            let k = keys.len() as f64;
            (
                ScanKind::MultiPoint { keys },
                None,
                Estimate {
                    rows: k,
                    cost: k * stats.probe_cost(),
                },
            )
        }
        PredTest::Eq(value) => {
            let matches = (stats.rows as f64 * EQ_SELECTIVITY).max(1.0);
            (
                ScanKind::Index {
                    column: chosen.column.clone(),
                    col_index: chosen.index,
                    values: vec![value],
                },
                Some(format!(
                    "{}.{}",
                    def.keyspace,
                    def.index_table_name(&chosen.column)
                )),
                Estimate {
                    rows: matches,
                    cost: matches * (SEQ_ROW + stats.probe_cost()),
                },
            )
        }
        PredTest::In(values) => {
            let matches = (stats.rows as f64 * EQ_SELECTIVITY).max(1.0) * values.len() as f64;
            (
                ScanKind::Index {
                    column: chosen.column.clone(),
                    col_index: chosen.index,
                    values,
                },
                Some(format!(
                    "{}.{}",
                    def.keyspace,
                    def.index_table_name(&chosen.column)
                )),
                Estimate {
                    rows: matches,
                    cost: matches * (SEQ_ROW + stats.probe_cost()),
                },
            )
        }
        PredTest::Cmp(..) => unreachable!("range tests never score as access paths"),
    };
    (
        ScanNode {
            table,
            index_table,
            kind,
            residual: Vec::new(),
            pushed_limit: None,
            projection: None,
            est,
        },
        preds,
    )
}

/// Columns a full scan must materialize for this query: the select list
/// (or grouping columns and aggregate inputs), every predicate column, and
/// a base-layout `ORDER BY` key. `None` when the query touches every
/// column (`SELECT *`, or the union covers the schema) — v3 SSTables skip
/// decoding everything outside the returned set.
fn scan_projection(
    def: &TableDef,
    projection: &Projection,
    residual: &[Predicate],
    remaining: &[Predicate],
    order_by: Option<&OrderBy>,
) -> Result<Option<ScanProjection>> {
    let mut needed: std::collections::BTreeSet<usize> = match projection {
        Projection::All => return Ok(None),
        Projection::Columns { indices, .. } => indices.iter().copied().collect(),
        Projection::Aggregate { group_by, aggs, .. } => group_by
            .iter()
            .copied()
            .chain(aggs.iter().filter_map(|a| a.input))
            .collect(),
    };
    for p in residual.iter().chain(remaining) {
        needed.insert(p.index);
    }
    // An aggregate's ORDER BY resolves against its output (already
    // covered); otherwise the sort key reads the base layout.
    if let Some(o) = order_by {
        if !matches!(projection, Projection::Aggregate { .. }) {
            needed.insert(resolve_column(def, &o.column)?);
        }
    }
    if needed.len() >= def.columns.len() {
        return Ok(None);
    }
    let indices: Vec<usize> = needed.into_iter().collect();
    let names = indices
        .iter()
        .map(|&i| def.columns[i].name.clone())
        .collect();
    Ok(Some(ScanProjection {
        pruned: def.columns.len() - indices.len(),
        names,
        indices,
    }))
}

/// The validated shape of the select list.
enum Projection {
    /// `SELECT *`: the identity — no Project node needed.
    All,
    /// Plain columns, resolved to base-layout indices.
    Columns {
        indices: Vec<usize>,
        names: Vec<String>,
    },
    /// Aggregates (with or without `GROUP BY`).
    Aggregate {
        group_by: Vec<usize>,
        aggs: Vec<AggSpec>,
        output: Vec<AggOutput>,
        names: Vec<String>,
    },
}

fn resolve_aggregate(def: &TableDef, func: AggFunc, column: Option<&String>) -> Result<AggSpec> {
    let input = match column {
        None => None,
        Some(col) => {
            let idx = resolve_column(def, col)?;
            let ty = def.columns[idx].ty;
            if matches!(func, AggFunc::Sum | AggFunc::Avg) && ty != CqlType::Int {
                return Err(NosqlError::TypeMismatch {
                    column: col.clone(),
                    expected: CqlType::Int.name().to_string(),
                    found: ty.name().to_string(),
                });
            }
            Some(idx)
        }
    };
    Ok(AggSpec {
        func,
        input,
        column: column.cloned(),
    })
}

/// Phase 1 of lowering, projection half: validate the select list against
/// the schema and the `GROUP BY` clause.
fn resolve_projection(
    def: &TableDef,
    columns: &SelectColumns,
    group_by: &[String],
) -> Result<Projection> {
    let group_idx: Vec<usize> = group_by
        .iter()
        .map(|c| resolve_column(def, c))
        .collect::<Result<_>>()?;
    if !group_by.is_empty() {
        let SelectColumns::Items(items) = columns else {
            return Err(NosqlError::Unsupported(
                "SELECT * with GROUP BY; name the grouping columns and aggregates".into(),
            ));
        };
        let mut aggs = Vec::new();
        let mut output = Vec::with_capacity(items.len());
        let mut names = Vec::with_capacity(items.len());
        for item in items {
            names.push(item.output_name());
            match item {
                SelectItem::Column(name) => {
                    if !group_by.contains(name) {
                        return Err(NosqlError::Unsupported(format!(
                            "column {name:?} must appear in GROUP BY or an aggregate"
                        )));
                    }
                    output.push(AggOutput::Group(resolve_column(def, name)?));
                }
                SelectItem::Aggregate { func, column } => {
                    aggs.push(resolve_aggregate(def, *func, column.as_ref())?);
                    output.push(AggOutput::Agg(aggs.len() - 1));
                }
            }
        }
        return Ok(Projection::Aggregate {
            group_by: group_idx,
            aggs,
            output,
            names,
        });
    }
    match columns {
        SelectColumns::All => Ok(Projection::All),
        SelectColumns::Items(items) if columns.has_aggregates() => {
            let mut aggs = Vec::new();
            let mut output = Vec::with_capacity(items.len());
            let mut names = Vec::with_capacity(items.len());
            for item in items {
                let SelectItem::Aggregate { func, column } = item else {
                    return Err(NosqlError::Unsupported(format!(
                        "column {:?} must appear in GROUP BY or an aggregate",
                        item.output_name()
                    )));
                };
                names.push(item.output_name());
                aggs.push(resolve_aggregate(def, *func, column.as_ref())?);
                output.push(AggOutput::Agg(aggs.len() - 1));
            }
            Ok(Projection::Aggregate {
                group_by: Vec::new(),
                aggs,
                output,
                names,
            })
        }
        SelectColumns::Items(items) => {
            let mut indices = Vec::with_capacity(items.len());
            let mut names = Vec::with_capacity(items.len());
            for item in items {
                let SelectItem::Column(name) = item else {
                    unreachable!("has_aggregates was false");
                };
                indices.push(resolve_column(def, name)?);
                names.push(name.clone());
            }
            Ok(Projection::Columns { indices, names })
        }
    }
}

fn sort_node(input: PlanNode, key: usize, column: String, desc: bool) -> PlanNode {
    let Estimate { rows, cost } = input.estimate();
    let est = Estimate {
        rows,
        cost: cost + rows * rows.max(2.0).log2() * SORT_ROW,
    };
    PlanNode::Sort {
        input: Box::new(input),
        key,
        column,
        desc,
        est,
    }
}

fn limit_node(input: PlanNode, limit: usize) -> PlanNode {
    let Estimate { rows, cost } = input.estimate();
    let est = Estimate {
        rows: rows.min(limit as f64),
        cost,
    };
    PlanNode::Limit {
        input: Box::new(input),
        limit,
        est,
    }
}

/// Pushes `limit` into the scan when the node *is* the scan (nothing
/// between them reorders or regroups rows); otherwise wraps in a Limit.
fn apply_limit(node: PlanNode, limit: Option<usize>) -> PlanNode {
    let Some(limit) = limit else { return node };
    match node {
        // Only full scans count rows themselves (after residual
        // filtering); probe-based scans keep an explicit Limit above.
        PlanNode::Scan(mut scan) if scan.kind == ScanKind::Full => {
            scan.pushed_limit = Some(limit);
            scan.est.rows = scan.est.rows.min(limit as f64);
            PlanNode::Scan(scan)
        }
        other => limit_node(other, limit),
    }
}

/// Plans one `SELECT`: validation, access-path choice, pushdowns, and
/// cost annotation in one call. Pure — consults only the schema and
/// `stats`, never storage.
pub fn plan_select(
    def: &TableDef,
    columns: &SelectColumns,
    where_clause: &[WhereClause],
    group_by: &[String],
    order_by: Option<&OrderBy>,
    limit: Option<usize>,
    stats: &TableStats,
) -> Result<SelectPlan> {
    let preds = resolve_predicates(def, where_clause)?;
    let projection = resolve_projection(def, columns, group_by)?;
    let (mut scan, remaining) = choose_access(def, preds, stats);
    if scan.kind == ScanKind::Full {
        scan.projection = scan_projection(def, &projection, &scan.residual, &remaining, order_by)?;
    }
    let mut node = PlanNode::Scan(scan);
    if !remaining.is_empty() {
        let Estimate { rows, cost } = node.estimate();
        let est = Estimate {
            rows: rows * combined_selectivity(&remaining),
            cost: cost + rows * FILTER_ROW,
        };
        node = PlanNode::Filter {
            input: Box::new(node),
            predicates: remaining,
            est,
        };
    }
    match projection {
        Projection::All => {
            if let Some(o) = order_by {
                let key = resolve_column(def, &o.column)?;
                node = sort_node(node, key, o.column.clone(), o.desc);
            }
            node = apply_limit(node, limit);
            Ok(SelectPlan {
                columns: def.columns.iter().map(|c| c.name.clone()).collect(),
                root: node,
            })
        }
        Projection::Columns { indices, names } => {
            if let Some(o) = order_by {
                // The sort runs below the projection, so the key need not
                // be projected.
                let key = resolve_column(def, &o.column)?;
                node = sort_node(node, key, o.column.clone(), o.desc);
            }
            node = apply_limit(node, limit);
            let Estimate { rows, cost } = node.estimate();
            let est = Estimate {
                rows,
                cost: cost + rows * PROJECT_ROW,
            };
            node = PlanNode::Project {
                input: Box::new(node),
                indices,
                names: names.clone(),
                est,
            };
            Ok(SelectPlan {
                root: node,
                columns: names,
            })
        }
        Projection::Aggregate {
            group_by: group_idx,
            aggs,
            output,
            names,
        } => {
            let grouped = !group_idx.is_empty();
            if !grouped {
                // Pinned pre-planner semantics: on a global aggregate the
                // LIMIT caps the *input* rows (`SELECT COUNT(*) … LIMIT 3`
                // counts at most 3), so it sits below the Aggregate.
                node = apply_limit(node, limit);
            }
            let Estimate { rows, cost } = node.estimate();
            let groups = if grouped {
                rows.sqrt().max(1.0).min(rows.max(1.0))
            } else {
                1.0
            };
            let est = Estimate {
                rows: groups,
                cost: cost + rows * AGG_ROW,
            };
            node = PlanNode::Aggregate {
                input: Box::new(node),
                group_by: group_idx,
                aggs,
                output,
                names: names.clone(),
                est,
            };
            if let Some(o) = order_by {
                // ORDER BY resolves against the aggregate's output names
                // (grouping columns, or `count` for `COUNT(*)`).
                let key = names
                    .iter()
                    .position(|n| *n == o.column)
                    .ok_or_else(|| unknown_column(def, &o.column))?;
                node = sort_node(node, key, o.column.clone(), o.desc);
            }
            if grouped {
                // A grouped LIMIT caps output groups, not scanned rows.
                if let Some(n) = limit {
                    node = limit_node(node, n);
                }
            }
            Ok(SelectPlan {
                root: node,
                columns: names,
            })
        }
    }
}
