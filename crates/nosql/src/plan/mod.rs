//! Query planning: lowering parsed `SELECT`s into a logical plan tree,
//! choosing an access path from collected statistics, and rendering
//! `EXPLAIN` output (see DESIGN.md §5h).
//!
//! The layering is strict:
//!
//! 1. [`planner::lower`] turns the AST into a canonical [`PlanNode`] tree
//!    rooted at a full scan, validating every column reference and literal
//!    type up front — the *only* place name resolution happens, so an
//!    unknown column fails identically whether it appears in the
//!    projection, `WHERE`, `GROUP BY`, or `ORDER BY`.
//! 2. [`planner::optimize`] rewrites the access path using table
//!    statistics: an equality on the primary key becomes a bloom-checked
//!    point scan, `IN` on the key a multi-point scan, an indexed column a
//!    posting scan; remaining predicates and the `LIMIT` are pushed into
//!    full scans.
//! 3. [`planner::cost`] annotates every node with row/cost estimates
//!    bottom-up; [`explain`] renders the tree.
//!
//! Execution is elsewhere ([`crate::exec`]): the plan is pure data and
//! holds no table runtimes, so it can be built, costed, and printed
//! without touching storage.

pub mod explain;
pub mod logical;
pub mod planner;

pub use logical::{
    AggOutput, AggSpec, Estimate, PlanNode, PredTest, Predicate, ScanKind, ScanNode, SelectPlan,
};
pub use planner::{plan_select, TableStats};
