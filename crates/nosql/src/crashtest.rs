//! Deterministic crash-matrix harness: simulated power loss at every
//! mutating storage operation.
//!
//! A seeded workload drives an engine — puts, deletes, flushes, compactions
//! — over a fault-injecting VFS ([`Vfs::with_faults`]). For each crash point
//! the harness arms a crash at that mutating-op index, runs the workload
//! until the injected failure, then "restarts" (disarm + recover) and checks
//! the recovered state against an oracle of acknowledged writes:
//!
//! * every write acknowledged before the crash must be readable,
//! * nothing else may appear — **except** the single in-flight statement,
//!   which may or may not have become durable (its ack was lost; a real
//!   client faces the same ambiguity),
//! * a post-recovery flush + compaction must not change the state,
//! * a second recovery must reproduce the state again.
//!
//! [`sweep`] runs the whole matrix; `repro crashtest` exposes it on the
//! command line.

use crate::engine::{Db, OpenOptions, SharedDb};
use crate::error::{NosqlError, Result};
use sc_encoding::Rng;
use sc_storage::{StorageError, Vfs};
use std::collections::BTreeMap;
use std::time::Duration;

/// Statements per workload run (tuned so a run performs well over 100
/// mutating storage ops at the tiny flush threshold the harness uses).
pub const WORKLOAD_STEPS: usize = 140;

/// Ids the workload writes over (small, so overwrites and deletes are
/// frequent and compaction has real work).
const KEY_SPACE: u64 = 40;

#[derive(Debug, Clone)]
enum Step {
    Put { id: i64, v: String },
    Delete { id: i64 },
    Flush,
    Compact,
}

/// The seeded statement sequence. Identical for every crash point of a
/// sweep — only the crash index varies — so op indices line up across runs.
fn workload(seed: u64) -> Vec<Step> {
    let mut rng = Rng::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    (0..WORKLOAD_STEPS)
        .map(|i| {
            let roll = rng.gen_range(100);
            let id = rng.gen_range(KEY_SPACE) as i64;
            if roll < 76 {
                Step::Put {
                    id,
                    v: format!("v{i}k{id}"),
                }
            } else if roll < 88 {
                Step::Delete { id }
            } else if roll < 95 {
                Step::Flush
            } else {
                Step::Compact
            }
        })
        .collect()
}

fn tiny_open(vfs: Vfs) -> OpenOptions {
    OpenOptions::default()
        .vfs(vfs)
        .memtable_flush_bytes(512)
        .compaction_threshold(3)
        // Small segments so the matrix crosses WAL rotation and post-flush
        // checkpoint deletion, not just single-file append.
        .wal_segment_bytes(1024)
        // Inline compaction: the sweep counts every mutating storage op and
        // crashes at each one deterministically, so nothing may run off the
        // driving thread (a background merge would also outlive the crashed
        // engine and mutate the VFS during the *recovering* engine's open).
        .compaction_threads(0)
}

/// The statement that was executing when the crash fired.
#[derive(Debug, Clone, PartialEq)]
enum InFlight {
    /// A put (`Some`) or delete (`None`) whose ack was lost; it may or may
    /// not have reached the commit log intact.
    Write { id: i64, row: Option<String> },
    /// Flush or compaction — changes no logical state either way.
    Neutral,
    /// Schema DDL; the table may or may not exist after recovery.
    Ddl,
}

struct RunResult {
    /// Last acknowledged write per id (`None` = acknowledged delete).
    acked: BTreeMap<i64, Option<String>>,
    /// `Some` iff the crash fired mid-run.
    in_flight: Option<InFlight>,
}

fn is_injected(e: &NosqlError) -> bool {
    matches!(e, NosqlError::Storage(StorageError::Injected { .. }))
}

/// Runs the workload until completion or the first injected failure,
/// tracking the acked-write oracle. Any non-injected error is a real bug.
fn drive(db: &mut Db, seed: u64) -> Result<RunResult> {
    let mut acked: BTreeMap<i64, Option<String>> = BTreeMap::new();
    for ddl in [
        "CREATE KEYSPACE m",
        "CREATE TABLE m.t (id int, v text, PRIMARY KEY (id))",
    ] {
        if let Err(e) = db.execute_cql(ddl) {
            if is_injected(&e) {
                return Ok(RunResult {
                    acked,
                    in_flight: Some(InFlight::Ddl),
                });
            }
            return Err(e);
        }
    }
    for step in workload(seed) {
        let (outcome, in_flight) = match &step {
            Step::Put { id, v } => (
                db.execute_cql(&format!("INSERT INTO m.t (id, v) VALUES ({id}, '{v}')"))
                    .map(drop),
                InFlight::Write {
                    id: *id,
                    row: Some(v.clone()),
                },
            ),
            Step::Delete { id } => (
                db.execute_cql(&format!("DELETE FROM m.t WHERE id = {id}"))
                    .map(drop),
                InFlight::Write { id: *id, row: None },
            ),
            Step::Flush => (db.flush_all(), InFlight::Neutral),
            Step::Compact => (db.compact_all(), InFlight::Neutral),
        };
        match outcome {
            Ok(()) => {
                if let InFlight::Write { id, row } = in_flight {
                    acked.insert(id, row);
                }
            }
            Err(e) if is_injected(&e) => {
                return Ok(RunResult {
                    acked,
                    in_flight: Some(in_flight),
                });
            }
            Err(e) => return Err(e),
        }
    }
    Ok(RunResult {
        acked,
        in_flight: None,
    })
}

/// Full table read; `None` when the table itself never became durable.
/// Errors on duplicate ids — recovery must never resurrect two versions.
fn read_state(db: &mut Db) -> Result<Option<BTreeMap<i64, String>>> {
    let r = match db.execute_cql("SELECT id, v FROM m.t") {
        Ok(r) => r,
        Err(NosqlError::UnknownKeyspace(_)) | Err(NosqlError::UnknownTable(_)) => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut map = BTreeMap::new();
    let total = r.len();
    for row in r.rows() {
        let id = row.get_int("id")?;
        let v = row.get_text("v")?.to_string();
        map.insert(id, v);
    }
    if map.len() != total {
        return Err(NosqlError::Corrupt(format!(
            "duplicate row ids after recovery ({total} rows, {} distinct)",
            map.len()
        )));
    }
    Ok(Some(map))
}

fn materialize(acked: &BTreeMap<i64, Option<String>>) -> BTreeMap<i64, String> {
    acked
        .iter()
        .filter_map(|(k, v)| v.clone().map(|v| (*k, v)))
        .collect()
}

/// Asserts the recovered state is exactly the acked writes, or the acked
/// writes plus the in-flight one. Returns whether the in-flight write
/// turned out durable.
fn check_state(
    recovered: &Option<BTreeMap<i64, String>>,
    run: &RunResult,
    context: &str,
) -> Result<bool> {
    let Some(state) = recovered else {
        // No table at all is legal only if not even the DDL was acked.
        if run.acked.is_empty() && run.in_flight == Some(InFlight::Ddl) {
            return Ok(false);
        }
        return Err(NosqlError::Corrupt(format!(
            "{context}: table lost despite acknowledged writes"
        )));
    };
    if *state == materialize(&run.acked) {
        return Ok(false);
    }
    if let Some(InFlight::Write { id, row }) = &run.in_flight {
        let mut with = run.acked.clone();
        with.insert(*id, row.clone());
        if *state == materialize(&with) {
            return Ok(true);
        }
    }
    Err(NosqlError::Corrupt(format!(
        "{context}: recovered state diverges from the acknowledged writes"
    )))
}

/// What one crash-matrix cell observed.
#[derive(Debug, Clone, Copy)]
pub struct PointOutcome {
    /// Whether the armed crash actually fired (it always does for indices
    /// below the workload's total op count).
    pub fired: bool,
    /// Whether the unacknowledged in-flight write turned out durable.
    pub in_flight_survived: bool,
}

/// Runs one cell of the matrix: crash at mutating-op index `crash_at`,
/// recover, verify, flush+compact, verify, recover again, verify.
pub fn run_point(seed: u64, crash_at: u64) -> Result<PointOutcome> {
    let fault_seed = seed ^ crash_at.wrapping_mul(0x6a09_e667_f3bc_c909);
    let (vfs, handle) = Vfs::with_faults(Vfs::memory(), fault_seed);
    // Arm before opening: even `Db::open`'s own manifest marker (op 0) is a
    // valid crash point.
    handle.crash_at(crash_at);
    let run = match Db::open(tiny_open(vfs.clone())) {
        Ok(mut db) => drive(&mut db, seed)?,
        Err(e) if is_injected(&e) => RunResult {
            acked: BTreeMap::new(),
            in_flight: Some(InFlight::Ddl),
        },
        Err(e) => return Err(e),
    };
    let fired = handle.crashed_at().is_some();
    handle.disarm();

    // Restart 1: recover over the surviving bytes.
    let mut db = Db::open(tiny_open(vfs.clone()).recover(true))?;
    let recovered = read_state(&mut db)?;
    let in_flight_survived = check_state(&recovered, &run, "after recovery")?;

    // Absent-key point reads over the recovered tables must come back
    // empty — this drives the v2 fence/bloom miss path (and any torn
    // SSTable the recovery sweep should have removed would surface here
    // as a phantom row or a Corrupt error).
    if recovered.is_some() {
        for id in [KEY_SPACE as i64 + 1, KEY_SPACE as i64 + 17, -3] {
            let r = db.execute_cql(&format!("SELECT v FROM m.t WHERE id = {id}"))?;
            if !r.is_empty() {
                return Err(NosqlError::Corrupt(format!(
                    "phantom row for never-written id {id}"
                )));
            }
        }
    }

    // The recovered engine must keep working: a flush + full compaction
    // round-trip may not change what is readable.
    if recovered.is_some() {
        db.flush_all()?;
        db.compact_all()?;
        let after = read_state(&mut db)?;
        if after != recovered {
            return Err(NosqlError::Corrupt(
                "flush+compact changed the recovered state".into(),
            ));
        }
    }
    drop(db);

    // Restart 2: recovery is idempotent.
    let mut db = Db::open(tiny_open(vfs).recover(true))?;
    if read_state(&mut db)? != recovered {
        return Err(NosqlError::Corrupt("second recovery diverged".into()));
    }
    Ok(PointOutcome {
        fired,
        in_flight_survived,
    })
}

/// Mutating storage ops the full (uninjected) workload performs.
pub fn total_ops(seed: u64) -> Result<u64> {
    let (vfs, handle) = Vfs::with_faults(Vfs::memory(), seed);
    let mut db = Db::open(tiny_open(vfs))?;
    drive(&mut db, seed)?;
    Ok(handle.ops())
}

/// Sweep summary.
#[derive(Debug, Clone)]
pub struct CrashReport {
    /// Workload seed.
    pub seed: u64,
    /// Mutating ops the full workload performs.
    pub total_ops: u64,
    /// Distinct crash points exercised.
    pub points_tested: usize,
    /// Points where the armed crash actually fired.
    pub crashes_fired: usize,
    /// Points where the unacknowledged in-flight write turned out durable
    /// (torn write that happened to complete).
    pub in_flight_survived: usize,
}

/// Runs the crash matrix: every mutating-op index when `limit` is `None`,
/// otherwise `limit` indices evenly spaced across the workload.
pub fn sweep(seed: u64, limit: Option<usize>) -> Result<CrashReport> {
    let total = total_ops(seed)?;
    let points: Vec<u64> = match limit {
        Some(n) if (n as u64) < total => (0..n as u64).map(|i| i * total / n as u64).collect(),
        _ => (0..total).collect(),
    };
    let mut report = CrashReport {
        seed,
        total_ops: total,
        points_tested: points.len(),
        crashes_fired: 0,
        in_flight_survived: 0,
    };
    for &point in &points {
        let outcome = run_point(seed, point)
            .map_err(|e| NosqlError::Corrupt(format!("crash point {point}: {e}")))?;
        if outcome.fired {
            report.crashes_fired += 1;
        }
        if outcome.in_flight_survived {
            report.in_flight_survived += 1;
        }
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// Concurrent variant: writer sessions crashing mid-group-commit
// ---------------------------------------------------------------------------

/// Writer sessions racing in one concurrent crash cell.
pub const CONCURRENT_WRITERS: usize = 4;

/// Inserts each writer session attempts.
const WRITES_PER_WRITER: usize = 24;

/// A non-zero linger makes leaders wait for followers, so crash points
/// reliably land inside multi-session group-commit batches.
fn concurrent_open(vfs: Vfs) -> OpenOptions {
    tiny_open(vfs).group_commit_delay(Duration::from_micros(150))
}

struct ConcurrentRun {
    /// Acknowledged inserts, across all writer sessions (disjoint id
    /// ranges, so the union is well-defined).
    acked: BTreeMap<i64, String>,
    /// Inserts whose ack the crash swallowed. A torn multi-frame batch may
    /// leave *several* of these durable: the torn prefix can contain any
    /// number of complete frames from the batch the crash interrupted.
    in_flight: BTreeMap<i64, String>,
    /// Whether both DDL statements were acknowledged.
    ddl_acked: bool,
}

/// Runs the concurrent workload: DDL, then [`CONCURRENT_WRITERS`] writer
/// sessions inserting disjoint id ranges until completion or the first
/// injected failure. The fault VFS fails every mutating op after the crash
/// point, so each writer stops deterministically at its first error.
fn drive_concurrent(db: &SharedDb, seed: u64) -> Result<ConcurrentRun> {
    let mut run = ConcurrentRun {
        acked: BTreeMap::new(),
        in_flight: BTreeMap::new(),
        ddl_acked: false,
    };
    for ddl in [
        "CREATE KEYSPACE m",
        "CREATE TABLE m.t (id int, v text, PRIMARY KEY (id))",
    ] {
        match db.execute_cql(ddl) {
            Ok(_) => {}
            Err(e) if is_injected(&e) => return Ok(run),
            Err(e) => return Err(e),
        }
    }
    run.ddl_acked = true;
    let results: Vec<Result<(Vec<(i64, String)>, Option<(i64, String)>)>> =
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..CONCURRENT_WRITERS)
                .map(|w| {
                    s.spawn(move || {
                        let mut session = db.session();
                        session.execute_cql("USE m")?;
                        let mut acked = Vec::new();
                        for i in 0..WRITES_PER_WRITER {
                            let id = (w * WRITES_PER_WRITER + i) as i64;
                            let v = format!("s{seed}w{w}i{i}");
                            match session
                                .execute_cql(&format!("INSERT INTO t (id, v) VALUES ({id}, '{v}')"))
                            {
                                Ok(_) => acked.push((id, v)),
                                Err(e) if is_injected(&e) => {
                                    // Lost ack: the frame may sit in the
                                    // torn batch's durable prefix.
                                    return Ok((acked, Some((id, v))));
                                }
                                Err(e) => return Err(e),
                            }
                        }
                        Ok((acked, None))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("writer session panicked"))
                .collect()
        });
    for result in results {
        let (acked, in_flight) = result?;
        run.acked.extend(acked);
        run.in_flight.extend(in_flight);
    }
    Ok(run)
}

/// Asserts `acked ⊆ recovered ⊆ acked ∪ in-flight`, values included.
/// Returns how many lost-ack inserts turned out durable.
fn check_concurrent(
    recovered: &Option<BTreeMap<i64, String>>,
    run: &ConcurrentRun,
    context: &str,
) -> Result<usize> {
    let Some(state) = recovered else {
        if run.acked.is_empty() && !run.ddl_acked {
            return Ok(0);
        }
        return Err(NosqlError::Corrupt(format!(
            "{context}: table lost despite acknowledged statements"
        )));
    };
    for (id, v) in &run.acked {
        match state.get(id) {
            Some(got) if got == v => {}
            Some(got) => {
                return Err(NosqlError::Corrupt(format!(
                    "{context}: acked insert id {id} recovered wrong value {got:?} (want {v:?})"
                )))
            }
            None => {
                return Err(NosqlError::Corrupt(format!(
                    "{context}: acked insert id {id} lost"
                )))
            }
        }
    }
    let mut survived = 0;
    for (id, got) in state {
        if run.acked.contains_key(id) {
            continue;
        }
        match run.in_flight.get(id) {
            Some(v) if v == got => survived += 1,
            _ => {
                return Err(NosqlError::Corrupt(format!(
                    "{context}: phantom row id {id} = {got:?} was never acked nor in flight"
                )))
            }
        }
    }
    Ok(survived)
}

/// What one concurrent crash cell observed.
#[derive(Debug, Clone, Copy)]
pub struct ConcurrentOutcome {
    /// Whether the armed crash actually fired.
    pub fired: bool,
    /// Acknowledged inserts across all writer sessions.
    pub acked: usize,
    /// Lost-ack inserts that turned out durable.
    pub in_flight_survived: usize,
}

/// One cell of the concurrent matrix: [`CONCURRENT_WRITERS`] writer
/// sessions race over a fault VFS armed to crash at mutating-op index
/// `crash_at` — with group commit coalescing their appends, the crash
/// typically tears a multi-session batch. After recovery the state must
/// satisfy `acked ⊆ recovered ⊆ acked ∪ in-flight` exactly, a post-recovery
/// flush + compaction must not change it, and a second recovery must
/// reproduce it.
pub fn run_concurrent_point(seed: u64, crash_at: u64) -> Result<ConcurrentOutcome> {
    let fault_seed = seed ^ crash_at.wrapping_mul(0x6a09_e667_f3bc_c909);
    let (vfs, handle) = Vfs::with_faults(Vfs::memory(), fault_seed);
    handle.crash_at(crash_at);
    let run = match SharedDb::open(concurrent_open(vfs.clone())) {
        Ok(db) => drive_concurrent(&db, seed)?,
        Err(e) if is_injected(&e) => ConcurrentRun {
            acked: BTreeMap::new(),
            in_flight: BTreeMap::new(),
            ddl_acked: false,
        },
        Err(e) => return Err(e),
    };
    let fired = handle.crashed_at().is_some();
    handle.disarm();

    let mut db = Db::open(tiny_open(vfs.clone()).recover(true))?;
    let recovered = read_state(&mut db)?;
    let in_flight_survived = check_concurrent(&recovered, &run, "after recovery")?;
    if recovered.is_some() {
        db.flush_all()?;
        db.compact_all()?;
        if read_state(&mut db)? != recovered {
            return Err(NosqlError::Corrupt(
                "flush+compact changed the recovered state".into(),
            ));
        }
    }
    drop(db);

    let mut db = Db::open(tiny_open(vfs).recover(true))?;
    if read_state(&mut db)? != recovered {
        return Err(NosqlError::Corrupt("second recovery diverged".into()));
    }
    Ok(ConcurrentOutcome {
        fired,
        acked: run.acked.len(),
        in_flight_survived,
    })
}

/// Mutating storage ops a full uninjected concurrent run performs. Thread
/// scheduling makes the count approximate across runs (batch boundaries and
/// flush timing shift with the interleaving) — crash points past a given
/// run's actual count simply never fire.
pub fn concurrent_total_ops(seed: u64) -> Result<u64> {
    let (vfs, handle) = Vfs::with_faults(Vfs::memory(), seed);
    let db = SharedDb::open(concurrent_open(vfs))?;
    drive_concurrent(&db, seed)?;
    Ok(handle.ops())
}

/// Concurrent sweep summary.
#[derive(Debug, Clone)]
pub struct ConcurrentReport {
    /// Workload seed.
    pub seed: u64,
    /// Mutating ops the uninjected calibration run performed.
    pub total_ops: u64,
    /// Distinct crash points exercised.
    pub points_tested: usize,
    /// Points where the armed crash actually fired.
    pub crashes_fired: usize,
    /// Lost-ack inserts that turned out durable, summed over all cells.
    pub in_flight_survived: usize,
}

/// Runs the concurrent crash matrix: `limit` crash indices evenly spaced
/// across the calibration run's op count (every index when `None`). Unlike
/// the single-threaded matrix, an op index does not map to a fixed
/// statement — scheduling decides which sessions share the batch that
/// tears — but every interleaving must satisfy the acked-write oracle.
pub fn sweep_concurrent(seed: u64, limit: Option<usize>) -> Result<ConcurrentReport> {
    let total = concurrent_total_ops(seed)?;
    let points: Vec<u64> = match limit {
        Some(n) if (n as u64) < total => (0..n as u64).map(|i| i * total / n as u64).collect(),
        _ => (0..total).collect(),
    };
    let mut report = ConcurrentReport {
        seed,
        total_ops: total,
        points_tested: points.len(),
        crashes_fired: 0,
        in_flight_survived: 0,
    };
    for &point in &points {
        let outcome = run_concurrent_point(seed, point)
            .map_err(|e| NosqlError::Corrupt(format!("concurrent crash point {point}: {e}")))?;
        if outcome.fired {
            report.crashes_fired += 1;
        }
        report.in_flight_survived += outcome.in_flight_survived;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_mixed() {
        let a = workload(5);
        let b = workload(5);
        assert_eq!(a.len(), b.len());
        let puts = a.iter().filter(|s| matches!(s, Step::Put { .. })).count();
        let deletes = a
            .iter()
            .filter(|s| matches!(s, Step::Delete { .. }))
            .count();
        let flushes = a.iter().filter(|s| matches!(s, Step::Flush)).count();
        assert!(puts > 50 && deletes > 5 && flushes > 2);
    }

    #[test]
    fn workload_generates_enough_crash_points() {
        assert!(
            total_ops(1).unwrap() >= 100,
            "ops {}",
            total_ops(1).unwrap()
        );
    }

    #[test]
    fn early_and_late_points_pass() {
        // The full matrix runs in tests/crash_matrix.rs; smoke a few cells
        // here, including DDL-time crashes.
        let total = total_ops(2).unwrap();
        for point in [0, 1, 2, total / 2, total - 1] {
            let outcome = run_point(2, point).unwrap();
            assert!(outcome.fired, "crash at {point} must fire");
        }
    }

    #[test]
    fn uninjected_run_recovers_exactly() {
        // Crash point beyond the op count: nothing fires, recovery must
        // reproduce the full acked state.
        let total = total_ops(3).unwrap();
        let outcome = run_point(3, total + 10).unwrap();
        assert!(!outcome.fired);
        assert!(!outcome.in_flight_survived);
    }

    #[test]
    fn concurrent_cells_pass_early_mid_late() {
        // The fuller concurrent sweep runs in tests/crash_matrix.rs; smoke
        // a few cells here, including a DDL-time crash (point 0) and an
        // uninjected run (point far past the op count).
        let total = concurrent_total_ops(4).unwrap();
        assert!(total >= 20, "concurrent workload too small: {total} ops");
        for point in [0, 2, total / 2, total - 2, total + 100] {
            run_concurrent_point(4, point).unwrap();
        }
    }

    #[test]
    fn concurrent_uninjected_run_acks_every_insert() {
        let total = concurrent_total_ops(5).unwrap();
        let outcome = run_concurrent_point(5, total + 50).unwrap();
        assert!(!outcome.fired);
        assert_eq!(outcome.acked, CONCURRENT_WRITERS * WRITES_PER_WRITER);
        assert_eq!(outcome.in_flight_survived, 0);
    }
}
