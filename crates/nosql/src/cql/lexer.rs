//! CQL tokenizer.

use crate::error::{NosqlError, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Bare identifier or keyword (original case preserved).
    Ident(String),
    /// Integer literal.
    Number(i64),
    /// Single-quoted string literal, unescaped.
    Str(String),
    /// One punctuation character: `( ) , . = ; { } < >` or `*`.
    Symbol(char),
}

impl Token {
    /// Whether this token is the keyword `kw` (case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes CQL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // -- line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' | ')' | ',' | '.' | '=' | ';' | '{' | '}' | '<' | '>' | '*' => {
                out.push(Token::Symbol(c));
                i += 1;
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(NosqlError::Parse("unterminated string literal".into()))
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Consume a full UTF-8 character.
                            let ch = input[i..].chars().next().expect("in-bounds");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            '-' | '0'..='9' => {
                let start = i;
                if c == '-' {
                    i += 1;
                    if !matches!(bytes.get(i), Some(b'0'..=b'9')) {
                        return Err(NosqlError::Parse(format!("stray '-' at byte {start}")));
                    }
                }
                while matches!(bytes.get(i), Some(b'0'..=b'9')) {
                    i += 1;
                }
                let text = &input[start..i];
                let n: i64 = text
                    .parse()
                    .map_err(|_| NosqlError::Parse(format!("bad number {text:?}")))?;
                out.push(Token::Number(n));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let ch = input[i..].chars().next().expect("in-bounds");
                    if ch.is_alphanumeric() || ch == '_' {
                        i += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(NosqlError::Parse(format!(
                    "unexpected character {other:?} at byte {i}"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_statement_tokenizes() {
        let toks =
            tokenize("INSERT INTO DWARF_CELL (id,key,measure) VALUES (3,'Fenian St', 3);").unwrap();
        assert!(toks[0].is_keyword("insert"));
        assert!(toks.contains(&Token::Str("Fenian St".into())));
        assert!(toks.contains(&Token::Number(3)));
        assert_eq!(*toks.last().unwrap(), Token::Symbol(';'));
    }

    #[test]
    fn string_escapes_and_unicode() {
        let toks = tokenize("'O''Connell St' 'Baile Átha Cliath'").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Str("O'Connell St".into()),
                Token::Str("Baile Átha Cliath".into())
            ]
        );
    }

    #[test]
    fn negative_numbers_and_sets() {
        let toks = tokenize("{-1, 2}").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Symbol('{'),
                Token::Number(-1),
                Token::Symbol(','),
                Token::Number(2),
                Token::Symbol('}'),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("SELECT -- everything\n* FROM t").unwrap();
        assert_eq!(toks.len(), 4);
        assert_eq!(toks[1], Token::Symbol('*'));
    }

    #[test]
    fn errors() {
        assert!(tokenize("'open").is_err());
        assert!(tokenize("a ? b").is_err());
        assert!(tokenize("- 5").is_err());
        assert!(tokenize("99999999999999999999").is_err());
    }
}
