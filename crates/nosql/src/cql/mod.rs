//! CQL subset: lexer, AST and parser.
//!
//! The paper's transformation step (§4, Figure 3) turns DWARF cells into CQL
//! `INSERT` statements; this module makes that path executable end to end.
//! Supported statements:
//!
//! ```text
//! CREATE KEYSPACE <name>
//! CREATE TABLE <ks>.<t> (<col> <type>, ..., PRIMARY KEY (<col>))
//! CREATE INDEX ON <ks>.<t> (<col>)
//! INSERT INTO <ks>.<t> (<cols>) VALUES (<literals>)
//! SELECT *|<cols> FROM <ks>.<t> [WHERE <col> = <literal>] [LIMIT <n>]
//! DELETE FROM <ks>.<t> WHERE <col> = <literal>
//! TRUNCATE <ks>.<t>
//! BEGIN BATCH <inserts...> APPLY BATCH
//! ```
//!
//! Types: `int`, `text`, `boolean`, `set<int>`. Literals: integers,
//! `'strings'` (with `''` escapes), `true`/`false`, `null` and `{1, 2, 3}`
//! set literals.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use parser::parse_statement;
