//! CQL statement AST.

use crate::types::{CqlType, CqlValue};

/// A table reference. `keyspace` is empty for an unqualified reference
/// (`FROM t`), which a [`crate::Session`] resolves against its current
/// `USE` keyspace before execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Keyspace name; empty when the statement left the table unqualified.
    pub keyspace: String,
    /// Table name.
    pub table: String,
}

impl TableRef {
    /// Whether the reference names its keyspace explicitly.
    pub fn is_qualified(&self) -> bool {
        !self.keyspace.is_empty()
    }
}

/// A row filter: `WHERE <column> = <value>` or
/// `WHERE <column> IN (<v1>, <v2>, ...)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WhereClause {
    /// `WHERE column = value`.
    Eq {
        /// Column constrained.
        column: String,
        /// Required value.
        value: CqlValue,
    },
    /// `WHERE column IN (v1, v2, ...)` — a multi-point read. On the
    /// primary key this probes the memtable/SSTables once per key instead
    /// of issuing one statement per value.
    In {
        /// Column constrained.
        column: String,
        /// Accepted values, in statement order.
        values: Vec<CqlValue>,
    },
}

impl WhereClause {
    /// Convenience constructor for [`WhereClause::Eq`].
    pub fn eq(column: impl Into<String>, value: CqlValue) -> WhereClause {
        WhereClause::Eq {
            column: column.into(),
            value,
        }
    }

    /// Convenience constructor for [`WhereClause::In`].
    pub fn any_of(column: impl Into<String>, values: Vec<CqlValue>) -> WhereClause {
        WhereClause::In {
            column: column.into(),
            values,
        }
    }

    /// The constrained column's name.
    pub fn column(&self) -> &str {
        match self {
            WhereClause::Eq { column, .. } | WhereClause::In { column, .. } => column,
        }
    }

    /// Renders the filter as CQL (without the `WHERE` keyword).
    pub fn to_cql(&self) -> String {
        match self {
            WhereClause::Eq { column, value } => {
                format!("{column} = {}", value.to_cql_literal())
            }
            WhereClause::In { column, values } => {
                let vals: Vec<String> = values.iter().map(CqlValue::to_cql_literal).collect();
                format!("{column} IN ({})", vals.join(", "))
            }
        }
    }
}

/// The column list of a SELECT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectColumns {
    /// `SELECT *`.
    All,
    /// An explicit list.
    Named(Vec<String>),
    /// `SELECT COUNT(*)`.
    Count,
}

/// A parsed CQL statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// `CREATE KEYSPACE name`.
    CreateKeyspace {
        /// Keyspace name.
        name: String,
    },
    /// `CREATE TABLE ks.t (...)`.
    CreateTable {
        /// Target.
        table: TableRef,
        /// Column name/type pairs in declaration order.
        columns: Vec<(String, CqlType)>,
        /// Primary-key column name.
        primary_key: String,
    },
    /// `CREATE INDEX ON ks.t (col)`.
    CreateIndex {
        /// Target.
        table: TableRef,
        /// Indexed column.
        column: String,
    },
    /// `INSERT INTO ks.t (cols) VALUES (vals)`.
    Insert {
        /// Target.
        table: TableRef,
        /// Bound column names.
        columns: Vec<String>,
        /// Literal values, aligned with `columns`.
        values: Vec<CqlValue>,
    },
    /// `SELECT ... FROM ks.t [WHERE ...] [LIMIT n]`.
    Select {
        /// Target.
        table: TableRef,
        /// Projected columns.
        columns: SelectColumns,
        /// Optional equality filter.
        where_clause: Option<WhereClause>,
        /// Optional row limit.
        limit: Option<usize>,
    },
    /// `UPDATE ks.t SET c = v, ... WHERE pk = v` (an upsert, as in
    /// Cassandra).
    Update {
        /// Target.
        table: TableRef,
        /// Column/value assignments.
        assignments: Vec<(String, CqlValue)>,
        /// Key filter (must be the primary key).
        where_clause: WhereClause,
    },
    /// `DELETE FROM ks.t WHERE pk = v`.
    Delete {
        /// Target.
        table: TableRef,
        /// Key filter (must be the primary key).
        where_clause: WhereClause,
    },
    /// `TRUNCATE ks.t`.
    Truncate {
        /// Target.
        table: TableRef,
    },
    /// `BEGIN BATCH ... APPLY BATCH` of inserts/deletes.
    Batch {
        /// The batched statements.
        statements: Vec<Statement>,
    },
    /// `USE keyspace` — sets a session's default keyspace for resolving
    /// unqualified table references. Only meaningful on a
    /// [`crate::Session`]; the bare engine rejects it.
    Use {
        /// Keyspace name.
        keyspace: String,
    },
}

impl Statement {
    /// Renders the statement back to CQL text (inverse of parsing; used to
    /// show Figure 3's generated INSERT and in the text-path ablation).
    pub fn to_cql(&self) -> String {
        match self {
            Statement::CreateKeyspace { name } => format!("CREATE KEYSPACE {name}"),
            Statement::CreateTable {
                table,
                columns,
                primary_key,
            } => {
                let cols: Vec<String> = columns.iter().map(|(n, t)| format!("{n} {t}")).collect();
                format!(
                    "CREATE TABLE {}.{} ({}, PRIMARY KEY ({}))",
                    table.keyspace,
                    table.table,
                    cols.join(", "),
                    primary_key
                )
            }
            Statement::CreateIndex { table, column } => {
                format!(
                    "CREATE INDEX ON {}.{} ({})",
                    table.keyspace, table.table, column
                )
            }
            Statement::Insert {
                table,
                columns,
                values,
            } => {
                let vals: Vec<String> = values.iter().map(CqlValue::to_cql_literal).collect();
                format!(
                    "INSERT INTO {}.{} ({}) VALUES ({})",
                    table.keyspace,
                    table.table,
                    columns.join(","),
                    vals.join(",")
                )
            }
            Statement::Select {
                table,
                columns,
                where_clause,
                limit,
            } => {
                let cols = match columns {
                    SelectColumns::All => "*".to_string(),
                    SelectColumns::Named(names) => names.join(", "),
                    SelectColumns::Count => "COUNT(*)".to_string(),
                };
                let mut s = format!("SELECT {cols} FROM {}.{}", table.keyspace, table.table);
                if let Some(w) = where_clause {
                    s.push_str(&format!(" WHERE {}", w.to_cql()));
                }
                if let Some(n) = limit {
                    s.push_str(&format!(" LIMIT {n}"));
                }
                s
            }
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => {
                let sets: Vec<String> = assignments
                    .iter()
                    .map(|(c, v)| format!("{c} = {}", v.to_cql_literal()))
                    .collect();
                format!(
                    "UPDATE {}.{} SET {} WHERE {}",
                    table.keyspace,
                    table.table,
                    sets.join(", "),
                    where_clause.to_cql()
                )
            }
            Statement::Delete {
                table,
                where_clause,
            } => format!(
                "DELETE FROM {}.{} WHERE {}",
                table.keyspace,
                table.table,
                where_clause.to_cql()
            ),
            Statement::Truncate { table } => {
                format!("TRUNCATE {}.{}", table.keyspace, table.table)
            }
            Statement::Batch { statements } => {
                let mut s = String::from("BEGIN BATCH ");
                for st in statements {
                    s.push_str(&st.to_cql());
                    s.push_str("; ");
                }
                s.push_str("APPLY BATCH");
                s
            }
            Statement::Use { keyspace } => format!("USE {keyspace}"),
        }
    }

    /// Every table reference in the statement (recursing into batches).
    pub fn table_refs(&self) -> Vec<&TableRef> {
        let mut refs = Vec::new();
        self.collect_refs(&mut refs);
        refs
    }

    fn collect_refs<'a>(&'a self, out: &mut Vec<&'a TableRef>) {
        match self {
            Statement::CreateKeyspace { .. } | Statement::Use { .. } => {}
            Statement::CreateTable { table, .. }
            | Statement::CreateIndex { table, .. }
            | Statement::Insert { table, .. }
            | Statement::Select { table, .. }
            | Statement::Update { table, .. }
            | Statement::Delete { table, .. }
            | Statement::Truncate { table } => out.push(table),
            Statement::Batch { statements } => {
                for st in statements {
                    st.collect_refs(out);
                }
            }
        }
    }

    /// Returns a copy with every unqualified table reference resolved
    /// against `keyspace`. Qualified references are left untouched.
    pub fn with_default_keyspace(&self, keyspace: &str) -> Statement {
        let fix = |t: &TableRef| -> TableRef {
            if t.is_qualified() {
                t.clone()
            } else {
                TableRef {
                    keyspace: keyspace.to_string(),
                    table: t.table.clone(),
                }
            }
        };
        let mut stmt = self.clone();
        match &mut stmt {
            Statement::CreateKeyspace { .. } | Statement::Use { .. } => {}
            Statement::CreateTable { table, .. }
            | Statement::CreateIndex { table, .. }
            | Statement::Insert { table, .. }
            | Statement::Select { table, .. }
            | Statement::Update { table, .. }
            | Statement::Delete { table, .. }
            | Statement::Truncate { table } => *table = fix(table),
            Statement::Batch { statements } => {
                *statements = statements
                    .iter()
                    .map(|st| st.with_default_keyspace(keyspace))
                    .collect();
            }
        }
        stmt
    }
}
