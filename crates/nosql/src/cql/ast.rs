//! CQL statement AST.

use crate::types::{CqlType, CqlValue};

/// A table reference. `keyspace` is empty for an unqualified reference
/// (`FROM t`), which a [`crate::Session`] resolves against its current
/// `USE` keyspace before execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Keyspace name; empty when the statement left the table unqualified.
    pub keyspace: String,
    /// Table name.
    pub table: String,
}

impl TableRef {
    /// Whether the reference names its keyspace explicitly.
    pub fn is_qualified(&self) -> bool {
        !self.keyspace.is_empty()
    }
}

/// A comparison operator in a range predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The CQL spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Whether `ord` (cell compared against the literal) satisfies the
    /// operator.
    pub fn accepts(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// One predicate of a `WHERE` conjunction: `column = value`,
/// `column IN (...)`, or `column <op> value`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WhereClause {
    /// `WHERE column = value`.
    Eq {
        /// Column constrained.
        column: String,
        /// Required value.
        value: CqlValue,
    },
    /// `WHERE column IN (v1, v2, ...)` — a multi-point read. On the
    /// primary key this probes the memtable/SSTables once per key instead
    /// of issuing one statement per value.
    In {
        /// Column constrained.
        column: String,
        /// Accepted values, in statement order.
        values: Vec<CqlValue>,
    },
    /// `WHERE column < value` (and `<=`, `>`, `>=`).
    Cmp {
        /// Column constrained.
        column: String,
        /// Comparison operator.
        op: CmpOp,
        /// Literal compared against.
        value: CqlValue,
    },
}

impl WhereClause {
    /// Convenience constructor for [`WhereClause::Eq`].
    pub fn eq(column: impl Into<String>, value: CqlValue) -> WhereClause {
        WhereClause::Eq {
            column: column.into(),
            value,
        }
    }

    /// Convenience constructor for [`WhereClause::In`].
    pub fn any_of(column: impl Into<String>, values: Vec<CqlValue>) -> WhereClause {
        WhereClause::In {
            column: column.into(),
            values,
        }
    }

    /// Convenience constructor for [`WhereClause::Cmp`].
    pub fn cmp(column: impl Into<String>, op: CmpOp, value: CqlValue) -> WhereClause {
        WhereClause::Cmp {
            column: column.into(),
            op,
            value,
        }
    }

    /// The constrained column's name.
    pub fn column(&self) -> &str {
        match self {
            WhereClause::Eq { column, .. }
            | WhereClause::In { column, .. }
            | WhereClause::Cmp { column, .. } => column,
        }
    }

    /// Renders the filter as CQL (without the `WHERE` keyword).
    pub fn to_cql(&self) -> String {
        match self {
            WhereClause::Eq { column, value } => {
                format!("{column} = {}", value.to_cql_literal())
            }
            WhereClause::In { column, values } => {
                let vals: Vec<String> = values.iter().map(CqlValue::to_cql_literal).collect();
                format!("{column} IN ({})", vals.join(", "))
            }
            WhereClause::Cmp { column, op, value } => {
                format!("{column} {} {}", op.symbol(), value.to_cql_literal())
            }
        }
    }
}

/// An aggregate function in a SELECT list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(col)`.
    Count,
    /// `SUM(col)` — int columns only.
    Sum,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
    /// `AVG(col)` — int columns only, integer division as in Cassandra.
    Avg,
}

impl AggFunc {
    /// Lower-case CQL name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// One item of an explicit SELECT list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectItem {
    /// A plain column reference.
    Column(String),
    /// An aggregate call; `column` is `None` for `COUNT(*)`.
    Aggregate {
        /// Aggregate function.
        func: AggFunc,
        /// Argument column, `None` for `*` (COUNT only).
        column: Option<String>,
    },
}

impl SelectItem {
    /// The output column name: plain columns keep their name, `COUNT(*)`
    /// stays `count` (pinned by the pre-planner API), other aggregates
    /// render as `func(col)`.
    pub fn output_name(&self) -> String {
        match self {
            SelectItem::Column(name) => name.clone(),
            SelectItem::Aggregate { func, column: None } => func.name().to_string(),
            SelectItem::Aggregate {
                func,
                column: Some(col),
            } => format!("{}({col})", func.name()),
        }
    }

    /// Renders the item as CQL.
    pub fn to_cql(&self) -> String {
        match self {
            SelectItem::Column(name) => name.clone(),
            SelectItem::Aggregate { func, column } => format!(
                "{}({})",
                func.name().to_uppercase(),
                column.as_deref().unwrap_or("*")
            ),
        }
    }
}

/// The column list of a SELECT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectColumns {
    /// `SELECT *`.
    All,
    /// An explicit list of columns and/or aggregates.
    Items(Vec<SelectItem>),
}

impl SelectColumns {
    /// An explicit list of plain (non-aggregate) columns.
    pub fn named<S: Into<String>>(names: impl IntoIterator<Item = S>) -> SelectColumns {
        SelectColumns::Items(
            names
                .into_iter()
                .map(|n| SelectItem::Column(n.into()))
                .collect(),
        )
    }

    /// `SELECT COUNT(*)`.
    pub fn count_star() -> SelectColumns {
        SelectColumns::Items(vec![SelectItem::Aggregate {
            func: AggFunc::Count,
            column: None,
        }])
    }

    /// Whether any item is an aggregate call.
    pub fn has_aggregates(&self) -> bool {
        match self {
            SelectColumns::All => false,
            SelectColumns::Items(items) => items
                .iter()
                .any(|i| matches!(i, SelectItem::Aggregate { .. })),
        }
    }
}

/// `ORDER BY column [ASC|DESC]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderBy {
    /// Sort column.
    pub column: String,
    /// `true` for `DESC`.
    pub desc: bool,
}

impl OrderBy {
    /// Renders the clause as CQL (without the `ORDER BY` keywords).
    pub fn to_cql(&self) -> String {
        format!(
            "{}{}",
            self.column,
            if self.desc { " DESC" } else { " ASC" }
        )
    }
}

/// A parsed CQL statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// `CREATE KEYSPACE name`.
    CreateKeyspace {
        /// Keyspace name.
        name: String,
    },
    /// `CREATE TABLE ks.t (...)`.
    CreateTable {
        /// Target.
        table: TableRef,
        /// Column name/type pairs in declaration order.
        columns: Vec<(String, CqlType)>,
        /// Primary-key column name.
        primary_key: String,
    },
    /// `CREATE INDEX ON ks.t (col)`.
    CreateIndex {
        /// Target.
        table: TableRef,
        /// Indexed column.
        column: String,
    },
    /// `INSERT INTO ks.t (cols) VALUES (vals)`.
    Insert {
        /// Target.
        table: TableRef,
        /// Bound column names.
        columns: Vec<String>,
        /// Literal values, aligned with `columns`.
        values: Vec<CqlValue>,
    },
    /// `SELECT ... FROM ks.t [WHERE ...] [GROUP BY ...] [ORDER BY ...]
    /// [LIMIT n]`.
    Select {
        /// Target.
        table: TableRef,
        /// Projected columns and aggregates.
        columns: SelectColumns,
        /// `WHERE` conjunction (AND-joined); empty means no filter.
        where_clause: Vec<WhereClause>,
        /// `GROUP BY` columns, in statement order; empty when absent.
        group_by: Vec<String>,
        /// Optional `ORDER BY`.
        order_by: Option<OrderBy>,
        /// Optional row limit.
        limit: Option<usize>,
    },
    /// `UPDATE ks.t SET c = v, ... WHERE pk = v` (an upsert, as in
    /// Cassandra).
    Update {
        /// Target.
        table: TableRef,
        /// Column/value assignments.
        assignments: Vec<(String, CqlValue)>,
        /// Key filter (must be the primary key).
        where_clause: WhereClause,
    },
    /// `DELETE FROM ks.t WHERE pk = v`.
    Delete {
        /// Target.
        table: TableRef,
        /// Key filter (must be the primary key).
        where_clause: WhereClause,
    },
    /// `TRUNCATE ks.t`.
    Truncate {
        /// Target.
        table: TableRef,
    },
    /// `BEGIN BATCH ... APPLY BATCH` of inserts/deletes.
    Batch {
        /// The batched statements.
        statements: Vec<Statement>,
    },
    /// `USE keyspace` — sets a session's default keyspace for resolving
    /// unqualified table references. Only meaningful on a
    /// [`crate::Session`]; the bare engine rejects it.
    Use {
        /// Keyspace name.
        keyspace: String,
    },
    /// `EXPLAIN <select>` — plans the inner statement and returns the
    /// plan tree (one `plan` text column) instead of executing it.
    Explain {
        /// The statement being explained (currently SELECT only).
        statement: Box<Statement>,
    },
}

impl Statement {
    /// A `SELECT` with only the target/projection/filter/limit set — the
    /// shape every pre-`ORDER BY`-era caller builds.
    pub fn select(
        table: TableRef,
        columns: SelectColumns,
        where_clause: Option<WhereClause>,
        limit: Option<usize>,
    ) -> Statement {
        Statement::Select {
            table,
            columns,
            where_clause: where_clause.into_iter().collect(),
            group_by: Vec::new(),
            order_by: None,
            limit,
        }
    }

    /// Renders the statement back to CQL text (inverse of parsing; used to
    /// show Figure 3's generated INSERT and in the text-path ablation).
    pub fn to_cql(&self) -> String {
        match self {
            Statement::CreateKeyspace { name } => format!("CREATE KEYSPACE {name}"),
            Statement::CreateTable {
                table,
                columns,
                primary_key,
            } => {
                let cols: Vec<String> = columns.iter().map(|(n, t)| format!("{n} {t}")).collect();
                format!(
                    "CREATE TABLE {}.{} ({}, PRIMARY KEY ({}))",
                    table.keyspace,
                    table.table,
                    cols.join(", "),
                    primary_key
                )
            }
            Statement::CreateIndex { table, column } => {
                format!(
                    "CREATE INDEX ON {}.{} ({})",
                    table.keyspace, table.table, column
                )
            }
            Statement::Insert {
                table,
                columns,
                values,
            } => {
                let vals: Vec<String> = values.iter().map(CqlValue::to_cql_literal).collect();
                format!(
                    "INSERT INTO {}.{} ({}) VALUES ({})",
                    table.keyspace,
                    table.table,
                    columns.join(","),
                    vals.join(",")
                )
            }
            Statement::Select {
                table,
                columns,
                where_clause,
                group_by,
                order_by,
                limit,
            } => {
                let cols = match columns {
                    SelectColumns::All => "*".to_string(),
                    SelectColumns::Items(items) => {
                        let parts: Vec<String> = items.iter().map(SelectItem::to_cql).collect();
                        parts.join(", ")
                    }
                };
                let mut s = format!("SELECT {cols} FROM {}.{}", table.keyspace, table.table);
                if !where_clause.is_empty() {
                    let preds: Vec<String> = where_clause.iter().map(WhereClause::to_cql).collect();
                    s.push_str(&format!(" WHERE {}", preds.join(" AND ")));
                }
                if !group_by.is_empty() {
                    s.push_str(&format!(" GROUP BY {}", group_by.join(", ")));
                }
                if let Some(o) = order_by {
                    s.push_str(&format!(" ORDER BY {}", o.to_cql()));
                }
                if let Some(n) = limit {
                    s.push_str(&format!(" LIMIT {n}"));
                }
                s
            }
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => {
                let sets: Vec<String> = assignments
                    .iter()
                    .map(|(c, v)| format!("{c} = {}", v.to_cql_literal()))
                    .collect();
                format!(
                    "UPDATE {}.{} SET {} WHERE {}",
                    table.keyspace,
                    table.table,
                    sets.join(", "),
                    where_clause.to_cql()
                )
            }
            Statement::Delete {
                table,
                where_clause,
            } => format!(
                "DELETE FROM {}.{} WHERE {}",
                table.keyspace,
                table.table,
                where_clause.to_cql()
            ),
            Statement::Truncate { table } => {
                format!("TRUNCATE {}.{}", table.keyspace, table.table)
            }
            Statement::Batch { statements } => {
                let mut s = String::from("BEGIN BATCH ");
                for st in statements {
                    s.push_str(&st.to_cql());
                    s.push_str("; ");
                }
                s.push_str("APPLY BATCH");
                s
            }
            Statement::Use { keyspace } => format!("USE {keyspace}"),
            Statement::Explain { statement } => format!("EXPLAIN {}", statement.to_cql()),
        }
    }

    /// Every table reference in the statement (recursing into batches).
    pub fn table_refs(&self) -> Vec<&TableRef> {
        let mut refs = Vec::new();
        self.collect_refs(&mut refs);
        refs
    }

    fn collect_refs<'a>(&'a self, out: &mut Vec<&'a TableRef>) {
        match self {
            Statement::CreateKeyspace { .. } | Statement::Use { .. } => {}
            Statement::CreateTable { table, .. }
            | Statement::CreateIndex { table, .. }
            | Statement::Insert { table, .. }
            | Statement::Select { table, .. }
            | Statement::Update { table, .. }
            | Statement::Delete { table, .. }
            | Statement::Truncate { table } => out.push(table),
            Statement::Batch { statements } => {
                for st in statements {
                    st.collect_refs(out);
                }
            }
            Statement::Explain { statement } => statement.collect_refs(out),
        }
    }

    /// Returns a copy with every unqualified table reference resolved
    /// against `keyspace`. Qualified references are left untouched.
    pub fn with_default_keyspace(&self, keyspace: &str) -> Statement {
        let fix = |t: &TableRef| -> TableRef {
            if t.is_qualified() {
                t.clone()
            } else {
                TableRef {
                    keyspace: keyspace.to_string(),
                    table: t.table.clone(),
                }
            }
        };
        let mut stmt = self.clone();
        match &mut stmt {
            Statement::CreateKeyspace { .. } | Statement::Use { .. } => {}
            Statement::CreateTable { table, .. }
            | Statement::CreateIndex { table, .. }
            | Statement::Insert { table, .. }
            | Statement::Select { table, .. }
            | Statement::Update { table, .. }
            | Statement::Delete { table, .. }
            | Statement::Truncate { table } => *table = fix(table),
            Statement::Batch { statements } => {
                *statements = statements
                    .iter()
                    .map(|st| st.with_default_keyspace(keyspace))
                    .collect();
            }
            Statement::Explain { statement } => {
                *statement = Box::new(statement.with_default_keyspace(keyspace));
            }
        }
        stmt
    }
}
