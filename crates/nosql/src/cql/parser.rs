//! Recursive-descent CQL parser.

use super::ast::{
    AggFunc, CmpOp, OrderBy, SelectColumns, SelectItem, Statement, TableRef, WhereClause,
};
use super::lexer::{tokenize, Token};
use crate::error::{NosqlError, Result};
use crate::types::{CqlType, CqlValue};
use std::collections::BTreeSet;

/// Parses one CQL statement (a trailing `;` is tolerated).
pub fn parse_statement(input: &str) -> Result<Statement> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_symbol(';');
    if !p.is_done() {
        return Err(NosqlError::Parse(format!(
            "trailing tokens after statement: {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn is_done(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.bump() {
            Some(t) if t.is_keyword(kw) => Ok(()),
            other => Err(NosqlError::Parse(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_keyword(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: char) -> Result<()> {
        match self.bump() {
            Some(Token::Symbol(c)) if c == sym => Ok(()),
            other => Err(NosqlError::Parse(format!(
                "expected {sym:?}, found {other:?}"
            ))),
        }
    }

    fn eat_symbol(&mut self, sym: char) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(c)) if *c == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(NosqlError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let first = self.ident()?;
        if self.eat_symbol('.') {
            let table = self.ident()?;
            Ok(TableRef {
                keyspace: first,
                table,
            })
        } else {
            // Unqualified: a session resolves the keyspace via USE.
            Ok(TableRef {
                keyspace: String::new(),
                table: first,
            })
        }
    }

    fn literal(&mut self) -> Result<CqlValue> {
        match self.bump() {
            Some(Token::Number(n)) => Ok(CqlValue::Int(n)),
            Some(Token::Str(s)) => Ok(CqlValue::Text(s)),
            Some(t) if t.is_keyword("true") => Ok(CqlValue::Boolean(true)),
            Some(t) if t.is_keyword("false") => Ok(CqlValue::Boolean(false)),
            Some(t) if t.is_keyword("null") => Ok(CqlValue::Null),
            Some(Token::Symbol('{')) => {
                let mut set = BTreeSet::new();
                if !self.eat_symbol('}') {
                    loop {
                        match self.bump() {
                            Some(Token::Number(n)) => {
                                set.insert(n);
                            }
                            other => {
                                return Err(NosqlError::Parse(format!(
                                    "set literals hold integers, found {other:?}"
                                )))
                            }
                        }
                        if self.eat_symbol('}') {
                            break;
                        }
                        self.expect_symbol(',')?;
                    }
                }
                Ok(CqlValue::IntSet(set))
            }
            other => Err(NosqlError::Parse(format!(
                "expected literal, found {other:?}"
            ))),
        }
    }

    fn type_name(&mut self) -> Result<CqlType> {
        let base = self.ident()?;
        if base.eq_ignore_ascii_case("set") {
            self.expect_symbol('<')?;
            let inner = self.ident()?;
            self.expect_symbol('>')?;
            if !inner.eq_ignore_ascii_case("int") {
                return Err(NosqlError::Parse(format!(
                    "only set<int> is supported, found set<{inner}>"
                )));
            }
            return Ok(CqlType::IntSet);
        }
        CqlType::parse(&base).ok_or_else(|| NosqlError::Parse(format!("unknown type {base:?}")))
    }

    /// One WHERE predicate: `col = v`, `col IN (...)`, or `col <op> v`.
    fn where_predicate(&mut self) -> Result<WhereClause> {
        let column = self.ident()?;
        if self.eat_keyword("in") {
            self.expect_symbol('(')?;
            let mut values = Vec::new();
            // `IN ()` is legal CQL and matches no rows.
            if !self.eat_symbol(')') {
                loop {
                    values.push(self.literal()?);
                    if self.eat_symbol(')') {
                        break;
                    }
                    self.expect_symbol(',')?;
                }
            }
            return Ok(WhereClause::In { column, values });
        }
        if self.eat_symbol('<') {
            let op = if self.eat_symbol('=') {
                CmpOp::Le
            } else {
                CmpOp::Lt
            };
            let value = self.literal()?;
            return Ok(WhereClause::Cmp { column, op, value });
        }
        if self.eat_symbol('>') {
            let op = if self.eat_symbol('=') {
                CmpOp::Ge
            } else {
                CmpOp::Gt
            };
            let value = self.literal()?;
            return Ok(WhereClause::Cmp { column, op, value });
        }
        self.expect_symbol('=')?;
        let value = self.literal()?;
        Ok(WhereClause::Eq { column, value })
    }

    /// An AND-joined conjunction of predicates (SELECT only; UPDATE and
    /// DELETE keep their single primary-key equality).
    fn where_conjunction(&mut self) -> Result<Vec<WhereClause>> {
        let mut preds = vec![self.where_predicate()?];
        while self.eat_keyword("and") {
            preds.push(self.where_predicate()?);
        }
        Ok(preds)
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_keyword("explain") {
            let inner = self.statement()?;
            return Ok(Statement::Explain {
                statement: Box::new(inner),
            });
        }
        if self.eat_keyword("create") {
            if self.eat_keyword("keyspace") {
                let name = self.ident()?;
                return Ok(Statement::CreateKeyspace { name });
            }
            if self.eat_keyword("table") {
                return self.create_table();
            }
            if self.eat_keyword("index") {
                // Optional index name before ON.
                if !self.peek_keyword("on") {
                    let _name = self.ident()?;
                }
                self.expect_keyword("on")?;
                let table = self.table_ref()?;
                self.expect_symbol('(')?;
                let column = self.ident()?;
                self.expect_symbol(')')?;
                return Ok(Statement::CreateIndex { table, column });
            }
            return Err(NosqlError::Parse(
                "expected KEYSPACE, TABLE or INDEX after CREATE".into(),
            ));
        }
        if self.eat_keyword("insert") {
            self.expect_keyword("into")?;
            return self.insert_body();
        }
        if self.eat_keyword("select") {
            return self.select_body();
        }
        if self.eat_keyword("update") {
            let table = self.table_ref()?;
            self.expect_keyword("set")?;
            let mut assignments = Vec::new();
            loop {
                let column = self.ident()?;
                self.expect_symbol('=')?;
                let value = self.literal()?;
                assignments.push((column, value));
                if !self.eat_symbol(',') {
                    break;
                }
            }
            self.expect_keyword("where")?;
            let where_clause = self.where_predicate()?;
            return Ok(Statement::Update {
                table,
                assignments,
                where_clause,
            });
        }
        if self.eat_keyword("delete") {
            self.expect_keyword("from")?;
            let table = self.table_ref()?;
            self.expect_keyword("where")?;
            let where_clause = self.where_predicate()?;
            return Ok(Statement::Delete {
                table,
                where_clause,
            });
        }
        if self.eat_keyword("truncate") {
            let table = self.table_ref()?;
            return Ok(Statement::Truncate { table });
        }
        if self.eat_keyword("use") {
            let keyspace = self.ident()?;
            return Ok(Statement::Use { keyspace });
        }
        if self.eat_keyword("begin") {
            self.expect_keyword("batch")?;
            let mut statements = Vec::new();
            loop {
                if self.eat_keyword("apply") {
                    self.expect_keyword("batch")?;
                    break;
                }
                let st = if self.eat_keyword("insert") {
                    self.expect_keyword("into")?;
                    self.insert_body()?
                } else if self.eat_keyword("delete") {
                    self.expect_keyword("from")?;
                    let table = self.table_ref()?;
                    self.expect_keyword("where")?;
                    let where_clause = self.where_predicate()?;
                    Statement::Delete {
                        table,
                        where_clause,
                    }
                } else {
                    return Err(NosqlError::Parse(
                        "batches may contain only INSERT and DELETE".into(),
                    ));
                };
                statements.push(st);
                self.eat_symbol(';');
            }
            return Ok(Statement::Batch { statements });
        }
        Err(NosqlError::Parse(format!(
            "unrecognized statement start: {:?}",
            self.peek()
        )))
    }

    fn create_table(&mut self) -> Result<Statement> {
        let table = self.table_ref()?;
        self.expect_symbol('(')?;
        let mut columns = Vec::new();
        let mut primary_key: Option<String> = None;
        loop {
            if self.eat_keyword("primary") {
                self.expect_keyword("key")?;
                self.expect_symbol('(')?;
                let pk = self.ident()?;
                self.expect_symbol(')')?;
                if primary_key.replace(pk).is_some() {
                    return Err(NosqlError::Parse("duplicate PRIMARY KEY clause".into()));
                }
            } else {
                let name = self.ident()?;
                let ty = self.type_name()?;
                columns.push((name, ty));
            }
            if self.eat_symbol(')') {
                break;
            }
            self.expect_symbol(',')?;
        }
        let primary_key = primary_key
            .ok_or_else(|| NosqlError::Parse("CREATE TABLE needs a PRIMARY KEY".into()))?;
        Ok(Statement::CreateTable {
            table,
            columns,
            primary_key,
        })
    }

    fn insert_body(&mut self) -> Result<Statement> {
        let table = self.table_ref()?;
        self.expect_symbol('(')?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.ident()?);
            if self.eat_symbol(')') {
                break;
            }
            self.expect_symbol(',')?;
        }
        self.expect_keyword("values")?;
        self.expect_symbol('(')?;
        let mut values = Vec::new();
        loop {
            values.push(self.literal()?);
            if self.eat_symbol(')') {
                break;
            }
            self.expect_symbol(',')?;
        }
        if columns.len() != values.len() {
            return Err(NosqlError::Parse(format!(
                "INSERT binds {} columns but {} values",
                columns.len(),
                values.len()
            )));
        }
        Ok(Statement::Insert {
            table,
            columns,
            values,
        })
    }

    /// One SELECT-list item: a plain column or an aggregate call. An
    /// aggregate keyword only counts as one when `(` follows, so a column
    /// named `count` still selects.
    fn select_item(&mut self) -> Result<SelectItem> {
        const AGGS: [(&str, AggFunc); 5] = [
            ("count", AggFunc::Count),
            ("sum", AggFunc::Sum),
            ("min", AggFunc::Min),
            ("max", AggFunc::Max),
            ("avg", AggFunc::Avg),
        ];
        for (kw, func) in AGGS {
            if self.peek_keyword(kw)
                && matches!(self.tokens.get(self.pos + 1), Some(Token::Symbol('(')))
            {
                self.pos += 2;
                let column = if self.eat_symbol('*') {
                    None
                } else {
                    Some(self.ident()?)
                };
                self.expect_symbol(')')?;
                if column.is_none() && func != AggFunc::Count {
                    return Err(NosqlError::Parse(format!(
                        "{}(*) is not valid; only COUNT accepts *",
                        func.name().to_uppercase()
                    )));
                }
                return Ok(SelectItem::Aggregate { func, column });
            }
        }
        Ok(SelectItem::Column(self.ident()?))
    }

    fn select_body(&mut self) -> Result<Statement> {
        let columns = if self.eat_symbol('*') {
            SelectColumns::All
        } else {
            let mut items = vec![self.select_item()?];
            while self.eat_symbol(',') {
                items.push(self.select_item()?);
            }
            SelectColumns::Items(items)
        };
        self.expect_keyword("from")?;
        let table = self.table_ref()?;
        let where_clause = if self.eat_keyword("where") {
            self.where_conjunction()?
        } else {
            Vec::new()
        };
        let group_by = if self.eat_keyword("group") {
            self.expect_keyword("by")?;
            let mut cols = vec![self.ident()?];
            while self.eat_symbol(',') {
                cols.push(self.ident()?);
            }
            cols
        } else {
            Vec::new()
        };
        let order_by = if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            let column = self.ident()?;
            let desc = if self.eat_keyword("desc") {
                true
            } else {
                self.eat_keyword("asc");
                false
            };
            Some(OrderBy { column, desc })
        } else {
            None
        };
        let limit = if self.eat_keyword("limit") {
            match self.bump() {
                Some(Token::Number(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(NosqlError::Parse(format!(
                        "LIMIT needs a non-negative integer, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Statement::Select {
            table,
            columns,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table1_schema_parses() {
        let stmt = parse_statement(
            "CREATE TABLE smartcity.DWARF_CELL (id int, key text, measure int, \
             parentNode int, pointerNode int, leaf boolean, schema_id int, \
             dimension_table_name text, PRIMARY KEY (id))",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable {
                table,
                columns,
                primary_key,
            } => {
                assert_eq!(table.table, "DWARF_CELL");
                assert_eq!(columns.len(), 8);
                assert_eq!(columns[5], ("leaf".to_string(), CqlType::Boolean));
                assert_eq!(primary_key, "id");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn node_table_with_sets() {
        let stmt = parse_statement(
            "CREATE TABLE ks.DWARF_Node (id int, parentIds set<int>, \
             childrenIds set<int>, root boolean, schema_id int, PRIMARY KEY (id))",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable { columns, .. } => {
                assert_eq!(columns[1], ("parentIds".to_string(), CqlType::IntSet));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn figure3_insert_roundtrips() {
        let text = "INSERT INTO ks.DWARF_CELL (id,key,measure,parentNode,pointerNode,\
                    leaf,schema_id,dimension_table_name) \
                    VALUES (3,'Fenian St',3,3,null,true,1,'Station')";
        let stmt = parse_statement(text).unwrap();
        match &stmt {
            Statement::Insert { values, .. } => {
                assert_eq!(values[1], CqlValue::Text("Fenian St".into()));
                assert_eq!(values[4], CqlValue::Null);
                assert_eq!(values[5], CqlValue::Boolean(true));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Render -> reparse -> same AST.
        let again = parse_statement(&stmt.to_cql()).unwrap();
        assert_eq!(again, stmt);
    }

    #[test]
    fn set_literals() {
        let stmt = parse_statement("INSERT INTO ks.n (id, kids) VALUES (1, {3, 1, 2})").unwrap();
        match stmt {
            Statement::Insert { values, .. } => {
                assert_eq!(values[1], CqlValue::int_set([1, 2, 3]));
            }
            other => panic!("unexpected {other:?}"),
        }
        let stmt = parse_statement("INSERT INTO ks.n (id, kids) VALUES (1, {})").unwrap();
        match stmt {
            Statement::Insert { values, .. } => {
                assert_eq!(values[1], CqlValue::int_set([]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn selects() {
        let stmt = parse_statement("SELECT * FROM ks.t").unwrap();
        match &stmt {
            Statement::Select {
                columns: SelectColumns::All,
                where_clause,
                limit: None,
                ..
            } => assert!(where_clause.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        let stmt = parse_statement("SELECT id, key FROM ks.t WHERE id = 7 LIMIT 10").unwrap();
        match stmt {
            Statement::Select {
                columns: SelectColumns::Items(items),
                where_clause,
                limit: Some(10),
                ..
            } => {
                assert_eq!(
                    items,
                    vec![
                        SelectItem::Column("id".into()),
                        SelectItem::Column("key".into())
                    ]
                );
                assert_eq!(where_clause, vec![WhereClause::eq("id", CqlValue::Int(7))]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn select_with_in_list() {
        let stmt = parse_statement("SELECT * FROM ks.t WHERE id IN (1, 2, 3)").unwrap();
        match &stmt {
            Statement::Select { where_clause, .. } => {
                assert_eq!(
                    *where_clause,
                    vec![WhereClause::any_of(
                        "id",
                        vec![CqlValue::Int(1), CqlValue::Int(2), CqlValue::Int(3)]
                    )]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        // Round-trips through to_cql.
        assert_eq!(stmt.to_cql(), "SELECT * FROM ks.t WHERE id IN (1, 2, 3)");
        // Text values and the empty list parse too.
        assert!(parse_statement("SELECT * FROM ks.t WHERE k IN ('a', 'b')").is_ok());
        assert!(parse_statement("SELECT * FROM ks.t WHERE id IN ()").is_ok());
        // Malformed lists fail.
        assert!(parse_statement("SELECT * FROM ks.t WHERE id IN (1,").is_err());
        assert!(parse_statement("SELECT * FROM ks.t WHERE id IN 1").is_err());
    }

    #[test]
    fn comparison_predicates_and_conjunctions() {
        let stmt =
            parse_statement("SELECT * FROM ks.t WHERE bikes >= 3 AND bikes < 10 AND station = 'x'")
                .unwrap();
        match &stmt {
            Statement::Select { where_clause, .. } => {
                assert_eq!(
                    *where_clause,
                    vec![
                        WhereClause::cmp("bikes", CmpOp::Ge, CqlValue::Int(3)),
                        WhereClause::cmp("bikes", CmpOp::Lt, CqlValue::Int(10)),
                        WhereClause::eq("station", CqlValue::Text("x".into())),
                    ]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        // Round-trips through to_cql.
        let again = parse_statement(&stmt.to_cql()).unwrap();
        assert_eq!(again, stmt);
        // <= and > parse too.
        assert!(parse_statement("SELECT * FROM ks.t WHERE n <= 5").is_ok());
        assert!(parse_statement("SELECT * FROM ks.t WHERE n > 5").is_ok());
        // A dangling AND fails.
        assert!(parse_statement("SELECT * FROM ks.t WHERE n = 1 AND").is_err());
        // UPDATE and DELETE keep a single predicate.
        assert!(parse_statement("UPDATE ks.t SET a = 1 WHERE id = 1 AND id = 2").is_err());
        assert!(parse_statement("DELETE FROM ks.t WHERE id = 1 AND id = 2").is_err());
    }

    #[test]
    fn aggregates_group_by_order_by() {
        let stmt = parse_statement(
            "SELECT station, COUNT(*), SUM(bikes), AVG(bikes) FROM ks.t \
             GROUP BY station ORDER BY station DESC LIMIT 5",
        )
        .unwrap();
        match &stmt {
            Statement::Select {
                columns: SelectColumns::Items(items),
                group_by,
                order_by: Some(o),
                limit: Some(5),
                ..
            } => {
                assert_eq!(items.len(), 4);
                assert_eq!(items[0], SelectItem::Column("station".into()));
                assert_eq!(
                    items[1],
                    SelectItem::Aggregate {
                        func: AggFunc::Count,
                        column: None
                    }
                );
                assert_eq!(
                    items[2],
                    SelectItem::Aggregate {
                        func: AggFunc::Sum,
                        column: Some("bikes".into())
                    }
                );
                assert_eq!(group_by, &vec!["station".to_string()]);
                assert_eq!(o.column, "station");
                assert!(o.desc);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Round-trips through to_cql.
        let again = parse_statement(&stmt.to_cql()).unwrap();
        assert_eq!(again, stmt);
        // ASC is accepted and is the default.
        let asc = parse_statement("SELECT id FROM ks.t ORDER BY id ASC").unwrap();
        let bare = parse_statement("SELECT id FROM ks.t ORDER BY id").unwrap();
        assert_eq!(asc, bare);
        // A column named like an aggregate still selects when no `(` follows.
        let stmt = parse_statement("SELECT count FROM ks.t").unwrap();
        match &stmt {
            Statement::Select {
                columns: SelectColumns::Items(items),
                ..
            } => assert_eq!(items, &vec![SelectItem::Column("count".into())]),
            other => panic!("unexpected {other:?}"),
        }
        // SUM(*) is rejected.
        assert!(parse_statement("SELECT SUM(*) FROM ks.t").is_err());
    }

    #[test]
    fn explain_statements() {
        let stmt = parse_statement("EXPLAIN SELECT * FROM ks.t WHERE id = 1").unwrap();
        match &stmt {
            Statement::Explain { statement } => {
                assert!(matches!(**statement, Statement::Select { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Round-trips through to_cql.
        let again = parse_statement(&stmt.to_cql()).unwrap();
        assert_eq!(again, stmt);
        // EXPLAIN with nothing after it fails.
        assert!(parse_statement("EXPLAIN").is_err());
    }

    #[test]
    fn delete_truncate_index() {
        assert!(matches!(
            parse_statement("DELETE FROM ks.t WHERE id = 1").unwrap(),
            Statement::Delete { .. }
        ));
        assert!(matches!(
            parse_statement("TRUNCATE ks.t").unwrap(),
            Statement::Truncate { .. }
        ));
        let stmt = parse_statement("CREATE INDEX ON ks.t (parentNodeId)").unwrap();
        match stmt {
            Statement::CreateIndex { column, .. } => assert_eq!(column, "parentNodeId"),
            other => panic!("unexpected {other:?}"),
        }
        // With an explicit index name.
        assert!(parse_statement("CREATE INDEX by_parent ON ks.t (p)").is_ok());
    }

    #[test]
    fn batch() {
        let stmt = parse_statement(
            "BEGIN BATCH \
             INSERT INTO ks.t (id) VALUES (1); \
             INSERT INTO ks.t (id) VALUES (2); \
             APPLY BATCH",
        )
        .unwrap();
        match stmt {
            Statement::Batch { statements } => assert_eq!(statements.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "SELECT",
            "INSERT INTO ks.t (id, key) VALUES (1)", // arity mismatch
            "CREATE TABLE ks.t (id int)",            // no primary key
            "CREATE TABLE ks.t (id int, PRIMARY KEY (id), PRIMARY KEY (id))",
            "DELETE FROM ks.t", // no WHERE
            "SELECT * FROM ks.t LIMIT -1",
            "CREATE TABLE ks.t (id set<text>, PRIMARY KEY (id))",
            "BEGIN BATCH SELECT * FROM ks.t APPLY BATCH",
            "SELECT * FROM ks.t extra",
            "SELECT * FROM ks.t GROUP station",
            "SELECT * FROM ks.t ORDER id",
            "SELECT COUNT( FROM ks.t",
        ] {
            assert!(parse_statement(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn use_statement_and_unqualified_refs() {
        let stmt = parse_statement("USE smartcity").unwrap();
        assert_eq!(
            stmt,
            Statement::Use {
                keyspace: "smartcity".into()
            }
        );
        assert_eq!(stmt.to_cql(), "USE smartcity");

        // Unqualified references parse with an empty keyspace...
        let stmt = parse_statement("SELECT * FROM t WHERE id = 1").unwrap();
        match &stmt {
            Statement::Select { table, .. } => {
                assert!(!table.is_qualified());
                assert_eq!(table.table, "t");
            }
            other => panic!("unexpected {other:?}"),
        }
        // ...and resolve against a default keyspace.
        let resolved = stmt.with_default_keyspace("ks");
        match &resolved {
            Statement::Select { table, .. } => {
                assert_eq!(table.keyspace, "ks");
            }
            other => panic!("unexpected {other:?}"),
        }
        // EXPLAIN resolves the inner statement's reference.
        let explained = parse_statement("EXPLAIN SELECT * FROM t").unwrap();
        let resolved = explained.with_default_keyspace("ks");
        assert_eq!(resolved.table_refs()[0].keyspace, "ks");
        // Already-qualified references are untouched.
        let qualified = parse_statement("SELECT * FROM other.t").unwrap();
        assert_eq!(qualified.with_default_keyspace("ks"), qualified);
        // Batches resolve recursively.
        let batch = parse_statement(
            "BEGIN BATCH INSERT INTO t (id) VALUES (1); \
             INSERT INTO ks2.t (id) VALUES (2); APPLY BATCH",
        )
        .unwrap();
        let refs: Vec<String> = batch
            .with_default_keyspace("ks")
            .table_refs()
            .iter()
            .map(|r| r.keyspace.clone())
            .collect();
        assert_eq!(refs, vec!["ks", "ks2"]);
    }
}
