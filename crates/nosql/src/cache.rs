//! Shared, bounded block cache for SSTable v2 data blocks.
//!
//! One [`BlockCache`] is created per engine and threaded through every
//! table's SSTables, so hot blocks are shared across column families and a
//! warm read path never touches the VFS. Entries are keyed by
//! `(file, block offset)` and hold the verified block bytes behind an
//! `Arc`, so a cached block is handed out without copying while an eviction
//! can race a reader safely.
//!
//! Eviction is strict LRU over a byte budget: inserting past the budget
//! evicts least-recently-used blocks until the new block fits. A capacity
//! of zero disables caching entirely (every lookup misses, nothing is
//! retained). SSTable file names are never reused within an engine
//! instance, so deleted files simply age out; compaction still calls
//! [`BlockCache::evict_file`] eagerly to hand the space back at once.
//!
//! Obs metrics (gated on [`sc_obs::enabled`]): `nosql.block_cache.hit`,
//! `nosql.block_cache.miss`, `nosql.block_cache.evict`.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Default byte budget for an engine's shared block cache (4 MiB ≈ one
/// thousand 4 KiB blocks).
pub const DEFAULT_BLOCK_CACHE_BYTES: usize = 4 * 1024 * 1024;

/// Cheaply cloneable handle to one shared cache.
#[derive(Debug, Clone)]
pub struct BlockCache {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Debug)]
struct Slot {
    bytes: Arc<Vec<u8>>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    capacity_bytes: usize,
    resident_bytes: usize,
    tick: u64,
    /// file → block offset → slot.
    files: HashMap<String, HashMap<u64, Slot>>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Point-in-time counters of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to read the VFS.
    pub misses: u64,
    /// Blocks evicted to stay within the byte budget.
    pub evictions: u64,
    /// Bytes currently resident.
    pub resident_bytes: usize,
    /// Blocks currently resident.
    pub blocks: usize,
}

impl BlockCache {
    /// Creates a cache bounded to `capacity_bytes` (0 disables caching).
    pub fn new(capacity_bytes: usize) -> BlockCache {
        BlockCache {
            inner: Arc::new(Mutex::new(Inner {
                capacity_bytes,
                ..Inner::default()
            })),
        }
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.lock().capacity_bytes
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("block cache lock poisoned")
    }

    /// Looks up the block at `(file, offset)`, refreshing its recency.
    pub fn get(&self, file: &str, offset: u64) -> Option<Arc<Vec<u8>>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let slot = inner
            .files
            .get_mut(file)
            .and_then(|blocks| blocks.get_mut(&offset));
        match slot {
            Some(slot) => {
                slot.last_used = tick;
                let bytes = Arc::clone(&slot.bytes);
                inner.hits += 1;
                if sc_obs::enabled() {
                    crate::obs::nosql().block_cache_hit.inc();
                }
                sc_obs::trace::add(sc_obs::trace::Attr::BlockCacheHits, 1);
                Some(bytes)
            }
            None => {
                inner.misses += 1;
                if sc_obs::enabled() {
                    crate::obs::nosql().block_cache_miss.inc();
                }
                sc_obs::trace::add(sc_obs::trace::Attr::BlockCacheMisses, 1);
                None
            }
        }
    }

    /// Inserts a verified block, evicting LRU blocks to fit. Blocks larger
    /// than the whole budget are not retained.
    pub fn insert(&self, file: &str, offset: u64, bytes: Arc<Vec<u8>>) {
        let len = bytes.len();
        let mut inner = self.lock();
        if len > inner.capacity_bytes {
            return;
        }
        inner.tick += 1;
        let tick = inner.tick;
        let slot = Slot {
            bytes,
            last_used: tick,
        };
        let previous = inner
            .files
            .entry(file.to_string())
            .or_default()
            .insert(offset, slot);
        inner.resident_bytes += len;
        if let Some(old) = previous {
            inner.resident_bytes -= old.bytes.len();
        }
        while inner.resident_bytes > inner.capacity_bytes {
            // LRU scan: the cache holds at most a few thousand blocks, so a
            // linear sweep per eviction stays cheap and avoids a second
            // index structure.
            let Some((file, off)) = inner
                .files
                .iter()
                .flat_map(|(f, blocks)| blocks.iter().map(move |(o, s)| (s.last_used, f, *o)))
                .min_by_key(|(used, _, _)| *used)
                .map(|(_, f, o)| (f.clone(), o))
            else {
                break;
            };
            inner.remove(&file, off);
            inner.evictions += 1;
            if sc_obs::enabled() {
                crate::obs::nosql().block_cache_evict.inc();
            }
        }
    }

    /// Drops every cached block of `file` (compaction deleted it).
    pub fn evict_file(&self, file: &str) {
        let mut inner = self.lock();
        if let Some(blocks) = inner.files.remove(file) {
            let freed: usize = blocks.values().map(|s| s.bytes.len()).sum();
            inner.resident_bytes -= freed;
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            resident_bytes: inner.resident_bytes,
            blocks: inner.files.values().map(HashMap::len).sum(),
        }
    }
}

impl Inner {
    fn remove(&mut self, file: &str, offset: u64) {
        if let Some(blocks) = self.files.get_mut(file) {
            if let Some(slot) = blocks.remove(&offset) {
                self.resident_bytes -= slot.bytes.len();
            }
            if blocks.is_empty() {
                self.files.remove(file);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: usize, fill: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![fill; n])
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = BlockCache::new(1024);
        assert!(cache.get("a", 0).is_none());
        cache.insert("a", 0, block(10, 1));
        assert_eq!(cache.get("a", 0).unwrap().as_slice(), &[1; 10]);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.resident_bytes, 10);
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let cache = BlockCache::new(30);
        cache.insert("f", 0, block(10, 0));
        cache.insert("f", 1, block(10, 1));
        cache.insert("f", 2, block(10, 2));
        // Touch block 0 so block 1 is the LRU victim.
        assert!(cache.get("f", 0).is_some());
        cache.insert("f", 3, block(10, 3));
        assert!(cache.get("f", 0).is_some(), "recently used survives");
        assert!(cache.get("f", 1).is_none(), "LRU block evicted");
        assert!(cache.get("f", 3).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert!(stats.resident_bytes <= 30);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = BlockCache::new(0);
        cache.insert("f", 0, block(10, 0));
        assert!(cache.get("f", 0).is_none());
        assert_eq!(cache.stats().resident_bytes, 0);
    }

    #[test]
    fn oversized_block_not_retained() {
        let cache = BlockCache::new(16);
        cache.insert("f", 0, block(64, 0));
        assert!(cache.get("f", 0).is_none());
        assert_eq!(cache.stats().blocks, 0);
    }

    #[test]
    fn evict_file_frees_all_its_blocks() {
        let cache = BlockCache::new(1024);
        cache.insert("a", 0, block(10, 0));
        cache.insert("a", 1, block(10, 1));
        cache.insert("b", 0, block(10, 2));
        cache.evict_file("a");
        assert!(cache.get("a", 0).is_none());
        assert!(cache.get("a", 1).is_none());
        assert!(cache.get("b", 0).is_some());
        assert_eq!(cache.stats().resident_bytes, 10);
    }

    #[test]
    fn reinsert_same_block_keeps_accounting_straight() {
        let cache = BlockCache::new(64);
        cache.insert("f", 0, block(10, 0));
        cache.insert("f", 0, block(20, 1));
        let stats = cache.stats();
        assert_eq!(stats.resident_bytes, 20);
        assert_eq!(stats.blocks, 1);
        assert_eq!(cache.get("f", 0).unwrap().len(), 20);
    }
}
