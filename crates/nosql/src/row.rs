//! Row representation and its on-disk encoding.

use crate::error::Result;
use crate::schema::TableDef;
use crate::types::CqlValue;
use sc_encoding::{Decoder, Encoder};

/// A row: one value per table column, in column order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Values aligned with [`TableDef::columns`].
    pub values: Vec<CqlValue>,
}

impl Row {
    /// Creates a row.
    pub fn new(values: Vec<CqlValue>) -> Row {
        Row { values }
    }

    /// The partition-key value.
    pub fn pk<'a>(&'a self, def: &TableDef) -> &'a CqlValue {
        &self.values[def.primary_key]
    }

    /// Order-preserving encoded partition key.
    pub fn pk_bytes(&self, def: &TableDef) -> Vec<u8> {
        self.pk(def).encode_key()
    }

    /// Encodes the row body with Cassandra-style per-row metadata: a row
    /// header (flags + liveness timestamp) and a per-cell write timestamp.
    pub fn encode(&self, enc: &mut Encoder, timestamp: u64) {
        // Row header: flags byte + liveness timestamp.
        enc.put_u8(0x01);
        enc.put_u64_fixed(timestamp);
        enc.put_u64(self.values.len() as u64);
        for v in &self.values {
            // Per-cell metadata: write timestamp (8 bytes, like Cassandra's
            // per-cell timestamps) before the tagged value.
            enc.put_u64_fixed(timestamp);
            v.encode(enc);
        }
    }

    /// Decodes a row written by [`Row::encode`]; returns the row and the
    /// stored timestamp.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<(Row, u64)> {
        let _flags = dec.get_u8()?;
        let timestamp = dec.get_u64_fixed()?;
        let n = dec.get_u64()? as usize;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            let _cell_ts = dec.get_u64_fixed()?;
            values.push(CqlValue::decode(dec)?);
        }
        Ok((Row::new(values), timestamp))
    }

    /// Encoded size in bytes (what the memtable accounts against its flush
    /// threshold).
    pub fn encoded_size(&self, scratch: &mut Encoder) -> usize {
        let before = scratch.len();
        self.encode(scratch, 0);
        scratch.len() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableDef};
    use crate::types::CqlType;

    fn def() -> TableDef {
        TableDef::new(
            "ks",
            "t",
            vec![
                ColumnDef {
                    name: "id".into(),
                    ty: CqlType::Int,
                },
                ColumnDef {
                    name: "name".into(),
                    ty: CqlType::Text,
                },
                ColumnDef {
                    name: "kids".into(),
                    ty: CqlType::IntSet,
                },
            ],
            "id",
        )
        .unwrap()
    }

    #[test]
    fn pk_extraction() {
        let def = def();
        let row = Row::new(vec![
            CqlValue::Int(7),
            CqlValue::Text("x".into()),
            CqlValue::int_set([1, 2]),
        ]);
        assert_eq!(row.pk(&def), &CqlValue::Int(7));
        assert_eq!(row.pk_bytes(&def), CqlValue::Int(7).encode_key());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let row = Row::new(vec![
            CqlValue::Int(-3),
            CqlValue::Null,
            CqlValue::int_set([5]),
        ]);
        let mut enc = Encoder::new();
        row.encode(&mut enc, 42);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let (back, ts) = Row::decode(&mut dec).unwrap();
        assert_eq!(back, row);
        assert_eq!(ts, 42);
        assert!(dec.is_exhausted());
    }

    #[test]
    fn encoded_size_counts_metadata() {
        let small = Row::new(vec![CqlValue::Int(1)]);
        let mut scratch = Encoder::new();
        let size = small.encoded_size(&mut scratch);
        // header flags(1) + liveness ts(8) + count(1) + cell ts(8) +
        // tag(1) + zigzag(1) = 20.
        assert_eq!(size, 20);
    }
}
