//! Point-in-time, read-only database views.

use crate::cql::ast::Statement;
use crate::cql::parse_statement;
use crate::engine::DbCore;
use crate::error::Result;
use crate::result::QueryResult;
use std::sync::Arc;

/// A pinned, point-in-time, read-only view of the database.
///
/// A snapshot captures the MVCC watermark at creation and pins it in the
/// engine's [`crate::mvcc::SnapshotRegistry`]: every `SELECT` through the
/// snapshot resolves keys as of that instant, no matter how many writes,
/// flushes or compactions happen afterwards. The pin holds version GC and
/// tombstone-dropping compaction back only as far as this bound, and is
/// released on drop — hold snapshots for bounded work (a consistent
/// multi-query read, a backup scan), not forever.
///
/// Only `SELECT` is accepted; every other statement returns
/// [`crate::NosqlError::Unsupported`].
#[derive(Debug)]
pub struct Snapshot {
    core: Arc<DbCore>,
    bound: u64,
}

impl Snapshot {
    pub(crate) fn new(core: Arc<DbCore>) -> Snapshot {
        let bound = core.registry.pin_current(&core.tracker);
        if sc_obs::enabled() {
            let obs = crate::obs::nosql();
            obs.snapshot_opened.inc();
            obs.snapshot_live.add(1);
        }
        Snapshot { core, bound }
    }

    /// The pinned sequence bound: reads see exactly the writes visible at
    /// this sequence.
    pub fn sequence(&self) -> u64 {
        self.bound
    }

    /// Parses and executes one read-only CQL statement at the pinned bound.
    pub fn execute_cql(&self, cql: &str) -> Result<QueryResult> {
        let stmt = parse_statement(cql)?;
        self.execute(&stmt)
    }

    /// Executes a pre-parsed read-only statement at the pinned bound.
    pub fn execute(&self, stmt: &Statement) -> Result<QueryResult> {
        self.core.execute_read(stmt, self.bound)
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.core.registry.unpin(self.bound);
        if sc_obs::enabled() {
            let obs = crate::obs::nosql();
            obs.snapshot_closed.inc();
            obs.snapshot_live.add(-1);
        }
    }
}
