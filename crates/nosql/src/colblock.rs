//! Column-major data blocks for SSTable v3 (see DESIGN.md §5i).
//!
//! A v3 block stores its records column-major so scans touching a few
//! columns decode a few contiguous runs instead of every cell of every
//! row:
//!
//! ```text
//! block  : count(varint) layout(u8)
//! layout 0 (columnar):
//!          keys        count × len-prefixed bytes
//!          seqs        zig-zag delta varints
//!          live bitmap ceil(count/8) bytes (bit set = live, clear = tombstone)
//!          ncols(varint)
//!          per column: len-prefixed chunk =
//!              enc(u8: 0 raw / 1 int-delta / 2 text-dict / 3 bool-bitmap)
//!              null bitmap over live rows (bit set = non-null)
//!              payload (per enc)
//! layout 1 (row fallback):
//!          count × [len-prefixed key, len-prefixed v2 record payload]
//! ```
//!
//! The writer only chooses the columnar layout when every live body in the
//! block is a canonical [`Row`] encoding — verified by an exact
//! decode/re-encode round trip — and all rows agree on column count.
//! Anything else (foreign payloads, schema drift) lands in the row
//! fallback, which stores the original bytes verbatim. Either way a full
//! decode reproduces the input [`SstEntry`]s byte-exactly, so compaction
//! and crash recovery cannot tell the layouts apart.
//!
//! Column chunks are length-prefixed so a projected read skips a pruned
//! column in O(1) without parsing it; [`BlockRows`] reports how many
//! chunks were decoded vs skipped for the `nosql.read.cols_*` counters.

use crate::error::{NosqlError, Result};
use crate::row::Row;
use crate::sstable::SstEntry;
use crate::types::CqlValue;
use sc_encoding::columnar::{
    decode_dict, decode_i64_deltas, encode_i64_deltas, Bitmap, DictBuilder,
};
use sc_encoding::{Decoder, Encoder};

const LAYOUT_COLUMNAR: u8 = 0;
const LAYOUT_ROWS: u8 = 1;

const ENC_RAW: u8 = 0;
const ENC_INT_DELTA: u8 = 1;
const ENC_TEXT_DICT: u8 = 2;
const ENC_BOOL_BITMAP: u8 = 3;

/// A decoded block in row form, plus the column-pruning accounting.
#[derive(Debug)]
pub(crate) struct BlockRows {
    /// `(key, row-or-tombstone, sequence)` per record, in key order.
    pub rows: Vec<(Vec<u8>, Option<Row>, u64)>,
    /// Column chunks decoded.
    pub cols_read: u64,
    /// Column chunks skipped thanks to projection pruning.
    pub cols_skipped: u64,
}

/// Serializes one sorted run of entries as a v3 block, preferring the
/// columnar layout and falling back to verbatim rows when the bodies are
/// not canonical [`Row`] encodings.
pub(crate) fn encode_block(entries: &[SstEntry]) -> Vec<u8> {
    match try_encode_columnar(entries) {
        Some(bytes) => bytes,
        None => encode_row_fallback(entries),
    }
}

/// The columnar layout, or `None` when any live body fails the exact
/// round-trip check (or the rows disagree on column count).
fn try_encode_columnar(entries: &[SstEntry]) -> Option<Vec<u8>> {
    let mut rows: Vec<Option<Row>> = Vec::with_capacity(entries.len());
    let mut ncols: Option<usize> = None;
    let mut check = Encoder::new();
    for e in entries {
        let Some(body) = &e.body else {
            rows.push(None);
            continue;
        };
        let mut dec = Decoder::new(body);
        let Ok((row, _ts)) = Row::decode(&mut dec) else {
            return None;
        };
        if !dec.is_exhausted() {
            return None;
        }
        // Byte-exact or bust: the reader reconstructs the body as
        // `Row::encode(row, seq)`, so anything that does not round-trip
        // (foreign cell timestamps, non-canonical varints) must take the
        // fallback layout.
        check.clear();
        row.encode(&mut check, e.timestamp);
        if check.bytes() != body.as_slice() {
            return None;
        }
        match ncols {
            None => ncols = Some(row.values.len()),
            Some(n) if n == row.values.len() => {}
            Some(_) => return None,
        }
        rows.push(Some(row));
    }

    let mut enc = Encoder::new();
    enc.put_u64(entries.len() as u64);
    enc.put_u8(LAYOUT_COLUMNAR);
    for e in entries {
        enc.put_bytes(&e.key);
    }
    let seqs: Vec<i64> = entries.iter().map(|e| e.timestamp as i64).collect();
    encode_i64_deltas(&mut enc, &seqs);
    let mut live = Bitmap::new(entries.len());
    for (i, row) in rows.iter().enumerate() {
        if row.is_some() {
            live.set(i);
        }
    }
    live.encode(&mut enc);
    let live_rows: Vec<&Row> = rows.iter().flatten().collect();
    let ncols = ncols.unwrap_or(0);
    enc.put_u64(ncols as u64);
    for c in 0..ncols {
        let chunk = encode_column(&live_rows, c);
        enc.put_bytes(&chunk);
    }
    Some(enc.into_bytes())
}

fn encode_row_fallback(entries: &[SstEntry]) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u64(entries.len() as u64);
    enc.put_u8(LAYOUT_ROWS);
    for e in entries {
        enc.put_bytes(&e.key);
        enc.put_bytes(&crate::sstable::encode_payload(e));
    }
    enc.into_bytes()
}

/// One column's contiguous run: encoding tag, null bitmap over the live
/// rows, then the non-null cells under the chosen encoding.
fn encode_column(live_rows: &[&Row], c: usize) -> Vec<u8> {
    let mut nulls = Bitmap::new(live_rows.len());
    let mut present: Vec<&CqlValue> = Vec::with_capacity(live_rows.len());
    for (i, row) in live_rows.iter().enumerate() {
        let v = &row.values[c];
        if !matches!(v, CqlValue::Null) {
            nulls.set(i);
            present.push(v);
        }
    }
    let mut enc = Encoder::new();
    let tag = choose_encoding(&present);
    enc.put_u8(tag);
    nulls.encode(&mut enc);
    match tag {
        ENC_INT_DELTA => {
            let ints: Vec<i64> = present
                .iter()
                .map(|v| match v {
                    CqlValue::Int(i) => *i,
                    _ => unreachable!("tag chosen only for all-Int runs"),
                })
                .collect();
            encode_i64_deltas(&mut enc, &ints);
        }
        ENC_TEXT_DICT => {
            let mut dict = DictBuilder::new();
            for v in &present {
                match v {
                    CqlValue::Text(s) => dict.push(s.as_bytes()),
                    _ => unreachable!("tag chosen only for all-Text runs"),
                }
            }
            dict.encode(&mut enc);
        }
        ENC_BOOL_BITMAP => {
            let mut bits = Bitmap::new(present.len());
            for (i, v) in present.iter().enumerate() {
                if matches!(v, CqlValue::Boolean(true)) {
                    bits.set(i);
                }
            }
            bits.encode(&mut enc);
        }
        _ => {
            for v in &present {
                v.encode(&mut enc);
            }
        }
    }
    enc.into_bytes()
}

/// Picks the run encoding: delta varints for all-integer runs, a
/// dictionary for low-cardinality text, a bitmap for booleans, raw tagged
/// cells otherwise (mixed runs, sets, high-cardinality text).
fn choose_encoding(present: &[&CqlValue]) -> u8 {
    if present.is_empty() {
        return ENC_RAW;
    }
    if present.iter().all(|v| matches!(v, CqlValue::Int(_))) {
        return ENC_INT_DELTA;
    }
    if present.iter().all(|v| matches!(v, CqlValue::Boolean(_))) {
        return ENC_BOOL_BITMAP;
    }
    if present.iter().all(|v| matches!(v, CqlValue::Text(_))) {
        let mut dict = DictBuilder::new();
        for v in present {
            if let CqlValue::Text(s) = v {
                dict.push(s.as_bytes());
            }
        }
        // The dictionary pays off once values repeat; cap the distinct
        // count so a unique-text column does not build a dictionary the
        // size of the raw run plus codes.
        if dict.distinct() <= 16 || dict.distinct() * 2 <= present.len() {
            return ENC_TEXT_DICT;
        }
    }
    ENC_RAW
}

/// Decodes a block back into byte-exact [`SstEntry`]s (the compaction /
/// probe / prefix-scan path — no projection). Row-fallback blocks are
/// returned verbatim without interpreting the bodies, so foreign payloads
/// survive untouched.
pub(crate) fn decode_block(file: &str, bytes: &[u8]) -> Result<Vec<SstEntry>> {
    let corrupt = |what: &str| NosqlError::Corrupt(format!("{file}: {what}"));
    let mut d = Decoder::new(bytes);
    let count = d.get_u64().map_err(NosqlError::from)? as usize;
    if count > bytes.len() {
        return Err(corrupt("implausible block record count"));
    }
    let layout = d.get_u8().map_err(NosqlError::from)?;
    if layout == LAYOUT_ROWS {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let key = d.get_bytes().map_err(NosqlError::from)?.to_vec();
            let payload = d.get_bytes().map_err(NosqlError::from)?;
            out.push(crate::sstable::decode_payload(file, &key, payload)?);
        }
        if !d.is_exhausted() {
            return Err(corrupt("trailing bytes after row-fallback block"));
        }
        return Ok(out);
    }
    let decoded = decode_block_rows(file, bytes, None)?;
    let mut out = Vec::with_capacity(decoded.rows.len());
    let mut enc = Encoder::new();
    for (key, row, seq) in decoded.rows {
        let body = match row {
            Some(row) => {
                enc.clear();
                row.encode(&mut enc, seq);
                Some(enc.bytes().to_vec())
            }
            None => None,
        };
        out.push(SstEntry {
            key,
            body,
            timestamp: seq,
        });
    }
    Ok(out)
}

/// Decodes a block into rows, parsing only the column chunks `proj` asks
/// for (`None` = all). Pruned columns come back as [`CqlValue::Null`];
/// row-fallback blocks have no per-column runs, so they always decode
/// fully.
pub(crate) fn decode_block_rows(
    file: &str,
    bytes: &[u8],
    proj: Option<&[usize]>,
) -> Result<BlockRows> {
    let corrupt = |what: &str| NosqlError::Corrupt(format!("{file}: {what}"));
    let mut d = Decoder::new(bytes);
    let count = d.get_u64().map_err(NosqlError::from)? as usize;
    // Each record costs at least one key length byte; a corrupt count must
    // not drive an unbounded allocation.
    if count > bytes.len() {
        return Err(corrupt("implausible block record count"));
    }
    let layout = d.get_u8().map_err(NosqlError::from)?;
    match layout {
        LAYOUT_ROWS => {
            let mut rows = Vec::with_capacity(count);
            let mut cols_read = 0u64;
            for _ in 0..count {
                let key = d.get_bytes().map_err(NosqlError::from)?.to_vec();
                let payload = d.get_bytes().map_err(NosqlError::from)?;
                let entry = crate::sstable::decode_payload(file, &key, payload)?;
                let row = match entry.body {
                    Some(body) => {
                        let mut rd = Decoder::new(&body);
                        let (row, _ts) = Row::decode(&mut rd).map_err(|_| {
                            NosqlError::Corrupt(format!("{file}: undecodable row body"))
                        })?;
                        cols_read += row.values.len() as u64;
                        Some(row)
                    }
                    None => None,
                };
                rows.push((entry.key, row, entry.timestamp));
            }
            if !d.is_exhausted() {
                return Err(corrupt("trailing bytes after row-fallback block"));
            }
            Ok(BlockRows {
                rows,
                cols_read,
                cols_skipped: 0,
            })
        }
        LAYOUT_COLUMNAR => {
            let mut keys = Vec::with_capacity(count);
            for _ in 0..count {
                keys.push(d.get_bytes().map_err(NosqlError::from)?.to_vec());
            }
            let seqs = decode_i64_deltas(&mut d, count).map_err(NosqlError::from)?;
            let live = Bitmap::decode(&mut d, count).map_err(NosqlError::from)?;
            let live_count = live.count_ones();
            let ncols = d.get_u64().map_err(NosqlError::from)? as usize;
            if ncols > bytes.len() {
                return Err(corrupt("implausible block column count"));
            }
            let mut cols: Vec<Option<Vec<CqlValue>>> = Vec::with_capacity(ncols);
            let mut cols_read = 0u64;
            let mut cols_skipped = 0u64;
            for c in 0..ncols {
                let chunk = d.get_bytes().map_err(NosqlError::from)?;
                if proj.is_none_or(|p| p.contains(&c)) {
                    cols.push(Some(decode_column(file, chunk, live_count)?));
                    cols_read += 1;
                } else {
                    cols.push(None);
                    cols_skipped += 1;
                }
            }
            if !d.is_exhausted() {
                return Err(corrupt("trailing bytes after columnar block"));
            }
            let mut rows = Vec::with_capacity(count);
            let mut li = 0usize;
            for i in 0..count {
                if live.get(i) {
                    if li >= live_count {
                        return Err(corrupt("live bitmap disagrees with itself"));
                    }
                    let mut values = vec![CqlValue::Null; ncols];
                    for (c, run) in cols.iter_mut().enumerate() {
                        if let Some(run) = run {
                            values[c] = std::mem::replace(&mut run[li], CqlValue::Null);
                        }
                    }
                    rows.push((
                        std::mem::take(&mut keys[i]),
                        Some(Row::new(values)),
                        seqs[i] as u64,
                    ));
                    li += 1;
                } else {
                    rows.push((std::mem::take(&mut keys[i]), None, seqs[i] as u64));
                }
            }
            Ok(BlockRows {
                rows,
                cols_read,
                cols_skipped,
            })
        }
        _ => Err(corrupt("bad block layout tag")),
    }
}

/// Decodes one column chunk into `live_count` cells (nulls included).
fn decode_column(file: &str, chunk: &[u8], live_count: usize) -> Result<Vec<CqlValue>> {
    let corrupt = |what: &str| NosqlError::Corrupt(format!("{file}: {what}"));
    let mut d = Decoder::new(chunk);
    let tag = d.get_u8().map_err(NosqlError::from)?;
    let nulls = Bitmap::decode(&mut d, live_count).map_err(NosqlError::from)?;
    let present = nulls.count_ones();
    let mut cells: Vec<CqlValue> = match tag {
        ENC_RAW => {
            let mut out = Vec::with_capacity(present.min(chunk.len()));
            for _ in 0..present {
                out.push(CqlValue::decode(&mut d).map_err(NosqlError::from)?);
            }
            out
        }
        ENC_INT_DELTA => decode_i64_deltas(&mut d, present)
            .map_err(NosqlError::from)?
            .into_iter()
            .map(CqlValue::Int)
            .collect(),
        ENC_TEXT_DICT => {
            let mut out = Vec::with_capacity(present.min(chunk.len()));
            for raw in decode_dict(&mut d, present).map_err(NosqlError::from)? {
                let s = String::from_utf8(raw).map_err(|_| corrupt("non-UTF-8 dictionary text"))?;
                out.push(CqlValue::Text(s));
            }
            out
        }
        ENC_BOOL_BITMAP => {
            let bits = Bitmap::decode(&mut d, present).map_err(NosqlError::from)?;
            (0..present)
                .map(|i| CqlValue::Boolean(bits.get(i)))
                .collect()
        }
        _ => return Err(corrupt("bad column encoding tag")),
    };
    if !d.is_exhausted() {
        return Err(corrupt("trailing bytes after column chunk"));
    }
    if cells.len() != present {
        return Err(corrupt("column run length disagrees with null bitmap"));
    }
    // Weave nulls back into live-row positions.
    let mut out = Vec::with_capacity(live_count);
    let mut pi = 0usize;
    for i in 0..live_count {
        if nulls.get(i) {
            out.push(std::mem::replace(&mut cells[pi], CqlValue::Null));
            pi += 1;
        } else {
            out.push(CqlValue::Null);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row_entry(key: u8, values: Vec<CqlValue>, seq: u64) -> SstEntry {
        let row = Row::new(values);
        let mut enc = Encoder::new();
        row.encode(&mut enc, seq);
        SstEntry {
            key: vec![b'k', key],
            body: Some(enc.into_bytes()),
            timestamp: seq,
        }
    }

    fn typed_entries() -> Vec<SstEntry> {
        let mut out = Vec::new();
        for i in 0..40u8 {
            if i % 9 == 0 {
                out.push(SstEntry {
                    key: vec![b'k', i],
                    body: None,
                    timestamp: 100 + i as u64,
                });
            } else {
                out.push(row_entry(
                    i,
                    vec![
                        CqlValue::Int(1_000_000 + i as i64),
                        if i % 5 == 0 {
                            CqlValue::Null
                        } else {
                            CqlValue::Text(format!("station-{}", i % 3))
                        },
                        CqlValue::Boolean(i % 2 == 0),
                        CqlValue::int_set([i as i64, i as i64 + 1]),
                    ],
                    100 + i as u64,
                ));
            }
        }
        out
    }

    #[test]
    fn columnar_round_trip_is_byte_exact() {
        let es = typed_entries();
        let bytes = encode_block(&es);
        // Count (< 128 entries) is a one-byte varint, so the layout tag is
        // byte 1: these rows must have taken the columnar layout.
        assert_eq!(bytes[1], LAYOUT_COLUMNAR);
        let back = decode_block("t", &bytes).unwrap();
        assert_eq!(back, es);
    }

    #[test]
    fn foreign_payloads_take_the_row_fallback() {
        let es: Vec<SstEntry> = (0..5u8)
            .map(|i| SstEntry {
                key: vec![i],
                body: Some(format!("payload-{i}").into_bytes()),
                timestamp: i as u64,
            })
            .collect();
        let bytes = encode_block(&es);
        let back = decode_block("t", &bytes).unwrap();
        assert_eq!(back, es, "fallback must preserve foreign bytes verbatim");
        let rows = decode_block_rows("t", &bytes, Some(&[0]));
        assert!(rows.is_err(), "foreign bytes are not rows");
    }

    #[test]
    fn projection_skips_chunks_and_nulls_pruned_columns() {
        let es = typed_entries();
        let bytes = encode_block(&es);
        let all = decode_block_rows("t", &bytes, None).unwrap();
        assert_eq!(all.cols_read, 4);
        assert_eq!(all.cols_skipped, 0);

        let pruned = decode_block_rows("t", &bytes, Some(&[0, 2])).unwrap();
        assert_eq!(pruned.cols_read, 2);
        assert_eq!(pruned.cols_skipped, 2);
        assert_eq!(pruned.rows.len(), es.len());
        for ((key, row, seq), e) in pruned.rows.iter().zip(&es) {
            assert_eq!(key, &e.key);
            assert_eq!(*seq, e.timestamp);
            match (&e.body, row) {
                (None, None) => {}
                (Some(_), Some(row)) => {
                    let (full, _) = {
                        let (k, r, _) =
                            &all.rows[pruned.rows.iter().position(|(pk, _, _)| pk == key).unwrap()];
                        assert_eq!(k, key);
                        (r.clone().unwrap(), ())
                    };
                    assert_eq!(row.values[0], full.values[0]);
                    assert_eq!(row.values[2], full.values[2]);
                    assert_eq!(row.values[1], CqlValue::Null, "pruned column is Null");
                    assert_eq!(row.values[3], CqlValue::Null, "pruned column is Null");
                }
                other => panic!("liveness mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn mutations_never_panic_and_are_detected_or_exact() {
        let es = typed_entries();
        let original = encode_block(&es);
        for pos in 0..original.len() {
            for mutant in [
                {
                    let mut m = original.clone();
                    m[pos] ^= 0x01;
                    m
                },
                {
                    let mut m = original.clone();
                    m[pos] = 0xFF;
                    m
                },
                original[..pos].to_vec(),
            ] {
                // Either a typed error or a successful decode; a successful
                // decode of the *full* block that changed the data would be
                // caught by the table-level tests (here we only require no
                // panic and bounded work).
                let _ = decode_block("t", &mutant);
                let _ = decode_block_rows("t", &mutant, Some(&[1]));
            }
        }
    }

    #[test]
    fn empty_and_all_tombstone_blocks() {
        let tombs: Vec<SstEntry> = (0..3u8)
            .map(|i| SstEntry {
                key: vec![i],
                body: None,
                timestamp: i as u64,
            })
            .collect();
        let bytes = encode_block(&tombs);
        assert_eq!(decode_block("t", &bytes).unwrap(), tombs);
        let rows = decode_block_rows("t", &bytes, Some(&[0])).unwrap();
        assert!(rows.rows.iter().all(|(_, r, _)| r.is_none()));
    }
}
