//! MVCC machinery: sequence allocation, the visible watermark, snapshot
//! pinning, commit-wait accounting and a schedule-perturbing yield injector.
//!
//! Every row version carries a **sequence number** allocated by
//! [`SeqTracker::alloc`]. A write becomes *visible* only once every write
//! with a smaller sequence has also completed: the tracker publishes a
//! `visible` watermark equal to `min(outstanding) - 1` (or `next - 1` when
//! nothing is outstanding). Reads never use a bound above the watermark,
//! so a concurrent writer can never tear a read — either all of a
//! statement's versions are below the bound or none are.
//!
//! [`SnapshotRegistry`] pins bounds for long-lived [`crate::Snapshot`]
//! handles. The registry's cached minimum gates two kinds of garbage
//! collection: version-chain pruning in the sharded memtable (an old
//! version is droppable only when no live snapshot sits below the sequence
//! that shadowed it) and tombstone-dropping/merging decisions in
//! compaction.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Sequence allocator + visible-watermark publisher.
#[derive(Debug)]
pub(crate) struct SeqTracker {
    inner: Mutex<TrackerInner>,
    /// `min(outstanding) - 1`, or `next - 1` when nothing is in flight.
    visible: AtomicU64,
}

#[derive(Debug)]
struct TrackerInner {
    next: u64,
    outstanding: BTreeSet<u64>,
}

impl SeqTracker {
    /// A fresh tracker: first allocated sequence is 1, watermark 0.
    pub fn new() -> SeqTracker {
        SeqTracker {
            inner: Mutex::new(TrackerInner {
                next: 1,
                outstanding: BTreeSet::new(),
            }),
            visible: AtomicU64::new(0),
        }
    }

    /// Recovery: every sequence up to and including `max` is durable and
    /// visible; the next allocation returns `max + 1`.
    pub fn set_floor(&self, max: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.next = inner.next.max(max + 1);
        let visible = inner
            .outstanding
            .first()
            .map(|m| m - 1)
            .unwrap_or(inner.next - 1);
        self.visible.store(visible, Ordering::Release);
    }

    /// Allocates a sequence and marks it outstanding (invisible until
    /// [`SeqTracker::complete`]). The watermark never advances past an
    /// outstanding sequence, so un-acked writes are never read.
    pub fn alloc(&self) -> u64 {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let seq = inner.next;
        inner.next += 1;
        inner.outstanding.insert(seq);
        seq
    }

    /// Marks `seq` complete and republishes the watermark. Must be called
    /// exactly once per [`SeqTracker::alloc`], success or failure — a leaked
    /// sequence would freeze the watermark forever.
    pub fn complete(&self, seq: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.outstanding.remove(&seq);
        let visible = inner
            .outstanding
            .first()
            .map(|m| m - 1)
            .unwrap_or(inner.next - 1);
        // Monotone: removing a non-minimum leaves the watermark unchanged;
        // removing the minimum can only raise it.
        self.visible.store(visible, Ordering::Release);
    }

    /// The current visible watermark (the read bound for new statements and
    /// snapshots).
    pub fn visible(&self) -> u64 {
        self.visible.load(Ordering::Acquire)
    }
}

/// Completion guard: completes a sequence on drop, so error paths can never
/// leak an outstanding sequence (which would freeze the watermark).
pub(crate) struct SeqGuard<'a> {
    tracker: &'a SeqTracker,
    seq: u64,
}

impl<'a> SeqGuard<'a> {
    pub fn new(tracker: &'a SeqTracker) -> SeqGuard<'a> {
        let seq = tracker.alloc();
        SeqGuard { tracker, seq }
    }

    pub fn seq(&self) -> u64 {
        self.seq
    }
}

impl Drop for SeqGuard<'_> {
    fn drop(&mut self) {
        self.tracker.complete(self.seq);
    }
}

/// Live read bounds (statement reads and [`crate::Snapshot`] handles),
/// reference-counted per sequence.
///
/// Pinning and GC-floor computation serialize on the same mutex, and both
/// read the visible watermark *inside* the critical section. That closes
/// the classic pin race: either a reader's pin is published before a
/// writer computes its floor (so the floor respects the pin), or the
/// writer's floor was computed from a watermark the reader's bound can
/// only equal or exceed (so anything pruned was already shadowed for that
/// reader). Floors are therefore safe to use after the lock is dropped —
/// they only ever err conservative.
#[derive(Debug)]
pub(crate) struct SnapshotRegistry {
    pins: Mutex<BTreeMap<u64, usize>>,
}

impl SnapshotRegistry {
    pub fn new() -> SnapshotRegistry {
        SnapshotRegistry {
            pins: Mutex::new(BTreeMap::new()),
        }
    }

    /// Atomically reads the visible watermark and pins it as a live read
    /// bound. Release with [`SnapshotRegistry::unpin`].
    pub fn pin_current(&self, tracker: &SeqTracker) -> u64 {
        let mut pins = self.pins.lock().unwrap_or_else(|e| e.into_inner());
        let seq = tracker.visible();
        *pins.entry(seq).or_insert(0) += 1;
        seq
    }

    /// Releases one pin on `seq`.
    pub fn unpin(&self, seq: u64) {
        let mut pins = self.pins.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(count) = pins.get_mut(&seq) {
            *count -= 1;
            if *count == 0 {
                pins.remove(&seq);
            }
        }
    }

    /// The version-GC floor: `min(visible watermark, oldest pinned
    /// bound)`. A version shadowed at or below the floor is unreachable by
    /// every current and future reader and may be dropped.
    pub fn gc_floor(&self, tracker: &SeqTracker) -> u64 {
        let pins = self.pins.lock().unwrap_or_else(|e| e.into_inner());
        let min_pin = pins.keys().next().copied().unwrap_or(u64::MAX);
        min_pin.min(tracker.visible())
    }

    /// The oldest pinned bound, or `u64::MAX` when nothing is pinned.
    pub fn min_pinned(&self) -> u64 {
        let pins = self.pins.lock().unwrap_or_else(|e| e.into_inner());
        pins.keys().next().copied().unwrap_or(u64::MAX)
    }
}

/// RAII read pin: holds a bound in the registry for the duration of a
/// statement or snapshot, releasing on drop.
pub(crate) struct ReadPin<'a> {
    registry: &'a SnapshotRegistry,
    seq: u64,
}

impl<'a> ReadPin<'a> {
    pub fn new(registry: &'a SnapshotRegistry, tracker: &SeqTracker) -> ReadPin<'a> {
        let seq = registry.pin_current(tracker);
        ReadPin { registry, seq }
    }

    pub fn seq(&self) -> u64 {
        self.seq
    }
}

impl Drop for ReadPin<'_> {
    fn drop(&mut self) {
        self.registry.unpin(self.seq);
    }
}

// ---------------------------------------------------------------------------
// Commit-wait accounting
// ---------------------------------------------------------------------------

std::thread_local! {
    static QUEUE_WAIT_NS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Resets the calling thread's accumulated queueing wait (start of a
/// statement).
pub(crate) fn reset_queue_wait() {
    QUEUE_WAIT_NS.with(|w| w.set(0));
}

/// Adds group-commit (or other queueing) wait to the calling thread's
/// accumulator. When the thread is building a request trace, the
/// already-elapsed wait is also recorded as a completed
/// `nosql.commit_wait` node so the span tree shows *where* inside the
/// statement the queueing happened.
pub(crate) fn add_queue_wait(d: Duration) {
    QUEUE_WAIT_NS.with(|w| w.set(w.get().saturating_add(d.as_nanos() as u64)));
    sc_obs::trace::record_wait("nosql.commit_wait", d, sc_obs::trace::Attr::CommitWaitNs);
}

/// The calling thread's queueing wait accumulated since the last reset.
/// The server subtracts this from wall-clock statement time so slow-query
/// logging and `server.*` latency metrics measure execution, not queueing.
pub(crate) fn queue_wait() -> Duration {
    Duration::from_nanos(QUEUE_WAIT_NS.with(|w| w.get()))
}

// ---------------------------------------------------------------------------
// Schedule-perturbing yield injector (loom-free sanity gate)
// ---------------------------------------------------------------------------
//
// (Condvar waits in the group-commit protocol charge their elapsed time to
// the accumulator directly via `add_queue_wait`.)

std::thread_local! {
    static PERTURB_COUNTER: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

fn perturb_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        std::env::var("SC_NOSQL_YIELD")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0)
    })
}

/// Interleaving amplifier for the concurrency test tier. Disabled (one
/// relaxed `OnceLock` read and an integer compare) unless the
/// `SC_NOSQL_YIELD` environment variable holds a non-zero seed; when armed,
/// deterministically-pseudo-randomly yields the thread at engine
/// synchronization points so the release-mode concurrency tests explore far
/// more schedules than free-running threads would.
pub(crate) fn perturb(point: u32) {
    let seed = perturb_seed();
    if seed == 0 {
        return;
    }
    let n = PERTURB_COUNTER.with(|c| {
        let n = c.get().wrapping_add(1);
        c.set(n);
        n
    });
    // FNV-1a over (seed, call index, site id): cheap, deterministic per
    // thread, different sites decorrelated.
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in n.to_le_bytes().iter().chain(point.to_le_bytes().iter()) {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    if h % 5 == 0 {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_waits_for_the_oldest_writer() {
        let t = SeqTracker::new();
        assert_eq!(t.visible(), 0);
        let a = t.alloc(); // 1
        let b = t.alloc(); // 2
        assert_eq!(t.visible(), 0, "both outstanding");
        t.complete(b);
        assert_eq!(t.visible(), 0, "oldest still outstanding");
        t.complete(a);
        assert_eq!(t.visible(), 2, "both complete");
    }

    #[test]
    fn set_floor_after_recovery() {
        let t = SeqTracker::new();
        t.set_floor(41);
        assert_eq!(t.visible(), 41);
        assert_eq!(t.alloc(), 42);
    }

    #[test]
    fn seq_guard_completes_on_drop() {
        let t = SeqTracker::new();
        {
            let g = SeqGuard::new(&t);
            assert_eq!(g.seq(), 1);
            assert_eq!(t.visible(), 0);
        }
        assert_eq!(t.visible(), 1);
    }

    #[test]
    fn registry_tracks_min_with_refcounts() {
        let t = SeqTracker::new();
        t.set_floor(7);
        let r = SnapshotRegistry::new();
        assert_eq!(r.min_pinned(), u64::MAX);
        assert_eq!(r.gc_floor(&t), 7, "no pins: floor is the watermark");
        let a = r.pin_current(&t);
        let b = r.pin_current(&t);
        assert_eq!((a, b), (7, 7));
        t.set_floor(9);
        let c = r.pin_current(&t);
        assert_eq!(c, 9);
        assert_eq!(r.min_pinned(), 7);
        assert_eq!(r.gc_floor(&t), 7, "oldest pin holds the floor down");
        r.unpin(7);
        assert_eq!(r.min_pinned(), 7, "still one pin at 7");
        r.unpin(7);
        assert_eq!(r.min_pinned(), 9);
        r.unpin(9);
        assert_eq!(r.min_pinned(), u64::MAX);
        assert_eq!(r.gc_floor(&t), 9);
    }

    #[test]
    fn read_pin_releases_on_drop() {
        let t = SeqTracker::new();
        t.set_floor(4);
        let r = SnapshotRegistry::new();
        {
            let pin = ReadPin::new(&r, &t);
            assert_eq!(pin.seq(), 4);
            t.set_floor(10);
            assert_eq!(r.gc_floor(&t), 4);
        }
        assert_eq!(r.gc_floor(&t), 10);
    }

    #[test]
    fn queue_wait_accumulates_and_resets() {
        reset_queue_wait();
        add_queue_wait(Duration::from_micros(5));
        add_queue_wait(Duration::from_micros(7));
        assert_eq!(queue_wait(), Duration::from_micros(12));
        reset_queue_wait();
        assert_eq!(queue_wait(), Duration::ZERO);
    }
}
