//! Engine errors.

use sc_encoding::DecodeError;
use sc_storage::StorageError;
use std::fmt;

/// Anything that can go wrong executing against the NoSQL engine.
#[derive(Debug)]
pub enum NosqlError {
    /// CQL text did not parse; the message includes position context.
    Parse(String),
    /// A named keyspace does not exist.
    UnknownKeyspace(String),
    /// A named table does not exist.
    UnknownTable(String),
    /// A named column does not exist on the table.
    UnknownColumn {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// A value's type does not match the column's declared type.
    TypeMismatch {
        /// Column name.
        column: String,
        /// Declared type.
        expected: String,
        /// What was supplied.
        found: String,
    },
    /// An INSERT did not bind the primary key column.
    MissingPrimaryKey(String),
    /// Creating something that already exists.
    AlreadyExists(String),
    /// A WHERE clause the engine cannot serve (no index, not the key).
    Unsupported(String),
    /// A `SUM`/`AVG` running total left the 64-bit integer range. The
    /// statement fails rather than wrapping silently (the old behavior
    /// returned an arbitrary wrapped total).
    AggregateOverflow {
        /// The aggregate that overflowed (`"SUM"` or `"AVG"`).
        func: &'static str,
    },
    /// Underlying storage failure.
    Storage(StorageError),
    /// Corrupt on-disk data.
    Corrupt(String),
}

impl fmt::Display for NosqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NosqlError::Parse(m) => write!(f, "CQL parse error: {m}"),
            NosqlError::UnknownKeyspace(k) => write!(f, "unknown keyspace {k:?}"),
            NosqlError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            NosqlError::UnknownColumn { table, column } => {
                write!(f, "unknown column {column:?} on table {table:?}")
            }
            NosqlError::TypeMismatch {
                column,
                expected,
                found,
            } => write!(
                f,
                "type mismatch on column {column:?}: expected {expected}, found {found}"
            ),
            NosqlError::MissingPrimaryKey(c) => {
                write!(f, "INSERT must bind primary key column {c:?}")
            }
            NosqlError::AlreadyExists(what) => write!(f, "{what} already exists"),
            NosqlError::AggregateOverflow { func } => {
                write!(f, "{func} aggregate overflowed the 64-bit integer range")
            }
            NosqlError::Unsupported(m) => write!(f, "unsupported query: {m}"),
            NosqlError::Storage(e) => write!(f, "storage error: {e}"),
            NosqlError::Corrupt(m) => write!(f, "corrupt data: {m}"),
        }
    }
}

impl std::error::Error for NosqlError {}

impl From<StorageError> for NosqlError {
    fn from(e: StorageError) -> Self {
        NosqlError::Storage(e)
    }
}

impl From<DecodeError> for NosqlError {
    fn from(e: DecodeError) -> Self {
        NosqlError::Corrupt(e.to_string())
    }
}

impl From<crate::types::CqlTypeError> for NosqlError {
    fn from(e: crate::types::CqlTypeError) -> Self {
        NosqlError::TypeMismatch {
            column: "<value>".into(),
            expected: e.expected.into(),
            found: e.found.into(),
        }
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, NosqlError>;
