//! FNV-sharded, multi-versioned in-memory write buffer.
//!
//! The memtable is split into [`SHARD_COUNT`] shards, each guarded by its
//! own mutex; a key's shard is chosen by FNV-1a hash, so concurrent writers
//! to different keys almost never contend. Within a shard each key maps to
//! a **version chain**: a vector of [`Version`]s sorted newest-first by
//! MVCC sequence number.
//!
//! Every version records the sequence of the version that *shadowed* it
//! (`u64::MAX` while it is the key's newest write anywhere in the engine).
//! The shadow sequence drives two decisions:
//!
//! - **Garbage collection.** A shadowed version may be dropped once its
//!   shadow is at or below the engine's GC floor — the minimum of the
//!   visible watermark and the oldest pinned read bound — because every
//!   current and future reader will then see the newer version instead.
//! - **Read short-circuiting.** A point read that lands on a version whose
//!   chain is intact above it (every newer link present in the shard, the
//!   newest unshadowed) knows no frozen run or SSTable can hold anything
//!   newer, and skips the disk entirely. This keeps the warm-read
//!   "0 SSTables consulted" property of the single-threaded engine.
//!
//! Flushing is two-phase: [`ShardedMemtable::drain_up_to`] removes, per
//! key, the newest version at or below the flush boundary (always a fully
//! committed sequence) and returns the drained entries for the caller to
//! publish as a frozen run while the SSTable is written. Older versions
//! that a pinned snapshot might still need stay behind in the shard.

use crate::row::Row;
use sc_encoding::Encoder;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of memtable shards. A small power of two: enough to make
/// same-shard collisions rare for the session counts the server sees,
/// small enough that draining every shard for a flush stays cheap.
pub(crate) const SHARD_COUNT: usize = 16;

/// One MVCC version of a row. `row == None` is a tombstone.
#[derive(Debug, Clone)]
pub(crate) struct Version {
    /// MVCC sequence number of the write that produced this version.
    pub seq: u64,
    /// The row body, or `None` for a delete.
    pub row: Option<Row>,
    /// Sequence of the next-newer version of this key anywhere in the
    /// engine, or `u64::MAX` while this is the newest.
    pub shadow: u64,
    /// Approximate heap cost charged against the flush threshold.
    pub cost: usize,
}

/// A point-read hit from the memtable.
#[derive(Debug)]
pub(crate) struct MemHit {
    pub row: Option<Row>,
    pub seq: u64,
    /// True when the chain above the hit is complete in the shard: no
    /// frozen run or SSTable can hold a newer version, so the caller may
    /// skip them.
    pub definitive: bool,
}

#[derive(Debug, Default)]
struct Shard {
    entries: BTreeMap<Vec<u8>, Vec<Version>>,
}

/// The sharded memtable. All methods take `&self`; synchronization is one
/// mutex per shard plus a relaxed byte counter.
#[derive(Debug)]
pub(crate) struct ShardedMemtable {
    shards: Box<[Mutex<Shard>]>,
    bytes: AtomicUsize,
}

fn fnv1a(key: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl ShardedMemtable {
    pub fn new() -> ShardedMemtable {
        let shards = (0..SHARD_COUNT)
            .map(|_| Mutex::new(Shard::default()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ShardedMemtable {
            shards,
            bytes: AtomicUsize::new(0),
        }
    }

    fn shard_for(&self, key: &[u8]) -> &Mutex<Shard> {
        &self.shards[(fnv1a(key) % self.shards.len() as u64) as usize]
    }

    /// Inserts a version and garbage-collects the key's chain.
    ///
    /// `gc_floor` must be `min(visible watermark, oldest pinned bound)` at
    /// call time; versions whose shadow is at or below it are unreachable
    /// by every current and future reader and are dropped.
    pub fn put(&self, key: Vec<u8>, row: Option<Row>, seq: u64, cost: usize, gc_floor: u64) {
        let mut shard = self
            .shard_for(&key)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let versions = shard.entries.entry(key).or_default();
        insert_version(
            versions,
            Version {
                seq,
                row,
                shadow: u64::MAX,
                cost,
            },
        );
        self.bytes.fetch_add(cost, Ordering::Relaxed);
        let freed = gc_chain(versions, gc_floor);
        if freed > 0 {
            self.bytes.fetch_sub(freed, Ordering::Relaxed);
        }
    }

    /// Newest version of `key` at or below `bound`, if the shard holds one.
    pub fn get(&self, key: &[u8], bound: u64) -> Option<MemHit> {
        let shard = self
            .shard_for(key)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let versions = shard.entries.get(key)?;
        let mut chained = true;
        let mut expected_shadow = u64::MAX;
        for v in versions {
            if v.shadow != expected_shadow {
                // A newer version of this key was flushed out of the shard.
                chained = false;
            }
            if v.seq <= bound {
                return Some(MemHit {
                    row: v.row.clone(),
                    seq: v.seq,
                    definitive: chained,
                });
            }
            expected_shadow = v.seq;
        }
        None
    }

    /// Newest version at or below `bound` for every key (tombstones
    /// included), for scan merging.
    pub fn visible_entries(&self, bound: u64) -> Vec<(Vec<u8>, Option<Row>, u64)> {
        self.collect(bound, |_| true)
    }

    /// Like [`ShardedMemtable::visible_entries`] but restricted to keys
    /// starting with `prefix`.
    pub fn visible_prefix(&self, prefix: &[u8], bound: u64) -> Vec<(Vec<u8>, Option<Row>, u64)> {
        self.collect(bound, |k| k.starts_with(prefix))
    }

    fn collect(
        &self,
        bound: u64,
        keep: impl Fn(&[u8]) -> bool,
    ) -> Vec<(Vec<u8>, Option<Row>, u64)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            for (key, versions) in &shard.entries {
                if !keep(key) {
                    continue;
                }
                if let Some(v) = versions.iter().find(|v| v.seq <= bound) {
                    out.push((key.clone(), v.row.clone(), v.seq));
                }
            }
        }
        out
    }

    /// Approximate bytes buffered across all shards.
    pub fn approx_bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Number of keys with at least one buffered version (planner row
    /// estimates, test observability).
    pub fn key_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).entries.len())
            .sum()
    }

    /// Flush phase zero: the entries [`ShardedMemtable::drain_up_to`]
    /// would remove at `boundary`, cloned without removing anything. The
    /// flush publishes these as the frozen run *first* and only then
    /// drains, so every acked version is findable in at least one layer at
    /// every instant. Draining before publishing had a window — after a
    /// shard gave up its versions, before the frozen run appeared — where
    /// a concurrent point read fell through every layer and served an
    /// *older* version of an acknowledged write.
    ///
    /// A version committed between the peek and the drain has a sequence
    /// above `boundary` (the visible watermark at flush start), so it can
    /// shadow a peeked version but never changes the peeked set itself;
    /// the drain then leaves the newly-shadowed version in its shard,
    /// which is merely a duplicate of what the frozen run (and then the
    /// SSTable) already serves.
    pub fn peek_up_to(&self, boundary: u64) -> BTreeMap<Vec<u8>, (Option<Row>, u64)> {
        let mut staged = BTreeMap::new();
        for shard in self.shards.iter() {
            let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            for (key, versions) in &shard.entries {
                if let Some(v) = versions.iter().find(|v| v.seq <= boundary) {
                    if v.shadow == u64::MAX {
                        staged.insert(key.clone(), (v.row.clone(), v.seq));
                    }
                }
            }
        }
        staged
    }

    /// Flush phase one: removes, per key, the newest version at or below
    /// `boundary` (the visible watermark at flush start, so every drained
    /// sequence is fully committed) — but only when that version is the
    /// key's **globally newest** (`shadow == u64::MAX`). Returns the
    /// drained entries sorted by key.
    ///
    /// The globally-newest restriction is what keeps per-key sequence
    /// order monotone across SSTable age order: a shadowed version never
    /// reaches disk (its shadow already has, or will first), so a
    /// newest-SSTable-first read can stop at its first hit. Shadowed
    /// versions exist only to serve pinned readers and die in memory when
    /// the GC floor passes their shadow; the WAL, not the SSTable, is
    /// their durability story. Older retained versions are GC'd against
    /// `gc_floor` on the way through; empty chains are dropped.
    pub fn drain_up_to(
        &self,
        boundary: u64,
        gc_floor: u64,
    ) -> BTreeMap<Vec<u8>, (Option<Row>, u64)> {
        let mut drained = BTreeMap::new();
        let mut freed = 0usize;
        for shard in self.shards.iter() {
            let mut shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            shard.entries.retain(|key, versions| {
                if let Some(pos) = versions.iter().position(|v| v.seq <= boundary) {
                    if versions[pos].shadow == u64::MAX {
                        let v = versions.remove(pos);
                        freed += v.cost;
                        drained.insert(key.clone(), (v.row, v.seq));
                    }
                }
                freed += gc_chain(versions, gc_floor);
                !versions.is_empty()
            });
        }
        if freed > 0 {
            self.bytes.fetch_sub(freed, Ordering::Relaxed);
        }
        drained
    }

    /// Garbage-collects every shard against `floor`: versions shadowed at
    /// or below it are unreachable by every current and future reader and
    /// are dropped; emptied chains disappear.
    ///
    /// Chain GC is otherwise lazy (it runs when a key is touched by a put
    /// or a drain), so a snapshot-retained version can outlive its
    /// snapshot indefinitely. Tombstone-dropping compaction runs this
    /// eagerly first: a stale live version left behind a flushed tombstone
    /// would otherwise resurface once the tombstone leaves the SSTables.
    pub fn gc(&self, floor: u64) {
        let mut freed = 0usize;
        for shard in self.shards.iter() {
            let mut shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            shard.entries.retain(|_, versions| {
                freed += gc_chain(versions, floor);
                !versions.is_empty()
            });
        }
        if freed > 0 {
            self.bytes.fetch_sub(freed, Ordering::Relaxed);
        }
    }

    /// Flush undo: re-inserts entries drained by
    /// [`ShardedMemtable::drain_up_to`] after a failed SSTable write, so
    /// the data stays readable and a later flush can retry. Shadow links
    /// are recomputed from the chain neighbors.
    pub fn reinsert(&self, entries: BTreeMap<Vec<u8>, (Option<Row>, u64)>) {
        let mut scratch = Encoder::new();
        for (key, (row, seq)) in entries {
            let cost = key.len() + row.as_ref().map_or(1, |r| r.encoded_size(&mut scratch));
            self.put(key, row, seq, cost, 0);
        }
    }
}

/// Inserts `v` into a newest-first chain, fixing up the shadow links of
/// the inserted version and its older neighbor. Replaces in place when the
/// sequence is already present (idempotent WAL replay).
fn insert_version(versions: &mut Vec<Version>, mut v: Version) {
    let pos = versions.partition_point(|existing| existing.seq > v.seq);
    if let Some(existing) = versions.get_mut(pos) {
        if existing.seq == v.seq {
            v.shadow = existing.shadow;
            v.cost = existing.cost;
            *existing = v;
            return;
        }
    }
    v.shadow = if pos == 0 {
        u64::MAX
    } else {
        versions[pos - 1].seq
    };
    if let Some(older) = versions.get_mut(pos) {
        // Only claim the older neighbor if it was unshadowed: a non-MAX
        // shadow means a version between the two already exists elsewhere
        // (flushed), and repointing it would make a bound below that
        // flushed sequence wrongly treat the chain as complete.
        if older.shadow == u64::MAX {
            older.shadow = v.seq;
        }
    }
    versions.insert(pos, v);
}

/// Drops chain versions unreachable by every current and future reader:
/// those shadowed at or below `gc_floor`. Returns the freed cost.
fn gc_chain(versions: &mut Vec<Version>, gc_floor: u64) -> usize {
    let mut freed = 0;
    versions.retain(|v| {
        if v.shadow != u64::MAX && v.shadow <= gc_floor {
            freed += v.cost;
            false
        } else {
            true
        }
    });
    freed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::CqlValue;

    fn row(v: i64) -> Row {
        Row::new(vec![CqlValue::Int(v)])
    }

    fn put(m: &ShardedMemtable, key: &[u8], v: i64, seq: u64, gc_floor: u64) {
        m.put(key.to_vec(), Some(row(v)), seq, 8, gc_floor);
    }

    #[test]
    fn reads_respect_the_bound() {
        let m = ShardedMemtable::new();
        put(&m, b"k", 1, 5, 0);
        put(&m, b"k", 2, 9, 0);
        assert!(m.get(b"k", 4).is_none(), "nothing visible below seq 5");
        let hit = m.get(b"k", 5).unwrap();
        assert_eq!(hit.seq, 5);
        assert_eq!(hit.row.unwrap(), row(1));
        let hit = m.get(b"k", u64::MAX).unwrap();
        assert_eq!(hit.seq, 9);
        assert!(hit.definitive, "intact chain short-circuits");
    }

    #[test]
    fn out_of_order_insert_fixes_shadow_links() {
        let m = ShardedMemtable::new();
        // Two writers race: the higher sequence reaches the shard first.
        put(&m, b"k", 2, 9, 0);
        put(&m, b"k", 1, 5, 0);
        let hit = m.get(b"k", 5).unwrap();
        assert_eq!(hit.seq, 5);
        assert!(
            hit.definitive,
            "chain 9→5 is intact, nothing can be newer elsewhere"
        );
    }

    #[test]
    fn gc_drops_versions_below_the_floor() {
        let m = ShardedMemtable::new();
        put(&m, b"k", 1, 5, 0);
        // Floor 9 ≥ shadow (9) of the old version: it is unreachable.
        put(&m, b"k", 2, 9, 9);
        assert!(m.get(b"k", 5).is_none(), "seq-5 version was GC'd");
        assert!(m.get(b"k", u64::MAX).is_some());
    }

    #[test]
    fn gc_keeps_versions_a_pinned_reader_needs() {
        let m = ShardedMemtable::new();
        put(&m, b"k", 1, 5, 0);
        // A reader is pinned at bound 7 (< shadow 9): keep the old version.
        put(&m, b"k", 2, 9, 7);
        let hit = m.get(b"k", 7).unwrap();
        assert_eq!(hit.seq, 5);
        assert_eq!(hit.row.unwrap(), row(1));
    }

    #[test]
    fn drain_takes_committed_versions_and_leaves_the_rest() {
        let m = ShardedMemtable::new();
        put(&m, b"a", 1, 3, 0);
        put(&m, b"a", 2, 8, 0);
        put(&m, b"b", 3, 4, 0);
        // Boundary 5: b@4 flushes. a@3 is at or below the boundary too,
        // but it is shadowed by the in-memory a@8 — flushing it would put
        // an older sequence in a younger SSTable, so it must stay.
        let drained = m.drain_up_to(5, 0);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[&b"b".to_vec()].1, 4);
        assert!(m.get(b"b", u64::MAX).is_none());
        let hit = m.get(b"a", u64::MAX).unwrap();
        assert_eq!(hit.seq, 8);
        assert!(hit.definitive);
        let hit = m.get(b"a", 3).unwrap();
        assert_eq!(hit.seq, 3, "the shadowed version still serves its bound");
        // A later flush with an advanced boundary takes a@8 and GC's a@3.
        let drained = m.drain_up_to(8, 8);
        assert_eq!(drained[&b"a".to_vec()].1, 8);
        assert!(m.get(b"a", u64::MAX).is_none());
        assert_eq!(m.key_count(), 0);
    }

    #[test]
    fn hole_above_a_version_defeats_short_circuiting() {
        let m = ShardedMemtable::new();
        put(&m, b"k", 1, 3, 0);
        put(&m, b"k", 2, 8, 0);
        // Flush the newest committed version (8); the snapshot-retained
        // version 3 stays with shadow 8 — a hole above it.
        let drained = m.drain_up_to(8, 0);
        assert_eq!(drained[&b"k".to_vec()].1, 8);
        let hit = m.get(b"k", u64::MAX).unwrap();
        assert_eq!(hit.seq, 3);
        assert!(
            !hit.definitive,
            "a flushed newer version exists; SSTables must be consulted"
        );
    }

    #[test]
    fn gc_pass_purges_stale_shadowed_versions() {
        let m = ShardedMemtable::new();
        put(&m, b"k", 1, 5, 0);
        put(&m, b"k", 2, 9, 0);
        // Drain the newest at a floor that keeps the pinned-era version.
        let drained = m.drain_up_to(9, 5);
        assert_eq!(drained[&b"k".to_vec()].1, 9);
        assert_eq!(m.get(b"k", 5).unwrap().seq, 5, "retained for the pin");
        // Pin released: an explicit pass reclaims it (shadow 9 <= floor 9).
        m.gc(9);
        assert!(m.get(b"k", 5).is_none());
        assert_eq!(m.key_count(), 0);
        assert_eq!(m.approx_bytes(), 0);
    }

    #[test]
    fn reinsert_restores_drained_entries() {
        let m = ShardedMemtable::new();
        put(&m, b"k", 1, 3, 0);
        let drained = m.drain_up_to(5, 0);
        assert!(m.get(b"k", u64::MAX).is_none());
        m.reinsert(drained);
        let hit = m.get(b"k", u64::MAX).unwrap();
        assert_eq!(hit.seq, 3);
        assert!(hit.definitive);
    }

    #[test]
    fn byte_accounting_tracks_live_versions() {
        let m = ShardedMemtable::new();
        assert_eq!(m.approx_bytes(), 0);
        put(&m, b"k", 1, 1, 0);
        put(&m, b"j", 2, 2, 0);
        assert!(m.approx_bytes() >= 16);
        m.drain_up_to(2, 0);
        assert_eq!(m.approx_bytes(), 0);
        assert_eq!(m.key_count(), 0);
    }

    #[test]
    fn visible_entries_pick_newest_at_or_below_bound() {
        let m = ShardedMemtable::new();
        put(&m, b"a", 1, 2, 0);
        put(&m, b"a", 2, 6, 0);
        put(&m, b"b", 3, 4, 0);
        m.put(b"c".to_vec(), None, 5, 8, 0); // tombstone
        let mut vis = m.visible_entries(5);
        vis.sort_by(|x, y| x.0.cmp(&y.0));
        assert_eq!(vis.len(), 3);
        assert_eq!(vis[0].2, 2, "a@6 is above the bound");
        assert_eq!(vis[1].2, 4);
        assert!(vis[2].1.is_none(), "tombstones are reported to the merger");
    }
}
