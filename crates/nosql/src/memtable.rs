//! In-memory write buffer, sorted by partition key.

use crate::row::Row;
use std::collections::BTreeMap;

/// A memtable entry: a live row or a tombstone, with its write timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// `None` = tombstone (row deleted at `timestamp`).
    pub row: Option<Row>,
    /// Logical write timestamp (last-write-wins).
    pub timestamp: u64,
}

/// The in-memory, sorted write buffer of one column family.
#[derive(Debug, Default)]
pub struct Memtable {
    entries: BTreeMap<Vec<u8>, Entry>,
    /// Approximate bytes held (drives flush decisions).
    bytes: usize,
}

impl Memtable {
    /// Creates an empty memtable.
    pub fn new() -> Memtable {
        Memtable::default()
    }

    /// Upserts a row (or tombstone) under an encoded partition key.
    pub fn put(&mut self, key: Vec<u8>, entry: Entry, encoded_size: usize) {
        self.bytes += key.len() + encoded_size;
        self.entries.insert(key, entry);
    }

    /// Latest entry for a key, if buffered.
    pub fn get(&self, key: &[u8]) -> Option<&Entry> {
        self.entries.get(key)
    }

    /// Number of buffered keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate buffered bytes (monotone until clear; overwrites keep
    /// counting, like Cassandra's allocator accounting).
    pub fn approximate_bytes(&self) -> usize {
        self.bytes
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<u8>, &Entry)> {
        self.entries.iter()
    }

    /// Iterates entries whose keys start with `prefix`, in key order.
    pub fn iter_prefix<'a>(
        &'a self,
        prefix: &'a [u8],
    ) -> impl Iterator<Item = (&'a Vec<u8>, &'a Entry)> + 'a {
        self.entries
            .range(prefix.to_vec()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
    }

    /// Drains the memtable for a flush, leaving it empty.
    pub fn drain(&mut self) -> Vec<(Vec<u8>, Entry)> {
        self.bytes = 0;
        std::mem::take(&mut self.entries).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::CqlValue;

    fn row(v: i64) -> Row {
        Row::new(vec![CqlValue::Int(v)])
    }

    #[test]
    fn put_get_overwrite() {
        let mut m = Memtable::new();
        m.put(
            vec![1],
            Entry {
                row: Some(row(10)),
                timestamp: 1,
            },
            16,
        );
        m.put(
            vec![1],
            Entry {
                row: Some(row(20)),
                timestamp: 2,
            },
            16,
        );
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&[1]).unwrap().row.as_ref().unwrap(), &row(20));
        assert_eq!(m.get(&[1]).unwrap().timestamp, 2);
        assert!(m.get(&[2]).is_none());
        assert!(m.approximate_bytes() >= 32, "overwrites keep counting");
    }

    #[test]
    fn tombstones_are_entries() {
        let mut m = Memtable::new();
        m.put(
            vec![9],
            Entry {
                row: None,
                timestamp: 5,
            },
            1,
        );
        assert!(m.get(&[9]).unwrap().row.is_none());
    }

    #[test]
    fn drain_empties_in_key_order() {
        let mut m = Memtable::new();
        m.put(
            vec![2],
            Entry {
                row: Some(row(2)),
                timestamp: 1,
            },
            8,
        );
        m.put(
            vec![1],
            Entry {
                row: Some(row(1)),
                timestamp: 2,
            },
            8,
        );
        let drained = m.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].0, vec![1]);
        assert_eq!(drained[1].0, vec![2]);
        assert!(m.is_empty());
        assert_eq!(m.approximate_bytes(), 0);
    }
}
