//! The background compaction worker pool (see DESIGN.md §5i).
//!
//! Flushes used to run size-tiered compaction inline on the committing
//! session's thread, stalling that commit — and, through the WAL group
//! and the table's maintenance lock, every commit behind it — for the
//! length of a multi-SSTable merge. The pool moves the merge off the
//! commit path: a flush that crosses the threshold just enqueues its
//! table and returns.
//!
//! Scheduling is per *table*: each [`TableCore`] holds one queue slot
//! (`try_queue_compaction`), so the queue never grows beyond the table
//! count no matter how many flushes race, while distinct tables compact
//! in parallel across the workers. The slot is released by the worker
//! right before the merge runs, so a flush landing mid-merge re-queues
//! and nothing is lost. The job itself re-checks the threshold under the
//! maintenance lock ([`TableCore::compact_tiered`]); a stale job on an
//! already-compacted or retired table is a cheap no-op.
//!
//! Shutdown is drain-first: `Drop` lets the workers finish every queued
//! job before joining them, so `Db::close` never leaks a half-scheduled
//! merge. Merge errors are swallowed deliberately — a failed merge leaves
//! the input SSTables untouched (the manifest swap is atomic) and the
//! next flush re-schedules, so correctness never depends on a background
//! job succeeding.

use crate::mvcc::SnapshotRegistry;
use crate::table::TableCore;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One queued merge: the table plus the snapshot registry its merge must
/// consult for the GC floor.
struct Job {
    core: Arc<TableCore>,
    registry: Arc<SnapshotRegistry>,
}

struct PoolInner {
    queue: Mutex<VecDeque<Job>>,
    /// Jobs popped but not yet finished; `drain` waits for queue empty AND
    /// zero active. Mutated only while holding the queue lock, so the pair
    /// is checked consistently.
    active: AtomicUsize,
    /// Signals workers that the queue gained a job (or shutdown began).
    work: Condvar,
    /// Signals drainers that a worker went idle.
    idle: Condvar,
    shutdown: AtomicBool,
}

/// A fixed-size worker pool draining per-table compaction jobs.
pub(crate) struct CompactionPool {
    inner: Arc<PoolInner>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for CompactionPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompactionPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl CompactionPool {
    /// Spawns `threads` workers (callers gate on `threads > 0`).
    pub fn new(threads: usize) -> CompactionPool {
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(VecDeque::new()),
            active: AtomicUsize::new(0),
            work: Condvar::new(),
            idle: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("sc-nosql-compact-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn compaction worker")
            })
            .collect();
        CompactionPool { inner, workers }
    }

    /// Enqueues `core` unless a job for it is already queued. Cheap enough
    /// for the commit path: one CAS plus, on the first schedule, a queue
    /// push and a wakeup.
    pub fn schedule(&self, core: &Arc<TableCore>, registry: &Arc<SnapshotRegistry>) {
        if !core.try_queue_compaction() {
            return;
        }
        let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.push_back(Job {
            core: Arc::clone(core),
            registry: Arc::clone(registry),
        });
        self.inner.work.notify_one();
    }

    /// Blocks until every queued and in-flight job has finished. Jobs
    /// scheduled *during* the drain are waited for too.
    pub fn drain(&self) {
        let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
        while !queue.is_empty() || self.inner.active.load(Ordering::Acquire) > 0 {
            queue = self
                .inner
                .idle
                .wait(queue)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl Drop for CompactionPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        // Take the lock so the store cannot land between a worker's empty
        // check and its wait (a missed wakeup would hang the join).
        drop(self.inner.queue.lock().unwrap_or_else(|e| e.into_inner()));
        self.inner.work.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = queue.pop_front() {
                    // Claim under the queue lock: `drain` sees either the
                    // queued job or the active count, never a gap.
                    inner.active.fetch_add(1, Ordering::AcqRel);
                    break Some(job);
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = inner.work.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(job) = job else { return };
        // Free the slot before merging so a concurrent flush can re-queue
        // the table for the SSTables this run won't see.
        job.core.clear_compaction_queued();
        crate::mvcc::perturb(35);
        // Errors are dropped: the manifest swap is atomic, so a failed
        // merge leaves the table exactly as it was and the next flush
        // re-schedules it.
        let _ = job.core.compact_tiered(&job.registry);
        let queue = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
        inner.active.fetch_sub(1, Ordering::AcqRel);
        inner.idle.notify_all();
        drop(queue);
    }
}
