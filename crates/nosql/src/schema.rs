//! Keyspace / column-family schema catalog.

use crate::error::{NosqlError, Result};
use crate::types::CqlType;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One column of a column family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: CqlType,
}

/// A column family (table) definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    /// Owning keyspace.
    pub keyspace: String,
    /// Table name.
    pub name: String,
    /// Columns, in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Index into `columns` of the partition-key column.
    pub primary_key: usize,
    /// Names of columns with secondary indexes.
    pub indexed_columns: Vec<String>,
}

impl TableDef {
    /// Creates a definition, validating names and the primary key.
    pub fn new(
        keyspace: &str,
        name: &str,
        columns: Vec<ColumnDef>,
        primary_key: &str,
    ) -> Result<TableDef> {
        if columns.is_empty() {
            return Err(NosqlError::Parse(format!(
                "table {name} must have at least one column"
            )));
        }
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|o| o.name == c.name) {
                return Err(NosqlError::Parse(format!(
                    "duplicate column {:?} in table {name}",
                    c.name
                )));
            }
        }
        let pk = columns
            .iter()
            .position(|c| c.name == primary_key)
            .ok_or_else(|| NosqlError::UnknownColumn {
                table: name.to_string(),
                column: primary_key.to_string(),
            })?;
        if columns[pk].ty == CqlType::IntSet {
            return Err(NosqlError::Parse(format!(
                "set<int> column {primary_key:?} cannot be the primary key"
            )));
        }
        Ok(TableDef {
            keyspace: keyspace.to_string(),
            name: name.to_string(),
            columns,
            primary_key: pk,
            indexed_columns: Vec::new(),
        })
    }

    /// Fully qualified `keyspace.table` name.
    pub fn qualified_name(&self) -> String {
        format!("{}.{}", self.keyspace, self.name)
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The primary key column.
    pub fn pk_column(&self) -> &ColumnDef {
        &self.columns[self.primary_key]
    }

    /// Whether `column` has a secondary index.
    pub fn is_indexed(&self, column: &str) -> bool {
        self.indexed_columns.iter().any(|c| c == column)
    }

    /// Name of the hidden index table for `column`.
    pub fn index_table_name(&self, column: &str) -> String {
        format!("{}__idx_{}", self.name, column)
    }
}

/// The schema catalog: keyspaces and their tables.
///
/// Definitions are stored behind `Arc` so the executor's hot path can hold
/// a table definition without deep-cloning eight column names per INSERT.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    keyspaces: BTreeMap<String, BTreeMap<String, Arc<TableDef>>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Creates a keyspace.
    pub fn create_keyspace(&mut self, name: &str) -> Result<()> {
        if self.keyspaces.contains_key(name) {
            return Err(NosqlError::AlreadyExists(format!("keyspace {name:?}")));
        }
        self.keyspaces.insert(name.to_string(), BTreeMap::new());
        Ok(())
    }

    /// Whether a keyspace exists.
    pub fn has_keyspace(&self, name: &str) -> bool {
        self.keyspaces.contains_key(name)
    }

    /// Adds a table to its keyspace.
    pub fn create_table(&mut self, def: TableDef) -> Result<()> {
        let ks = self
            .keyspaces
            .get_mut(&def.keyspace)
            .ok_or_else(|| NosqlError::UnknownKeyspace(def.keyspace.clone()))?;
        if ks.contains_key(&def.name) {
            return Err(NosqlError::AlreadyExists(format!(
                "table {}",
                def.qualified_name()
            )));
        }
        ks.insert(def.name.clone(), Arc::new(def));
        Ok(())
    }

    /// Looks up a table (cheap `Arc` to clone for hot paths).
    pub fn table(&self, keyspace: &str, name: &str) -> Result<&Arc<TableDef>> {
        self.keyspaces
            .get(keyspace)
            .ok_or_else(|| NosqlError::UnknownKeyspace(keyspace.to_string()))?
            .get(name)
            .ok_or_else(|| NosqlError::UnknownTable(format!("{keyspace}.{name}")))
    }

    /// Mutable table lookup (index registration).
    pub fn table_mut(&mut self, keyspace: &str, name: &str) -> Result<&mut TableDef> {
        self.keyspaces
            .get_mut(keyspace)
            .ok_or_else(|| NosqlError::UnknownKeyspace(keyspace.to_string()))?
            .get_mut(name)
            .map(Arc::make_mut)
            .ok_or_else(|| NosqlError::UnknownTable(format!("{keyspace}.{name}")))
    }

    /// Tables of a keyspace, sorted by name.
    pub fn tables_in(&self, keyspace: &str) -> Result<Vec<&Arc<TableDef>>> {
        Ok(self
            .keyspaces
            .get(keyspace)
            .ok_or_else(|| NosqlError::UnknownKeyspace(keyspace.to_string()))?
            .values()
            .collect())
    }

    /// All keyspace names, sorted.
    pub fn keyspace_names(&self) -> Vec<&str> {
        self.keyspaces.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols() -> Vec<ColumnDef> {
        vec![
            ColumnDef {
                name: "id".into(),
                ty: CqlType::Int,
            },
            ColumnDef {
                name: "key".into(),
                ty: CqlType::Text,
            },
            ColumnDef {
                name: "children".into(),
                ty: CqlType::IntSet,
            },
        ]
    }

    #[test]
    fn table_def_basics() {
        let def = TableDef::new("ks", "cells", cols(), "id").unwrap();
        assert_eq!(def.qualified_name(), "ks.cells");
        assert_eq!(def.primary_key, 0);
        assert_eq!(def.pk_column().name, "id");
        assert_eq!(def.column_index("key"), Some(1));
        assert_eq!(def.column_index("zzz"), None);
        assert!(!def.is_indexed("key"));
        assert_eq!(def.index_table_name("key"), "cells__idx_key");
    }

    #[test]
    fn table_def_rejections() {
        assert!(matches!(
            TableDef::new("ks", "t", vec![], "id"),
            Err(NosqlError::Parse(_))
        ));
        assert!(matches!(
            TableDef::new("ks", "t", cols(), "nope"),
            Err(NosqlError::UnknownColumn { .. })
        ));
        assert!(matches!(
            TableDef::new("ks", "t", cols(), "children"),
            Err(NosqlError::Parse(_))
        ));
        let mut dup = cols();
        dup.push(ColumnDef {
            name: "id".into(),
            ty: CqlType::Int,
        });
        assert!(matches!(
            TableDef::new("ks", "t", dup, "id"),
            Err(NosqlError::Parse(_))
        ));
    }

    #[test]
    fn catalog_flow() {
        let mut cat = Catalog::new();
        cat.create_keyspace("smartcity").unwrap();
        assert!(cat.has_keyspace("smartcity"));
        assert!(matches!(
            cat.create_keyspace("smartcity"),
            Err(NosqlError::AlreadyExists(_))
        ));
        let def = TableDef::new("smartcity", "cells", cols(), "id").unwrap();
        cat.create_table(def.clone()).unwrap();
        assert!(matches!(
            cat.create_table(def),
            Err(NosqlError::AlreadyExists(_))
        ));
        assert!(cat.table("smartcity", "cells").is_ok());
        assert!(matches!(
            cat.table("smartcity", "nodes"),
            Err(NosqlError::UnknownTable(_))
        ));
        assert!(matches!(
            cat.table("nope", "cells"),
            Err(NosqlError::UnknownKeyspace(_))
        ));
        assert_eq!(cat.tables_in("smartcity").unwrap().len(), 1);
        assert_eq!(cat.keyspace_names(), vec!["smartcity"]);
        let bad = TableDef::new("ghost", "t", cols(), "id").unwrap();
        assert!(matches!(
            cat.create_table(bad),
            Err(NosqlError::UnknownKeyspace(_))
        ));
    }
}
