//! SSTables: immutable sorted string tables flushed from memtables.
//!
//! Layout:
//!
//! ```text
//! [ entries... ][ index ][ footer ]
//! entry : key(len-prefixed) flag(u8: 1 live / 0 tombstone) ts(u64)
//!         body(len-prefixed; empty for tombstones)
//! index : count, then per entry key(len-prefixed) + entry offset
//! footer: index_offset(u64) index_len(u64) index_crc(u32) magic(u32)
//! ```
//!
//! The index is loaded into memory on open (these are cube-sized tables,
//! not petabytes); entry bodies are read on demand.

use crate::error::{NosqlError, Result};
use sc_encoding::{Crc32, Decoder, Encoder};
use sc_storage::Vfs;

const MAGIC: u32 = 0x5354_4231; // "STB1"

/// One record offered to the writer / returned by readers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SstEntry {
    /// Encoded partition key.
    pub key: Vec<u8>,
    /// Encoded row body; `None` = tombstone.
    pub body: Option<Vec<u8>>,
    /// Write timestamp.
    pub timestamp: u64,
}

/// Writes a sorted run of entries as one SSTable file.
///
/// The reader's binary-searched index silently returns wrong rows over an
/// unsorted or duplicated run, so malformed input is rejected up front with
/// [`NosqlError::Corrupt`] — in release builds too, not just as a debug
/// assertion (the flush path always hands over a sorted memtable drain, but
/// recovery and compaction code evolve).
pub fn write_sstable(vfs: &Vfs, file: &str, entries: &[SstEntry]) -> Result<()> {
    if let Some(w) = entries.windows(2).find(|w| w[0].key >= w[1].key) {
        let what = if w[0].key == w[1].key {
            "duplicate"
        } else {
            "out-of-order"
        };
        return Err(NosqlError::Corrupt(format!(
            "refusing to write {file}: {what} key {:02x?}",
            w[1].key
        )));
    }
    let mut data = Encoder::new();
    let mut index = Encoder::new();
    index.put_u64(entries.len() as u64);
    for e in entries {
        index.put_bytes(&e.key);
        index.put_u64(data.len() as u64);
        data.put_bytes(&e.key);
        match &e.body {
            Some(body) => {
                data.put_u8(1);
                data.put_u64_fixed(e.timestamp);
                data.put_bytes(body);
            }
            None => {
                data.put_u8(0);
                data.put_u64_fixed(e.timestamp);
                data.put_bytes(&[]);
            }
        }
    }
    let index_bytes = index.into_bytes();
    let index_offset = data.len() as u64;
    let index_crc = Crc32::of(&index_bytes);
    let mut out = data;
    out.put_raw(&index_bytes);
    out.put_u64_fixed(index_offset);
    out.put_u64_fixed(index_bytes.len() as u64);
    out.put_u32_fixed(index_crc);
    out.put_u32_fixed(MAGIC);
    vfs.append(file, out.bytes())?;
    Ok(())
}

/// An open SSTable with its index resident.
#[derive(Debug)]
pub struct SsTable {
    vfs: Vfs,
    file: String,
    /// `(key, offset)` pairs in key order. Entries are written in key
    /// order, so offsets increase with index position.
    index: Vec<(Vec<u8>, u64)>,
    /// End of the data region (== index offset).
    data_end: u64,
    size: u64,
}

impl SsTable {
    /// Opens and validates an SSTable file.
    pub fn open(vfs: Vfs, file: impl Into<String>) -> Result<SsTable> {
        let file = file.into();
        let size = vfs.len(&file)?;
        if size < 24 {
            return Err(NosqlError::Corrupt(format!("{file}: too small")));
        }
        let footer = vfs.read_at(&file, size - 24, 24)?;
        let mut f = Decoder::new(&footer);
        let index_offset = f.get_u64_fixed()?;
        let index_len = f.get_u64_fixed()? as usize;
        let index_crc = f.get_u32_fixed()?;
        let magic = f.get_u32_fixed()?;
        if magic != MAGIC {
            return Err(NosqlError::Corrupt(format!("{file}: bad magic")));
        }
        if index_offset + index_len as u64 + 24 != size {
            return Err(NosqlError::Corrupt(format!("{file}: bad footer geometry")));
        }
        let index_bytes = vfs.read_at(&file, index_offset, index_len)?;
        if Crc32::of(&index_bytes) != index_crc {
            return Err(NosqlError::Corrupt(format!("{file}: index checksum")));
        }
        let mut d = Decoder::new(&index_bytes);
        let n = d.get_u64()? as usize;
        let mut index = Vec::with_capacity(n);
        for _ in 0..n {
            let key = d.get_bytes()?.to_vec();
            let offset = d.get_u64()?;
            index.push((key, offset));
        }
        Ok(SsTable {
            vfs,
            file,
            index,
            data_end: index_offset,
            size,
        })
    }

    /// File name.
    pub fn file(&self) -> &str {
        &self.file
    }

    /// Total file size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Reads the entry at index position `i`; its extent ends at the next
    /// entry's offset (entries are written in key order).
    fn read_entry(&self, i: usize) -> Result<SstEntry> {
        let offset = self.index[i].1;
        let end = self
            .index
            .get(i + 1)
            .map(|(_, o)| *o)
            .unwrap_or(self.data_end);
        let len = (end - offset) as usize;
        let buf = self.vfs.read_at(&self.file, offset, len)?;
        let mut d = Decoder::new(&buf);
        let key = d.get_bytes()?.to_vec();
        let flag = d.get_u8()?;
        let timestamp = d.get_u64_fixed()?;
        let body = d.get_bytes()?.to_vec();
        Ok(SstEntry {
            key,
            body: (flag == 1).then_some(body),
            timestamp,
        })
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<SstEntry>> {
        match self.index.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            Ok(i) => Ok(Some(self.read_entry(i)?)),
            Err(_) => Ok(None),
        }
    }

    /// Full scan in key order.
    pub fn scan(&self) -> Result<Vec<SstEntry>> {
        let mut out = Vec::with_capacity(self.index.len());
        for i in 0..self.index.len() {
            out.push(self.read_entry(i)?);
        }
        Ok(out)
    }

    /// Entries whose keys start with `prefix`, in key order.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<SstEntry>> {
        let start = self.index.partition_point(|(k, _)| k.as_slice() < prefix);
        let mut out = Vec::new();
        for (i, (key, _)) in self.index.iter().enumerate().skip(start) {
            if !key.starts_with(prefix) {
                break;
            }
            out.push(self.read_entry(i)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries() -> Vec<SstEntry> {
        vec![
            SstEntry {
                key: vec![1],
                body: Some(vec![10, 11]),
                timestamp: 1,
            },
            SstEntry {
                key: vec![2],
                body: None, // tombstone
                timestamp: 2,
            },
            SstEntry {
                key: vec![3, 0],
                body: Some(vec![]),
                timestamp: 3,
            },
        ]
    }

    #[test]
    fn write_open_get_scan() {
        let vfs = Vfs::memory();
        write_sstable(&vfs, "t/sst-1", &entries()).unwrap();
        let sst = SsTable::open(vfs, "t/sst-1").unwrap();
        assert_eq!(sst.len(), 3);
        assert_eq!(sst.get(&[1]).unwrap().unwrap().body, Some(vec![10, 11]));
        assert_eq!(sst.get(&[2]).unwrap().unwrap().body, None);
        assert_eq!(sst.get(&[3, 0]).unwrap().unwrap().body, Some(vec![]));
        assert!(sst.get(&[9]).unwrap().is_none());
        assert_eq!(sst.scan().unwrap(), entries());
        assert_eq!(sst.size(), sst.vfs.len("t/sst-1").unwrap());
    }

    #[test]
    fn empty_table() {
        let vfs = Vfs::memory();
        write_sstable(&vfs, "t/empty", &[]).unwrap();
        let sst = SsTable::open(vfs, "t/empty").unwrap();
        assert!(sst.is_empty());
        assert!(sst.scan().unwrap().is_empty());
        assert!(sst.get(&[0]).unwrap().is_none());
    }

    #[test]
    fn unsorted_entries_rejected_as_corrupt() {
        let vfs = Vfs::memory();
        let mut es = entries();
        es.swap(0, 2);
        let err = write_sstable(&vfs, "t/bad", &es).unwrap_err();
        assert!(
            matches!(&err, NosqlError::Corrupt(m) if m.contains("out-of-order")),
            "{err:?}"
        );
        // Nothing was written.
        assert!(vfs.list("t/bad").unwrap().is_empty());
    }

    #[test]
    fn duplicate_keys_rejected_as_corrupt() {
        let vfs = Vfs::memory();
        let mut es = entries();
        es[1].key = es[0].key.clone();
        let err = write_sstable(&vfs, "t/dup", &es).unwrap_err();
        assert!(
            matches!(&err, NosqlError::Corrupt(m) if m.contains("duplicate")),
            "{err:?}"
        );
    }

    #[test]
    fn corrupt_magic_rejected() {
        let vfs = Vfs::memory();
        write_sstable(&vfs, "t/x", &entries()).unwrap();
        let mut data = vfs.read_all("t/x").unwrap();
        let n = data.len();
        data[n - 1] ^= 0x55;
        vfs.delete("t/x").unwrap();
        vfs.append("t/x", &data).unwrap();
        assert!(matches!(
            SsTable::open(vfs, "t/x"),
            Err(NosqlError::Corrupt(_))
        ));
    }

    #[test]
    fn corrupt_index_rejected() {
        let vfs = Vfs::memory();
        write_sstable(&vfs, "t/x", &entries()).unwrap();
        let mut data = vfs.read_all("t/x").unwrap();
        let n = data.len();
        data[n - 30] ^= 0xff; // somewhere in the index
        vfs.delete("t/x").unwrap();
        vfs.append("t/x", &data).unwrap();
        assert!(matches!(
            SsTable::open(vfs, "t/x"),
            Err(NosqlError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_file_rejected() {
        let vfs = Vfs::memory();
        vfs.append("tiny", &[1, 2, 3]).unwrap();
        assert!(matches!(
            SsTable::open(vfs, "tiny"),
            Err(NosqlError::Corrupt(_))
        ));
    }
}
