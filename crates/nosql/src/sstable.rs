//! SSTables: immutable sorted string tables flushed from memtables.
//!
//! Three on-disk formats share one reader, sniffed by the footer magic:
//!
//! **v3 (written by [`write_sstable`], magic `STB3`)** — block-based like
//! v2, but each ~4 KiB data block stores its records **column-major** (see
//! [`crate::colblock`] and DESIGN.md §5i): per-column contiguous runs with
//! varint-delta integers, dictionary text, boolean/null bitmaps, plus a
//! verbatim row fallback for non-canonical bodies. The meta region —
//! entry count, min/max key fences, bloom filter, per-block first key /
//! offset / len / CRC / count — and the footer are byte-identical to v2,
//! so fences, bloom filters and per-block CRCs work unchanged. Projected
//! scans ([`SsTable::scan_rows`]) decode only the column chunks the query
//! needs.
//!
//! **v2 (written by [`write_sstable_v2`], magic `STB2`)** — block-based
//! with row-major (key, payload) records:
//!
//! ```text
//! [ data blocks... ][ meta ][ footer ]
//! block : ~4 KiB of (key, payload) records; payload = flag(u8: 1 live /
//!         0 tombstone) ts(u64 LE) body(raw)
//! meta  : entry count, min/max key fences, bloom filter, then per block:
//!         first key, offset, len, crc32, record count
//! footer: meta_offset(u64) meta_len(u64) meta_crc(u32) magic(u32)
//! ```
//!
//! Only the meta region is resident after open — a sparse index entry per
//! *block* plus ~10 filter bits per key, instead of v1's full per-key
//! index. Point misses are answered by the key fences and the bloom filter
//! without touching a data block; hits read exactly one CRC-verified block,
//! optionally through the engine's shared [`BlockCache`].
//!
//! **v1 (written by [`write_sstable_v1`], magic `STB1`)** — the legacy
//! dense-index layout: `[ entries ][ index ][ footer ]` with one resident
//! `(key, offset)` pair per entry. Still fully readable; new tables are
//! always written as v3.
//!
//! Every decoded geometry field is validated at open (checked arithmetic,
//! monotone offsets, bounded allocations), so a corrupt or truncated file
//! of any version surfaces as [`NosqlError::Corrupt`], never a panic.

use crate::cache::BlockCache;
use crate::colblock;
use crate::error::{NosqlError, Result};
use crate::row::Row;
use sc_encoding::{BlockBuilder, BlockIter, Bloom, Crc32, Decoder, Encoder, BLOCK_TARGET_BYTES};
use sc_storage::Vfs;
use std::sync::Arc;

const MAGIC_V1: u32 = 0x5354_4231; // "STB1"
const MAGIC_V2: u32 = 0x5354_4232; // "STB2"
const MAGIC_V3: u32 = 0x5354_4233; // "STB3"
const FOOTER_LEN: u64 = 24;

/// One record offered to the writer / returned by readers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SstEntry {
    /// Encoded partition key.
    pub key: Vec<u8>,
    /// Encoded row body; `None` = tombstone.
    pub body: Option<Vec<u8>>,
    /// Write timestamp.
    pub timestamp: u64,
}

/// What one point lookup did: the entry (if any) plus which read-path tier
/// answered it. Feeds the `nosql.bloom.*` metrics, the blocks-per-get
/// histogram and the filter-effectiveness tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Probe {
    /// The entry, if the key is present (tombstones included).
    pub entry: Option<SstEntry>,
    /// Data blocks (v2) or entry records (v1) read to answer.
    pub blocks_read: u64,
    /// The min/max key fences ruled the key out (v2 only).
    pub fence_rejected: bool,
    /// The bloom filter ruled the key out (v2 only).
    pub filter_rejected: bool,
}

impl Probe {
    fn absent(fence: bool, filter: bool) -> Probe {
        Probe {
            entry: None,
            blocks_read: 0,
            fence_rejected: fence,
            filter_rejected: filter,
        }
    }
}

/// The reader's binary-searched index silently returns wrong rows over an
/// unsorted or duplicated run, so malformed input is rejected up front with
/// [`NosqlError::Corrupt`] — in release builds too, not just as a debug
/// assertion (the flush path always hands over a sorted memtable drain, but
/// recovery and compaction code evolve).
fn ensure_sorted(file: &str, entries: &[SstEntry]) -> Result<()> {
    if let Some(w) = entries.windows(2).find(|w| w[0].key >= w[1].key) {
        let what = if w[0].key == w[1].key {
            "duplicate"
        } else {
            "out-of-order"
        };
        return Err(NosqlError::Corrupt(format!(
            "refusing to write {file}: {what} key {:02x?}",
            w[1].key
        )));
    }
    Ok(())
}

pub(crate) fn encode_payload(e: &SstEntry) -> Vec<u8> {
    let mut payload = Encoder::with_capacity(9 + e.body.as_ref().map_or(0, Vec::len));
    match &e.body {
        Some(body) => {
            payload.put_u8(1);
            payload.put_u64_fixed(e.timestamp);
            payload.put_raw(body);
        }
        None => {
            payload.put_u8(0);
            payload.put_u64_fixed(e.timestamp);
        }
    }
    payload.into_bytes()
}

pub(crate) fn decode_payload(file: &str, key: &[u8], payload: &[u8]) -> Result<SstEntry> {
    if payload.len() < 9 {
        return Err(NosqlError::Corrupt(format!(
            "{file}: record payload shorter than its fixed header"
        )));
    }
    let flag = payload[0];
    let timestamp = u64::from_le_bytes(payload[1..9].try_into().expect("9-byte prefix checked"));
    let body = &payload[9..];
    let body = match flag {
        1 => Some(body.to_vec()),
        0 if body.is_empty() => None,
        0 => {
            return Err(NosqlError::Corrupt(format!(
                "{file}: tombstone record carries a body"
            )))
        }
        _ => {
            return Err(NosqlError::Corrupt(format!(
                "{file}: bad record flag {flag}"
            )))
        }
    };
    Ok(SstEntry {
        key: key.to_vec(),
        body,
        timestamp,
    })
}

/// Appends the shared block-format meta region and footer (v2 and v3
/// differ only in block payload encoding and magic).
fn write_meta_and_footer(
    mut out: Encoder,
    entries: &[SstEntry],
    filter: &Bloom,
    blocks: &[BlockMeta],
    magic: u32,
) -> Vec<u8> {
    let mut meta = Encoder::new();
    meta.put_u64(entries.len() as u64);
    if let (Some(first), Some(last)) = (entries.first(), entries.last()) {
        meta.put_bytes(&first.key);
        meta.put_bytes(&last.key);
    }
    filter.encode(&mut meta);
    meta.put_u64(blocks.len() as u64);
    for b in blocks {
        meta.put_bytes(&b.first_key);
        meta.put_u64(b.offset);
        meta.put_u64(b.len);
        meta.put_u32_fixed(b.crc);
        meta.put_u64(b.count);
    }
    let meta_bytes = meta.into_bytes();
    let meta_offset = out.len() as u64;
    let meta_crc = Crc32::of(&meta_bytes);
    out.put_raw(&meta_bytes);
    out.put_u64_fixed(meta_offset);
    out.put_u64_fixed(meta_bytes.len() as u64);
    out.put_u32_fixed(meta_crc);
    out.put_u32_fixed(magic);
    out.into_bytes()
}

/// Writes a sorted run of entries as one column-major (v3) SSTable file —
/// the format the engine flushes and compacts to.
pub fn write_sstable(vfs: &Vfs, file: &str, entries: &[SstEntry]) -> Result<()> {
    ensure_sorted(file, entries)?;
    let mut data = Encoder::new();
    let mut blocks: Vec<BlockMeta> = Vec::new();
    let mut filter = Bloom::with_capacity(entries.len(), sc_encoding::bloom::DEFAULT_BITS_PER_KEY);
    let mut close_block = |data: &mut Encoder, run: &[SstEntry]| {
        let bytes = colblock::encode_block(run);
        blocks.push(BlockMeta {
            first_key: run[0].key.clone(),
            offset: data.len() as u64,
            len: bytes.len() as u64,
            crc: Crc32::of(&bytes),
            count: run.len() as u64,
        });
        data.put_raw(&bytes);
    };
    let mut start = 0usize;
    let mut pending = 0usize;
    for (i, e) in entries.iter().enumerate() {
        filter.insert(&e.key);
        // Same never-split-a-record sizing rule as the v2 BlockBuilder:
        // close once the approximate row-major footprint reaches the
        // target (the columnar form is usually smaller).
        pending += e.key.len() + 9 + e.body.as_ref().map_or(0, Vec::len) + 4;
        if pending >= BLOCK_TARGET_BYTES {
            close_block(&mut data, &entries[start..=i]);
            start = i + 1;
            pending = 0;
        }
    }
    if start < entries.len() {
        close_block(&mut data, &entries[start..]);
    }
    let out = write_meta_and_footer(data, entries, &filter, &blocks, MAGIC_V3);
    vfs.append(file, &out)?;
    Ok(())
}

/// Writes a sorted run of entries as one row-major block-based (v2)
/// SSTable file.
///
/// Kept so compatibility and corruption tests can produce v2 files; the
/// engine itself now writes v3. [`SsTable::open`] reads all versions.
pub fn write_sstable_v2(vfs: &Vfs, file: &str, entries: &[SstEntry]) -> Result<()> {
    ensure_sorted(file, entries)?;
    let mut data = Encoder::new();
    let mut blocks: Vec<BlockMeta> = Vec::new();
    let mut filter = Bloom::with_capacity(entries.len(), sc_encoding::bloom::DEFAULT_BITS_PER_KEY);
    let mut builder = BlockBuilder::new(BLOCK_TARGET_BYTES);
    let mut close_block = |data: &mut Encoder, builder: BlockBuilder| {
        let fin = builder.finish();
        blocks.push(BlockMeta {
            first_key: fin.first_key,
            offset: data.len() as u64,
            len: fin.bytes.len() as u64,
            crc: Crc32::of(&fin.bytes),
            count: fin.count,
        });
        data.put_raw(&fin.bytes);
    };
    for e in entries {
        filter.insert(&e.key);
        builder.push(&e.key, &encode_payload(e));
        if builder.is_full() {
            let full = std::mem::replace(&mut builder, BlockBuilder::new(BLOCK_TARGET_BYTES));
            close_block(&mut data, full);
        }
    }
    if !builder.is_empty() {
        close_block(&mut data, builder);
    }
    let out = write_meta_and_footer(data, entries, &filter, &blocks, MAGIC_V2);
    vfs.append(file, &out)?;
    Ok(())
}

/// Writes a sorted run of entries in the legacy dense-index (v1) layout.
///
/// Kept so compatibility tests can produce v1 files; the engine itself
/// always writes v2. [`SsTable::open`] reads both.
pub fn write_sstable_v1(vfs: &Vfs, file: &str, entries: &[SstEntry]) -> Result<()> {
    ensure_sorted(file, entries)?;
    let mut data = Encoder::new();
    let mut index = Encoder::new();
    index.put_u64(entries.len() as u64);
    for e in entries {
        index.put_bytes(&e.key);
        index.put_u64(data.len() as u64);
        data.put_bytes(&e.key);
        match &e.body {
            Some(body) => {
                data.put_u8(1);
                data.put_u64_fixed(e.timestamp);
                data.put_bytes(body);
            }
            None => {
                data.put_u8(0);
                data.put_u64_fixed(e.timestamp);
                data.put_bytes(&[]);
            }
        }
    }
    let index_bytes = index.into_bytes();
    let index_offset = data.len() as u64;
    let index_crc = Crc32::of(&index_bytes);
    let mut out = data;
    out.put_raw(&index_bytes);
    out.put_u64_fixed(index_offset);
    out.put_u64_fixed(index_bytes.len() as u64);
    out.put_u32_fixed(index_crc);
    out.put_u32_fixed(MAGIC_V1);
    vfs.append(file, out.bytes())?;
    Ok(())
}

/// Sparse-index entry for one data block (v2).
#[derive(Debug)]
struct BlockMeta {
    first_key: Vec<u8>,
    offset: u64,
    len: u64,
    crc: u32,
    count: u64,
}

/// The resident block-format table metadata (shared by v2 and v3).
#[derive(Debug)]
struct BlockMetaTable {
    entry_count: u64,
    min_key: Vec<u8>,
    max_key: Vec<u8>,
    filter: Bloom,
    blocks: Vec<BlockMeta>,
}

#[derive(Debug)]
enum Rep {
    V1 {
        /// `(key, offset)` pairs in key order; offsets validated strictly
        /// increasing and bounded by `data_end` at open.
        index: Vec<(Vec<u8>, u64)>,
        /// End of the data region (== index offset).
        data_end: u64,
    },
    /// Row-major blocks.
    V2(BlockMetaTable),
    /// Column-major blocks.
    V3(BlockMetaTable),
}

/// An open SSTable with its (sparse, for v2) index resident.
#[derive(Debug)]
pub struct SsTable {
    vfs: Vfs,
    file: String,
    size: u64,
    cache: Option<BlockCache>,
    rep: Rep,
}

impl SsTable {
    /// Opens and validates an SSTable file of either format, uncached.
    pub fn open(vfs: Vfs, file: impl Into<String>) -> Result<SsTable> {
        Self::open_impl(vfs, file.into(), None)
    }

    /// Opens with data-block reads going through `cache` (v2 only; v1 has
    /// no blocks to cache).
    pub fn open_with_cache(
        vfs: Vfs,
        file: impl Into<String>,
        cache: BlockCache,
    ) -> Result<SsTable> {
        Self::open_impl(vfs, file.into(), Some(cache))
    }

    fn open_impl(vfs: Vfs, file: String, cache: Option<BlockCache>) -> Result<SsTable> {
        let size = vfs.len(&file)?;
        if size < FOOTER_LEN {
            return Err(NosqlError::Corrupt(format!("{file}: too small")));
        }
        let footer = vfs.read_at(&file, size - FOOTER_LEN, FOOTER_LEN as usize)?;
        let mut f = Decoder::new(&footer);
        let meta_offset = f.get_u64_fixed().map_err(NosqlError::from)?;
        let meta_len = f.get_u64_fixed().map_err(NosqlError::from)?;
        let meta_crc = f.get_u32_fixed().map_err(NosqlError::from)?;
        let magic = f.get_u32_fixed().map_err(NosqlError::from)?;
        if magic != MAGIC_V1 && magic != MAGIC_V2 && magic != MAGIC_V3 {
            return Err(NosqlError::Corrupt(format!("{file}: bad magic")));
        }
        // Checked geometry: garbage footer values must not overflow into a
        // wrapped-around sum that happens to match `size`.
        let expected = meta_offset
            .checked_add(meta_len)
            .and_then(|v| v.checked_add(FOOTER_LEN));
        if expected != Some(size) {
            return Err(NosqlError::Corrupt(format!("{file}: bad footer geometry")));
        }
        let meta_bytes = vfs.read_at(&file, meta_offset, meta_len as usize)?;
        if Crc32::of(&meta_bytes) != meta_crc {
            return Err(NosqlError::Corrupt(format!("{file}: meta checksum")));
        }
        let rep = match magic {
            MAGIC_V1 => Self::parse_v1(&file, &meta_bytes, meta_offset)?,
            MAGIC_V2 => Rep::V2(Self::parse_block_meta(&file, &meta_bytes, meta_offset)?),
            _ => Rep::V3(Self::parse_block_meta(&file, &meta_bytes, meta_offset)?),
        };
        Ok(SsTable {
            vfs,
            file,
            size,
            cache,
            rep,
        })
    }

    fn parse_v1(file: &str, index_bytes: &[u8], data_end: u64) -> Result<Rep> {
        let mut d = Decoder::new(index_bytes);
        let n = d.get_u64().map_err(NosqlError::from)? as usize;
        // Each index entry occupies at least 2 bytes (key length prefix +
        // offset varint); a corrupt count must not drive an unbounded
        // allocation.
        if n > index_bytes.len() / 2 {
            return Err(NosqlError::Corrupt(format!(
                "{file}: implausible index entry count {n}"
            )));
        }
        let mut index = Vec::with_capacity(n);
        for _ in 0..n {
            let key = d.get_bytes().map_err(NosqlError::from)?.to_vec();
            let offset = d.get_u64().map_err(NosqlError::from)?;
            // Offsets must be strictly increasing and stay inside the data
            // region, or the entry-extent arithmetic in `read_entry`
            // underflows on a corrupt index.
            if offset >= data_end {
                return Err(NosqlError::Corrupt(format!(
                    "{file}: index offset {offset} beyond data region ({data_end})"
                )));
            }
            if let Some((prev_key, prev_off)) = index.last() {
                if *prev_off >= offset || *prev_key >= key {
                    return Err(NosqlError::Corrupt(format!(
                        "{file}: index not strictly increasing at offset {offset}"
                    )));
                }
            }
            index.push((key, offset));
        }
        if !d.is_exhausted() {
            return Err(NosqlError::Corrupt(format!(
                "{file}: trailing bytes after index"
            )));
        }
        if n == 0 && data_end != 0 {
            return Err(NosqlError::Corrupt(format!(
                "{file}: data region without index entries"
            )));
        }
        Ok(Rep::V1 { index, data_end })
    }

    fn parse_block_meta(file: &str, meta_bytes: &[u8], data_end: u64) -> Result<BlockMetaTable> {
        let corrupt = |what: &str| NosqlError::Corrupt(format!("{file}: {what}"));
        let mut d = Decoder::new(meta_bytes);
        let entry_count = d.get_u64().map_err(NosqlError::from)?;
        let (min_key, max_key) = if entry_count > 0 {
            let min = d.get_bytes().map_err(NosqlError::from)?.to_vec();
            let max = d.get_bytes().map_err(NosqlError::from)?.to_vec();
            if min > max {
                return Err(corrupt("inverted key fences"));
            }
            (min, max)
        } else {
            (Vec::new(), Vec::new())
        };
        let filter = Bloom::decode(&mut d).map_err(NosqlError::from)?;
        let block_count = d.get_u64().map_err(NosqlError::from)? as usize;
        // A block-meta record is at least 8 bytes; bound the count by what
        // the region can physically hold before reserving.
        if block_count > meta_bytes.len() / 8 {
            return Err(corrupt(&format!("implausible block count {block_count}")));
        }
        let mut blocks = Vec::with_capacity(block_count);
        let mut covered = 0u64;
        let mut entries_seen = 0u64;
        for _ in 0..block_count {
            let first_key = d.get_bytes().map_err(NosqlError::from)?.to_vec();
            let offset = d.get_u64().map_err(NosqlError::from)?;
            let len = d.get_u64().map_err(NosqlError::from)?;
            let crc = d.get_u32_fixed().map_err(NosqlError::from)?;
            let count = d.get_u64().map_err(NosqlError::from)?;
            // Blocks are written back-to-back: each must start where the
            // previous ended, which also proves offsets are monotone and
            // in-bounds.
            if offset != covered {
                return Err(corrupt(&format!("block offset {offset} not contiguous")));
            }
            if count == 0 || len == 0 {
                return Err(corrupt("empty data block"));
            }
            covered = offset
                .checked_add(len)
                .ok_or_else(|| corrupt("block extent overflows"))?;
            if covered > data_end {
                return Err(corrupt("block extends beyond data region"));
            }
            if let Some(prev) = blocks.last() {
                let prev: &BlockMeta = prev;
                if prev.first_key >= first_key {
                    return Err(corrupt("block first keys not strictly increasing"));
                }
            }
            entries_seen = entries_seen
                .checked_add(count)
                .ok_or_else(|| corrupt("entry count overflows"))?;
            blocks.push(BlockMeta {
                first_key,
                offset,
                len,
                crc,
                count,
            });
        }
        if !d.is_exhausted() {
            return Err(corrupt("trailing bytes after block index"));
        }
        if covered != data_end {
            return Err(corrupt("blocks do not cover the data region"));
        }
        if entries_seen != entry_count {
            return Err(corrupt("block counts disagree with entry count"));
        }
        if entry_count > 0 {
            if blocks.is_empty() {
                return Err(corrupt("entries without data blocks"));
            }
            if blocks[0].first_key != min_key {
                return Err(corrupt("min fence disagrees with first block"));
            }
        }
        Ok(BlockMetaTable {
            entry_count,
            min_key,
            max_key,
            filter,
            blocks,
        })
    }

    /// File name.
    pub fn file(&self) -> &str {
        &self.file
    }

    /// Total file size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// On-disk format version (1, 2 or 3).
    pub fn format_version(&self) -> u32 {
        match self.rep {
            Rep::V1 { .. } => 1,
            Rep::V2(_) => 2,
            Rep::V3(_) => 3,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match &self.rep {
            Rep::V1 { index, .. } => index.len(),
            Rep::V2(meta) | Rep::V3(meta) => meta.entry_count as usize,
        }
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads the v1 entry at index position `i`; its extent ends at the
    /// next entry's offset (offsets were validated monotone at open).
    fn read_entry_v1(&self, index: &[(Vec<u8>, u64)], data_end: u64, i: usize) -> Result<SstEntry> {
        let offset = index[i].1;
        let end = index.get(i + 1).map(|(_, o)| *o).unwrap_or(data_end);
        let len = (end - offset) as usize;
        let buf = self.vfs.read_at(&self.file, offset, len)?;
        let mut d = Decoder::new(&buf);
        let key = d.get_bytes()?.to_vec();
        let flag = d.get_u8()?;
        let timestamp = d.get_u64_fixed()?;
        let body = d.get_bytes()?.to_vec();
        if flag > 1 {
            return Err(NosqlError::Corrupt(format!(
                "{}: bad record flag {flag}",
                self.file
            )));
        }
        Ok(SstEntry {
            key,
            body: (flag == 1).then_some(body),
            timestamp,
        })
    }

    /// Fetches one v2 data block: shared cache first, then a CRC-verified
    /// VFS read.
    fn read_block(&self, block: &BlockMeta) -> Result<Arc<Vec<u8>>> {
        if let Some(cache) = &self.cache {
            if let Some(bytes) = cache.get(&self.file, block.offset) {
                return Ok(bytes);
            }
        }
        let raw = self
            .vfs
            .read_at(&self.file, block.offset, block.len as usize)?;
        if Crc32::of(&raw) != block.crc {
            return Err(NosqlError::Corrupt(format!(
                "{}: data block checksum at offset {}",
                self.file, block.offset
            )));
        }
        let raw = Arc::new(raw);
        if let Some(cache) = &self.cache {
            cache.insert(&self.file, block.offset, Arc::clone(&raw));
        }
        Ok(raw)
    }

    /// Point lookup with read-path telemetry; [`SsTable::get`] is the
    /// entry-only shorthand.
    pub fn probe(&self, key: &[u8]) -> Result<Probe> {
        match &self.rep {
            Rep::V1 { index, data_end } => {
                match index.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => Ok(Probe {
                        entry: Some(self.read_entry_v1(index, *data_end, i)?),
                        blocks_read: 1,
                        fence_rejected: false,
                        filter_rejected: false,
                    }),
                    Err(_) => Ok(Probe::absent(false, false)),
                }
            }
            Rep::V2(meta) | Rep::V3(meta) => {
                let stats = sc_obs::enabled();
                if meta.blocks.is_empty()
                    || key < meta.min_key.as_slice()
                    || key > meta.max_key.as_slice()
                {
                    return Ok(Probe::absent(true, false));
                }
                sc_obs::trace::add(sc_obs::trace::Attr::BloomProbes, 1);
                if !meta.filter.may_contain(key) {
                    if stats {
                        crate::obs::nosql().bloom_miss.inc();
                    }
                    return Ok(Probe::absent(false, true));
                }
                // Last block whose first key is <= key; the fence check
                // guarantees at least one candidate.
                let pos = meta
                    .blocks
                    .partition_point(|b| b.first_key.as_slice() <= key);
                let Some(block) = pos.checked_sub(1).map(|i| &meta.blocks[i]) else {
                    return Ok(Probe::absent(true, false));
                };
                let bytes = self.read_block(block)?;
                let entry = self.find_in_block(&bytes, key)?;
                if stats {
                    if entry.is_some() {
                        crate::obs::nosql().bloom_hit.inc();
                    } else {
                        crate::obs::nosql().bloom_false_positive.inc();
                    }
                }
                Ok(Probe {
                    entry,
                    blocks_read: 1,
                    fence_rejected: false,
                    filter_rejected: false,
                })
            }
        }
    }

    /// Searches one CRC-verified data block for `key` (v2: streaming
    /// record walk; v3: decode + binary search over the sorted run).
    fn find_in_block(&self, bytes: &[u8], key: &[u8]) -> Result<Option<SstEntry>> {
        match &self.rep {
            Rep::V2(_) => {
                for record in BlockIter::new(bytes) {
                    let (k, payload) = record.map_err(NosqlError::from)?;
                    if k == key {
                        return Ok(Some(decode_payload(&self.file, k, payload)?));
                    }
                    if k > key {
                        break;
                    }
                }
                Ok(None)
            }
            Rep::V3(_) => {
                let mut entries = colblock::decode_block(&self.file, bytes)?;
                match entries.binary_search_by(|e| e.key.as_slice().cmp(key)) {
                    Ok(i) => Ok(Some(entries.swap_remove(i))),
                    Err(_) => Ok(None),
                }
            }
            Rep::V1 { .. } => unreachable!("v1 has no data blocks"),
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<SstEntry>> {
        Ok(self.probe(key)?.entry)
    }

    /// Full scan in key order (tombstones included).
    pub fn scan(&self) -> Result<Vec<SstEntry>> {
        match &self.rep {
            Rep::V1 { index, data_end } => {
                let mut out = Vec::with_capacity(index.len());
                for i in 0..index.len() {
                    out.push(self.read_entry_v1(index, *data_end, i)?);
                }
                Ok(out)
            }
            Rep::V2(meta) => {
                let mut out = Vec::with_capacity(meta.entry_count as usize);
                for block in &meta.blocks {
                    let bytes = self.read_block(block)?;
                    for record in BlockIter::new(&bytes) {
                        let (k, payload) = record.map_err(NosqlError::from)?;
                        out.push(decode_payload(&self.file, k, payload)?);
                    }
                }
                Ok(out)
            }
            Rep::V3(meta) => {
                let mut out = Vec::with_capacity(meta.entry_count as usize);
                for block in &meta.blocks {
                    let bytes = self.read_block(block)?;
                    out.extend(colblock::decode_block(&self.file, &bytes)?);
                }
                Ok(out)
            }
        }
    }

    /// Full scan decoded straight into rows, reading only the column runs
    /// in `proj` (`None` = all). On v3 tables pruned columns are never
    /// parsed and come back as [`crate::types::CqlValue::Null`]; v1/v2
    /// store rows whole, so the projection only feeds the accounting.
    /// Column-read/skip totals land on the `nosql.read.cols_{read,skipped}`
    /// counters.
    pub(crate) fn scan_rows(
        &self,
        proj: Option<&[usize]>,
    ) -> Result<Vec<(Vec<u8>, Option<Row>, u64)>> {
        let (rows, cols_read, cols_skipped) = match &self.rep {
            Rep::V3(meta) => {
                let mut rows = Vec::with_capacity(meta.entry_count as usize);
                let (mut cols_read, mut cols_skipped) = (0u64, 0u64);
                for block in &meta.blocks {
                    let bytes = self.read_block(block)?;
                    let decoded = colblock::decode_block_rows(&self.file, &bytes, proj)?;
                    rows.extend(decoded.rows);
                    cols_read += decoded.cols_read;
                    cols_skipped += decoded.cols_skipped;
                }
                (rows, cols_read, cols_skipped)
            }
            _ => {
                let mut rows = Vec::new();
                let mut cols_read = 0u64;
                for e in self.scan()? {
                    let row = match e.body {
                        Some(body) => {
                            let mut d = Decoder::new(&body);
                            let (row, _ts) = Row::decode(&mut d).map_err(|_| {
                                NosqlError::Corrupt(format!("{}: undecodable row body", self.file))
                            })?;
                            cols_read += row.values.len() as u64;
                            Some(row)
                        }
                        None => None,
                    };
                    rows.push((e.key, row, e.timestamp));
                }
                (rows, cols_read, 0)
            }
        };
        if sc_obs::enabled() {
            let obs = crate::obs::nosql();
            obs.cols_read.add(cols_read);
            obs.cols_skipped.add(cols_skipped);
        }
        Ok(rows)
    }

    /// Entries whose keys start with `prefix`, in key order.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<SstEntry>> {
        match &self.rep {
            Rep::V1 { index, data_end } => {
                let start = index.partition_point(|(k, _)| k.as_slice() < prefix);
                let mut out = Vec::new();
                for (i, (key, _)) in index.iter().enumerate().skip(start) {
                    if !key.starts_with(prefix) {
                        break;
                    }
                    out.push(self.read_entry_v1(index, *data_end, i)?);
                }
                Ok(out)
            }
            Rep::V2(meta) => {
                // Matching entries can start inside the block before the
                // first block whose first key is >= prefix.
                let start = meta
                    .blocks
                    .partition_point(|b| b.first_key.as_slice() < prefix)
                    .saturating_sub(1);
                let mut out = Vec::new();
                'blocks: for block in &meta.blocks[start.min(meta.blocks.len())..] {
                    let bytes = self.read_block(block)?;
                    for record in BlockIter::new(&bytes) {
                        let (k, payload) = record.map_err(NosqlError::from)?;
                        if k < prefix {
                            continue;
                        }
                        if !k.starts_with(prefix) {
                            break 'blocks;
                        }
                        out.push(decode_payload(&self.file, k, payload)?);
                    }
                }
                Ok(out)
            }
            Rep::V3(meta) => {
                let start = meta
                    .blocks
                    .partition_point(|b| b.first_key.as_slice() < prefix)
                    .saturating_sub(1);
                let mut out = Vec::new();
                'blocks: for block in &meta.blocks[start.min(meta.blocks.len())..] {
                    let bytes = self.read_block(block)?;
                    for entry in colblock::decode_block(&self.file, &bytes)? {
                        if entry.key.as_slice() < prefix {
                            continue;
                        }
                        if !entry.key.starts_with(prefix) {
                            break 'blocks;
                        }
                        out.push(entry);
                    }
                }
                Ok(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries() -> Vec<SstEntry> {
        vec![
            SstEntry {
                key: vec![1],
                body: Some(vec![10, 11]),
                timestamp: 1,
            },
            SstEntry {
                key: vec![2],
                body: None, // tombstone
                timestamp: 2,
            },
            SstEntry {
                key: vec![3, 0],
                body: Some(vec![]),
                timestamp: 3,
            },
        ]
    }

    /// Enough entries to span several 4 KiB blocks.
    fn many_entries(n: u64) -> Vec<SstEntry> {
        (0..n)
            .map(|i| SstEntry {
                key: format!("key-{i:08}").into_bytes(),
                body: if i % 7 == 0 {
                    None
                } else {
                    Some(format!("value-{i}-{}", "x".repeat(80)).into_bytes())
                },
                timestamp: i,
            })
            .collect()
    }

    #[test]
    fn write_open_get_scan() {
        let vfs = Vfs::memory();
        write_sstable(&vfs, "t/sst-1", &entries()).unwrap();
        let sst = SsTable::open(vfs, "t/sst-1").unwrap();
        assert_eq!(sst.format_version(), 3);
        assert_eq!(sst.len(), 3);
        assert_eq!(sst.get(&[1]).unwrap().unwrap().body, Some(vec![10, 11]));
        assert_eq!(sst.get(&[2]).unwrap().unwrap().body, None);
        assert_eq!(sst.get(&[3, 0]).unwrap().unwrap().body, Some(vec![]));
        assert!(sst.get(&[9]).unwrap().is_none());
        assert_eq!(sst.scan().unwrap(), entries());
        assert_eq!(sst.size(), sst.vfs.len("t/sst-1").unwrap());
    }

    #[test]
    fn v1_files_remain_readable() {
        let vfs = Vfs::memory();
        write_sstable_v1(&vfs, "t/legacy", &entries()).unwrap();
        let sst = SsTable::open(vfs, "t/legacy").unwrap();
        assert_eq!(sst.format_version(), 1);
        assert_eq!(sst.len(), 3);
        assert_eq!(sst.get(&[1]).unwrap().unwrap().body, Some(vec![10, 11]));
        assert_eq!(sst.get(&[2]).unwrap().unwrap().body, None);
        assert!(sst.get(&[9]).unwrap().is_none());
        assert_eq!(sst.scan().unwrap(), entries());
        assert_eq!(sst.scan_prefix(&[3]).unwrap().len(), 1);
    }

    #[test]
    fn v2_files_remain_readable() {
        let vfs = Vfs::memory();
        write_sstable_v2(&vfs, "t/v2", &entries()).unwrap();
        let sst = SsTable::open(vfs, "t/v2").unwrap();
        assert_eq!(sst.format_version(), 2);
        assert_eq!(sst.len(), 3);
        assert_eq!(sst.get(&[1]).unwrap().unwrap().body, Some(vec![10, 11]));
        assert_eq!(sst.get(&[2]).unwrap().unwrap().body, None);
        assert!(sst.get(&[9]).unwrap().is_none());
        assert_eq!(sst.scan().unwrap(), entries());
        assert_eq!(sst.scan_prefix(&[3]).unwrap().len(), 1);
    }

    /// Entries whose bodies are canonical row encodings, so v3 blocks take
    /// the columnar layout.
    fn typed_entries(n: u8) -> Vec<SstEntry> {
        use crate::row::Row;
        use crate::types::CqlValue;
        (0..n)
            .map(|i| {
                let row = Row::new(vec![
                    CqlValue::Int(i as i64),
                    CqlValue::Text(format!("station-{}", i % 4)),
                    CqlValue::Int(1000 + i as i64),
                ]);
                let mut enc = Encoder::new();
                row.encode(&mut enc, i as u64);
                SstEntry {
                    key: vec![b'k', i],
                    body: Some(enc.into_bytes()),
                    timestamp: i as u64,
                }
            })
            .collect()
    }

    #[test]
    fn projected_scan_rows_reads_only_requested_columns() {
        use crate::types::CqlValue;
        let vfs = Vfs::memory();
        let es = typed_entries(50);
        write_sstable(&vfs, "t/typed", &es).unwrap();
        let sst = SsTable::open(vfs, "t/typed").unwrap();
        assert_eq!(sst.format_version(), 3);
        let rows = sst.scan_rows(Some(&[2])).unwrap();
        assert_eq!(rows.len(), es.len());
        for (i, (key, row, seq)) in rows.iter().enumerate() {
            assert_eq!(key, &es[i].key);
            assert_eq!(*seq, i as u64);
            let row = row.as_ref().unwrap();
            assert_eq!(row.values[2], CqlValue::Int(1000 + i as i64));
            assert_eq!(row.values[0], CqlValue::Null, "pruned column is Null");
            assert_eq!(row.values[1], CqlValue::Null, "pruned column is Null");
        }
        // Unprojected decode returns every column.
        let full = sst.scan_rows(None).unwrap();
        assert_eq!(
            full[7].1.as_ref().unwrap().values[1],
            CqlValue::Text("station-3".into())
        );
        // A byte-level scan reproduces the input exactly even though the
        // block was stored column-major.
        assert_eq!(sst.scan().unwrap(), es);
    }

    #[test]
    fn scan_rows_on_v2_tables_decodes_whole_rows() {
        use crate::types::CqlValue;
        let vfs = Vfs::memory();
        let es = typed_entries(20);
        write_sstable_v2(&vfs, "t/v2rows", &es).unwrap();
        let sst = SsTable::open(vfs, "t/v2rows").unwrap();
        // v2 stores rows whole: the projection cannot prune reads, but the
        // result must still carry every column.
        let rows = sst.scan_rows(Some(&[2])).unwrap();
        assert_eq!(rows.len(), es.len());
        assert_eq!(rows[3].1.as_ref().unwrap().values[0], CqlValue::Int(3));
    }

    #[test]
    fn multi_block_table_reads_every_key() {
        let vfs = Vfs::memory();
        let es = many_entries(400);
        write_sstable(&vfs, "t/big", &es).unwrap();
        let sst = SsTable::open(vfs, "t/big").unwrap();
        let Rep::V3(meta) = &sst.rep else {
            panic!("expected v3")
        };
        assert!(
            meta.blocks.len() >= 4,
            "400 ~100-byte entries must span several 4 KiB blocks, got {}",
            meta.blocks.len()
        );
        for e in &es {
            assert_eq!(sst.get(&e.key).unwrap().as_ref(), Some(e));
        }
        assert_eq!(sst.scan().unwrap(), es);
        // Prefix scans cross block boundaries.
        let with_prefix = sst.scan_prefix(b"key-0000003").unwrap();
        assert_eq!(with_prefix.len(), 10);
        assert_eq!(sst.scan_prefix(b"key-").unwrap().len(), es.len());
        assert!(sst.scan_prefix(b"zzz").unwrap().is_empty());
    }

    #[test]
    fn fences_and_filter_answer_misses_without_block_reads() {
        let vfs = Vfs::memory();
        let es = many_entries(300);
        write_sstable(&vfs, "t/probe", &es).unwrap();
        let sst = SsTable::open(vfs, "t/probe").unwrap();
        // Outside the fences: zero blocks, no filter consulted.
        let below = sst.probe(b"aaa").unwrap();
        assert!(below.fence_rejected && below.blocks_read == 0);
        let above = sst.probe(b"zzz").unwrap();
        assert!(above.fence_rejected && above.blocks_read == 0);
        // In-range absent keys (appending `x` keeps them under the max key
        // for i < 299): almost all are filter-rejected; any false positive
        // reads exactly one block and still returns nothing.
        let mut fp = 0u64;
        let probes = 299u64;
        for i in 0..probes {
            let probe = sst.probe(format!("key-{i:08}x").as_bytes()).unwrap();
            assert!(probe.entry.is_none() && !probe.fence_rejected);
            if probe.filter_rejected {
                assert_eq!(probe.blocks_read, 0);
            } else {
                assert_eq!(probe.blocks_read, 1);
                fp += 1;
            }
        }
        assert!(
            (fp as f64) / (probes as f64) < 0.02,
            "false-positive rate {fp}/{probes} >= 2%"
        );
        // Present keys read exactly one block.
        let hit = sst.probe(&es[123].key).unwrap();
        assert_eq!(hit.entry.as_ref(), Some(&es[123]));
        assert_eq!(hit.blocks_read, 1);
    }

    #[test]
    fn shared_cache_serves_warm_reads() {
        let vfs = Vfs::memory();
        let es = many_entries(200);
        write_sstable(&vfs, "t/cached", &es).unwrap();
        let cache = BlockCache::new(1024 * 1024);
        let sst = SsTable::open_with_cache(vfs, "t/cached", cache.clone()).unwrap();
        sst.scan().unwrap(); // cold: populates the cache
        let after_cold = cache.stats();
        assert!(after_cold.misses > 0 && after_cold.blocks > 0);
        sst.scan().unwrap(); // warm: every block from cache
        let after_warm = cache.stats();
        assert_eq!(
            after_warm.misses, after_cold.misses,
            "warm scan hit the VFS"
        );
        assert!(after_warm.hits >= after_cold.hits + after_cold.blocks as u64);
        // Point reads are warm too.
        let before = cache.stats();
        assert!(sst.get(&es[57].key).unwrap().is_some());
        assert_eq!(cache.stats().misses, before.misses);
    }

    #[test]
    fn empty_table() {
        let vfs = Vfs::memory();
        write_sstable(&vfs, "t/empty", &[]).unwrap();
        let sst = SsTable::open(vfs, "t/empty").unwrap();
        assert!(sst.is_empty());
        assert!(sst.scan().unwrap().is_empty());
        assert!(sst.get(&[0]).unwrap().is_none());
    }

    #[test]
    fn unsorted_entries_rejected_as_corrupt() {
        let vfs = Vfs::memory();
        let mut es = entries();
        es.swap(0, 2);
        let err = write_sstable(&vfs, "t/bad", &es).unwrap_err();
        assert!(
            matches!(&err, NosqlError::Corrupt(m) if m.contains("out-of-order")),
            "{err:?}"
        );
        // Nothing was written.
        assert!(vfs.list("t/bad").unwrap().is_empty());
    }

    #[test]
    fn duplicate_keys_rejected_as_corrupt() {
        let vfs = Vfs::memory();
        let mut es = entries();
        es[1].key = es[0].key.clone();
        for writer in [write_sstable, write_sstable_v2, write_sstable_v1] {
            let err = writer(&vfs, "t/dup", &es).unwrap_err();
            assert!(
                matches!(&err, NosqlError::Corrupt(m) if m.contains("duplicate")),
                "{err:?}"
            );
        }
    }

    #[test]
    fn corrupt_magic_rejected() {
        let vfs = Vfs::memory();
        write_sstable(&vfs, "t/x", &entries()).unwrap();
        let mut data = vfs.read_all("t/x").unwrap();
        let n = data.len();
        data[n - 1] ^= 0x55;
        vfs.delete("t/x").unwrap();
        vfs.append("t/x", &data).unwrap();
        assert!(matches!(
            SsTable::open(vfs, "t/x"),
            Err(NosqlError::Corrupt(_))
        ));
    }

    #[test]
    fn corrupt_meta_rejected() {
        let vfs = Vfs::memory();
        write_sstable(&vfs, "t/x", &entries()).unwrap();
        let mut data = vfs.read_all("t/x").unwrap();
        let n = data.len();
        data[n - 30] ^= 0xff; // somewhere in the meta region
        vfs.delete("t/x").unwrap();
        vfs.append("t/x", &data).unwrap();
        assert!(matches!(
            SsTable::open(vfs, "t/x"),
            Err(NosqlError::Corrupt(_))
        ));
    }

    #[test]
    fn corrupt_data_block_rejected_at_read() {
        let vfs = Vfs::memory();
        let es = many_entries(100);
        write_sstable(&vfs, "t/x", &es).unwrap();
        let mut data = vfs.read_all("t/x").unwrap();
        data[40] ^= 0x01; // inside the first data block
        vfs.delete("t/x").unwrap();
        vfs.append("t/x", &data).unwrap();
        // Meta is intact, so open succeeds; the block CRC catches the flip
        // the moment the block is read.
        let sst = SsTable::open(vfs, "t/x").unwrap();
        assert!(matches!(sst.scan(), Err(NosqlError::Corrupt(_))));
        assert!(matches!(sst.get(&es[0].key), Err(NosqlError::Corrupt(_))));
    }

    #[test]
    fn truncated_file_rejected() {
        let vfs = Vfs::memory();
        vfs.append("tiny", &[1, 2, 3]).unwrap();
        assert!(matches!(
            SsTable::open(vfs, "tiny"),
            Err(NosqlError::Corrupt(_))
        ));
    }
}
