//! The SSTable manifest: atomic publication of flush and compaction results.
//!
//! An SSTable file only *exists*, as far as the engine is concerned, once a
//! manifest record names it. Flush writes the SSTable bytes first and
//! appends the add record second, so a crash mid-flush leaves an orphan
//! file that recovery deletes — never a half-table that recovery opens.
//! Compaction commits its swap (one add + the replaced files' removes) as a
//! single append before deleting anything, so the transition is atomic:
//! recovery sees either the old run or the merged table, never both.
//!
//! Records use the commit log's framing — `[len: u32][crc: u32][payload]` —
//! and the same torn-tail rule: replay stops at the first bad frame, and
//! [`Manifest::repair`] physically truncates it away.
//!
//! The per-table file lists preserve **age order**, which is not id order:
//! a tiered merge splices its output into the middle of the age sequence
//! (the merged data is older than the tables after the run). Each edit
//! therefore inserts its adds at the position of the first file it removes,
//! reproducing the in-memory splice exactly across restarts.

use crate::error::{NosqlError, Result};
use sc_encoding::{Crc32, Decoder, Encoder};
use sc_storage::Vfs;
use std::collections::BTreeMap;

/// The manifest's file name in the VFS namespace.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// One atomic change to the live SSTable set. Entries are
/// `(qualified table name, file name)` pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ManifestEdit {
    /// Files published by this edit, in age order.
    pub adds: Vec<(String, String)>,
    /// Files retired by this edit.
    pub removes: Vec<(String, String)>,
}

impl ManifestEdit {
    /// An edit publishing one freshly flushed SSTable.
    pub fn add(table: impl Into<String>, file: impl Into<String>) -> ManifestEdit {
        ManifestEdit {
            adds: vec![(table.into(), file.into())],
            removes: Vec::new(),
        }
    }

    /// Whether the edit changes nothing.
    pub fn is_empty(&self) -> bool {
        self.adds.is_empty() && self.removes.is_empty()
    }
}

/// Append/replay handle for one engine's manifest. Cheap to clone.
#[derive(Debug, Clone)]
pub struct Manifest {
    vfs: Vfs,
}

impl Manifest {
    /// Opens (or lazily creates) the manifest over `vfs`.
    pub fn open(vfs: Vfs) -> Manifest {
        Manifest { vfs }
    }

    /// Whether any manifest bytes exist yet.
    pub fn exists(&self) -> bool {
        self.vfs.exists(MANIFEST_FILE)
    }

    /// Creates an empty manifest (one empty record) if none exists. Fresh
    /// engines call this at open so that recovery can tell "this disk never
    /// had a manifest" (pre-manifest layout, adopt unlisted SSTables) apart
    /// from "the first flush crashed before publishing" (orphan, delete).
    pub fn ensure_exists(&self) -> Result<()> {
        if self.exists() {
            return Ok(());
        }
        self.commit_raw(&ManifestEdit::default())
    }

    /// Appends one edit as a single CRC-framed record (the atomic publish).
    pub fn commit(&self, edit: &ManifestEdit) -> Result<()> {
        if edit.is_empty() {
            return Ok(());
        }
        self.commit_raw(edit)
    }

    fn commit_raw(&self, edit: &ManifestEdit) -> Result<()> {
        let mut payload = Encoder::new();
        payload.put_u64(edit.adds.len() as u64);
        for (table, file) in &edit.adds {
            payload.put_str(table).put_str(file);
        }
        payload.put_u64(edit.removes.len() as u64);
        for (table, file) in &edit.removes {
            payload.put_str(table).put_str(file);
        }
        let payload = payload.into_bytes();
        let mut frame = Encoder::new();
        frame.put_u32_fixed(payload.len() as u32);
        frame.put_u32_fixed(Crc32::of(&payload));
        frame.put_raw(&payload);
        self.vfs.append(MANIFEST_FILE, frame.bytes())?;
        Ok(())
    }

    /// Replays every intact record into the live per-table file lists (in
    /// age order). Returns the lists plus the byte length of the valid
    /// prefix; a torn or corrupt tail ends the replay without error.
    pub fn load(&self) -> Result<(BTreeMap<String, Vec<String>>, u64)> {
        let data = match self.vfs.read_all(MANIFEST_FILE) {
            Ok(d) => d,
            Err(sc_storage::StorageError::NotFound(_)) => return Ok((BTreeMap::new(), 0)),
            Err(e) => return Err(e.into()),
        };
        let mut tables: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut dec = Decoder::new(&data);
        let mut good_len = 0u64;
        while dec.remaining() >= 8 {
            let len = dec.get_u32_fixed()? as usize;
            let crc = dec.get_u32_fixed()?;
            if dec.remaining() < len {
                break; // torn tail
            }
            let payload = dec.get_raw(len)?;
            if Crc32::of(payload) != crc {
                break; // corrupt tail
            }
            let edit = Self::decode_edit(payload)?;
            Self::apply(&mut tables, &edit);
            good_len = (data.len() - dec.remaining()) as u64;
        }
        Ok((tables, good_len))
    }

    /// [`Manifest::load`], then truncates the torn tail (if any) off the
    /// file so post-recovery commits never land beyond a tear.
    pub fn repair(&self) -> Result<BTreeMap<String, Vec<String>>> {
        let (tables, good_len) = self.load()?;
        if self.vfs.exists(MANIFEST_FILE) && self.vfs.len(MANIFEST_FILE)? > good_len {
            self.vfs.truncate(MANIFEST_FILE, good_len)?;
        }
        Ok(tables)
    }

    fn decode_edit(payload: &[u8]) -> Result<ManifestEdit> {
        let mut p = Decoder::new(payload);
        let mut edit = ManifestEdit::default();
        let n_adds = p.get_u64().map_err(NosqlError::from)?;
        for _ in 0..n_adds {
            let table = p.get_str()?.to_string();
            let file = p.get_str()?.to_string();
            edit.adds.push((table, file));
        }
        let n_removes = p.get_u64()?;
        for _ in 0..n_removes {
            let table = p.get_str()?.to_string();
            let file = p.get_str()?.to_string();
            edit.removes.push((table, file));
        }
        Ok(edit)
    }

    /// Applies one edit to the live lists, reproducing the engine's splice:
    /// adds land at the position of the table's first removed file (at the
    /// end when the edit removes nothing, i.e. a flush).
    fn apply(tables: &mut BTreeMap<String, Vec<String>>, edit: &ManifestEdit) {
        let mut touched: Vec<&str> = edit
            .adds
            .iter()
            .chain(&edit.removes)
            .map(|(t, _)| t.as_str())
            .collect();
        touched.dedup();
        for table in touched {
            let files = tables.entry(table.to_string()).or_default();
            let removed: Vec<&str> = edit
                .removes
                .iter()
                .filter(|(t, _)| t == table)
                .map(|(_, f)| f.as_str())
                .collect();
            let pos = files
                .iter()
                .position(|f| removed.contains(&f.as_str()))
                .unwrap_or(files.len());
            files.retain(|f| !removed.contains(&f.as_str()));
            let pos = pos.min(files.len());
            let adds = edit
                .adds
                .iter()
                .filter(|(t, _)| t == table)
                .map(|(_, f)| f.clone());
            files.splice(pos..pos, adds);
        }
        tables.retain(|_, files| !files.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live(m: &Manifest) -> BTreeMap<String, Vec<String>> {
        m.load().unwrap().0
    }

    #[test]
    fn flush_edits_append_in_age_order() {
        let m = Manifest::open(Vfs::memory());
        m.commit(&ManifestEdit::add("ks.t", "ks/t/sst-000000"))
            .unwrap();
        m.commit(&ManifestEdit::add("ks.t", "ks/t/sst-000001"))
            .unwrap();
        m.commit(&ManifestEdit::add("ks.u", "ks/u/sst-000000"))
            .unwrap();
        let tables = live(&m);
        assert_eq!(tables["ks.t"], vec!["ks/t/sst-000000", "ks/t/sst-000001"]);
        assert_eq!(tables["ks.u"], vec!["ks/u/sst-000000"]);
    }

    #[test]
    fn swap_edit_splices_at_the_run_position() {
        let m = Manifest::open(Vfs::memory());
        for i in 0..4 {
            m.commit(&ManifestEdit::add("ks.t", format!("ks/t/sst-{i:06}")))
                .unwrap();
        }
        // Merge the middle run [1..=2] into sst-000004: the merged file
        // must sit *between* sst-000000 and sst-000003 in age order.
        m.commit(&ManifestEdit {
            adds: vec![("ks.t".into(), "ks/t/sst-000004".into())],
            removes: vec![
                ("ks.t".into(), "ks/t/sst-000001".into()),
                ("ks.t".into(), "ks/t/sst-000002".into()),
            ],
        })
        .unwrap();
        assert_eq!(
            live(&m)["ks.t"],
            vec!["ks/t/sst-000000", "ks/t/sst-000004", "ks/t/sst-000003"]
        );
    }

    #[test]
    fn remove_only_edit_can_empty_a_table() {
        let m = Manifest::open(Vfs::memory());
        m.commit(&ManifestEdit::add("ks.t", "ks/t/sst-000000"))
            .unwrap();
        m.commit(&ManifestEdit {
            adds: vec![],
            removes: vec![("ks.t".into(), "ks/t/sst-000000".into())],
        })
        .unwrap();
        assert!(live(&m).is_empty());
    }

    #[test]
    fn torn_tail_is_dropped_and_repaired_away() {
        let vfs = Vfs::memory();
        let m = Manifest::open(vfs.clone());
        m.commit(&ManifestEdit::add("ks.t", "ks/t/sst-000000"))
            .unwrap();
        let good = vfs.len(MANIFEST_FILE).unwrap();
        m.commit(&ManifestEdit::add("ks.t", "ks/t/sst-000001"))
            .unwrap();
        vfs.truncate(MANIFEST_FILE, vfs.len(MANIFEST_FILE).unwrap() - 2)
            .unwrap();
        let tables = m.repair().unwrap();
        assert_eq!(tables["ks.t"], vec!["ks/t/sst-000000"]);
        assert_eq!(vfs.len(MANIFEST_FILE).unwrap(), good, "tail truncated");
        // A post-repair commit replays cleanly.
        m.commit(&ManifestEdit::add("ks.t", "ks/t/sst-000002"))
            .unwrap();
        assert_eq!(live(&m)["ks.t"], vec!["ks/t/sst-000000", "ks/t/sst-000002"]);
    }

    #[test]
    fn missing_manifest_is_empty() {
        let m = Manifest::open(Vfs::memory());
        assert!(!m.exists());
        assert!(live(&m).is_empty());
        assert!(m.repair().unwrap().is_empty());
    }

    #[test]
    fn empty_edit_writes_nothing() {
        let vfs = Vfs::memory();
        let m = Manifest::open(vfs.clone());
        m.commit(&ManifestEdit::default()).unwrap();
        assert!(!vfs.exists(MANIFEST_FILE));
    }
}
