//! CQL value types.
//!
//! The paper's Table 1 schema needs exactly: `int`, `text`, `boolean` and
//! `set<int>`. Values encode to the byte formats the memtable/SSTable layer
//! stores; the encodings carry real per-cell metadata (type tag, and for
//! sets a per-element header) so measured sizes reflect Cassandra-style
//! overheads structurally.

use sc_encoding::{DecodeError, Decoder, Encoder};
use std::collections::BTreeSet;
use std::fmt;

/// A column's declared type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CqlType {
    /// 64-bit signed integer (covers the paper's `int`).
    Int,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Boolean,
    /// A set of integers — the collection type that stores node→cell id
    /// sets in one cell.
    IntSet,
}

impl CqlType {
    /// Parses a CQL type name.
    pub fn parse(s: &str) -> Option<CqlType> {
        let lower = s.trim().to_ascii_lowercase();
        match lower.as_str() {
            "int" | "bigint" => Some(CqlType::Int),
            "text" | "varchar" => Some(CqlType::Text),
            "boolean" | "bool" => Some(CqlType::Boolean),
            _ if lower.replace(' ', "") == "set<int>" => Some(CqlType::IntSet),
            _ => None,
        }
    }

    /// CQL name of the type.
    pub fn name(self) -> &'static str {
        match self {
            CqlType::Int => "int",
            CqlType::Text => "text",
            CqlType::Boolean => "boolean",
            CqlType::IntSet => "set<int>",
        }
    }
}

impl fmt::Display for CqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CqlValue {
    /// Absent / deleted value.
    Null,
    /// Integer.
    Int(i64),
    /// String.
    Text(String),
    /// Boolean.
    Boolean(bool),
    /// Integer set (ordered for deterministic encoding).
    IntSet(BTreeSet<i64>),
}

impl CqlValue {
    /// Convenience constructor for a set from any iterator.
    pub fn int_set(ids: impl IntoIterator<Item = i64>) -> CqlValue {
        CqlValue::IntSet(ids.into_iter().collect())
    }

    /// Whether the value's runtime type matches `ty` (`Null` matches all).
    pub fn matches(&self, ty: CqlType) -> bool {
        matches!(
            (self, ty),
            (CqlValue::Null, _)
                | (CqlValue::Int(_), CqlType::Int)
                | (CqlValue::Text(_), CqlType::Text)
                | (CqlValue::Boolean(_), CqlType::Boolean)
                | (CqlValue::IntSet(_), CqlType::IntSet)
        )
    }

    /// Name of the value's runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            CqlValue::Null => "null",
            CqlValue::Int(_) => "int",
            CqlValue::Text(_) => "text",
            CqlValue::Boolean(_) => "boolean",
            CqlValue::IntSet(_) => "set<int>",
        }
    }

    /// The integer, if this is an [`CqlValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            CqlValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is a [`CqlValue::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            CqlValue::Text(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean, if this is a [`CqlValue::Boolean`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            CqlValue::Boolean(v) => Some(*v),
            _ => None,
        }
    }

    /// The set, if this is an [`CqlValue::IntSet`].
    pub fn as_int_set(&self) -> Option<&BTreeSet<i64>> {
        match self {
            CqlValue::IntSet(v) => Some(v),
            _ => None,
        }
    }

    /// Whether this is [`CqlValue::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, CqlValue::Null)
    }

    /// Encodes the value (tagged).
    pub fn encode(&self, enc: &mut Encoder) {
        match self {
            CqlValue::Null => {
                enc.put_u8(0);
            }
            CqlValue::Int(v) => {
                enc.put_u8(1).put_i64(*v);
            }
            CqlValue::Text(v) => {
                enc.put_u8(2).put_str(v);
            }
            CqlValue::Boolean(v) => {
                enc.put_u8(3).put_bool(*v);
            }
            CqlValue::IntSet(set) => {
                enc.put_u8(4).put_u64(set.len() as u64);
                for &v in set {
                    // Per-element header (2 bytes: flags + liveness marker)
                    // mirrors Cassandra's per-element collection cells.
                    enc.put_u8(0).put_u8(1).put_i64(v);
                }
            }
        }
    }

    /// Decodes a value written by [`CqlValue::encode`].
    pub fn decode(dec: &mut Decoder<'_>) -> Result<CqlValue, DecodeError> {
        match dec.get_u8()? {
            0 => Ok(CqlValue::Null),
            1 => Ok(CqlValue::Int(dec.get_i64()?)),
            2 => Ok(CqlValue::Text(dec.get_str()?.to_string())),
            3 => Ok(CqlValue::Boolean(dec.get_bool()?)),
            4 => {
                let n = dec.get_u64()? as usize;
                let mut set = BTreeSet::new();
                for _ in 0..n {
                    let _flags = dec.get_u8()?;
                    let _live = dec.get_u8()?;
                    set.insert(dec.get_i64()?);
                }
                Ok(CqlValue::IntSet(set))
            }
            tag => Err(DecodeError::BadTag {
                tag,
                context: "CqlValue",
            }),
        }
    }

    /// Order-preserving key encoding (used for partition keys so the
    /// memtable/SSTable sort order equals value order).
    pub fn encode_key(&self) -> Vec<u8> {
        match self {
            CqlValue::Int(v) => {
                // Flip the sign bit so byte order == numeric order.
                let biased = (*v as u64) ^ (1u64 << 63);
                biased.to_be_bytes().to_vec()
            }
            CqlValue::Text(s) => s.as_bytes().to_vec(),
            CqlValue::Boolean(b) => vec![*b as u8],
            CqlValue::Null => vec![],
            CqlValue::IntSet(_) => {
                // Sets cannot be partition keys; the schema layer rejects
                // this before we ever get here.
                unreachable!("set<int> cannot be a partition key")
            }
        }
    }

    /// Total order across all values, used by `ORDER BY` and for
    /// deterministic `GROUP BY` output: `null` sorts first, then values of
    /// the same type compare naturally, then mixed types compare by a
    /// fixed type rank (int < text < boolean < set). Same-typed columns —
    /// the only thing the schema layer admits — never hit the rank case.
    pub fn cmp_sort(&self, other: &CqlValue) -> std::cmp::Ordering {
        fn rank(v: &CqlValue) -> u8 {
            match v {
                CqlValue::Null => 0,
                CqlValue::Int(_) => 1,
                CqlValue::Text(_) => 2,
                CqlValue::Boolean(_) => 3,
                CqlValue::IntSet(_) => 4,
            }
        }
        match (self, other) {
            (CqlValue::Int(a), CqlValue::Int(b)) => a.cmp(b),
            (CqlValue::Text(a), CqlValue::Text(b)) => a.cmp(b),
            (CqlValue::Boolean(a), CqlValue::Boolean(b)) => a.cmp(b),
            (CqlValue::IntSet(a), CqlValue::IntSet(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }

    /// CQL literal form (used when rendering statements, e.g. Figure 3).
    pub fn to_cql_literal(&self) -> String {
        match self {
            CqlValue::Null => "null".to_string(),
            CqlValue::Int(v) => v.to_string(),
            CqlValue::Text(s) => format!("'{}'", s.replace('\'', "''")),
            CqlValue::Boolean(b) => b.to_string(),
            CqlValue::IntSet(set) => {
                let items: Vec<String> = set.iter().map(i64::to_string).collect();
                format!("{{{}}}", items.join(", "))
            }
        }
    }
}

impl fmt::Display for CqlValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_cql_literal())
    }
}

/// A failed typed extraction from a [`CqlValue`] (the `TryFrom` impls
/// below). [`crate::QueryRow`] attaches the column name and converts this
/// into [`crate::NosqlError::TypeMismatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CqlTypeError {
    /// The Rust-side type that was requested.
    pub expected: &'static str,
    /// The CQL type actually held.
    pub found: &'static str,
}

impl fmt::Display for CqlTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected {}, found {}", self.expected, self.found)
    }
}

impl std::error::Error for CqlTypeError {}

impl CqlTypeError {
    fn new(expected: &'static str, found: &CqlValue) -> CqlTypeError {
        CqlTypeError {
            expected,
            found: found.type_name(),
        }
    }
}

impl TryFrom<&CqlValue> for i64 {
    type Error = CqlTypeError;

    fn try_from(v: &CqlValue) -> Result<i64, CqlTypeError> {
        v.as_int().ok_or_else(|| CqlTypeError::new("int", v))
    }
}

/// `Null` maps to `None`; any non-null, non-int value is an error (this is
/// the nullable-int extraction, not a lenient one).
impl TryFrom<&CqlValue> for Option<i64> {
    type Error = CqlTypeError;

    fn try_from(v: &CqlValue) -> Result<Option<i64>, CqlTypeError> {
        match v {
            CqlValue::Null => Ok(None),
            other => i64::try_from(other).map(Some),
        }
    }
}

impl<'a> TryFrom<&'a CqlValue> for &'a str {
    type Error = CqlTypeError;

    fn try_from(v: &'a CqlValue) -> Result<&'a str, CqlTypeError> {
        v.as_text().ok_or_else(|| CqlTypeError::new("text", v))
    }
}

impl TryFrom<&CqlValue> for String {
    type Error = CqlTypeError;

    fn try_from(v: &CqlValue) -> Result<String, CqlTypeError> {
        <&str>::try_from(v).map(str::to_string)
    }
}

impl TryFrom<&CqlValue> for bool {
    type Error = CqlTypeError;

    fn try_from(v: &CqlValue) -> Result<bool, CqlTypeError> {
        v.as_bool().ok_or_else(|| CqlTypeError::new("boolean", v))
    }
}

impl<'a> TryFrom<&'a CqlValue> for &'a BTreeSet<i64> {
    type Error = CqlTypeError;

    fn try_from(v: &'a CqlValue) -> Result<&'a BTreeSet<i64>, CqlTypeError> {
        v.as_int_set()
            .ok_or_else(|| CqlTypeError::new("set<int>", v))
    }
}

impl TryFrom<&CqlValue> for BTreeSet<i64> {
    type Error = CqlTypeError;

    fn try_from(v: &CqlValue) -> Result<BTreeSet<i64>, CqlTypeError> {
        <&BTreeSet<i64>>::try_from(v).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_encoding::Rng;

    #[test]
    fn type_parsing() {
        assert_eq!(CqlType::parse("int"), Some(CqlType::Int));
        assert_eq!(CqlType::parse("TEXT"), Some(CqlType::Text));
        assert_eq!(CqlType::parse("boolean"), Some(CqlType::Boolean));
        assert_eq!(CqlType::parse("set<int>"), Some(CqlType::IntSet));
        assert_eq!(CqlType::parse("set< int >"), Some(CqlType::IntSet));
        assert_eq!(CqlType::parse("blob"), None);
    }

    #[test]
    fn value_type_matching() {
        assert!(CqlValue::Int(1).matches(CqlType::Int));
        assert!(!CqlValue::Int(1).matches(CqlType::Text));
        assert!(CqlValue::Null.matches(CqlType::IntSet));
        assert!(CqlValue::int_set([1, 2]).matches(CqlType::IntSet));
    }

    #[test]
    fn literal_rendering() {
        assert_eq!(CqlValue::Int(-5).to_cql_literal(), "-5");
        assert_eq!(
            CqlValue::Text("Fenian St".into()).to_cql_literal(),
            "'Fenian St'"
        );
        assert_eq!(
            CqlValue::Text("O'Connell".into()).to_cql_literal(),
            "'O''Connell'"
        );
        assert_eq!(CqlValue::int_set([3, 1, 2]).to_cql_literal(), "{1, 2, 3}");
        assert_eq!(CqlValue::Null.to_cql_literal(), "null");
        assert_eq!(CqlValue::Boolean(true).to_cql_literal(), "true");
    }

    #[test]
    fn key_encoding_orders_ints_numerically() {
        let vals = [-100i64, -1, 0, 1, 99, i64::MIN, i64::MAX];
        let mut sorted = vals.to_vec();
        sorted.sort_unstable();
        let mut keys: Vec<(Vec<u8>, i64)> = vals
            .iter()
            .map(|&v| (CqlValue::Int(v).encode_key(), v))
            .collect();
        keys.sort();
        let by_key: Vec<i64> = keys.into_iter().map(|(_, v)| v).collect();
        assert_eq!(by_key, sorted);
    }

    // Deterministic randomized sweeps (seeded xorshift, no proptest — the
    // build is offline).

    fn random_value(rng: &mut Rng) -> CqlValue {
        match rng.gen_range(5) {
            0 => CqlValue::Null,
            1 => CqlValue::Int(rng.gen_i64()),
            2 => CqlValue::Text(rng.gen_ascii(24)),
            3 => CqlValue::Boolean(rng.gen_range(2) == 1),
            _ => CqlValue::IntSet((0..rng.gen_range(16)).map(|_| rng.gen_i64()).collect()),
        }
    }

    #[test]
    fn encode_roundtrip_random() {
        let mut rng = Rng::new(0xCAFE);
        for _ in 0..1024 {
            let v = random_value(&mut rng);
            let mut enc = Encoder::new();
            v.encode(&mut enc);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(CqlValue::decode(&mut dec).unwrap(), v);
            assert!(dec.is_exhausted());
        }
    }

    #[test]
    fn int_key_order_is_numeric() {
        let mut rng = Rng::new(0xCAFF);
        for _ in 0..2048 {
            let (a, b) = (rng.gen_i64(), rng.gen_i64());
            let ka = CqlValue::Int(a).encode_key();
            let kb = CqlValue::Int(b).encode_key();
            assert_eq!(a.cmp(&b), ka.cmp(&kb));
        }
    }
}
