//! Model checking: random operation sequences against an in-memory oracle,
//! across flushes, compactions and recovery.
//!
//! Deterministic randomized sweeps (seeded xorshift — the build is offline,
//! so no proptest): each case draws a random op sequence and replays it
//! against both the engine and a `HashMap` oracle.

use sc_encoding::Rng;
use sc_nosql::table::TableOptions;
use sc_nosql::{CqlValue, Db, OpenOptions};
use sc_storage::Vfs;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert { id: i64, v: i64 },
    Update { id: i64, v: i64 },
    Delete { id: i64 },
    Flush,
    Compact,
    Recover,
}

/// Weighted random op: inserts 5, updates 3, deletes 2, flush/compact/recover
/// 1 each (matching the old proptest weights).
fn random_op(rng: &mut Rng) -> Op {
    match rng.gen_range(13) {
        0..=4 => Op::Insert {
            id: rng.gen_range(40) as i64,
            v: rng.gen_i64(),
        },
        5..=7 => Op::Update {
            id: rng.gen_range(40) as i64,
            v: rng.gen_i64(),
        },
        8..=9 => Op::Delete {
            id: rng.gen_range(40) as i64,
        },
        10 => Op::Flush,
        11 => Op::Compact,
        _ => Op::Recover,
    }
}

fn tiny_options() -> TableOptions {
    TableOptions {
        memtable_flush_bytes: 512, // force frequent flushes
        compaction_threshold: 3,
    }
}

fn fresh(vfs: &Vfs) -> Db {
    let mut db = Db::open(
        OpenOptions::default()
            .vfs(vfs.clone())
            .table_options(tiny_options()),
    )
    .unwrap();
    db.execute_cql("CREATE KEYSPACE m").unwrap();
    db.execute_cql("CREATE TABLE m.t (id int, v int, PRIMARY KEY (id))")
        .unwrap();
    db
}

#[test]
fn engine_agrees_with_oracle() {
    let mut rng = Rng::new(0x4E0A);
    for case in 0..48 {
        let ops: Vec<Op> = (0..rng.gen_range(60))
            .map(|_| random_op(&mut rng))
            .collect();
        let vfs = Vfs::memory();
        let mut db = fresh(&vfs);
        let mut oracle: HashMap<i64, i64> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert { id, v } | Op::Update { id, v } => {
                    db.execute_cql(&format!("INSERT INTO m.t (id, v) VALUES ({id}, {v})"))
                        .unwrap();
                    oracle.insert(id, v);
                }
                Op::Delete { id } => {
                    db.execute_cql(&format!("DELETE FROM m.t WHERE id = {id}"))
                        .unwrap();
                    oracle.remove(&id);
                }
                Op::Flush => db.flush_all().unwrap(),
                Op::Compact => db.compact_all().unwrap(),
                Op::Recover => {
                    // Drop the engine and rebuild it from disk state.
                    drop(db);
                    db = Db::open(
                        OpenOptions::default()
                            .vfs(vfs.clone())
                            .table_options(tiny_options())
                            .recover(true),
                    )
                    .unwrap();
                }
            }
            // Spot-check a couple of keys each step.
            for probe in [0i64, 17, 39] {
                let r = db
                    .execute_cql(&format!("SELECT v FROM m.t WHERE id = {probe}"))
                    .unwrap();
                let got = r.first().map(|row| row[0].clone());
                let want = oracle.get(&probe).map(|v| CqlValue::Int(*v));
                assert_eq!(got, want, "case {case}: probe {probe} diverged");
            }
        }
        // Final full-scan equivalence.
        let r = db.execute_cql("SELECT id, v FROM m.t").unwrap();
        let mut got: Vec<(i64, i64)> = r
            .iter()
            .map(|row| (row.get_int("id").unwrap(), row.get_int("v").unwrap()))
            .collect();
        got.sort_unstable();
        let mut want: Vec<(i64, i64)> = oracle.into_iter().collect();
        want.sort_unstable();
        assert_eq!(got, want, "case {case}");
    }
}

#[test]
fn indexed_queries_agree_with_oracle() {
    let mut rng = Rng::new(0x4E0B);
    for case in 0..48 {
        let ops: Vec<(i64, i64)> = (0..rng.gen_range(60))
            .map(|_| (rng.gen_range(30) as i64, rng.gen_range(5) as i64))
            .collect();
        let flush_every = 1 + rng.gen_range(9) as usize;
        let vfs = Vfs::memory();
        let mut db = Db::open(
            OpenOptions::default()
                .vfs(vfs)
                .table_options(tiny_options()),
        )
        .unwrap();
        db.execute_cql("CREATE KEYSPACE m").unwrap();
        db.execute_cql("CREATE TABLE m.t (id int, tag int, PRIMARY KEY (id))")
            .unwrap();
        db.execute_cql("CREATE INDEX ON m.t (tag)").unwrap();
        let mut oracle: HashMap<i64, i64> = HashMap::new();
        for (i, (id, tag)) in ops.iter().enumerate() {
            db.execute_cql(&format!("INSERT INTO m.t (id, tag) VALUES ({id}, {tag})"))
                .unwrap();
            oracle.insert(*id, *tag);
            if i % flush_every == 0 {
                db.flush_all().unwrap();
            }
        }
        for tag in 0..5i64 {
            let r = db
                .execute_cql(&format!("SELECT id FROM m.t WHERE tag = {tag}"))
                .unwrap();
            let mut got: Vec<i64> = r.iter().map(|row| row.get_int("id").unwrap()).collect();
            got.sort_unstable();
            let mut want: Vec<i64> = oracle
                .iter()
                .filter(|(_, t)| **t == tag)
                .map(|(id, _)| *id)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "case {case}: tag {tag} diverged");
        }
    }
}
