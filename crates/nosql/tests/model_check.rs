//! Model checking: random operation sequences against an in-memory oracle,
//! across flushes, compactions and recovery.

use proptest::prelude::*;
use sc_nosql::table::TableOptions;
use sc_nosql::{CqlValue, Db, DbOptions};
use sc_storage::Vfs;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert { id: i64, v: i64 },
    Update { id: i64, v: i64 },
    Delete { id: i64 },
    Flush,
    Compact,
    Recover,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0i64..40, any::<i64>()).prop_map(|(id, v)| Op::Insert { id, v }),
        3 => (0i64..40, any::<i64>()).prop_map(|(id, v)| Op::Update { id, v }),
        2 => (0i64..40).prop_map(|id| Op::Delete { id }),
        1 => Just(Op::Flush),
        1 => Just(Op::Compact),
        1 => Just(Op::Recover),
    ]
}

fn tiny_options() -> DbOptions {
    DbOptions {
        table: TableOptions {
            memtable_flush_bytes: 512, // force frequent flushes
            compaction_threshold: 3,
        },
    }
}

fn fresh(vfs: &Vfs) -> Db {
    let mut db = Db::with_options(vfs.clone(), tiny_options());
    db.execute_cql("CREATE KEYSPACE m").unwrap();
    db.execute_cql("CREATE TABLE m.t (id int, v int, PRIMARY KEY (id))")
        .unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_agrees_with_oracle(ops in proptest::collection::vec(arb_op(), 0..60)) {
        let vfs = Vfs::memory();
        let mut db = fresh(&vfs);
        let mut oracle: HashMap<i64, i64> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert { id, v } | Op::Update { id, v } => {
                    db.execute_cql(&format!(
                        "INSERT INTO m.t (id, v) VALUES ({id}, {v})"
                    ))
                    .unwrap();
                    oracle.insert(id, v);
                }
                Op::Delete { id } => {
                    db.execute_cql(&format!("DELETE FROM m.t WHERE id = {id}"))
                        .unwrap();
                    oracle.remove(&id);
                }
                Op::Flush => db.flush_all().unwrap(),
                Op::Compact => db.compact_all().unwrap(),
                Op::Recover => {
                    // Drop the engine and rebuild it from disk state.
                    drop(db);
                    db = Db::recover(vfs.clone(), tiny_options()).unwrap();
                }
            }
            // Spot-check a couple of keys each step.
            for probe in [0i64, 17, 39] {
                let r = db
                    .execute_cql(&format!("SELECT v FROM m.t WHERE id = {probe}"))
                    .unwrap();
                let got = r.rows.first().map(|row| row[0].clone());
                let want = oracle.get(&probe).map(|v| CqlValue::Int(*v));
                prop_assert_eq!(got, want, "probe {} diverged", probe);
            }
        }
        // Final full-scan equivalence.
        let r = db.execute_cql("SELECT id, v FROM m.t").unwrap();
        let mut got: Vec<(i64, i64)> = r
            .rows
            .iter()
            .map(|row| (row[0].as_int().unwrap(), row[1].as_int().unwrap()))
            .collect();
        got.sort_unstable();
        let mut want: Vec<(i64, i64)> = oracle.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn indexed_queries_agree_with_oracle(
        ops in proptest::collection::vec((0i64..30, 0i64..5), 0..60),
        flush_every in 1usize..10,
    ) {
        let vfs = Vfs::memory();
        let mut db = Db::with_options(vfs, tiny_options());
        db.execute_cql("CREATE KEYSPACE m").unwrap();
        db.execute_cql("CREATE TABLE m.t (id int, tag int, PRIMARY KEY (id))")
            .unwrap();
        db.execute_cql("CREATE INDEX ON m.t (tag)").unwrap();
        let mut oracle: HashMap<i64, i64> = HashMap::new();
        for (i, (id, tag)) in ops.iter().enumerate() {
            db.execute_cql(&format!("INSERT INTO m.t (id, tag) VALUES ({id}, {tag})"))
                .unwrap();
            oracle.insert(*id, *tag);
            if i % flush_every == 0 {
                db.flush_all().unwrap();
            }
        }
        for tag in 0..5i64 {
            let r = db
                .execute_cql(&format!("SELECT id FROM m.t WHERE tag = {tag}"))
                .unwrap();
            let mut got: Vec<i64> = r.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
            got.sort_unstable();
            let mut want: Vec<i64> = oracle
                .iter()
                .filter(|(_, t)| **t == tag)
                .map(|(id, _)| *id)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want, "tag {} diverged", tag);
        }
    }
}
