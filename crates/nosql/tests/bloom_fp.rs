//! Engine-level filter effectiveness: absent-key point queries are answered
//! by the key fences and bloom filters without reading data blocks, and
//! the seeded workload's observed false-positive rate stays under 2%.
//! The engine flushes v3 (columnar) SSTables now, so these zero-block
//! probes hold against v3 fences/filters; the sweep in `corrupt_sweep.rs`
//! covers v1/v2 compatibility.
//!
//! Runs as its own integration-test binary (single test) so the
//! process-global registry deltas are not polluted by parallel tests.

use sc_nosql::{Db, OpenOptions};
use sc_obs::Registry;

#[test]
fn absent_key_queries_skip_data_blocks_with_low_fp_rate() {
    let mut db = Db::open(
        OpenOptions::default()
            // Small flushes, high compaction threshold: the keys spread
            // over several live SSTables so every get probes a stack.
            .memtable_flush_bytes(2048)
            .compaction_threshold(64),
    )
    .unwrap();
    db.execute_cql("CREATE KEYSPACE fp").unwrap();
    db.execute_cql("CREATE TABLE fp.t (id int, v text, PRIMARY KEY (id))")
        .unwrap();
    // Even ids only, so every odd id is an in-range absent key.
    for i in (0..4000).step_by(2) {
        db.execute_cql(&format!(
            "INSERT INTO fp.t (id, v) VALUES ({i}, 'row-{i}-padding-padding')"
        ))
        .unwrap();
    }
    db.flush_all().unwrap();

    let hist_sum = |snap: &sc_obs::RegistrySnapshot, name: &str| {
        snap.histogram(name).cloned().unwrap_or_default().sum
    };
    let before = Registry::global().snapshot();
    let mut probes = 0u64;
    for i in (1..4000).step_by(4) {
        probes += 1;
        let r = db
            .execute_cql(&format!("SELECT v FROM fp.t WHERE id = {i}"))
            .unwrap();
        assert!(r.is_empty(), "id {i} was never written");
    }
    let after = Registry::global().snapshot();
    let delta = |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);

    // Sequential inserts give each SSTable a narrow id range, so the key
    // fences alone reject most (sstable, key) probes; the bloom filter is
    // consulted only by the table(s) whose range admits the key and
    // answers nearly all of those without touching data.
    let misses = delta("nosql.bloom.miss");
    let fps = delta("nosql.bloom.false_positive");
    assert_eq!(delta("nosql.bloom.hit"), 0, "no absent query may hit");
    assert!(
        misses + fps > probes / 2,
        "filters answered in-range probes ({misses}+{fps} of {probes})"
    );
    let fp_rate = fps as f64 / (misses + fps) as f64;
    assert!(fp_rate < 0.02, "false-positive rate {fp_rate} >= 2%");

    // Data blocks were read *only* for false positives — the histogram's
    // block total across all absent gets equals the FP count exactly.
    let blocks = hist_sum(&after, "nosql.read.blocks_per_get")
        - hist_sum(&before, "nosql.read.blocks_per_get");
    assert_eq!(blocks, fps, "absent gets read blocks beyond FP probes");

    // Beyond the key fences not even the filter is consulted: zero blocks,
    // zero filter traffic.
    let fence_before = Registry::global().snapshot();
    for i in [-5, -1, 4001, 5000, 999_999] {
        let r = db
            .execute_cql(&format!("SELECT v FROM fp.t WHERE id = {i}"))
            .unwrap();
        assert!(r.is_empty());
    }
    let fence_after = Registry::global().snapshot();
    let fence_delta = |name: &str| {
        fence_after.counter(name).unwrap_or(0) - fence_before.counter(name).unwrap_or(0)
    };
    assert_eq!(fence_delta("nosql.bloom.miss"), 0);
    assert_eq!(fence_delta("nosql.bloom.false_positive"), 0);
    assert_eq!(
        hist_sum(&fence_after, "nosql.read.blocks_per_get")
            - hist_sum(&fence_before, "nosql.read.blocks_per_get"),
        0,
        "fence-rejected lookups must read zero data blocks"
    );
}
