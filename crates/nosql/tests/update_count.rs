//! UPDATE and COUNT(*) semantics.

use sc_nosql::{CqlValue, Db, NosqlError, OpenOptions};

fn setup() -> Db {
    let mut db = Db::open(OpenOptions::default()).unwrap();
    db.execute_cql("CREATE KEYSPACE k").unwrap();
    db.execute_cql("CREATE TABLE k.t (id int, name text, n int, PRIMARY KEY (id))")
        .unwrap();
    db
}

#[test]
fn update_modifies_only_assigned_columns() {
    let mut db = setup();
    db.execute_cql("INSERT INTO k.t (id, name, n) VALUES (1, 'keep', 10)")
        .unwrap();
    db.execute_cql("UPDATE k.t SET n = 20 WHERE id = 1")
        .unwrap();
    let r = db
        .execute_cql("SELECT name, n FROM k.t WHERE id = 1")
        .unwrap();
    assert_eq!(
        r.rows()[0],
        vec![CqlValue::Text("keep".into()), CqlValue::Int(20)]
    );
}

#[test]
fn update_is_an_upsert() {
    let mut db = setup();
    db.execute_cql("UPDATE k.t SET name = 'fresh', n = 1 WHERE id = 9")
        .unwrap();
    let r = db.execute_cql("SELECT name FROM k.t WHERE id = 9").unwrap();
    assert_eq!(r.rows()[0][0], CqlValue::Text("fresh".into()));
}

#[test]
fn update_maintains_secondary_indexes() {
    let mut db = setup();
    db.execute_cql("CREATE INDEX ON k.t (n)").unwrap();
    db.execute_cql("INSERT INTO k.t (id, n) VALUES (1, 5)")
        .unwrap();
    db.execute_cql("UPDATE k.t SET n = 6 WHERE id = 1").unwrap();
    assert!(db
        .execute_cql("SELECT id FROM k.t WHERE n = 5")
        .unwrap()
        .is_empty());
    assert_eq!(
        db.execute_cql("SELECT id FROM k.t WHERE n = 6")
            .unwrap()
            .len(),
        1
    );
}

#[test]
fn update_rejections() {
    let mut db = setup();
    assert!(matches!(
        db.execute_cql("UPDATE k.t SET id = 2 WHERE id = 1"),
        Err(NosqlError::Unsupported(_))
    ));
    assert!(matches!(
        db.execute_cql("UPDATE k.t SET n = 1 WHERE name = 'x'"),
        Err(NosqlError::Unsupported(_))
    ));
    assert!(matches!(
        db.execute_cql("UPDATE k.t SET n = 'text' WHERE id = 1"),
        Err(NosqlError::TypeMismatch { .. })
    ));
    assert!(matches!(
        db.execute_cql("UPDATE k.t SET nope = 1 WHERE id = 1"),
        Err(NosqlError::UnknownColumn { .. })
    ));
}

#[test]
fn count_star() {
    let mut db = setup();
    for i in 0..7 {
        db.execute_cql(&format!("INSERT INTO k.t (id, n) VALUES ({i}, {})", i % 2))
            .unwrap();
    }
    let r = db.execute_cql("SELECT COUNT(*) FROM k.t").unwrap();
    assert_eq!(r.columns(), vec!["count"]);
    assert_eq!(r.rows(), vec![vec![CqlValue::Int(7)]]);
    // With a filter (scan fallback) and a limit.
    let r = db
        .execute_cql("SELECT COUNT(*) FROM k.t WHERE n = 0")
        .unwrap();
    assert_eq!(r.rows(), vec![vec![CqlValue::Int(4)]]);
    let r = db.execute_cql("SELECT COUNT(*) FROM k.t LIMIT 3").unwrap();
    assert_eq!(r.rows(), vec![vec![CqlValue::Int(3)]]);
}

#[test]
fn update_roundtrips_through_cql_text() {
    let stmt = sc_nosql::parse_statement("UPDATE k.t SET name = 'x', n = 3 WHERE id = 1").unwrap();
    let again = sc_nosql::parse_statement(&stmt.to_cql()).unwrap();
    assert_eq!(stmt, again);
    let stmt = sc_nosql::parse_statement("SELECT COUNT(*) FROM k.t").unwrap();
    assert_eq!(sc_nosql::parse_statement(&stmt.to_cql()).unwrap(), stmt);
}
