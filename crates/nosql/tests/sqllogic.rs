//! Golden-file query tier: runs every `tests/slt/*.slt` script against the
//! engine **three times** — with all data memtable-resident, with a flush
//! to (v3 columnar) SSTables at every `flush` directive, and with a flush
//! plus compaction — and asserts identical results. The runs pin the
//! contract that the operator pipeline reads the same rows from either
//! side of the LSM tree, including out of merged v3 runs.
//!
//! Script format (records separated by blank lines, `#` starts a comment):
//!
//! ```text
//! statement ok
//! CREATE KEYSPACE slt
//!
//! statement error unknown column
//! SELECT nope FROM slt.t
//!
//! query
//! SELECT id, name FROM slt.t WHERE id = 1
//! ----
//! 1|alice
//!
//! plan
//! EXPLAIN SELECT * FROM slt.t WHERE id = 1
//! ----
//! PointScan slt.t key=1 (bloom+fence checked)
//!
//! flush
//! ```
//!
//! `query` rows are rendered one per line, values joined with `|` (`NULL`
//! for nulls, text unquoted). `plan` lines keep their indentation but have
//! the volatile `  (cost: …)` suffix stripped, so scripts pin plan *shape*
//! while estimates stay free to move with table statistics.

use sc_nosql::{CqlValue, Db, OpenOptions};
use std::fmt::Write as _;
use std::path::Path;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// `flush` directives are no-ops; every row is served from memtables.
    Memtable,
    /// `flush` directives flush all tables; queries read v3 SSTables.
    Flushed,
    /// `flush` directives flush *and* compact, so queries read merged v3
    /// runs produced by the compaction path rather than fresh flushes.
    Compacted,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Memtable => "memtable",
            Mode::Flushed => "flushed",
            Mode::Compacted => "compacted",
        }
    }
}

struct Record {
    /// Line number of the directive, for error messages.
    line: usize,
    directive: Directive,
}

enum Directive {
    StatementOk { cql: String },
    StatementError { substring: String, cql: String },
    Query { cql: String, expected: Vec<String> },
    Plan { cql: String, expected: Vec<String> },
    Flush,
}

fn parse_script(text: &str, path: &Path) -> Vec<Record> {
    let mut records = Vec::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line = raw.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = idx + 1;
        let fail = |msg: &str| -> ! {
            panic!("{}:{}: {}", path.display(), lineno, msg);
        };
        let mut next_line = |what: &str| -> String {
            match lines.next() {
                Some((_, l)) if !l.trim().is_empty() => l.trim_end().to_string(),
                _ => fail(&format!("expected {what} on the next line")),
            }
        };
        let directive = if line == "statement ok" {
            Directive::StatementOk {
                cql: next_line("a CQL statement"),
            }
        } else if let Some(substring) = line.strip_prefix("statement error") {
            Directive::StatementError {
                substring: substring.trim().to_string(),
                cql: next_line("a CQL statement"),
            }
        } else if line == "query" || line == "plan" {
            let cql = next_line("a CQL statement");
            match lines.next() {
                Some((_, sep)) if sep.trim_end() == "----" => {}
                _ => fail("expected `----` after the query line"),
            }
            let mut expected = Vec::new();
            while let Some((_, l)) = lines.peek() {
                if l.trim().is_empty() {
                    break;
                }
                expected.push(lines.next().unwrap().1.trim_end().to_string());
            }
            if line == "query" {
                Directive::Query { cql, expected }
            } else {
                Directive::Plan { cql, expected }
            }
        } else if line == "flush" {
            Directive::Flush
        } else {
            fail(&format!("unknown directive {line:?}"))
        };
        records.push(Record {
            line: lineno,
            directive,
        });
    }
    records
}

/// `slt` rendering of a value: unquoted text, `NULL` for nulls — the
/// pipe-joined row format golden files are written in.
fn render_value(value: &CqlValue) -> String {
    match value {
        CqlValue::Null => "NULL".to_string(),
        CqlValue::Text(s) => s.clone(),
        other => other.to_string(),
    }
}

fn render_row(values: &[CqlValue]) -> String {
    let parts: Vec<String> = values.iter().map(render_value).collect();
    parts.join("|")
}

/// Strips the volatile cost suffix from an `EXPLAIN` line.
fn strip_cost(line: &str) -> &str {
    match line.find("  (cost:") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn diff(context: &str, expected: &[String], actual: &[String]) -> Option<String> {
    if expected == actual {
        return None;
    }
    let mut msg = format!("{context}\nexpected:\n");
    for l in expected {
        let _ = writeln!(msg, "  {l}");
    }
    msg.push_str("actual:\n");
    for l in actual {
        let _ = writeln!(msg, "  {l}");
    }
    Some(msg)
}

fn run_script(path: &Path, mode: Mode) {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let records = parse_script(&text, path);
    let mut db = Db::open(OpenOptions::default()).expect("open engine");
    for record in records {
        let at = format!("{}:{} [{}]", path.display(), record.line, mode.label());
        match record.directive {
            Directive::StatementOk { cql } => {
                if let Err(e) = db.execute_cql(&cql) {
                    panic!("{at}: `{cql}` failed: {e}");
                }
            }
            Directive::StatementError { substring, cql } => match db.execute_cql(&cql) {
                Ok(_) => panic!("{at}: `{cql}` succeeded, expected error"),
                Err(e) => {
                    let msg = e.to_string();
                    assert!(
                        msg.contains(&substring),
                        "{at}: `{cql}` failed with {msg:?}, expected substring {substring:?}"
                    );
                }
            },
            Directive::Query { cql, expected } => {
                let result = db
                    .execute_cql(&cql)
                    .unwrap_or_else(|e| panic!("{at}: `{cql}` failed: {e}"));
                let actual: Vec<String> = result
                    .rows()
                    .iter()
                    .map(|r| render_row(r.values()))
                    .collect();
                if let Some(msg) = diff(&format!("{at}: `{cql}`"), &expected, &actual) {
                    panic!("{msg}");
                }
            }
            Directive::Plan { cql, expected } => {
                let result = db
                    .execute_cql(&cql)
                    .unwrap_or_else(|e| panic!("{at}: `{cql}` failed: {e}"));
                let actual: Vec<String> = result
                    .rows()
                    .iter()
                    .map(|r| strip_cost(&render_row(r.values())).to_string())
                    .collect();
                if let Some(msg) = diff(&format!("{at}: `{cql}`"), &expected, &actual) {
                    panic!("{msg}");
                }
            }
            Directive::Flush => {
                if mode != Mode::Memtable {
                    db.flush_all()
                        .unwrap_or_else(|e| panic!("{at}: flush failed: {e}"));
                }
                if mode == Mode::Compacted {
                    db.compact_all()
                        .unwrap_or_else(|e| panic!("{at}: compact failed: {e}"));
                }
            }
        }
    }
}

fn run_all(mode: Mode) {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/slt");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|entry| entry.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "slt"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no .slt scripts under {}", dir.display());
    for path in paths {
        run_script(&path, mode);
    }
}

#[test]
fn slt_memtable() {
    run_all(Mode::Memtable);
}

#[test]
fn slt_flushed() {
    run_all(Mode::Flushed);
}

#[test]
fn slt_compacted() {
    run_all(Mode::Compacted);
}
