//! Concurrency tier: writer and reader sessions racing over one engine.
//!
//! Three properties are checked, each with a per-key history oracle:
//!
//! * **Monotone reads** — every row version carries a writer-side version
//!   number; a reader may never observe a key's value going backwards, and
//!   may never observe a version nobody acknowledged writing yet.
//! * **Snapshot stability** — a pinned [`sc_nosql::Snapshot`] returns the
//!   same rows no matter how much the writers churn underneath it.
//! * **Durability under contention** — with a fault-injecting VFS armed to
//!   crash mid-run, recovery must surface, for every key, either its last
//!   acknowledged version or the one in-flight version whose ack the crash
//!   swallowed.
//!
//! `scripts/ci.sh` runs this tier in release mode with the `SC_NOSQL_YIELD`
//! schedule perturber armed, which widens the set of interleavings far
//! beyond what free-running debug threads reach.

use sc_nosql::{crashtest, Db, NosqlError, OpenOptions, SharedDb};
use sc_storage::{StorageError, Vfs};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const WRITERS: usize = 4;
const READERS: usize = 4;
const KEYS_PER_WRITER: usize = 8;
const ROUNDS: u64 = 60;

fn setup(db: &SharedDb) {
    db.execute_cql("CREATE KEYSPACE c").unwrap();
    db.execute_cql("CREATE TABLE c.t (id int, v int, PRIMARY KEY (id))")
        .unwrap();
}

fn read_point(db: &SharedDb, id: i64) -> Option<i64> {
    let r = db
        .execute_cql(&format!("SELECT v FROM c.t WHERE id = {id}"))
        .unwrap();
    r.iter().next().map(|row| row.get_int("v").unwrap())
}

/// N writer sessions bump per-key version counters while M readers assert
/// that no key ever appears to move backwards and no unwritten version is
/// ever visible. (An acknowledged write may *lag* briefly — the visible
/// watermark waits for older in-flight writes — but it may never regress,
/// and once the writers drain, every key must read its final version.)
#[test]
fn point_reads_are_monotone_under_contention() {
    let db = SharedDb::open(OpenOptions::default().group_commit_delay(Duration::from_micros(100)))
        .unwrap();
    setup(&db);
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let db = &db;
                s.spawn(move || {
                    let mut session = db.session();
                    session.execute_cql("USE c").unwrap();
                    for round in 1..=ROUNDS {
                        for k in 0..KEYS_PER_WRITER {
                            let id = w * KEYS_PER_WRITER + k;
                            session
                                .execute_cql(&format!(
                                    "INSERT INTO t (id, v) VALUES ({id}, {round})"
                                ))
                                .unwrap();
                        }
                    }
                })
            })
            .collect();
        for r in 0..READERS {
            let db = &db;
            let done = &done;
            s.spawn(move || {
                let mut last: BTreeMap<usize, i64> = BTreeMap::new();
                let mut step = r;
                while !done.load(Ordering::Acquire) {
                    let id = step % (WRITERS * KEYS_PER_WRITER);
                    step = step.wrapping_add(7);
                    let got = read_point(db, id as i64).unwrap_or(0);
                    assert!(
                        got <= ROUNDS as i64,
                        "key {id}: read version {got} nobody wrote"
                    );
                    let prev = last.insert(id, got).unwrap_or(0);
                    assert!(
                        got >= prev,
                        "key {id}: version went backwards ({prev} -> {got})"
                    );
                }
            });
        }
        for h in writers {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
    });

    // Writers drained: the watermark has settled, every key must read its
    // final version — no lost updates.
    for id in 0..(WRITERS * KEYS_PER_WRITER) as i64 {
        assert_eq!(read_point(&db, id), Some(ROUNDS as i64), "key {id}");
    }
}

/// A pinned snapshot keeps returning the same rows while writers overwrite
/// every key and insert new ones underneath it.
#[test]
fn snapshots_stay_stable_while_writers_churn() {
    let db = SharedDb::open(OpenOptions::default()).unwrap();
    setup(&db);
    for id in 0..32 {
        db.execute_cql(&format!("INSERT INTO c.t (id, v) VALUES ({id}, 1)"))
            .unwrap();
    }
    let snap = db.snapshot();
    let baseline: Vec<(i64, i64)> = snap
        .execute_cql("SELECT id, v FROM c.t")
        .unwrap()
        .iter()
        .map(|row| (row.get_int("id").unwrap(), row.get_int("v").unwrap()))
        .collect();
    assert_eq!(baseline.len(), 32);

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let db = &db;
            s.spawn(move || {
                let mut session = db.session();
                session.execute_cql("USE c").unwrap();
                for round in 0..40 {
                    for k in 0..8 {
                        // Overwrite the snapshotted range and grow past it.
                        let id = (w * 8 + k) as i64;
                        session
                            .execute_cql(&format!(
                                "INSERT INTO t (id, v) VALUES ({id}, {})",
                                round + 2
                            ))
                            .unwrap();
                        session
                            .execute_cql(&format!(
                                "INSERT INTO t (id, v) VALUES ({}, 1)",
                                1000 + id * 100 + round
                            ))
                            .unwrap();
                    }
                }
            });
        }
        let snap = &snap;
        let baseline = &baseline;
        s.spawn(move || {
            for _ in 0..50 {
                let again: Vec<(i64, i64)> = snap
                    .execute_cql("SELECT id, v FROM c.t")
                    .unwrap()
                    .iter()
                    .map(|row| (row.get_int("id").unwrap(), row.get_int("v").unwrap()))
                    .collect();
                assert_eq!(&again, baseline, "snapshot drifted under churn");
                std::thread::yield_now();
            }
        });
    });

    drop(snap);
    // The live view did move on.
    assert_eq!(read_point(&db, 0), Some(41));
}

fn is_injected(e: &NosqlError) -> bool {
    matches!(e, NosqlError::Storage(StorageError::Injected { .. }))
}

/// Writers and readers race over a fault VFS armed to crash mid-run: each
/// writer owns one key and bumps its version, so per key the recovered
/// value must be the last acked version or the single in-flight one.
/// Readers keep asserting monotonicity right through the crash (reads pass
/// through the dead-process fault layer).
#[test]
fn crash_under_contention_recovers_per_key_history() {
    for seed in 0..4u64 {
        let (vfs, handle) = Vfs::with_faults(Vfs::memory(), 0xFEED ^ seed);
        let db = SharedDb::open(
            OpenOptions::default()
                .vfs(vfs.clone())
                .memtable_flush_bytes(512)
                .group_commit_delay(Duration::from_micros(100)),
        )
        .unwrap();
        setup(&db);
        // Crash somewhere in the concurrent write phase.
        handle.crash_at(handle.ops() + 8 + seed * 11);

        // Per writer/key: (last acked version, in-flight version if any).
        let done = AtomicBool::new(false);
        let outcomes: Vec<(u64, Option<u64>)> = std::thread::scope(|s| {
            let done = &done;
            let writers: Vec<_> = (0..WRITERS)
                .map(|w| {
                    let db = &db;
                    s.spawn(move || {
                        let mut session = db.session();
                        session.execute_cql("USE c").unwrap();
                        let mut acked = 0u64;
                        for round in 1..=ROUNDS {
                            match session.execute_cql(&format!(
                                "INSERT INTO t (id, v) VALUES ({w}, {round})"
                            )) {
                                Ok(_) => acked = round,
                                Err(e) if is_injected(&e) => return (acked, Some(round)),
                                Err(e) => panic!("writer {w}: unexpected error {e}"),
                            }
                        }
                        (acked, None)
                    })
                })
                .collect();
            for r in 0..READERS {
                let db = &db;
                s.spawn(move || {
                    let mut last = vec![0i64; WRITERS];
                    let mut step = r;
                    while !done.load(Ordering::Acquire) {
                        let id = step % WRITERS;
                        step = step.wrapping_add(3);
                        let got = read_point(db, id as i64).unwrap_or(0);
                        assert!(
                            got >= last[id],
                            "key {id}: version went backwards across crash ({} -> {got})",
                            last[id]
                        );
                        last[id] = got;
                    }
                });
            }
            let outcomes = writers.into_iter().map(|h| h.join().unwrap()).collect();
            done.store(true, Ordering::Release);
            outcomes
        });
        assert!(
            handle.crashed_at().is_some(),
            "seed {seed}: crash never fired"
        );
        handle.disarm();

        let mut db = Db::open(
            OpenOptions::default()
                .vfs(vfs)
                .memtable_flush_bytes(512)
                .recover(true),
        )
        .unwrap();
        for (w, (acked, in_flight)) in outcomes.iter().enumerate() {
            let r = db
                .execute_cql(&format!("SELECT v FROM c.t WHERE id = {w}"))
                .unwrap();
            let got = r.iter().next().map(|row| row.get_int("v").unwrap() as u64);
            let ok = match got {
                Some(v) => v == *acked || Some(v) == *in_flight,
                None => *acked == 0,
            };
            assert!(
                ok,
                "seed {seed} key {w}: recovered {got:?}, acked {acked}, in-flight {in_flight:?}"
            );
        }
    }
}

/// The crash-matrix concurrent sweep, at a density suitable for every CI
/// run (the full density runs via `repro crashtest`).
#[test]
fn concurrent_crash_matrix_smoke() {
    let report = crashtest::sweep_concurrent(0xAB1E, Some(12)).unwrap();
    assert_eq!(report.points_tested, 12);
    assert!(report.crashes_fired >= 6, "{report:?}");
}
