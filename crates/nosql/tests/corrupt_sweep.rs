//! Exhaustive byte-corruption sweep over small SSTables of every format.
//!
//! For every byte position of a freshly written table, three mutations are
//! tried — flip one bit, overwrite with 0xFF, truncate the file at that
//! position — and for each mutant the full read surface (`open`, `get` on
//! present and absent keys, `scan`, `scan_prefix`) is driven. The invariant
//! under test is the hardening goal: a corrupt or truncated file must
//! surface as `Err(NosqlError::Corrupt)` or behave correctly — it may
//! never panic, never allocate unboundedly, and (for v2/v3, whose data
//! blocks are CRC-framed) never silently return wrong rows.
//!
//! v3 is swept twice: once with foreign bodies (the writer falls back to
//! verbatim row storage) and once with canonical [`Row`] encodings (the
//! writer picks the columnar layout, so the varint/dictionary/bitmap
//! decoders face the mutants too).

use sc_encoding::Encoder;
use sc_nosql::error::NosqlError;
use sc_nosql::row::Row;
use sc_nosql::sstable::{write_sstable, write_sstable_v1, write_sstable_v2, SsTable, SstEntry};
use sc_nosql::CqlValue;
use sc_storage::Vfs;

/// Entries whose bodies are *not* row encodings — a v3 writer stores these
/// blocks in the row-fallback layout.
fn entries() -> Vec<SstEntry> {
    (0..12u8)
        .map(|i| SstEntry {
            key: vec![b'k', i],
            body: if i % 5 == 0 {
                None
            } else {
                Some(format!("payload-{i}").into_bytes())
            },
            timestamp: i as u64,
        })
        .collect()
}

/// Entries whose bodies are canonical [`Row`] encodings — a v3 writer
/// stores these blocks columnar (asserted below), exercising the
/// varint-delta, dictionary and null-bitmap codecs under corruption.
fn columnar_entries() -> Vec<SstEntry> {
    (0..12u8)
        .map(|i| {
            let ts = i as u64;
            let body = if i % 5 == 0 {
                None
            } else {
                let row = Row::new(vec![
                    CqlValue::Int(i as i64),
                    CqlValue::Text(format!("city-{}", i % 3)),
                    if i % 4 == 0 {
                        CqlValue::Null
                    } else {
                        CqlValue::Int(1000 + i as i64)
                    },
                ]);
                let mut enc = Encoder::new();
                row.encode(&mut enc, ts);
                Some(enc.into_bytes())
            };
            SstEntry {
                key: vec![b'k', i],
                body,
                timestamp: ts,
            }
        })
        .collect()
}

/// Drives every read path of one (possibly corrupt) file. Returns `Ok` with
/// the scan result when every operation succeeded, `Err` when any surfaced
/// an error. Panics and wrong-size allocations abort the test run itself.
fn exercise(vfs: &Vfs, file: &str, es: &[SstEntry]) -> Result<Vec<SstEntry>, NosqlError> {
    let sst = SsTable::open(vfs.clone(), file)?;
    for e in es {
        sst.get(&e.key)?;
    }
    sst.get(b"absent-key")?;
    sst.scan_prefix(b"k")?;
    sst.scan()
}

fn mutants(original: &[u8], pos: usize) -> Vec<Vec<u8>> {
    let mut flipped = original.to_vec();
    flipped[pos] ^= 0x01;
    let mut smashed = original.to_vec();
    smashed[pos] = 0xFF;
    vec![flipped, smashed, original[..pos].to_vec()]
}

fn sweep(
    writer: fn(&Vfs, &str, &[SstEntry]) -> Result<(), NosqlError>,
    es: Vec<SstEntry>,
    crc_covers_data: bool,
) {
    let vfs = Vfs::memory();
    writer(&vfs, "sweep/base", &es).unwrap();
    let original = vfs.read_all("sweep/base").unwrap();
    let baseline = exercise(&vfs, "sweep/base", &es).unwrap();
    assert_eq!(baseline, es, "uncorrupted table must read back exactly");

    let mut rejected = 0usize;
    let mut survived = 0usize;
    for pos in 0..original.len() {
        for (kind, mutant) in mutants(&original, pos).into_iter().enumerate() {
            let file = format!("sweep/mut-{pos}-{kind}");
            vfs.append(&file, &mutant).unwrap();
            match exercise(&vfs, &file, &es) {
                Err(_) => rejected += 1,
                Ok(result) => {
                    survived += 1;
                    if crc_covers_data {
                        // Every v2/v3 region is CRC- or geometry-checked, so
                        // a mutation that goes unnoticed must be byte-neutral
                        // in effect: the reads still return the exact data.
                        assert_eq!(
                            result, es,
                            "undetected mutation at byte {pos} (kind {kind}) \
                             changed the read result"
                        );
                    }
                }
            }
        }
    }
    // Sanity on the sweep itself: corruption was overwhelmingly detected.
    assert!(
        rejected > original.len(),
        "only {rejected} of {} mutants rejected",
        3 * original.len()
    );
    if !crc_covers_data {
        // v1's data region carries no CRC, so flips there go unnoticed
        // (they alter what reads return without erroring) — the sweep must
        // have seen some of those to prove it covered that region.
        assert!(survived > 0, "sweep produced no undetected v1 mutants");
    }
}

/// The default writer is v3 now; foreign bodies land in row-fallback blocks.
#[test]
fn v3_fallback_sweep_never_panics_and_never_lies() {
    sweep(write_sstable, entries(), true);
}

/// Canonical row bodies land in columnar blocks — verified against the
/// block header before sweeping, so this covers the columnar decoders.
#[test]
fn v3_columnar_sweep_never_panics_and_never_lies() {
    let vfs = Vfs::memory();
    let es = columnar_entries();
    write_sstable(&vfs, "probe", &es).unwrap();
    let bytes = vfs.read_all("probe").unwrap();
    // The first data block starts at offset 0: varint entry count (12 fits
    // one byte) then the layout tag — 0 is columnar, 1 the row fallback.
    assert_eq!(bytes[0], 12, "sweep fixture no longer fits one block");
    assert_eq!(bytes[1], 0, "canonical rows must take the columnar layout");

    sweep(write_sstable, es, true);
}

#[test]
fn v2_sweep_never_panics_and_never_lies() {
    sweep(write_sstable_v2, entries(), true);
}

#[test]
fn v1_sweep_never_panics() {
    // v1 has no CRC over its data region, so a data-byte flip can alter
    // what reads return; the guarantee is only no-panic + checked errors.
    sweep(write_sstable_v1, entries(), false);
}
