//! Crash-recovery integration tests: the full crash matrix, repeated random
//! crashes in one history, and the torn-commit-log regression.

use sc_encoding::Rng;
use sc_nosql::{crashtest, Db, NosqlError, OpenOptions};
use sc_storage::{StorageError, Vfs};
use std::collections::BTreeMap;

/// The acceptance sweep: crash at EVERY mutating storage op of the workload
/// (well over 100 points) and require exact acked-write recovery each time.
#[test]
fn full_crash_matrix_covers_every_op() {
    let report = crashtest::sweep(0xC0FFEE, None).unwrap();
    assert!(
        report.total_ops >= 100,
        "workload too small for the acceptance bar: {} ops",
        report.total_ops
    );
    assert_eq!(report.points_tested as u64, report.total_ops);
    assert_eq!(
        report.crashes_fired, report.points_tested,
        "every armed point must fire"
    );
}

/// The concurrent variant: writer sessions share group-commit batches, so
/// crash points tear multi-session batches. Every cell must recover exactly
/// the acked writes (plus, at most, the exact lost-ack in-flight inserts).
#[test]
fn concurrent_crash_matrix_subset() {
    let report = crashtest::sweep_concurrent(0xD1CE, Some(32)).unwrap();
    assert_eq!(report.points_tested, 32);
    // Op counts shift a little with thread scheduling, so late points may
    // land past a given run's actual op count — but the bulk must fire.
    assert!(
        report.crashes_fired >= report.points_tested / 2,
        "too few crashes fired: {report:?}"
    );
}

fn tiny(vfs: Vfs) -> OpenOptions {
    OpenOptions::default()
        .vfs(vfs)
        .memtable_flush_bytes(512)
        .compaction_threshold(3)
        // Deterministic op counts, and no background merge surviving a
        // "crashed" engine to scribble on the VFS while the next open's
        // recovery is reading it.
        .compaction_threads(0)
}

fn read_all(db: &mut Db) -> BTreeMap<i64, i64> {
    let r = db.execute_cql("SELECT id, v FROM p.t").unwrap();
    r.iter()
        .map(|row| (row.get_int("id").unwrap(), row.get_int("v").unwrap()))
        .collect()
}

fn materialize(oracle: &BTreeMap<i64, Option<i64>>) -> BTreeMap<i64, i64> {
    oracle
        .iter()
        .filter_map(|(k, v)| v.map(|v| (*k, v)))
        .collect()
}

/// One engine history with several crashes in it: random puts, deletes,
/// flushes and compactions, a crash at a random op, recovery — repeated.
/// After every recovery the surviving state must be the acked writes (the
/// one in-flight statement may or may not have stuck).
#[test]
fn repeated_random_crashes_never_lose_acked_writes() {
    for seed in 0..6u64 {
        let (vfs, handle) = Vfs::with_faults(Vfs::memory(), 0xBAD_5EED ^ seed);
        let mut rng = Rng::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        let mut db = Db::open(tiny(vfs.clone())).unwrap();
        db.execute_cql("CREATE KEYSPACE p").unwrap();
        db.execute_cql("CREATE TABLE p.t (id int, v int, PRIMARY KEY (id))")
            .unwrap();
        let mut oracle: BTreeMap<i64, Option<i64>> = BTreeMap::new();
        for round in 0..5 {
            handle.crash_at(handle.ops() + 1 + rng.gen_range(60));
            let in_flight: Option<(i64, Option<i64>)> = loop {
                let id = rng.gen_range(32) as i64;
                let action = rng.gen_range(12);
                let (res, effect) = if action < 7 {
                    let v = rng.gen_range(1000) as i64;
                    (
                        db.execute_cql(&format!("INSERT INTO p.t (id, v) VALUES ({id}, {v})"))
                            .map(drop),
                        Some((id, Some(v))),
                    )
                } else if action < 9 {
                    (
                        db.execute_cql(&format!("DELETE FROM p.t WHERE id = {id}"))
                            .map(drop),
                        Some((id, None)),
                    )
                } else if action < 11 {
                    (db.flush_all(), None)
                } else {
                    (db.compact_all(), None)
                };
                match res {
                    Ok(()) => {
                        if let Some((id, v)) = effect {
                            oracle.insert(id, v);
                        }
                    }
                    Err(NosqlError::Storage(StorageError::Injected { .. })) => break effect,
                    Err(e) => panic!("seed {seed} round {round}: unexpected error {e}"),
                }
            };
            handle.disarm();
            db = Db::open(tiny(vfs.clone()).recover(true)).unwrap();
            let got = read_all(&mut db);
            let matches_base = got == materialize(&oracle);
            let matches_with_in_flight = in_flight.is_some_and(|(id, v)| {
                let mut with = oracle.clone();
                with.insert(id, v);
                got == materialize(&with)
            });
            assert!(
                matches_base || matches_with_in_flight,
                "seed {seed} round {round}: recovered state diverged from acked writes"
            );
            // What the disk actually holds is the next round's baseline.
            oracle = got.iter().map(|(k, v)| (*k, Some(*v))).collect();
        }
    }
}

/// Regression: a torn final commit-log record must be truncated away, not
/// treated as fatal — and the truncation must be physical, so writes after
/// recovery stay readable through the *next* recovery.
#[test]
fn torn_final_commit_log_record_is_truncated_not_fatal() {
    let vfs = Vfs::memory();
    {
        let mut db = Db::open(OpenOptions::default().vfs(vfs.clone())).unwrap();
        db.execute_cql("CREATE KEYSPACE p").unwrap();
        db.execute_cql("CREATE TABLE p.t (id int, v int, PRIMARY KEY (id))")
            .unwrap();
        db.execute_cql("INSERT INTO p.t (id, v) VALUES (1, 10)")
            .unwrap();
        db.execute_cql("INSERT INTO p.t (id, v) VALUES (2, 20)")
            .unwrap();
    }
    // Tear the last record mid-frame, as a power cut would.
    let len = vfs.len("commitlog").unwrap();
    vfs.truncate("commitlog", len - 3).unwrap();

    let mut db = Db::open(OpenOptions::default().vfs(vfs.clone()).recover(true)).unwrap();
    assert_eq!(
        read_all(&mut db),
        BTreeMap::from([(1, 10)]),
        "intact record survives, torn one is dropped"
    );
    db.execute_cql("INSERT INTO p.t (id, v) VALUES (3, 30)")
        .unwrap();
    drop(db);

    let mut db = Db::open(OpenOptions::default().vfs(vfs).recover(true)).unwrap();
    assert_eq!(
        read_all(&mut db),
        BTreeMap::from([(1, 10), (3, 30)]),
        "post-recovery write must not land beyond the old tear"
    );
}

/// Regression for SSTable-id reuse after a crash: a merge that dies between
/// writing its output file and publishing the manifest leaves a high-id
/// orphan on disk. Recovery sweeps the orphan away — but `next_sst_id` must
/// be re-seeded *above* it, or the next flush mints the same name and, if
/// that sweep's delete is itself lost to a second crash, stale merge bytes
/// get read back as the new table's data.
#[test]
fn recovered_sst_ids_never_reuse_orphan_ids() {
    let vfs = Vfs::memory();
    {
        let mut db = Db::open(tiny(vfs.clone())).unwrap();
        db.execute_cql("CREATE KEYSPACE p").unwrap();
        db.execute_cql("CREATE TABLE p.t (id int, v int, PRIMARY KEY (id))")
            .unwrap();
        db.execute_cql("INSERT INTO p.t (id, v) VALUES (1, 10)")
            .unwrap();
        db.flush_all().unwrap();
    }
    // The crashed merge's unpublished output: a high-id orphan the manifest
    // has never heard of.
    vfs.append("p/t/sst-99", b"torn merge output").unwrap();

    let mut db = Db::open(tiny(vfs.clone()).recover(true)).unwrap();
    assert!(
        !vfs.exists("p/t/sst-99"),
        "recovery must sweep the orphan away"
    );
    let before = vfs.list("p/t/sst-").unwrap();
    db.execute_cql("INSERT INTO p.t (id, v) VALUES (2, 20)")
        .unwrap();
    db.flush_all().unwrap();
    let minted: Vec<u64> = vfs
        .list("p/t/sst-")
        .unwrap()
        .into_iter()
        .filter(|f| !before.contains(f))
        .filter_map(|f| f.rsplit('-').next().and_then(|s| s.parse::<u64>().ok()))
        .collect();
    assert!(!minted.is_empty(), "flush minted no new SSTable");
    assert!(
        minted.iter().all(|&id| id > 99),
        "post-recovery flush reused an id at or below the swept orphan's: {minted:?}"
    );
    assert_eq!(read_all(&mut db), BTreeMap::from([(1, 10), (2, 20)]));
}

/// Regression for the recovery age-order bug: a tiered merge's output file
/// has the largest id but belongs mid-sequence in age. Recovery must attach
/// SSTables in manifest (age) order, or younger tables' rows are shadowed.
#[test]
fn recovery_preserves_tiered_age_order() {
    let vfs = Vfs::memory();
    {
        let mut db = Db::open(tiny(vfs.clone())).unwrap();
        db.execute_cql("CREATE KEYSPACE p").unwrap();
        db.execute_cql("CREATE TABLE p.t (id int, v int, PRIMARY KEY (id))")
            .unwrap();
        // Enough churn over few keys to force tiered merges whose outputs
        // splice into the middle of the age sequence.
        for round in 0..30i64 {
            for id in 0..8i64 {
                db.execute_cql(&format!(
                    "INSERT INTO p.t (id, v) VALUES ({id}, {})",
                    round * 100 + id
                ))
                .unwrap();
            }
            db.flush_all().unwrap();
        }
    }
    let mut db = Db::open(tiny(vfs).recover(true)).unwrap();
    let expected: BTreeMap<i64, i64> = (0..8).map(|id| (id, 2900 + id)).collect();
    assert_eq!(
        read_all(&mut db),
        expected,
        "stale pre-merge rows resurfaced"
    );
}
